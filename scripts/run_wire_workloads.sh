#!/bin/sh
# Runs the wire-serving workload suite and validates the emitted JSON:
#
#   1. closed-loop zipfian and uniform sweeps (in-process cluster, but all
#      measured traffic crosses real TCP sockets via WireClient)
#   2. an open-loop run at a fixed target rate (coordinated-omission
#      resistant latency: measured from scheduled send time)
#   3. an external-process run: couchkv_server in its own process, loadgen
#      attached over --connect, then the server is killed -9 mid-suite and a
#      second loadgen run must fail cleanly (errors, not hangs/crashes)
#
#   run_wire_workloads.sh <build-dir> <out-dir>
#
# Duration per run is COUCHKV_WIRE_DURATION seconds (default 5; CI smoke
# uses 2). BENCH_wire_*.json land in <out-dir> and must parse.
set -eu

BUILD_DIR="$1"
OUT_DIR="$2"
LOADGEN="$BUILD_DIR/tools/loadgen"
SERVER="$BUILD_DIR/tools/couchkv_server"
JSON_CHECK="$BUILD_DIR/bench/json_check"
DURATION="${COUCHKV_WIRE_DURATION:-5}"

mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/BENCH_wire_*.json
COUCHKV_BENCH_JSON_DIR="$OUT_DIR"
export COUCHKV_BENCH_JSON_DIR

echo "== wire workload: closed loop, zipfian"
"$LOADGEN" --threads 4 --duration-s "$DURATION" --keys 20000 \
  --dist zipfian --read-pct 80 --name wire_closed_zipfian

echo "== wire workload: closed loop, uniform"
"$LOADGEN" --threads 4 --duration-s "$DURATION" --keys 20000 \
  --dist uniform --read-pct 50 --name wire_closed_uniform

echo "== wire workload: open loop @ 20k ops/s"
"$LOADGEN" --threads 4 --duration-s "$DURATION" --keys 20000 \
  --target-ops 20000 --name wire_open_20k

echo "== wire workload: external server process"
SERVER_OUT="$OUT_DIR/couchkv_server.out"
"$SERVER" --nodes 3 > "$SERVER_OUT" 2>&1 &
SERVER_PID=$!
# trap keeps the server from outliving a failed run.
trap 'kill -9 "$SERVER_PID" 2>/dev/null || true' EXIT
i=0
until grep -q '^READY$' "$SERVER_OUT" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "run_wire_workloads: server never became READY" >&2
    exit 1
  fi
  sleep 0.1
done
PORTS="$(sed -n 's/^WIRE node=[0-9]* port=//p' "$SERVER_OUT" | paste -sd, -)"
"$LOADGEN" --connect "$PORTS" --threads 2 --duration-s "$DURATION" \
  --keys 10000 --name wire_external

echo "== wire workload: couchkv_top smoke against the live server"
TOP="$BUILD_DIR/tools/couchkv_top"
TOP_OUT="$OUT_DIR/couchkv_top.out"
"$TOP" --connect "$PORTS" --interval-ms 200 --count 2 --raw > "$TOP_OUT"
# Every node must have answered with a parsed stats line (no "unreachable")
# and a raw flight-recorder dump.
if grep -q 'unreachable' "$TOP_OUT"; then
  echo "run_wire_workloads: couchkv_top saw unreachable nodes" >&2
  cat "$TOP_OUT" >&2
  exit 1
fi
RAW_LINES="$(grep -c '^  raw\[' "$TOP_OUT" || true)"
if [ "$RAW_LINES" -lt 3 ]; then
  echo "run_wire_workloads: couchkv_top raw dumps missing ($RAW_LINES)" >&2
  cat "$TOP_OUT" >&2
  exit 1
fi

echo "== wire workload: kill -9 the server, client must fail cleanly"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap - EXIT
# Every op errors (connection refused), but the generator must terminate on
# schedule and still emit valid JSON — no hang, no crash.
"$LOADGEN" --connect "$PORTS" --threads 1 --duration-s 1 --keys 100 \
  --no-preload --name wire_after_kill
KILLED_OPS="$(sed -n 's/.*"achieved_ops_s":\([0-9.]*\).*/\1/p' \
  "$OUT_DIR/BENCH_wire_after_kill.json")"
case "$KILLED_OPS" in
  0|0.*) ;;
  *) echo "run_wire_workloads: ops flowed to a dead server ($KILLED_OPS)" >&2
     exit 1 ;;
esac

"$JSON_CHECK" "$OUT_DIR"/BENCH_wire_*.json
echo "run_wire_workloads: OK"
