#!/bin/sh
# Wire-serving capacity sweep: server parallelism x client connections.
#
# For every point in (server nodes) x (loadgen threads), boots a fresh
# external couchkv_server process, drives it over real TCP with loadgen,
# and emits one BENCH_wire_sweep_n<N>_c<C>.json per point into <out-dir>.
# Each loadgen thread owns one WireClient (one TCP connection per node it
# talks to), so the thread axis is the connection-count axis; the node
# axis is the server-side parallelism axis (one TcpServer listener +
# engine per node; TcpServer itself is thread-per-connection).
#
#   run_wire_sweep.sh <build-dir> <out-dir>
#
# Env knobs:
#   COUCHKV_WIRE_DURATION   seconds per point (default 5; CI smoke uses 2)
#   COUCHKV_SWEEP_NODES     server node counts   (default "1 2 3")
#   COUCHKV_SWEEP_THREADS   loadgen thread counts (default "1 2 4 8")
#
# Afterwards scripts/plot_wire_sweep.py renders the sweep as a table +
# gnuplot-ready .dat (and a .png when gnuplot is installed).
set -eu

BUILD_DIR="$1"
OUT_DIR="$2"
LOADGEN="$BUILD_DIR/tools/loadgen"
SERVER="$BUILD_DIR/tools/couchkv_server"
JSON_CHECK="$BUILD_DIR/bench/json_check"
DURATION="${COUCHKV_WIRE_DURATION:-5}"
NODES_LIST="${COUCHKV_SWEEP_NODES:-1 2 3}"
THREADS_LIST="${COUCHKV_SWEEP_THREADS:-1 2 4 8}"

mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/BENCH_wire_sweep_*.json
COUCHKV_BENCH_JSON_DIR="$OUT_DIR"
export COUCHKV_BENCH_JSON_DIR

SERVER_PID=""
trap 'if [ -n "$SERVER_PID" ]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi' EXIT

for NODES in $NODES_LIST; do
  echo "== wire sweep: booting external server, nodes=$NODES"
  SERVER_OUT="$OUT_DIR/couchkv_server_n${NODES}.out"
  "$SERVER" --nodes "$NODES" > "$SERVER_OUT" 2>&1 &
  SERVER_PID=$!
  i=0
  until grep -q '^READY$' "$SERVER_OUT" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "run_wire_sweep: server (nodes=$NODES) never became READY" >&2
      exit 1
    fi
    sleep 0.1
  done
  PORTS="$(sed -n 's/^WIRE node=[0-9]* port=//p' "$SERVER_OUT" | paste -sd, -)"

  for THREADS in $THREADS_LIST; do
    echo "== wire sweep: nodes=$NODES threads=$THREADS"
    "$LOADGEN" --connect "$PORTS" --threads "$THREADS" \
      --duration-s "$DURATION" --keys 20000 --dist zipfian --read-pct 80 \
      --name "wire_sweep_n${NODES}_c${THREADS}"
  done

  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
done
trap - EXIT

"$JSON_CHECK" "$OUT_DIR"/BENCH_wire_sweep_*.json

if command -v python3 >/dev/null 2>&1; then
  python3 "$(dirname "$0")/plot_wire_sweep.py" "$OUT_DIR"
else
  echo "run_wire_sweep: python3 not found; skipping plot"
fi
echo "run_wire_sweep: OK"
