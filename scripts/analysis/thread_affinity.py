#!/usr/bin/env python3
"""Static execution-domain (thread-affinity) analysis for couchkv
(stdlib only — no clang tooling).

The runtime half (src/common/affinity.{h,cc}, -DCOUCHKV_AFFINITY=ON)
observes which execution domain every lock acquisition and every
COUCHKV_AFFINE_TO access actually runs in. This script is the static half:

  * SPAWN-SITE DISCIPLINE: every thread spawn in src/ and tools/ — direct
    `std::thread(...)` construction, a ctor-initializer spawn of a
    `std::thread` member, or emplace/push_back onto a
    `std::vector<std::thread>` — must construct an
    `affinity::ScopedDomain("<domain>")` with a string literal lexically
    inside the spawn statement, so the thread's domain is declared at
    birth. An unannotated spawn FAILS the analysis. (Tests are exempt:
    undeclared threads run in the implicit "client" domain.)
  * AFFINE_TO DECLARATIONS: COUCHKV_AFFINE_TO("what", "domain") and raw
    `affinity::Affine member{"what", "domain"}` members are collected; a
    declaration naming a domain no spawn site ever adopts is an error
    (the checker could never pass).
  * GUARDED_BY METADATA: lock-class declarations and their GUARDED_BY
    field counts are recovered (via lock_order.py's parsers) to enrich
    the inventory — a removable lock with many guarded fields is a bigger
    prize than a trivial one.

With --runtime-dump (an affinity JSON dump, or a directory of them from
COUCHKV_AFFINITY_DUMP_DIR; repeat to merge several runs) it cross-checks
declarations against observation:

  * an AFFINE_TO checker whose dump record shows accesses from any domain
    other than its declared one, or any recorded violation, FAILS;
  * a checker declared in source but never exercised at runtime is a
    COVERAGE GAP (non-fatal — the work list for the behavioral tests);
  * a domain declared at a spawn site but never seen running is a
    coverage gap too.

--inventory FILE writes the LOCK-REMOVAL INVENTORY as JSON (and
--inventory-md FILE as a markdown table, committed in DESIGN.md
"Execution domains & thread model"): every lock class classified from the
merged runtime evidence as

  single-domain   all acquisitions from one domain        -> remove the lock
  single-writer   >1 domains, but <=1 takes it exclusive  -> seqlock/RCU
  multi-domain    contended across domains                -> shard / message-passing
  unobserved      never acquired in the dump              -> coverage gap

--self-test runs the analyzer against the seeded fixtures in
scripts/analysis/testdata/ (an unannotated spawn that MUST fail, a
violating dump that MUST fail, a clean tree+dump that MUST pass) and
exits non-zero if the analyzer itself has gone blind.
"""

import argparse
import json
import os
import re
import sys
from collections import defaultdict

import lock_order

# The execution domains the codebase declares today (see the inventory in
# src/common/affinity.h). "client" is implicit: any thread that never
# constructs a ScopedDomain. The analyzer does NOT hardcode spawn sites —
# it discovers them — but a spawn adopting a domain outside this list is
# an error, so a typo'd domain name cannot silently fork the namespace.
KNOWN_DOMAINS = {
    "main",
    "client",
    "thread_pool.worker",
    "net.accept",
    "net.conn",
    "storage.flusher",
    "dcp.producer",
    "cluster.health",
}

SCOPED_DOMAIN_RE = re.compile(
    r'\bScopedDomain\s+\w+\s*[({]\s*"([^"]+)"\s*[)}]')

AFFINE_MACRO_RE = re.compile(
    r'COUCHKV_AFFINE_TO\(\s*"([^"]+)"\s*,\s*"([^"]+)"\s*\)')

# Raw member form used when one class needs two checkers (the macro owns
# the fixed affine_checker_ slot): affinity::Affine name{"what", "domain"};
AFFINE_MEMBER_RE = re.compile(
    r'\b(?:affinity::)?Affine\s+\w+\s*\{\s*"([^"]+)"\s*,\s*"([^"]+)"\s*\}')

# std::thread member declaration (header side of a ctor-initializer spawn)
THREAD_MEMBER_RE = re.compile(r'\bstd::thread\s+(\w+)\s*;')

# std::vector<std::thread> variable (spawned into via emplace/push_back)
THREAD_VEC_RE = re.compile(r'\bstd::vector<\s*std::thread\s*>\s+(\w+)\s*;')

GUARDED_BY_RE = re.compile(r'\bGUARDED_BY\(([^)]*)\)')


def capture_statement(text, start):
    """Returns text[start:] up to the ';' that closes the statement
    containing the spawn expression — tracking (), {}, and string literals
    so lambda bodies with semicolons do not end the capture early."""
    depth = 0
    i = start
    in_str = None
    while i < len(text):
        c = text[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
        elif c in "\"'":
            in_str = c
        elif c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
            # Ctor-initializer spawns (`: thread_([..]{..}) {`) have no ';'
            # of their own: the capture ends when the spawn's parens close.
            if depth <= 0:
                return text[start:i + 1]
        elif c == ";" and depth <= 0:
            return text[start:i + 1]
        i += 1
    return text[start:]


class AffinityAnalysis:
    def __init__(self):
        self.spawns = []          # (file, line, kind, statement, domain|None)
        self.affine = {}          # what -> (domain, file, line)
        self.errors = []
        self.notes = []
        # merged runtime evidence
        self.dump_domains = {}    # name -> threads
        self.dump_locks = defaultdict(lambda: defaultdict(lambda: [0, 0]))
        #   class -> domain -> [exclusive, shared]
        self.dump_affine = {}     # what -> {declared, asserts, violations,
        #                                    observed:set}


def find_spawn_sites(an, files, root):
    """Collects every spawn site with its captured statement text and the
    ScopedDomain literal inside it (None when unannotated)."""
    # Pass 1: names of std::thread members and vector<std::thread> vars,
    # per h/cc scope pair (lock_order.scope_key), so pass 2 can recognize
    # ctor-initializer and emplace_back spawns by variable name.
    thread_members = defaultdict(set)   # scope_key -> {member names}
    thread_vectors = defaultdict(set)   # scope_key -> {vector names}
    texts = {}
    for path in files:
        r = lock_order.rel(path, root)
        text = lock_order.strip_comments(
            open(path, encoding="utf-8", errors="replace").read())
        texts[path] = text
        sk = lock_order.scope_key(r)
        for m in THREAD_MEMBER_RE.finditer(text):
            thread_members[sk].add(m.group(1))
        for m in THREAD_VEC_RE.finditer(text):
            thread_vectors[sk].add(m.group(1))

    for path in files:
        r = lock_order.rel(path, root)
        text = texts[path]
        sk = lock_order.scope_key(r)
        sites = []  # (pos, kind)
        for m in re.finditer(r'\bstd::thread\s*\(', text):
            sites.append((m.start(), "std::thread(...)"))
        # Declaration-form spawn: `std::thread t(<callable>...)` /
        # `std::thread t{...}` (a bare `std::thread t;` declares no thread
        # of execution and is not a spawn).
        for m in re.finditer(r'\bstd::thread\s+\w+\s*[({]', text):
            sites.append((m.start(), "std::thread <var>(...)"))
        for name in thread_members[sk]:
            # Ctor-initializer spawn: `name([..] { ... })` where name is a
            # std::thread member and the argument starts a lambda.
            for m in re.finditer(r'\b' + re.escape(name) + r'\s*\(\s*\[',
                                 text):
                sites.append((m.start(), f"{name}(<lambda>)"))
        for name in thread_vectors[sk]:
            for m in re.finditer(
                    r'\b' + re.escape(name) +
                    r'\s*\.\s*(?:emplace_back|push_back)\s*\(', text):
                sites.append((m.start(), f"{name}.emplace_back"))
        seen = set()
        for pos, kind in sorted(sites):
            if pos in seen:
                continue
            seen.add(pos)
            stmt = capture_statement(text, pos)
            # `std::thread(...)` sites inside a member/vector spawn
            # statement would double-report; keep the outermost capture.
            line = text[:pos].count("\n") + 1
            dm = SCOPED_DOMAIN_RE.search(stmt)
            domain = dm.group(1) if dm else None
            an.spawns.append((r, line, kind, stmt, domain))

    # Deduplicate nested captures: a `x = std::thread([..]{..});` statement
    # matches both the member-name site and the std::thread( site.
    uniq = {}
    for (r, line, kind, stmt, domain) in an.spawns:
        key = (r, line)
        if key not in uniq or domain is not None:
            uniq[key] = (r, line, kind, stmt, domain)
    an.spawns = sorted(uniq.values())

    for (r, line, kind, stmt, domain) in an.spawns:
        if domain is None:
            an.errors.append(
                f"{r}:{line}: thread spawn ({kind}) with no "
                f'affinity::ScopedDomain("<domain>") inside the spawn '
                f"statement — every thread must declare its execution "
                f"domain at birth (see src/common/affinity.h)")
        elif domain not in KNOWN_DOMAINS:
            an.errors.append(
                f'{r}:{line}: spawn adopts unknown domain "{domain}" — '
                f"add it to the inventory in src/common/affinity.h and to "
                f"KNOWN_DOMAINS in this script, or fix the typo")


def find_affine_decls(an, files, root):
    for path in files:
        r = lock_order.rel(path, root)
        text = lock_order.strip_comments(
            open(path, encoding="utf-8", errors="replace").read())
        for regex in (AFFINE_MACRO_RE, AFFINE_MEMBER_RE):
            for m in regex.finditer(text):
                what, domain = m.group(1), m.group(2)
                line = text[:m.start()].count("\n") + 1
                prev = an.affine.get(what)
                if prev and prev[0] != domain:
                    an.errors.append(
                        f'{r}:{line}: AFFINE_TO "{what}" declared to '
                        f'"{domain}" but {prev[1]}:{prev[2]} declares it '
                        f'to "{prev[0]}" — one what, one domain')
                    continue
                an.affine.setdefault(what, (domain, r, line))
                if domain not in KNOWN_DOMAINS:
                    an.errors.append(
                        f'{r}:{line}: AFFINE_TO "{what}" names unknown '
                        f'domain "{domain}"')


def count_guarded_fields(files, root):
    """Returns lock-class name -> number of GUARDED_BY fields, resolved
    through lock_order's declaration parser (variable -> class)."""
    lo = lock_order.Analysis()
    lock_order.parse_declarations(lo, files, root)
    lo.errors = []  # unnamed-mutex policing is lock_order's job, not ours
    counts = defaultdict(int)
    for path in files:
        r = lock_order.rel(path, root)
        text = lock_order.strip_comments(
            open(path, encoding="utf-8", errors="replace").read())
        for m in GUARDED_BY_RE.finditer(text):
            cls = lock_order.resolve_var(lo, r, m.group(1).strip())
            if cls:
                counts[cls] += 1
    return lo, counts


def load_dumps(an, dump_paths):
    paths = []
    for dump_path in dump_paths:
        if os.path.isdir(dump_path):
            found = [os.path.join(dump_path, f)
                     for f in sorted(os.listdir(dump_path))
                     if f.endswith(".json")]
            if not found:
                an.errors.append(
                    f"--runtime-dump {dump_path}: no JSON files found")
            paths.extend(found)
        else:
            paths.append(dump_path)
    if not paths:
        an.errors.append("--runtime-dump: no JSON files found")
        return
    for p in paths:
        try:
            d = json.load(open(p, encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            an.errors.append(f"--runtime-dump {p}: {e}")
            continue
        for dom in d.get("domains", []):
            an.dump_domains[dom["name"]] = (
                an.dump_domains.get(dom["name"], 0) + dom.get("threads", 0))
        for lk in d.get("locks", []):
            for dom in lk.get("domains", []):
                cell = an.dump_locks[lk["class"]][dom["domain"]]
                cell[0] += dom.get("exclusive", 0)
                cell[1] += dom.get("shared", 0)
        for rec in d.get("affine", []):
            merged = an.dump_affine.setdefault(
                rec["what"], {"declared": rec.get("declared"),
                              "asserts": 0, "violations": 0,
                              "observed": set()})
            merged["asserts"] += rec.get("asserts", 0)
            merged["violations"] += rec.get("violations", 0)
            merged["observed"].update(rec.get("observed", []))


def cross_check(an, out):
    """Declared vs observed. Violations and undeclared-observed domains are
    fatal; declared-but-unexercised is the (non-fatal) coverage work list."""
    gaps = []
    for what, (domain, r, line) in sorted(an.affine.items()):
        rec = an.dump_affine.get(what)
        if rec is None or (rec["asserts"] == 0 and rec["violations"] == 0):
            gaps.append(f'  AFFINE_TO "{what}" ({r}:{line}) never '
                        f"exercised at runtime")
            continue
        if rec["violations"] > 0:
            an.errors.append(
                f'AFFINE_TO "{what}" ({r}:{line}): {rec["violations"]} '
                f"wrong-domain access(es) recorded in the runtime dump")
        undeclared = rec["observed"] - {domain}
        if undeclared:
            an.errors.append(
                f'AFFINE_TO "{what}" ({r}:{line}): declared affine to '
                f'"{domain}" but the dump observed accesses from '
                f"{sorted(undeclared)}")
    for what, rec in sorted(an.dump_affine.items()):
        if what not in an.affine and not what.startswith("test."):
            an.notes.append(
                f'runtime dump has checker "{what}" with no source '
                f"declaration (a test fixture, or stale dump)")

    spawned_domains = {d for (_, _, _, _, d) in an.spawns if d}
    for domain in sorted(spawned_domains):
        if domain not in an.dump_domains or an.dump_domains[domain] == 0:
            gaps.append(f'  domain "{domain}" is adopted at a spawn site '
                        f"but no dumped run ever ran a thread in it")

    exercised = len(an.affine) - sum(
        1 for g in gaps if "AFFINE_TO" in g)
    print(f"cross-check vs runtime dump: {exercised}/{len(an.affine)} "
          f"AFFINE_TO checkers exercised, "
          f"{len(an.dump_domains)} domains observed", file=out)
    if gaps:
        print(f"COVERAGE GAPS — {len(gaps)} declared but never exercised "
              f"(add a behavioral test, or drop the declaration):",
              file=out)
        for g in gaps:
            print(g, file=out)


def classify(domains_cells):
    """domains_cells: domain -> [exclusive, shared]. Returns the inventory
    class for one lock."""
    active = {d: c for d, c in domains_cells.items() if c[0] or c[1]}
    if not active:
        return "unobserved"
    if len(active) == 1:
        return "single-domain"
    writers = [d for d, c in active.items() if c[0] > 0]
    if len(writers) <= 1:
        return "single-writer"
    return "multi-domain"


RECOMMENDATION = {
    "single-domain": "remove the lock (thread-per-core: owned state)",
    "single-writer": "seqlock/RCU candidate (one writer, shared readers)",
    "multi-domain": "shard or message-passing to an owning domain",
    "unobserved": "coverage gap — not exercised by the dumped runs",
}


def build_inventory(an, lo, guarded_counts):
    """Joins the statically known lock classes with the merged runtime
    evidence. Classes only the dump knows (test fixtures) are skipped;
    classes only the source knows classify as unobserved."""
    inv = []
    for name, cls in sorted(lo.classes.items()):
        cells = an.dump_locks.get(name, {})
        cat = classify(cells)
        inv.append({
            "class": name,
            "subsystem": cls.subsystem,
            "hot": cls.hot,
            "guarded_fields": guarded_counts.get(name, 0),
            "domains": {
                d: {"exclusive": c[0], "shared": c[1]}
                for d, c in sorted(cells.items()) if c[0] or c[1]},
            "classification": cat,
            "recommendation": RECOMMENDATION[cat],
        })
    return inv


def write_inventory_md(inv, f):
    f.write("<!-- Generated by scripts/analysis/thread_affinity.py "
            "--inventory-md; do not edit by hand. -->\n")
    f.write("| Lock class | Domains (excl/shared acquisitions) | Guarded "
            "fields | Classification | Thread-per-core disposition |\n")
    f.write("|---|---|---:|---|---|\n")
    for e in inv:
        doms = ", ".join(
            f"{d} ({c['exclusive']}/{c['shared']})"
            for d, c in e["domains"].items()) or "—"
        name = f"`{e['class']}`" + (" (hot)" if e["hot"] else "")
        f.write(f"| {name} | {doms} | {e['guarded_fields']} | "
                f"{e['classification']} | {e['recommendation']} |\n")
    counts = defaultdict(int)
    for e in inv:
        counts[e["classification"]] += 1
    f.write("\nTotals: " + ", ".join(
        f"{counts[c]} {c}" for c in ("single-domain", "single-writer",
                                     "multi-domain", "unobserved")
        if counts[c]) + f" — {len(inv)} lock classes.\n")


def run_analysis(roots, dumps=None, inventory=None, inventory_md=None,
                 verbose=False, out=sys.stdout):
    an = AffinityAnalysis()
    files = []
    for root in roots:
        found = lock_order.collect_files(root)
        # Tool sources are .cpp; lock_order.collect_files only takes
        # .h/.cc, so sweep those up here.
        for dirpath, _, names in os.walk(root):
            for f in sorted(names):
                if f.endswith(".cpp"):
                    found.append(os.path.join(dirpath, f))
        if not found:
            print(f"error: no source files under {root}", file=out)
            return 1
        files.append((root, found))

    for root, fs in files:
        find_spawn_sites(an, fs, root)
        find_affine_decls(an, fs, root)

    # Lock metadata comes from the primary (first) root only: tools define
    # no lock classes, and fixture trees are self-contained.
    lo, guarded_counts = count_guarded_fields(files[0][1], files[0][0])

    annotated = sum(1 for s in an.spawns if s[4])
    print(f"thread_affinity: {len(an.spawns)} spawn sites "
          f"({annotated} annotated), {len(an.affine)} AFFINE_TO checkers, "
          f"{len(lo.classes)} lock classes", file=out)
    if verbose:
        for (r, line, kind, _, domain) in an.spawns:
            print(f"  spawn {r}:{line} [{kind}] -> "
                  f"{domain or 'UNDECLARED'}", file=out)
        for what, (domain, r, line) in sorted(an.affine.items()):
            print(f"  affine {what} -> {domain}   ({r}:{line})", file=out)

    if dumps:
        load_dumps(an, dumps)
        cross_check(an, out)

    if inventory or inventory_md:
        if not dumps:
            print("error: --inventory requires --runtime-dump (the "
                  "classification is runtime evidence)", file=out)
            return 1
        inv = build_inventory(an, lo, guarded_counts)
        if inventory:
            with open(inventory, "w", encoding="utf-8") as f:
                json.dump({"locks": inv,
                           "domains": dict(sorted(an.dump_domains.items()))},
                          f, indent=2)
                f.write("\n")
            print(f"wrote {inventory}", file=out)
        if inventory_md:
            with open(inventory_md, "w", encoding="utf-8") as f:
                write_inventory_md(inv, f)
            print(f"wrote {inventory_md}", file=out)
        counts = defaultdict(int)
        for e in inv:
            counts[e["classification"]] += 1
        print("inventory: " + ", ".join(
            f"{n} {c}" for c, n in sorted(counts.items())), file=out)

    for n in an.notes:
        if verbose:
            print(f"note: {n}", file=out)

    if an.errors:
        for e in an.errors:
            print(f"error: {e}", file=out)
        return 1
    print("thread_affinity OK", file=out)
    return 0


def self_test(script_dir):
    """The analyzer must catch the seeded fixtures; if it stops doing so,
    the lint gate is blind and this fails loudly."""
    import io
    td = os.path.join(script_dir, "testdata")
    failures = []

    buf = io.StringIO()
    rc = run_analysis([os.path.join(td, "affinity_clean")],
                      dumps=[os.path.join(td, "affinity_clean",
                                          "dump.affinity.json")], out=buf)
    if rc != 0:
        failures.append("clean fixture: expected success, got:\n" +
                        buf.getvalue())

    buf = io.StringIO()
    rc = run_analysis([os.path.join(td, "affinity_unannotated")], out=buf)
    if rc == 0 or "ScopedDomain" not in buf.getvalue():
        failures.append("unannotated fixture: expected an undeclared-spawn "
                        "failure, got:\n" + buf.getvalue())

    buf = io.StringIO()
    rc = run_analysis([os.path.join(td, "affinity_clean")],
                      dumps=[os.path.join(td, "affinity_violation",
                                          "dump.affinity.json")], out=buf)
    if rc == 0 or "wrong-domain" not in buf.getvalue():
        failures.append("violation-dump fixture: expected a wrong-domain "
                        "failure, got:\n" + buf.getvalue())

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("thread_affinity self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", action="append", metavar="DIR",
                    help="source tree(s) to analyze (default: src tools)")
    ap.add_argument("--runtime-dump", metavar="PATH", action="append",
                    help="affinity JSON dump (--dump-affinity / "
                         "COUCHKV_AFFINITY_DUMP) or a directory of them "
                         "(COUCHKV_AFFINITY_DUMP_DIR); repeat to merge")
    ap.add_argument("--inventory", metavar="FILE",
                    help="write the lock-removal inventory as JSON "
                         "(requires --runtime-dump)")
    ap.add_argument("--inventory-md", metavar="FILE",
                    help="write the inventory as a markdown table "
                         "(requires --runtime-dump)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the analyzer against the seeded fixtures")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(os.path.dirname(os.path.abspath(__file__)))
    return run_analysis(args.root or ["src", "tools"],
                        dumps=args.runtime_dump,
                        inventory=args.inventory,
                        inventory_md=args.inventory_md,
                        verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
