#!/usr/bin/env python3
"""Static lock-order analysis for couchkv (stdlib only — no clang tooling).

The runtime half of lockdep (src/common/lockdep.{h,cc}, -DCOUCHKV_LOCKDEP=ON)
observes the acquisition-order graph tests actually execute. This script is
the static half: it recovers the DECLARED lock hierarchy from the source —

  * lock-class declarations:   Mutex mu_{"cluster.node"};
                               SharedMutex mu_{"views.index"};
    (flags such as lockdep::kHotPath after the name are parsed too)
  * explicit order decls:      COUCHKV_LOCK_ORDER("cluster.node", "kv.hash_table");
  * TSA order attributes:      Mutex file_mu_ ACQUIRED_AFTER(op_mu_){...};
  * guard-acquisition sites:   a LockGuard/UniqueLock/...constructed while
                               another guard is live in an enclosing scope
                               of the same function body
  * REQUIRES(mu) functions that construct a guard on another mutex

— builds the hierarchy DAG, and FAILS on:

  * any cycle in the declared+derived (+observed, when a dump is given) graph
  * unnamed/unregistered Mutex or SharedMutex declarations in src/
  * a lock-owning subsystem with no declared edge (every subsystem must
    state where it sits in the hierarchy)
  * a COUCHKV_LOCK_ORDER naming a lock class that does not exist

With --runtime-dump (a --dump-lock-graph JSON file, or a directory of them
from COUCHKV_LOCKDEP_DUMP_DIR), it cross-checks the declared hierarchy
against the runtime-observed graph: declared edges no test ever exercised
are reported as COVERAGE GAPS (non-fatal — they are the work list for the
torture suites), and observed edges contradicting a declaration fail via
the cycle check on the union graph.

--dot emits a Graphviz graph (subsystem-clustered; solid = declared and
observed, dashed = declared only / coverage gap, dotted = observed only)
— the committed copy lives in DESIGN.md's lock-hierarchy section.

--self-test runs the analyzer against the seeded fixtures in
scripts/analysis/testdata/ (a cycle that MUST fail, an unnamed mutex that
MUST fail, a clean hierarchy that MUST pass) and exits non-zero if the
analyzer itself has gone blind.
"""

import argparse
import json
import os
import re
import sys
from collections import defaultdict

# Files allowed to contain raw/unnamed synchronization state: the wrapper
# itself and the detectors (which must not instrument their own locks —
# the hooks would recurse).
EXEMPT_FILES = {
    "common/synchronization.h",
    "common/lockdep.h",
    "common/lockdep.cc",
    "common/affinity.h",
    "common/affinity.cc",
}

# Declared edges that are POLICY, not nesting any test exercises: they pin a
# class to a position in the hierarchy so future code cannot introduce the
# reverse order, but the forward acquisition deliberately never happens (or
# happens only on cold error paths no torture run visits). The runtime
# cross-check credits them as covered instead of listing them as gaps — a
# gap line is a work item ("write the missing test"), and these have none.
POLICY_EDGES = {
    # logging.stderr is a leaf by fiat: LOG_* may run while holding any
    # lock, and these two pins document the only callers that log under a
    # lock on cold paths (health-probe failures, client reconnects). The
    # happy path never logs there, so no test observes the edge.
    ("cluster.health", "logging.stderr"):
        "leaf-by-fiat: cold error paths log under the lock",
    ("client.wire_client", "logging.stderr"):
        "leaf-by-fiat: cold error paths log under the lock",
    # The query service submits to the shared pool strictly AFTER dropping
    # its own lock (Submit is called lock-free by design); the pin exists
    # so a future refactor cannot invert it into pool -> service.
    ("n1ql.query_service", "thread_pool.pool"):
        "ordering pin: submission is deliberately lock-free",
}

CLASS_NAME_RE = r'[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+'

# Named declaration:  [mutable] [couchkv::]Mutex var [ATTR(...)]{"class"[, flags]};
DECL_RE = re.compile(
    r'\b(?:mutable\s+)?(?:couchkv::)?(Mutex|SharedMutex)\s+(\w+)\s*'
    r'(ACQUIRED_(?:AFTER|BEFORE)\s*\(([^)]*)\)\s*)?'
    r'\{\s*"(' + CLASS_NAME_RE + r')"\s*(?:,\s*([^}]*?))?\}\s*;')

# Unnamed declaration:  [mutable] [couchkv::]Mutex var [ATTR(...)];
UNNAMED_RE = re.compile(
    r'^\s*(?:mutable\s+)?(?:couchkv::)?(Mutex|SharedMutex)\s+(\w+)\s*'
    r'(?:ACQUIRED_(?:AFTER|BEFORE)\s*\([^)]*\)\s*)?;')

ORDER_RE = re.compile(
    r'COUCHKV_LOCK_ORDER\(\s*"(' + CLASS_NAME_RE + r')"\s*,\s*"('
    + CLASS_NAME_RE + r')"\s*\)')

GUARD_RE = re.compile(
    r'\b(LockGuard|WriterLockGuard|ReaderLockGuard|UniqueLock)\s+'
    r'(\w+)\s*[({]\s*([A-Za-z_][\w>.\-]*?)\s*[)}]')

REQUIRES_RE = re.compile(r'\bREQUIRES(?:_SHARED)?\s*\(([^)]*)\)')

UNLOCK_RE = re.compile(r'\b(\w+)\.Unlock\(\)')


class LockClass:
    def __init__(self, name, kind, file, line):
        self.name = name
        self.kind = kind
        self.files = [(file, line)]
        self.hot = False
        self.nestable = False
        self.vars = set()

    @property
    def subsystem(self):
        return self.name.split(".")[0]


class Analysis:
    def __init__(self):
        self.classes = {}               # name -> LockClass
        self.var_to_class = defaultdict(set)  # (scope_key, var) -> {classes}
        self.var_global = defaultdict(set)    # var -> {class names}
        self.declared = {}              # (from, to) -> "file:line  why"
        self.derived = {}               # (from, to) -> "file:line  why"
        self.observed = set()           # (from, to) from runtime dumps
        self.errors = []
        self.notes = []


def scope_key(path):
    """foo/bar.h and foo/bar.cc share one variable-resolution scope."""
    return os.path.splitext(path)[0]


def strip_comments(text):
    text = re.sub(r'/\*.*?\*/', lambda m: re.sub(r'[^\n]', ' ', m.group(0)),
                  text, flags=re.S)
    return re.sub(r'//[^\n]*', '', text)


def rel(path, root):
    return os.path.relpath(path, root)


def collect_files(root):
    out = []
    for dirpath, _, files in os.walk(root):
        for f in sorted(files):
            if f.endswith((".h", ".cc")):
                out.append(os.path.join(dirpath, f))
    return out


def parse_declarations(an, files, root):
    for path in files:
        r = rel(path, root)
        raw = open(path, encoding="utf-8", errors="replace").read()
        text = strip_comments(raw)
        for m in DECL_RE.finditer(text):
            kind, var, _, attr_args, cls_name, flags = m.groups()
            line = text[:m.start()].count("\n") + 1
            cls = an.classes.get(cls_name)
            if cls is None:
                cls = an.classes[cls_name] = LockClass(cls_name, kind, r, line)
            else:
                cls.files.append((r, line))
            cls.vars.add(var)
            if flags:
                if "kHotPath" in flags:
                    cls.hot = True
                if "kNestable" in flags:
                    cls.nestable = True
            an.var_to_class[(scope_key(r), var)].add(cls_name)
            an.var_global[var].add(cls_name)

        if r in EXEMPT_FILES:
            continue
        for i, line_text in enumerate(text.splitlines(), 1):
            um = UNNAMED_RE.match(line_text)
            if um:
                an.errors.append(
                    f"{r}:{i}: unnamed {um.group(1)} '{um.group(2)}' — every "
                    f"mutex in src/ must register a lockdep lock class at its "
                    f"declaration site (e.g. {um.group(1)} {um.group(2)}"
                    f'{{"subsystem.object"}};)')


def resolve_var(an, r, expr):
    """Maps a lock expression ('mu_', 'this->mu_', 's.delivery_mu',
    'conn->mu') to a lock class name, or None. Ambiguity (several classes
    in the same scope reuse the variable name, e.g. 'mu_') resolves to None
    rather than guessing — a wrong guess could fabricate a false cycle."""
    expr = expr.replace("this->", "")
    leaf = re.split(r'\.|->', expr)[-1].strip("&* ")
    scoped = an.var_to_class.get((scope_key(r), leaf), set())
    if len(scoped) == 1:
        return next(iter(scoped))
    if scoped:
        return None  # ambiguous within this scope
    cands = an.var_global.get(leaf, set())
    if len(cands) == 1:
        return next(iter(cands))
    return None


def parse_order_decls(an, files, root):
    for path in files:
        r = rel(path, root)
        text = strip_comments(open(path, encoding="utf-8",
                                   errors="replace").read())
        for m in ORDER_RE.finditer(text):
            a, b = m.group(1), m.group(2)
            line = text[:m.start()].count("\n") + 1
            an.declared.setdefault((a, b),
                                   f"{r}:{line}  COUCHKV_LOCK_ORDER")
        # ACQUIRED_AFTER/BEFORE on named declarations.
        for m in DECL_RE.finditer(text):
            _, _, attr, attr_args, cls_name, _ = m.groups()
            if not attr or not attr_args:
                continue
            line = text[:m.start()].count("\n") + 1
            for arg in attr_args.split(","):
                other = resolve_var(an, r, arg.strip())
                if other is None:
                    an.notes.append(f"{r}:{line}: cannot resolve "
                                    f"'{arg.strip()}' in {attr.split('(')[0]}")
                    continue
                edge = ((other, cls_name) if "AFTER" in attr
                        else (cls_name, other))
                an.declared.setdefault(
                    edge, f"{r}:{line}  {attr.split('(')[0].strip()}")


def parse_guard_nesting(an, files, root):
    """Derives edges from guard constructions nested within one function
    body: RAII guards live to the end of their scope, so a guard constructed
    while another is live in an enclosing (or the same) scope orders the
    outer class before the inner. Manual UniqueLock::Unlock() pops its
    guard. Best-effort: unresolvable lock expressions are skipped."""
    for path in files:
        r = rel(path, root)
        if r in EXEMPT_FILES:
            continue
        text = strip_comments(open(path, encoding="utf-8",
                                   errors="replace").read())
        active = []  # (brace_depth_at_construction, var, class)
        depth = 0
        for i, line_text in enumerate(text.splitlines(), 1):
            # Entering a new top-level scope resets the tracker (function
            # boundary approximation: depth fell to namespace level).
            for um in UNLOCK_RE.finditer(line_text):
                active = [g for g in active if g[1] != um.group(1)]
            for gm in GUARD_RE.finditer(line_text):
                _, var, expr = gm.groups()
                cls = resolve_var(an, r, expr)
                if cls is None:
                    continue
                for _, _, outer_cls in active:
                    if outer_cls != cls:
                        an.derived.setdefault(
                            (outer_cls, cls), f"{r}:{i}  nested guards")
                active.append((depth, var, cls))
            depth += line_text.count("{") - line_text.count("}")
            active = [g for g in active if g[0] < depth or
                      (g[0] == depth and "{" not in line_text)]
    return


def parse_requires_edges(an, files, root):
    """A function annotated REQUIRES(mu) that constructs a guard on another
    mutex declares mu's class before the guarded class."""
    for path in files:
        r = rel(path, root)
        if r in EXEMPT_FILES:
            continue
        text = strip_comments(open(path, encoding="utf-8",
                                   errors="replace").read())
        lines = text.splitlines()
        for i, line_text in enumerate(lines):
            rm = REQUIRES_RE.search(line_text)
            if not rm:
                continue
            held = [resolve_var(an, r, a.strip())
                    for a in rm.group(1).split(",")]
            held = [h for h in held if h]
            if not held:
                continue
            # Scan the function body: from the next '{' to its matching '}'.
            depth = 0
            started = False
            for j in range(i, min(i + 200, len(lines))):
                body_line = lines[j]
                if not started:
                    if "{" in body_line:
                        started = True
                    elif ";" in body_line:
                        break  # declaration only, no body here
                if started:
                    for gm in GUARD_RE.finditer(body_line):
                        cls = resolve_var(an, r, gm.group(3))
                        if cls:
                            for h in held:
                                if h != cls:
                                    an.derived.setdefault(
                                        (h, cls),
                                        f"{r}:{j + 1}  REQUIRES({h}) + guard")
                    depth += body_line.count("{") - body_line.count("}")
                    if depth <= 0:
                        break


def load_runtime_dumps(an, dump_paths):
    """Merges one or more dump files/directories (repeat --runtime-dump to
    combine, e.g., the plain ctest run with the wire-torture run)."""
    if isinstance(dump_paths, str):
        dump_paths = [dump_paths]
    paths = []
    for dump_path in dump_paths:
        if os.path.isdir(dump_path):
            found = [os.path.join(dump_path, f)
                     for f in sorted(os.listdir(dump_path))
                     if f.endswith(".json")]
            if not found:
                an.errors.append(
                    f"--runtime-dump {dump_path}: no JSON files found")
            paths.extend(found)
        else:
            paths.append(dump_path)
    if not paths:
        an.errors.append("--runtime-dump: no JSON files found")
        return
    seen_classes = set()
    for p in paths:
        try:
            d = json.load(open(p, encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            an.errors.append(f"--runtime-dump {p}: {e}")
            continue
        for c in d.get("classes", []):
            seen_classes.add(c["name"])
        for e in d.get("edges", []):
            an.observed.add((e["from"], e["to"]))
    an.runtime_classes = seen_classes


def find_cycle(edges):
    """Returns a list of nodes forming a cycle, or None."""
    adj = defaultdict(list)
    for a, b in edges:
        adj[a].append(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = defaultdict(int)
    parent = {}

    for start in sorted(adj):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(adj[start]))]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(adj[nxt])))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    cycle = [nxt, node]
                    p = node
                    while p != nxt:
                        p = parent[p]
                        cycle.append(p)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # restart loop with next start
    return None


def emit_dot(an, out):
    static_edges = dict(an.declared)
    static_edges.update(an.derived)
    subsystems = defaultdict(list)
    for name, cls in sorted(an.classes.items()):
        subsystems[cls.subsystem].append(cls)
    lines = ["// Generated by scripts/analysis/lock_order.py --dot",
             "// solid = declared+observed, dashed = declared only "
             "(policy edge or coverage gap), dotted = observed only",
             "digraph lock_hierarchy {",
             "  rankdir=TB;",
             '  node [shape=box, fontsize=10];']
    for sub, classes in sorted(subsystems.items()):
        lines.append(f'  subgraph "cluster_{sub}" {{')
        lines.append(f'    label="{sub}"; style=rounded;')
        for cls in classes:
            attrs = ""
            if cls.hot:
                attrs = ' [style=filled, fillcolor="#ffdddd", ' \
                        'xlabel="hot-path"]'
            lines.append(f'    "{cls.name}"{attrs};')
        lines.append("  }")
    # Observed-only edges are drawn only between classes that exist in
    # src/ — test binaries register fixture classes (lockdep_test.*) that
    # would clutter the committed graph. They still count in the cycle
    # check, just not in the rendering.
    all_edges = set(static_edges) | {
        (a, b) for a, b in an.observed
        if a in an.classes and b in an.classes}
    for a, b in sorted(all_edges):
        if (a, b) in static_edges and (a, b) in an.observed:
            style = "solid"
        elif (a, b) in static_edges:
            style = "dashed"
        else:
            style = "dotted"
        lines.append(f'  "{a}" -> "{b}" [style={style}];')
    lines.append("}")
    out.write("\n".join(lines) + "\n")


def run_analysis(root, dump=None, dot=None, verbose=False,
                 require_subsystem_edges=True, out=sys.stdout):
    an = Analysis()
    files = collect_files(root)
    if not files:
        print(f"error: no .h/.cc files under {root}", file=out)
        return 1
    parse_declarations(an, files, root)
    parse_order_decls(an, files, root)
    parse_guard_nesting(an, files, root)
    parse_requires_edges(an, files, root)

    # Order declarations must reference real classes.
    for (a, b), where in sorted(an.declared.items()):
        for name in (a, b):
            if name not in an.classes:
                an.errors.append(
                    f"{where}: lock order references unknown lock class "
                    f'"{name}" (no Mutex/SharedMutex declares it)')

    # A policy edge must shadow a real declaration: a stale entry here would
    # silently credit coverage for an edge nobody declares anymore. Skipped
    # for fixture trees (require_subsystem_edges=False), which declare none
    # of the real edges.
    if require_subsystem_edges:
        for (a, b) in sorted(POLICY_EDGES):
            if (a, b) not in an.declared:
                an.errors.append(
                    f'POLICY_EDGES entry "{a}" -> "{b}" matches no declared '
                    f"edge (remove the stale policy entry)")

    if dump:
        load_runtime_dumps(an, dump)

    static_edges = dict(an.declared)
    for e, why in an.derived.items():
        static_edges.setdefault(e, why)

    # The DAG property is checked over everything we know: declarations,
    # derivations, and (when given) the runtime-observed edges. A declared
    # edge contradicted by an observed one closes a cycle here.
    cycle = find_cycle(set(static_edges) | an.observed)
    if cycle:
        chain = " -> ".join(f'"{c}"' for c in cycle)
        detail = []
        for a, b in zip(cycle, cycle[1:]):
            why = static_edges.get((a, b))
            src = why if why else ("runtime dump" if (a, b) in an.observed
                                   else "?")
            detail.append(f'    "{a}" -> "{b}"   ({src})')
        an.errors.append("lock-order CYCLE (potential deadlock):\n  " +
                         chain + "\n" + "\n".join(detail))

    # Every lock-owning subsystem must place itself in the hierarchy.
    if require_subsystem_edges:
        sub_edges = defaultdict(int)
        for a, b in an.declared:
            if a in an.classes:
                sub_edges[an.classes[a].subsystem] += 1
            if b in an.classes:
                sub_edges[an.classes[b].subsystem] += 1
        for sub in sorted({c.subsystem for c in an.classes.values()}):
            if sub_edges[sub] == 0:
                an.errors.append(
                    f"subsystem '{sub}' owns lock classes but declares no "
                    f"order edge (add a COUCHKV_LOCK_ORDER placing it in "
                    f"the hierarchy)")

    # --- Report -------------------------------------------------------------
    print(f"lock_order: {len(an.classes)} lock classes in "
          f"{len({c.subsystem for c in an.classes.values()})} subsystems, "
          f"{len(an.declared)} declared + "
          f"{len(set(static_edges) - set(an.declared))} derived edges"
          + (f", {len(an.observed)} runtime-observed edges" if dump else ""),
          file=out)

    if verbose:
        for (a, b), why in sorted(static_edges.items()):
            mark = "declared" if (a, b) in an.declared else "derived "
            print(f"  [{mark}] {a} -> {b}   ({why})", file=out)

    if dump:
        covered = an.observed | {e for e in POLICY_EDGES if e in an.declared}
        gaps = sorted(e for e in an.declared if e not in covered)
        policy_credited = sorted(e for e in an.declared
                                 if e in POLICY_EDGES and e not in an.observed)
        extra = sorted(an.observed - set(static_edges))
        per_sub = defaultdict(lambda: [0, 0])
        for (a, b) in an.declared:
            for name in (a, b):
                if name in an.classes:
                    s = an.classes[name].subsystem
                    per_sub[s][0] += 1
                    if (a, b) in covered:
                        per_sub[s][1] += 1
        print("cross-check vs runtime dump (declared edges observed, "
              "per subsystem):", file=out)
        for sub in sorted(per_sub):
            d, o = per_sub[sub]
            print(f"  {sub:12s} {o}/{d} declared edges exercised", file=out)
        if policy_credited:
            print(f"policy edges — {len(policy_credited)} declared edges "
                  f"credited without a runtime observation (see "
                  f"POLICY_EDGES for why each needs no test):", file=out)
            for a, b in policy_credited:
                print(f"  {a} -> {b}   ({POLICY_EDGES[(a, b)]})", file=out)
        if gaps:
            print(f"COVERAGE GAPS — {len(gaps)} declared edges never "
                  f"observed at runtime (add a test that exercises the "
                  f"nesting, or delete a stale declaration):", file=out)
            for a, b in gaps:
                print(f"  {a} -> {b}   ({an.declared[(a, b)]})", file=out)
        if extra and verbose:
            print(f"note: {len(extra)} observed edges have no static "
                  f"declaration (derived coverage is best-effort):",
                  file=out)
            for a, b in extra:
                print(f"  {a} -> {b}", file=out)

    for n in an.notes:
        if verbose:
            print(f"note: {n}", file=out)

    if dot:
        with open(dot, "w", encoding="utf-8") as f:
            emit_dot(an, f)
        print(f"wrote {dot}", file=out)

    if an.errors:
        for e in an.errors:
            print(f"error: {e}", file=out)
        return 1
    print("lock_order OK", file=out)
    return 0


def self_test(script_dir):
    """The analyzer must catch the seeded fixtures; if it stops doing so,
    the lint gate is blind and this fails loudly."""
    import io
    td = os.path.join(script_dir, "testdata")
    failures = []

    buf = io.StringIO()
    rc = run_analysis(os.path.join(td, "cycle"),
                      require_subsystem_edges=False, out=buf)
    if rc == 0 or "CYCLE" not in buf.getvalue():
        failures.append("cycle fixture: expected a lock-order cycle failure, "
                        "got:\n" + buf.getvalue())

    buf = io.StringIO()
    rc = run_analysis(os.path.join(td, "unnamed"),
                      require_subsystem_edges=False, out=buf)
    if rc == 0 or "unnamed" not in buf.getvalue():
        failures.append("unnamed fixture: expected an unnamed-mutex failure, "
                        "got:\n" + buf.getvalue())

    buf = io.StringIO()
    rc = run_analysis(os.path.join(td, "clean"),
                      require_subsystem_edges=False, out=buf)
    if rc != 0:
        failures.append("clean fixture: expected success, got:\n" +
                        buf.getvalue())

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("lock_order self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default="src",
                    help="source tree to analyze (default: src)")
    ap.add_argument("--runtime-dump", metavar="PATH", action="append",
                    help="lock-graph JSON file (--dump-lock-graph / "
                         "COUCHKV_LOCKDEP_DUMP) or a directory of them "
                         "(COUCHKV_LOCKDEP_DUMP_DIR) to cross-check against; "
                         "repeat to merge several runs")
    ap.add_argument("--dot", metavar="FILE",
                    help="write a Graphviz rendering of the hierarchy")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the analyzer against the seeded fixtures")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test(os.path.dirname(os.path.abspath(__file__)))
    return run_analysis(args.root, dump=args.runtime_dump, dot=args.dot,
                        verbose=args.verbose)


if __name__ == "__main__":
    sys.exit(main())
