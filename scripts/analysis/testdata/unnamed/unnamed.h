// Seeded fixture: an unnamed (unregistered) mutex the analyzer MUST reject.
// Exercised by `lock_order.py --self-test`; never compiled.
#pragma once

#include "common/synchronization.h"

namespace fixture {

class Named {
  Mutex mu_{"fix.named"};
};

class Unnamed {
  Mutex mu_;  // no lock class: invisible to lockdep and to the hierarchy
};

COUCHKV_LOCK_ORDER("fix.named", "fix.named2");

class Named2 {
  Mutex mu_{"fix.named2"};
};

}  // namespace fixture
