// Seeded fixture: a consistent, acyclic lock hierarchy that MUST pass —
// declarations, an ACQUIRED_AFTER attribute, and a derived nested-guard
// edge, none of which contradict each other.
// Exercised by `lock_order.py --self-test`; never compiled.
#pragma once

#include "common/synchronization.h"

namespace fixture {

class Top {
 public:
  void Both();

 private:
  Mutex outer_{"fix.outer"};
  Mutex inner_ ACQUIRED_AFTER(outer_){"fix.inner"};
  Mutex leaf_{"fix.leaf", lockdep::kHotPath};
};

COUCHKV_LOCK_ORDER("fix.outer", "fix.inner");
COUCHKV_LOCK_ORDER("fix.inner", "fix.leaf");

inline void Top::Both() {
  LockGuard g1(outer_);
  LockGuard g2(inner_);
  LockGuard g3(leaf_);
}

}  // namespace fixture
