#include "worker.h"

void Worker::Start() {
  thread_ = std::thread([this] {
    couchkv::affinity::ScopedDomain domain("thread_pool.worker");
    Loop();
  });
}

void Worker::Loop() {
  COUCHKV_ASSERT_AFFINE();
  couchkv::LockGuard lock(mu_);
  value_++;
}
