// Clean fixture: an annotated spawn site plus an AFFINE_TO checker whose
// runtime dump (dump.affinity.json) matches the declaration. The analyzer
// MUST pass this tree — if it starts failing, thread_affinity.py has a
// false-positive bug.
#include <thread>

#include "common/affinity.h"
#include "common/synchronization.h"

class Worker {
 public:
  void Start();

 private:
  void Loop();

  COUCHKV_AFFINE_TO("fixture.worker_loop", "thread_pool.worker");
  couchkv::Mutex mu_{"fixture.state"};
  int value_ GUARDED_BY(mu_) = 0;
  std::thread thread_;
};
