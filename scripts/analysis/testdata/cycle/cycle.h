// Seeded fixture: a three-class lock-order CYCLE the analyzer MUST reject.
// Exercised by `lock_order.py --self-test`; never compiled.
#pragma once

#include "common/synchronization.h"

namespace fixture {

class A {
  Mutex mu_{"fix.a"};
};

class B {
  Mutex mu_{"fix.b"};
};

class C {
  SharedMutex mu_{"fix.c"};
};

COUCHKV_LOCK_ORDER("fix.a", "fix.b");
COUCHKV_LOCK_ORDER("fix.b", "fix.c");
COUCHKV_LOCK_ORDER("fix.c", "fix.a");

}  // namespace fixture
