// Must-FAIL fixture: a std::thread spawn with no ScopedDomain inside the
// spawn statement. The analyzer MUST report an undeclared-spawn error — if
// this tree ever passes, the spawn-site discipline check has gone blind.
#include <thread>

void Run() {
  std::thread t([] {
    // no ScopedDomain: this thread's execution domain is undeclared
  });
  t.join();
}
