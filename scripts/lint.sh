#!/usr/bin/env bash
# Repo lint gate, run by CI and usable locally: scripts/lint.sh
#
# 1. Lock-discipline source check: src/ must use the annotated types from
#    common/synchronization.h (couchkv::Mutex, LockGuard, CondVar, ...)
#    instead of the naked std primitives, so Clang Thread Safety Analysis
#    sees every acquisition. synchronization.h itself is the one allowed
#    wrapper over the std types.
# 2. Swallowed-error check: [[nodiscard]] + -Werror=unused-result make
#    dropping a Status/StatusOr a compile error; the one sanctioned escape
#    hatch is `(void)call(...)` with an adjacent `// justified:` comment.
#    Any unjustified (void)-discarded call in src/ fails the lint.
# 3. Optional clang-format check (runs only when clang-format is installed).
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. No naked std synchronization primitives in src/ ---------------------
banned='std::mutex|std::shared_mutex|std::recursive_mutex|std::timed_mutex'
banned+='|std::lock_guard|std::unique_lock|std::shared_lock|std::scoped_lock'
banned+='|std::condition_variable'

# lockdep.cc and affinity.cc are also exempt: the detectors cannot use the
# instrumented wrappers for their own internal locks (the hooks would
# recurse into themselves).
matches=$(grep -rnE "$banned" src/ \
    --include='*.h' --include='*.cc' \
    | grep -v 'src/common/synchronization.h' \
    | grep -v 'src/common/lockdep.cc' \
    | grep -v 'src/common/affinity.cc' || true)
if [[ -n "$matches" ]]; then
  echo "error: naked std synchronization primitives in src/ — use the" >&2
  echo "annotated types from common/synchronization.h instead:" >&2
  echo "$matches" >&2
  fail=1
fi

# --- 2. NO_THREAD_SAFETY_ANALYSIS must carry a justification ----------------
# The escape hatch is allowed only with an adjacent comment explaining why
# the analysis cannot see the invariant (grep for a comment on the same or
# the preceding line).
while IFS=: read -r file line _; do
  [[ "$file" == src/common/synchronization.h ]] && continue
  prev=$((line - 1))
  context=$(sed -n "${prev},${line}p" "$file")
  if ! grep -q '//' <<<"$context"; then
    echo "error: $file:$line uses NO_THREAD_SAFETY_ANALYSIS without a" >&2
    echo "justifying comment on the same or preceding line" >&2
    fail=1
  fi
done < <(grep -rn 'NO_THREAD_SAFETY_ANALYSIS' src/ \
    --include='*.h' --include='*.cc' \
    | grep -v 'src/common/synchronization.h' || true)

# --- 3. (void)-discarded calls must carry a '// justified:' comment ---------
# Matches `(void)` followed by a call (an opening paren before the line
# ends); plain `(void)identifier;` unused-parameter silencing is not a
# discard and is not flagged. static_cast<void>(...) is banned outright —
# use the greppable `(void)` form so this check can see every discard.
while IFS=: read -r file line _; do
  # Accept the tag on the discard line itself or anywhere in the contiguous
  # block of // comment lines immediately above it.
  first=$((line - 8))
  [[ $first -lt 1 ]] && first=1
  context=$(sed -n "${first},${line}p" "$file" | tac \
      | awk 'NR==1 {print; next} /^[[:space:]]*\/\// {print; next} {exit}')
  if ! grep -q '// justified:' <<<"$context"; then
    echo "error: $file:$line discards a call result with (void) but has no" >&2
    echo "'// justified:' comment on the line or the comment block above it" >&2
    echo "(error-path discipline: see DESIGN.md \"No silent drops\")" >&2
    fail=1
  fi
done < <(grep -rnE '\(void\)[^;"]*\(' src/ \
    --include='*.h' --include='*.cc' || true)

matches=$(grep -rnE 'static_cast<void>' src/ \
    --include='*.h' --include='*.cc' || true)
if [[ -n "$matches" ]]; then
  echo "error: static_cast<void> discard in src/ — spell deliberate" >&2
  echo "discards as '(void)expr; // justified: ...' instead:" >&2
  echo "$matches" >&2
  fail=1
fi

# --- 4. Every wire opcode must register a stats counter ---------------------
# TcpServer derives its per-opcode counter names ("wire.ops.<NAME>") from
# IsKnownOpcode + OpcodeName, both switch statements in wire.cc. An opcode
# added to the enum without both cases silently lands in ops.UNKNOWN, so a
# new opcode must appear in at least two `case Opcode::k<Name>:` labels in
# wire.cc (the IsKnownOpcode membership and the OpcodeName name).
while IFS= read -r op; do
  count=$(grep -cE "case Opcode::${op}:" src/net/wire/wire.cc || true)
  if [[ "$count" -lt 2 ]]; then
    echo "error: wire opcode ${op} is declared in wire.h but appears in" >&2
    echo "only ${count} 'case Opcode::${op}:' label(s) in wire.cc — it must" >&2
    echo "be in both IsKnownOpcode and OpcodeName so the per-opcode wire" >&2
    echo "stats counter (wire.ops.<NAME>) gets registered" >&2
    fail=1
  fi
done < <(sed -n '/^enum class Opcode/,/^};/p' src/net/wire/wire.h \
    | grep -oE '^  k[A-Za-z0-9]+' | tr -d ' ')

# --- 5. clang-format (advisory locally, enforced in CI) ---------------------
if command -v clang-format >/dev/null 2>&1; then
  unformatted=()
  while IFS= read -r f; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
      unformatted+=("$f")
    fi
  done < <(git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'tests/*.h' \
      'tools/*.cpp' 'tests/harness/*.cc' 'tests/harness/*.h')
  if [[ ${#unformatted[@]} -gt 0 ]]; then
    echo "error: files not clang-format clean:" >&2
    printf '  %s\n' "${unformatted[@]}" >&2
    fail=1
  fi
else
  echo "note: clang-format not installed; skipping format check"
fi

# --- 6. Determinism: no ambient randomness or wall-clock in src/ ------------
# Torture tests replay seeded schedules; a stray rand()/random_device makes
# a failure unreproducible, and system_clock::now() ties behavior to wall
# time (use common/clock.h's injectable clock). sleep_for couples logic to
# the scheduler — the sanctioned uses (injected latency, retry backoff)
# carry a '// justified:' comment on the line or the comment block above.
nondet='\brand\(\)|std::random_device|system_clock::now'
nondet+='|this_thread::sleep_for'
while IFS=: read -r file line _; do
  first=$((line - 8))
  [[ $first -lt 1 ]] && first=1
  context=$(sed -n "${first},${line}p" "$file" | tac \
      | awk 'NR==1 {print; next} /^[[:space:]]*\/\// {print; next} {exit}')
  if ! grep -q '// justified:' <<<"$context"; then
    echo "error: $file:$line uses a nondeterminism source (rand()/" >&2
    echo "std::random_device/system_clock::now/sleep_for) without a" >&2
    echo "'// justified:' comment — use common/random.h (seeded) or" >&2
    echo "common/clock.h (injectable) so torture runs stay replayable" >&2
    fail=1
  fi
done < <(grep -rnE "$nondet" src/ \
    --include='*.h' --include='*.cc' || true)

# --- 7. Static lock-order analysis ------------------------------------------
# scripts/analysis/lock_order.py rebuilds the declared lock hierarchy from
# the lock-class names, COUCHKV_LOCK_ORDER decls, and TSA attributes, and
# fails on cycles, unnamed mutexes, or a subsystem missing from the
# hierarchy. --self-test first proves the analyzer still catches its
# seeded fixtures (a blind analyzer passes everything).
if command -v python3 >/dev/null 2>&1; then
  if ! python3 scripts/analysis/lock_order.py --self-test >/dev/null; then
    echo "error: lock_order.py --self-test failed (analyzer is broken)" >&2
    fail=1
  elif ! python3 scripts/analysis/lock_order.py --root src; then
    fail=1
  fi
else
  echo "note: python3 not installed; skipping lock-order analysis"
fi

# --- 8. Static execution-domain (thread-affinity) analysis -------------------
# scripts/analysis/thread_affinity.py enforces spawn-site discipline (every
# std::thread in src/ and tools/ declares its execution domain via a
# ScopedDomain inside the spawn statement) and validates COUCHKV_AFFINE_TO
# declarations. Same self-test-first pattern as the lock-order gate.
if command -v python3 >/dev/null 2>&1; then
  if ! python3 scripts/analysis/thread_affinity.py --self-test >/dev/null; then
    echo "error: thread_affinity.py --self-test failed (analyzer is broken)" >&2
    fail=1
  elif ! python3 scripts/analysis/thread_affinity.py; then
    fail=1
  fi
else
  echo "note: python3 not installed; skipping thread-affinity analysis"
fi

if [[ $fail -eq 0 ]]; then
  echo "lint OK"
fi
exit $fail
