#!/usr/bin/env python3
"""Render the run_wire_sweep.sh output as a table and gnuplot-ready data.

Reads every BENCH_wire_sweep_n<N>_c<C>.json in the given directory and
writes:

  wire_sweep.txt   human-readable table (also printed to stdout)
  wire_sweep.dat   gnuplot data: one indexed block per node count, rows
                   "<threads> <ops_s> <client_p99_us> <server_p99_us>"
  wire_sweep.png   throughput-vs-connections plot, one curve per node
                   count (only when gnuplot is installed; stdlib-only
                   otherwise)

The client p99 is the loadgen-measured read latency; the server p99 is
the server-reported in-process duration carried back in the framed
response extras, so (client - server) at a glance is network + queueing.
"""
import glob
import json
import os
import re
import shutil
import subprocess
import sys


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    points = {}  # (nodes, threads) -> row dict
    for path in glob.glob(os.path.join(out_dir, "BENCH_wire_sweep_*.json")):
        m = re.search(r"BENCH_wire_sweep_n(\d+)_c(\d+)\.json$", path)
        if not m:
            continue
        with open(path) as f:
            doc = json.load(f)
        rows = doc.get("rows", [])
        if rows:
            points[(int(m.group(1)), int(m.group(2)))] = rows[0]
    if not points:
        print("plot_wire_sweep: no BENCH_wire_sweep_*.json in", out_dir)
        return 1

    def p99(row, section):
        return float(row.get(section, {}).get("p99_us", 0.0))

    header = (f"{'nodes':>5} {'conns':>5} {'ops/s':>10} "
              f"{'cli_p99_us':>10} {'srv_p99_us':>10} {'net_p99_us':>10}")
    lines = [header, "-" * len(header)]
    nodes_list = sorted({n for n, _ in points})
    dat_blocks = []
    for nodes in nodes_list:
        block = [f'# nodes={nodes}']
        for (n, threads) in sorted(points):
            if n != nodes:
                continue
            row = points[(n, threads)]
            ops = float(row.get("achieved_ops_s", 0.0))
            cli, srv, net = p99(row, "read"), p99(row, "read_server"), \
                p99(row, "read_net")
            lines.append(f"{nodes:>5} {threads:>5} {ops:>10.0f} "
                         f"{cli:>10.1f} {srv:>10.1f} {net:>10.1f}")
        for (n, threads) in sorted(points):
            if n == nodes:
                row = points[(n, threads)]
                block.append(f"{threads} {row.get('achieved_ops_s', 0.0):.1f} "
                             f"{p99(row, 'read'):.1f} "
                             f"{p99(row, 'read_server'):.1f}")
        dat_blocks.append("\n".join(block))

    table = "\n".join(lines) + "\n"
    print(table, end="")
    with open(os.path.join(out_dir, "wire_sweep.txt"), "w") as f:
        f.write(table)
    dat_path = os.path.join(out_dir, "wire_sweep.dat")
    with open(dat_path, "w") as f:
        f.write("\n\n\n".join(dat_blocks) + "\n")

    if shutil.which("gnuplot"):
        png = os.path.join(out_dir, "wire_sweep.png")
        curves = ", ".join(
            f"'{dat_path}' index {i} using 1:2 with linespoints "
            f"title 'nodes={n}'" for i, n in enumerate(nodes_list))
        script = (f"set terminal png size 900,600\nset output '{png}'\n"
                  "set title 'wire throughput vs client connections'\n"
                  "set xlabel 'loadgen threads (connections per node)'\n"
                  "set ylabel 'ops/s'\nset key left top\nset grid\n"
                  f"plot {curves}\n")
        subprocess.run(["gnuplot"], input=script.encode(), check=True)
        print("plot_wire_sweep: wrote", png)
    else:
        print("plot_wire_sweep: gnuplot not installed; wrote table + .dat only")
    return 0


if __name__ == "__main__":
    sys.exit(main())
