// Per-operation trace spans. A Span stamps an operation's phase boundaries
// (dispatch -> cache -> disk -> replication ack, etc.) against the monotonic
// clock, records total latency into an optional Histogram, and logs a phase
// breakdown for any op slower than the slow-op threshold.
//
// Spans live on the stack, hold only raw pointers and fixed arrays (no
// allocation), and all phase labels must be string literals (the span stores
// the pointers, not copies).
#ifndef COUCHKV_STATS_TRACE_H_
#define COUCHKV_STATS_TRACE_H_

#include <cstdint>

#include "common/histogram.h"

namespace couchkv::trace {

// Slow-op threshold in microseconds. Initialised once from the
// COUCHKV_SLOW_OP_US environment variable (default 100000 = 100ms);
// overridable at runtime for tests. 0 disables slow-op logging.
uint64_t SlowOpThresholdUs();
void SetSlowOpThresholdUs(uint64_t us);

// The distributed trace context that rides wire frames (the 16-byte framed
// extra): which end-to-end operation this work belongs to. trace_id 0 means
// "no trace" everywhere.
struct TraceContext {
  uint64_t trace_id = 0;
  uint32_t parent_span_id = 0;
  uint32_t flags = 0;

  bool valid() const { return trace_id != 0; }
};

// Process-wide span-id source (never returns 0).
uint32_t NextSpanId();

// The ambient trace for the calling thread: what a server handler installs
// before diving into the engine so that nested spans and outbound
// SocketTransport hops can tag themselves without threading a context
// parameter through every KV signature. Zero-valued when no trace is active.
TraceContext CurrentTrace();

// RAII installer for the thread-local ambient trace; restores the previous
// context on destruction, so nested scopes (a server handler that itself
// issues traced calls) unwind correctly.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceContext& ctx);
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace();

 private:
  TraceContext prev_;
};

class Span {
 public:
  // `op` must be a string literal (e.g. "kv.set"). `latency` may be null.
  explicit Span(const char* op, Histogram* latency = nullptr);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Finish(); }

  // Marks the end of the phase that just ran; `name` must be a string
  // literal. At most kMaxPhases phases are kept; extras are dropped.
  void Phase(const char* name);

  // Records total latency and emits the slow-op log line if over threshold.
  // Idempotent; called by the destructor if not called explicitly.
  void Finish();

  uint64_t elapsed_nanos() const;

  // The ambient trace id captured at construction (0 = untraced). Slow-op
  // WARN lines carry it so a server-side stall can be joined to the wire
  // trace that suffered it.
  uint64_t trace_id() const { return trace_id_; }

 private:
  static constexpr int kMaxPhases = 8;

  const char* op_;
  Histogram* latency_;
  uint64_t trace_id_;
  uint64_t start_;
  uint64_t finished_ = 0;  // 0 = still open
  int num_phases_ = 0;
  const char* phase_names_[kMaxPhases];
  uint64_t phase_end_[kMaxPhases];
};

}  // namespace couchkv::trace

#endif  // COUCHKV_STATS_TRACE_H_
