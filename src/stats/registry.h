// Process-wide observability registry (paper §3.1.2: the cluster manager and
// admin UI continuously poll per-node memcached STATS to drive rebalance,
// compaction, and ejection decisions; this is that monitoring channel).
//
// Shape: the Registry indexes named Scopes ("node.0", "node.0.bucket.b",
// "transport", "n1ql", ...). A Scope owns named Counters, Gauges, and
// Histograms. Components resolve their metrics ONCE at construction (under
// the scope's mutex) and keep raw pointers; every hot-path update is then a
// single relaxed atomic add — no locks, no allocation, no lookup.
//
// Lifecycle: a Scope is kept alive by shared_ptr. Dropping a scope from the
// registry (bucket deleted, node crashed) removes it from exposition, while
// in-flight operations still holding the scope keep the metric storage valid
// until they let go.
#ifndef COUCHKV_STATS_REGISTRY_H_
#define COUCHKV_STATS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/synchronization.h"

namespace couchkv::stats {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time level (queue depth, memory, backlog); may go down.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// One scraped metric value. Histograms carry a full snapshot so percentiles
// can be computed (and deltas subtracted) downstream.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  HistogramSnapshot hist;
};

// Scraped metrics: full dotted name ("<scope>.<metric>") -> value. std::map
// keeps exposition deterministic.
using Snapshot = std::map<std::string, MetricValue>;

// A named group of metrics. Create via Registry::GetScope for registered
// (scraped) scopes, or construct standalone for tests / private use.
class Scope {
 public:
  explicit Scope(std::string name) : name_(std::move(name)) {}

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  const std::string& name() const { return name_; }

  // Create-on-first-use; the returned pointer stays valid for the scope's
  // lifetime. Call once at setup, not per operation.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Appends this scope's metrics to `out` as "<scope>.<metric>". When
  // `group` is non-empty, only metrics matching it are included (see
  // MatchesGroup).
  void Collect(Snapshot* out, std::string_view group = {}) const;

 private:
  const std::string name_;
  mutable Mutex mu_{"stats.scope"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every component registers with.
  static Registry& Global();

  // Returns the named scope, creating (and registering) it if absent.
  std::shared_ptr<Scope> GetScope(const std::string& name);
  // Removes the scope from exposition. Holders of the shared_ptr keep the
  // metric storage alive; a re-created scope starts from zero.
  void DropScope(const std::string& name);
  bool HasScope(const std::string& name) const;

  // Scrapes every registered scope (optionally group-filtered).
  Snapshot Collect(std::string_view group = {}) const;

  // Compact human-readable "name=value" dump of Collect(), histograms as
  // their Summary() line. Zero-valued counters are omitted for brevity.
  std::string DebugString(std::string_view group = {}) const;

 private:
  mutable Mutex mu_{"stats.registry"};
  COUCHKV_LOCK_ORDER("cluster.topology", "stats.registry");
  std::map<std::string, std::shared_ptr<Scope>> scopes_ GUARDED_BY(mu_);
};

// True when `name` belongs to stats group `group`: the group appears as a
// leading dot-separated segment sequence somewhere in the name. Examples:
// MatchesGroup("node.0.bucket.b.kv.ops_get", "kv") and
// MatchesGroup("transport.node.0.sent", "transport") are both true.
bool MatchesGroup(std::string_view name, std::string_view group);

// Interval between two scrapes: counters and histograms subtract (clamped at
// zero), gauges keep their `after` value. Metrics only present in `after`
// (scope created mid-interval) pass through unchanged.
Snapshot Delta(const Snapshot& before, const Snapshot& after);

// --- Exposition ---
// One flat JSON object; histograms become {"count":..,"sum":..,"mean_us":..,
// "p50_us":..,"p95_us":..,"p99_us":..} sub-objects.
std::string ToJson(const Snapshot& snapshot);
// Prometheus text format: counters/gauges as-is, histograms as summaries
// with quantile labels. Dots in metric names become underscores, prefixed
// "couchkv_".
std::string ToPrometheusText(const Snapshot& snapshot);
// The DebugString formatting for an already-scraped snapshot.
std::string DebugString(const Snapshot& snapshot, bool skip_zero = true);

}  // namespace couchkv::stats

#endif  // COUCHKV_STATS_REGISTRY_H_
