#include "stats/registry.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace couchkv::stats {

namespace {

template <typename Map, typename Factory>
auto* GetOrCreate(Map& map, std::string_view name, Factory&& factory) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), factory()).first;
  }
  return it->second.get();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string SanitizeForPrometheus(std::string_view name) {
  std::string out = "couchkv_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

Counter* Scope::GetCounter(std::string_view name) {
  LockGuard lock(mu_);
  return GetOrCreate(counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge* Scope::GetGauge(std::string_view name) {
  LockGuard lock(mu_);
  return GetOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* Scope::GetHistogram(std::string_view name) {
  LockGuard lock(mu_);
  return GetOrCreate(histograms_, name,
                     [] { return std::make_unique<Histogram>(); });
}

void Scope::Collect(Snapshot* out, std::string_view group) const {
  LockGuard lock(mu_);
  auto emit = [&](const std::string& metric) -> MetricValue* {
    std::string full = name_.empty() ? metric : name_ + "." + metric;
    if (!group.empty() && !MatchesGroup(full, group)) return nullptr;
    return &(*out)[std::move(full)];
  };
  for (const auto& [metric, c] : counters_) {
    if (MetricValue* v = emit(metric)) {
      v->kind = MetricValue::Kind::kCounter;
      v->counter = c->Value();
    }
  }
  for (const auto& [metric, g] : gauges_) {
    if (MetricValue* v = emit(metric)) {
      v->kind = MetricValue::Kind::kGauge;
      v->gauge = g->Value();
    }
  }
  for (const auto& [metric, h] : histograms_) {
    if (MetricValue* v = emit(metric)) {
      v->kind = MetricValue::Kind::kHistogram;
      v->hist = h->Snapshot();
    }
  }
}

Registry& Registry::Global() {
  static Registry* g = new Registry();  // leaked: outlives static destructors
  return *g;
}

std::shared_ptr<Scope> Registry::GetScope(const std::string& name) {
  LockGuard lock(mu_);
  auto it = scopes_.find(name);
  if (it == scopes_.end()) {
    it = scopes_.emplace(name, std::make_shared<Scope>(name)).first;
  }
  return it->second;
}

void Registry::DropScope(const std::string& name) {
  LockGuard lock(mu_);
  scopes_.erase(name);
}

bool Registry::HasScope(const std::string& name) const {
  LockGuard lock(mu_);
  return scopes_.count(name) > 0;
}

Snapshot Registry::Collect(std::string_view group) const {
  // Copy the scope index first so scrapes never hold the registry lock while
  // walking (and locking) individual scopes.
  std::vector<std::shared_ptr<Scope>> scopes;
  {
    LockGuard lock(mu_);
    scopes.reserve(scopes_.size());
    for (const auto& [_, s] : scopes_) scopes.push_back(s);
  }
  Snapshot out;
  for (const auto& s : scopes) s->Collect(&out, group);
  return out;
}

std::string Registry::DebugString(std::string_view group) const {
  return stats::DebugString(Collect(group));
}

bool MatchesGroup(std::string_view name, std::string_view group) {
  if (group.empty()) return true;
  // Match group as a whole dot-delimited segment sequence anywhere in name.
  size_t pos = 0;
  while (pos <= name.size()) {
    size_t hit = name.find(group, pos);
    if (hit == std::string_view::npos) return false;
    bool left_ok = hit == 0 || name[hit - 1] == '.';
    size_t end = hit + group.size();
    bool right_ok = end == name.size() || name[end] == '.';
    if (left_ok && right_ok) return true;
    pos = hit + 1;
  }
  return false;
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  for (const auto& [name, a] : after) {
    MetricValue v = a;
    auto it = before.find(name);
    if (it != before.end()) {
      const MetricValue& b = it->second;
      switch (v.kind) {
        case MetricValue::Kind::kCounter:
          v.counter = v.counter >= b.counter ? v.counter - b.counter : 0;
          break;
        case MetricValue::Kind::kGauge:
          break;  // gauges are levels: keep the latest value
        case MetricValue::Kind::kHistogram:
          v.hist.Subtract(b.hist);
          break;
      }
    }
    out.emplace(name, std::move(v));
  }
  return out;
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snapshot) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        AppendF(&out, "%" PRIu64, v.counter);
        break;
      case MetricValue::Kind::kGauge:
        AppendF(&out, "%" PRId64, v.gauge);
        break;
      case MetricValue::Kind::kHistogram:
        AppendF(&out,
                "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                ",\"mean_us\":%.1f,\"p50_us\":%.1f,\"p95_us\":%.1f,"
                "\"p99_us\":%.1f}",
                v.hist.count, v.hist.sum, v.hist.Mean() / 1e3,
                static_cast<double>(v.hist.Percentile(0.50)) / 1e3,
                static_cast<double>(v.hist.Percentile(0.95)) / 1e3,
                static_cast<double>(v.hist.Percentile(0.99)) / 1e3);
        break;
    }
  }
  out += "}";
  return out;
}

std::string ToPrometheusText(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot) {
    std::string prom = SanitizeForPrometheus(name);
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        AppendF(&out, "# TYPE %s counter\n%s %" PRIu64 "\n", prom.c_str(),
                prom.c_str(), v.counter);
        break;
      case MetricValue::Kind::kGauge:
        AppendF(&out, "# TYPE %s gauge\n%s %" PRId64 "\n", prom.c_str(),
                prom.c_str(), v.gauge);
        break;
      case MetricValue::Kind::kHistogram: {
        AppendF(&out, "# TYPE %s summary\n", prom.c_str());
        for (double q : {0.50, 0.95, 0.99}) {
          AppendF(&out, "%s{quantile=\"%.2f\"} %" PRIu64 "\n", prom.c_str(), q,
                  v.hist.Percentile(q));
        }
        AppendF(&out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                prom.c_str(), v.hist.sum, prom.c_str(), v.hist.count);
        break;
      }
    }
  }
  return out;
}

std::string DebugString(const Snapshot& snapshot, bool skip_zero) {
  std::string out;
  for (const auto& [name, v] : snapshot) {
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        if (skip_zero && v.counter == 0) continue;
        AppendF(&out, "%s=%" PRIu64 "\n", name.c_str(), v.counter);
        break;
      case MetricValue::Kind::kGauge:
        if (skip_zero && v.gauge == 0) continue;
        AppendF(&out, "%s=%" PRId64 "\n", name.c_str(), v.gauge);
        break;
      case MetricValue::Kind::kHistogram:
        if (skip_zero && v.hist.count == 0) continue;
        AppendF(&out, "%s: %s\n", name.c_str(), v.hist.Summary().c_str());
        break;
    }
  }
  return out;
}

}  // namespace couchkv::stats
