#include "stats/flight_recorder.h"

#include <algorithm>

namespace couchkv::stats {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  LockGuard lock(mu_);
  ring_.reserve(capacity_);
  inflight_.reserve(kMaxInflight);
}

uint64_t FlightRecorder::BeginOp(uint8_t opcode, uint16_t vbucket,
                                 uint64_t trace_id, uint64_t start_nanos) {
  LockGuard lock(mu_);
  if (inflight_.size() >= kMaxInflight) return 0;
  InflightOp op;
  op.token = next_token_++;
  op.trace_id = trace_id;
  op.start_nanos = start_nanos;
  op.vbucket = vbucket;
  op.opcode = opcode;
  inflight_.push_back(op);
  return op.token;
}

void FlightRecorder::EndOp(uint64_t token) {
  if (token == 0) return;
  LockGuard lock(mu_);
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (it->token == token) {
      inflight_.erase(it);
      return;
    }
  }
}

void FlightRecorder::Record(const OpRecord& r) {
  LockGuard lock(mu_);
  OpRecord stamped = r;
  stamped.seq = ++completed_total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[next_slot_] = stamped;
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

void FlightRecorder::Clear() {
  LockGuard lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  inflight_.clear();
  // completed_total_ and next_token_ keep counting: seq stays monotonic
  // across a crash/boot cycle, which makes "records from before the crash"
  // visibly absent rather than renumbered.
}

std::vector<OpRecord> FlightRecorder::Completed() const {
  LockGuard lock(mu_);
  std::vector<OpRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_slot_ points at the oldest record once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_slot_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_slot_));
  }
  return out;
}

std::vector<FlightRecorder::InflightOp> FlightRecorder::Inflight() const {
  LockGuard lock(mu_);
  return inflight_;
}

namespace {

void AppendRecordJson(const OpRecord& r, std::string* out) {
  out->append("{\"seq\":");
  out->append(std::to_string(r.seq));
  out->append(",\"trace_id\":\"");
  out->append(std::to_string(r.trace_id));
  out->append("\",\"opcode\":");
  out->append(std::to_string(r.opcode));
  out->append(",\"vbucket\":");
  out->append(std::to_string(r.vbucket));
  out->append(",\"key_hash\":");
  out->append(std::to_string(r.key_hash));
  out->append(",\"status\":");
  out->append(std::to_string(r.status));
  out->append(",\"total_us\":");
  out->append(std::to_string(r.total_us));
  out->append(",\"dispatch_us\":");
  out->append(std::to_string(r.dispatch_us));
  out->append(",\"engine_us\":");
  out->append(std::to_string(r.engine_us));
  out->append(",\"replicate_us\":");
  out->append(std::to_string(r.replicate_us));
  out->append(",\"persist_us\":");
  out->append(std::to_string(r.persist_us));
  out->push_back('}');
}

}  // namespace

std::string FlightRecorder::ToJson(uint64_t now_nanos, size_t max_records,
                                   uint64_t trace_id_filter) const {
  std::vector<OpRecord> completed = Completed();
  std::vector<InflightOp> inflight = Inflight();
  if (trace_id_filter != 0) {
    completed.erase(std::remove_if(completed.begin(), completed.end(),
                                   [&](const OpRecord& r) {
                                     return r.trace_id != trace_id_filter;
                                   }),
                    completed.end());
    inflight.erase(std::remove_if(inflight.begin(), inflight.end(),
                                  [&](const InflightOp& op) {
                                    return op.trace_id != trace_id_filter;
                                  }),
                   inflight.end());
  }
  if (max_records > 0 && completed.size() > max_records) {
    completed.erase(completed.begin(),
                    completed.end() - static_cast<long>(max_records));
  }
  std::string out = "{\"completed\":[";
  for (size_t i = 0; i < completed.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendRecordJson(completed[i], &out);
  }
  out.append("],\"inflight\":[");
  for (size_t i = 0; i < inflight.size(); ++i) {
    const InflightOp& op = inflight[i];
    if (i > 0) out.push_back(',');
    out.append("{\"trace_id\":\"");
    out.append(std::to_string(op.trace_id));
    out.append("\",\"opcode\":");
    out.append(std::to_string(op.opcode));
    out.append(",\"vbucket\":");
    out.append(std::to_string(op.vbucket));
    out.append(",\"age_us\":");
    const uint64_t age =
        now_nanos > op.start_nanos ? (now_nanos - op.start_nanos) / 1000 : 0;
    out.append(std::to_string(age));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace couchkv::stats
