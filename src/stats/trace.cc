#include "stats/trace.h"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "common/clock.h"
#include "common/logging.h"

namespace couchkv::trace {

namespace {

std::atomic<uint64_t> g_slow_op_threshold_us{[] {
  const char* env = std::getenv("COUCHKV_SLOW_OP_US");
  if (env != nullptr) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) return static_cast<uint64_t>(v);
  }
  return static_cast<uint64_t>(100'000);  // 100ms
}()};

std::atomic<uint32_t> g_next_span_id{1};

thread_local TraceContext t_current_trace;

}  // namespace

uint32_t NextSpanId() {
  uint32_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? g_next_span_id.fetch_add(1, std::memory_order_relaxed)
                 : id;
}

TraceContext CurrentTrace() { return t_current_trace; }

ScopedTrace::ScopedTrace(const TraceContext& ctx) : prev_(t_current_trace) {
  t_current_trace = ctx;
}

ScopedTrace::~ScopedTrace() { t_current_trace = prev_; }

uint64_t SlowOpThresholdUs() {
  return g_slow_op_threshold_us.load(std::memory_order_relaxed);
}

void SetSlowOpThresholdUs(uint64_t us) {
  g_slow_op_threshold_us.store(us, std::memory_order_relaxed);
}

Span::Span(const char* op, Histogram* latency)
    : op_(op),
      latency_(latency),
      trace_id_(t_current_trace.trace_id),
      start_(Clock::Real()->NowNanos()) {}

void Span::Phase(const char* name) {
  if (num_phases_ >= kMaxPhases) return;
  phase_names_[num_phases_] = name;
  phase_end_[num_phases_] = Clock::Real()->NowNanos();
  ++num_phases_;
}

uint64_t Span::elapsed_nanos() const {
  uint64_t end = finished_ ? finished_ : Clock::Real()->NowNanos();
  return end - start_;
}

void Span::Finish() {
  if (finished_) return;
  finished_ = Clock::Real()->NowNanos();
  uint64_t total = finished_ - start_;
  if (latency_ != nullptr) latency_->Record(total);
  uint64_t threshold_us = SlowOpThresholdUs();
  if (threshold_us != 0 && total >= threshold_us * 1000 &&
      COUCHKV_LOG_ENABLED(kWarn)) {
    std::ostringstream msg;
    msg << "slow op " << op_ << " took " << total / 1000 << "us (threshold "
        << threshold_us << "us)";
    if (trace_id_ != 0) {
      msg << " trace=" << std::hex << trace_id_ << std::dec;
    }
    uint64_t prev = start_;
    for (int i = 0; i < num_phases_; ++i) {
      msg << " " << phase_names_[i] << "=" << (phase_end_[i] - prev) / 1000
          << "us";
      prev = phase_end_[i];
    }
    if (prev != finished_) msg << " rest=" << (finished_ - prev) / 1000 << "us";
    LOG_WARN << msg.str();
  }
}

}  // namespace couchkv::trace
