// A per-node flight recorder: a fixed-size ring of the last N completed wire
// operations (opcode, vbucket, key hash, status, total + per-phase micros,
// trace id) plus a small table of in-flight ops. It answers the question a
// latency histogram cannot: "what exactly were the last ops this node
// served, and where did each one spend its time?" — fetched over the wire by
// OBSERVE_TRACE, appended to torture-failure reports, and dumped alongside
// slow-op WARN logs.
//
// Lock discipline: one Mutex, held only for tiny fixed-size copies (no
// allocation, no I/O under the lock). All durations are supplied by the
// caller from the node's Clock, so a ManualClock test gets bit-identical
// records run after run.
#ifndef COUCHKV_STATS_FLIGHT_RECORDER_H_
#define COUCHKV_STATS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/synchronization.h"

namespace couchkv::stats {

// One completed operation. `seq` is the recorder's own completion index
// (monotonic from 1), assigned under the lock so dump order is total.
struct OpRecord {
  uint64_t seq = 0;
  uint64_t trace_id = 0;
  uint64_t start_nanos = 0;  // node-clock stamp when the op was received
  uint32_t key_hash = 0;     // CRC32 of the key (never the key itself)
  uint32_t total_us = 0;
  uint32_t dispatch_us = 0;
  uint32_t engine_us = 0;
  uint32_t replicate_us = 0;
  uint32_t persist_us = 0;
  uint16_t vbucket = 0;
  uint16_t status = 0;  // wire status
  uint8_t opcode = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kMaxInflight = 64;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Registers an op as in flight; returns a nonzero token for EndOp, or 0
  // when the in-flight table is full (the op is simply not tracked while
  // running — it still gets its completion record).
  uint64_t BeginOp(uint8_t opcode, uint16_t vbucket, uint64_t trace_id,
                   uint64_t start_nanos);
  // Releases the in-flight slot. Token 0 is a no-op.
  void EndOp(uint64_t token);

  // Appends a completed op (stamps r.seq). The oldest record falls off once
  // the ring is full.
  void Record(const OpRecord& r);

  // Forgets everything — a crashed process would have lost its recorder.
  void Clear();

  // Completed records, oldest first.
  std::vector<OpRecord> Completed() const;

  struct InflightOp {
    uint64_t token = 0;
    uint64_t trace_id = 0;
    uint64_t start_nanos = 0;
    uint16_t vbucket = 0;
    uint8_t opcode = 0;
  };
  // Ops currently between BeginOp and EndOp, oldest first.
  std::vector<InflightOp> Inflight() const;

  // JSON dump: {"completed":[...],"inflight":[...]} with numeric opcodes,
  // per-phase micros, and trace ids as decimal strings (u64 does not fit a
  // JSON double). `now_nanos` computes in-flight ages; `max_records` > 0
  // limits the completed list to the newest N; `trace_id_filter` != 0 keeps
  // only entries belonging to that trace.
  std::string ToJson(uint64_t now_nanos, size_t max_records = 0,
                     uint64_t trace_id_filter = 0) const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;

  mutable Mutex mu_{"stats.flight_recorder"};
  std::vector<OpRecord> ring_ GUARDED_BY(mu_);  // size capacity_, circular
  size_t next_slot_ GUARDED_BY(mu_) = 0;
  uint64_t completed_total_ GUARDED_BY(mu_) = 0;
  uint64_t next_token_ GUARDED_BY(mu_) = 1;
  std::vector<InflightOp> inflight_ GUARDED_BY(mu_);
};

}  // namespace couchkv::stats

#endif  // COUCHKV_STATS_FLIGHT_RECORDER_H_
