#include "net/socket_transport.h"

#include "common/lockdep.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "stats/trace.h"

namespace couchkv::net {

namespace {

bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(PortResolver resolver,
                                 Transport* fault_filter, Options opts)
    : resolver_(std::move(resolver)), fault_filter_(fault_filter),
      opts_(opts) {
  scope_ = stats::Registry::Global().GetScope("wire");
  stat_hops_ = scope_->GetCounter("transport.hops");
  stat_hop_failures_ = scope_->GetCounter("transport.hop_failures");
  stat_reconnects_ = scope_->GetCounter("transport.reconnects");
}

SocketTransport::~SocketTransport() { DropConnections(); }

void SocketTransport::DropConnections() {
  std::map<std::pair<Endpoint, uint32_t>, std::shared_ptr<Conn>> conns;
  {
    LockGuard lock(mu_);
    conns.swap(conns_);
  }
  for (auto& [key, conn] : conns) {
    LockGuard lock(conn->mu);
    if (conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

Status SocketTransport::Request(const Endpoint& src, const Endpoint& dst) {
  if (fault_filter_ != nullptr) {
    COUCHKV_RETURN_IF_ERROR(fault_filter_->Request(src, dst));
  }
  // The request leg executes on dst; that is the process whose listener
  // must answer. Legs not aimed at a node (client -> service calls) have no
  // socket to cross and pass through.
  if (!dst.is_node()) return Status::OK();
  return Hop(src, dst.id);
}

Status SocketTransport::Reply(const Endpoint& src, const Endpoint& dst) {
  if (fault_filter_ != nullptr) {
    COUCHKV_RETURN_IF_ERROR(fault_filter_->Reply(src, dst));
  }
  // The reply leg travels back over the same connection the request used
  // (src is often a client with no listener of its own), so the hop target
  // is again the executing node: a node that died between executing the op
  // and replying is detected here, producing the classic ambiguous-outcome
  // failure retry layers must absorb.
  if (!dst.is_node()) return Status::OK();
  return Hop(src, dst.id);
}

Status SocketTransport::Hop(const Endpoint& src, uint32_t node_id) {
  stat_hops_->Add();
  std::shared_ptr<Conn> pinned;
  {
    LockGuard lock(mu_);
    auto& slot = conns_[{src, node_id}];
    if (slot == nullptr) slot = std::make_shared<Conn>();
    pinned = slot;
  }
  Conn* conn = pinned.get();
  LockGuard lock(conn->mu);
  uint16_t port = resolver_ != nullptr ? resolver_(node_id) : 0;
  if (port == 0) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    stat_hop_failures_->Add();
    return Status::TempFail("wire: node " + std::to_string(node_id) +
                            " has no listener");
  }
  // A pooled fd connected to a stale port (the node rebooted onto a fresh
  // ephemeral one) is useless; drop it before trying.
  if (conn->fd >= 0 && conn->port != port) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  bool had_conn = conn->fd >= 0;
  if (!had_conn) {
    Status st = ConnectLocked(conn, port);
    if (!st.ok()) {
      stat_hop_failures_->Add();
      return st;
    }
  }
  Status st = RoundTrip(conn, node_id);
  if (st.ok() || !had_conn) {
    if (!st.ok()) stat_hop_failures_->Add();
    return st;
  }
  // The pooled connection died under us (listener restarted, peer crashed
  // after we enqueued). One reconnect attempt against the freshly resolved
  // port; a second failure is a real unreachable node.
  ::close(conn->fd);
  conn->fd = -1;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  stat_reconnects_->Add();
  port = resolver_ != nullptr ? resolver_(node_id) : 0;
  if (port == 0) {
    stat_hop_failures_->Add();
    return Status::TempFail("wire: node " + std::to_string(node_id) +
                            " has no listener");
  }
  Status rc = ConnectLocked(conn, port);
  if (!rc.ok()) {
    stat_hop_failures_->Add();
    return rc;
  }
  st = RoundTrip(conn, node_id);
  if (!st.ok()) stat_hop_failures_->Add();
  return st;
}

Status SocketTransport::ConnectLocked(Conn* conn, uint16_t port) {
  lockdep::ScopedBlockingCall blocking("SocketTransport::ConnectLocked");
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::TempFail(std::string("wire: socket: ") +
                            std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(opts_.recv_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((opts_.recv_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::TempFail(std::string("wire: connect 127.0.0.1:") +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  conn->fd = fd;
  conn->port = port;
  return Status::OK();
}

Status SocketTransport::RoundTrip(Conn* conn, uint32_t node_id) {
  lockdep::ScopedBlockingCall blocking("SocketTransport::RoundTrip");
  wire::Message req = wire::Message::Req(wire::Opcode::kNoop);
  req.opaque = next_opaque_.fetch_add(1, std::memory_order_relaxed);
  // When this hop runs under an ambient trace (a server handler working on
  // a traced op, or a traced client call stack), ship the context so the
  // peer's flight recorder tags the hop with the same trace id — cross-node
  // legs join the trace instead of appearing as anonymous NOOPs.
  trace::TraceContext tc = trace::CurrentTrace();
  if (tc.valid()) {
    wire::TraceFrame tf;
    tf.trace_id = tc.trace_id;
    tf.parent_span_id = tc.parent_span_id;
    tf.flags = tc.flags;
    wire::PutTraceFrame(&req.framing, tf);
  }
  std::string bytes;
  COUCHKV_RETURN_IF_ERROR(wire::Encode(req, &bytes));
  if (!SendAll(conn->fd, bytes.data(), bytes.size())) {
    return Status::TempFail("wire: send to node " + std::to_string(node_id) +
                            " failed");
  }
  wire::FrameDecoder decoder(wire::kMagicResponse);
  char buf[4096];
  for (;;) {
    wire::Message resp;
    Status err = Status::OK();
    auto r = decoder.Next(&resp, &err);
    if (r == wire::FrameDecoder::Result::kFrame) {
      if (resp.opaque != req.opaque) {
        return Status::TempFail("wire: response/opaque mismatch from node " +
                                std::to_string(node_id));
      }
      round_trips_.fetch_add(1, std::memory_order_relaxed);
      if (resp.status == wire::kSuccess) return Status::OK();
      // An unhealthy-but-listening node answers its NOOPs with TempFail;
      // propagate whatever the wire said.
      return wire::StatusFromWire(
          resp.status, "wire: node " + std::to_string(node_id) + ": " +
                           resp.value);
    }
    if (r == wire::FrameDecoder::Result::kError) return err;
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::TempFail("wire: node " + std::to_string(node_id) +
                              " timed out");
    }
    if (n <= 0) {
      return Status::TempFail("wire: connection to node " +
                              std::to_string(node_id) + " closed");
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

}  // namespace couchkv::net
