// A per-node TCP front-end speaking the binary wire protocol: accepts
// connections on 127.0.0.1, reads frames through wire::FrameDecoder (so
// partial reads and pipelined multi-op buffers are handled by the pure
// codec), dispatches each request to a handler, and writes the responses
// back in request order.
//
// Port policy: servers bind port 0 (kernel-assigned) unless a caller
// explicitly asks otherwise, and SO_REUSEADDR is deliberately NOT set — a
// double-bind must fail loudly instead of being masked into a latent "two
// listeners, one port" flake (tests assert this).
#ifndef COUCHKV_NET_TCP_SERVER_H_
#define COUCHKV_NET_TCP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/affinity.h"
#include "common/synchronization.h"
#include "net/wire/wire.h"
#include "stats/registry.h"

namespace couchkv::net {

struct TcpServerOptions {
  // 0 = kernel-assigned ephemeral port (the default everywhere; fixed
  // ports collide across parallel test binaries). Read the result from
  // port() after Start().
  uint16_t port = 0;
  int backlog = 128;
  uint32_t max_frame_body = wire::kMaxBodyLen;
  // Clock for request receive stamps (null = Clock::Real()). A node passes
  // its own clock so the handler's phase math and the receive stamp share
  // one time base (deterministic under ManualClock).
  Clock* clock = nullptr;
};

// Per-request server-side context handed to the handler alongside the
// decoded frame.
struct RequestContext {
  // Clock stamp of the recv(2) that completed this frame. For pipelined
  // bursts every frame in the burst shares the stamp of the read that
  // delivered it, so a frame's dispatch phase includes its in-order queueing
  // behind earlier frames on the same connection — real head-of-line time,
  // not just decode cost.
  uint64_t received_nanos = 0;
};

class TcpServer {
 public:
  // Maps one decoded request to its response. Runs on the connection's
  // thread; must be thread-safe across connections.
  using Handler =
      std::function<wire::Message(const wire::Message&, const RequestContext&)>;
  using Options = TcpServerOptions;

  explicit TcpServer(Handler handler, Options opts = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:<opts.port>, listens, and spawns the accept loop.
  // IOError when the port is taken (no SO_REUSEADDR to paper over it).
  Status Start();

  // Closes the listener and every open connection, then joins all threads.
  // Idempotent. In-flight handler calls complete; blocked reads are woken
  // by shutdown(2).
  void Stop();

  // The bound port, valid after a successful Start(); 0 otherwise.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Lifetime totals (exposed for tests; also mirrored into the "wire"
  // stats scope).
  uint64_t connections_accepted() const {
    return accepted_total_.load(std::memory_order_relaxed);
  }
  uint64_t frames_served() const {
    return frames_total_.load(std::memory_order_relaxed);
  }
  uint64_t protocol_errors() const {
    return protocol_errors_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ConnLoop(Conn* conn);
  // Joins and drops finished connections (called from the accept loop so a
  // long-lived server does not accumulate dead thread objects).
  void ReapFinished() EXCLUDES(mu_);

  // The accept loop runs only on the listener thread; each ConnLoop runs
  // only on its connection's thread (one checker per loop — the macro form
  // owns the class's affine_checker_ slot, the second is a named member).
  COUCHKV_AFFINE_TO("net.tcp_server.accept_loop", "net.accept");
  affinity::Affine conn_affine_{"net.tcp_server.conn_loop", "net.conn"};

  Handler handler_;
  Options opts_;

  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Atomic: Stop() retires the fd while AcceptLoop is reading it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;

  Mutex mu_{"net.tcp_server"};
  std::vector<std::unique_ptr<Conn>> conns_ GUARDED_BY(mu_);

  std::atomic<uint64_t> accepted_total_{0};
  std::atomic<uint64_t> frames_total_{0};
  std::atomic<uint64_t> protocol_errors_total_{0};

  // Scope "wire": server-side traffic counters shared by every listener in
  // the process.
  std::shared_ptr<stats::Scope> scope_;
  stats::Counter* stat_accepted_ = nullptr;
  stats::Counter* stat_frames_ = nullptr;
  stats::Counter* stat_protocol_errors_ = nullptr;
  stats::Counter* stat_bytes_in_ = nullptr;
  stats::Counter* stat_bytes_out_ = nullptr;
  // Satellite names for the same byte totals (wire.rx_bytes/tx_bytes) plus
  // one wire.ops.<NAME> counter per opcode, resolved once at construction so
  // the per-frame increment is a single relaxed add. Unknown opcodes share
  // the ops.UNKNOWN slot.
  stats::Counter* stat_rx_bytes_ = nullptr;
  stats::Counter* stat_tx_bytes_ = nullptr;
  stats::Counter* stat_ops_[256] = {};
};

}  // namespace couchkv::net

#endif  // COUCHKV_NET_TCP_SERVER_H_
