#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace couchkv::net {

namespace {

// Writes the whole buffer, absorbing short writes and EINTR. MSG_NOSIGNAL:
// a peer that closed mid-response must surface as EPIPE, not kill the
// process with SIGPIPE.
bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(Handler handler, Options opts)
    : handler_(std::move(handler)), opts_(opts) {
  if (opts_.clock == nullptr) opts_.clock = Clock::Real();
  scope_ = stats::Registry::Global().GetScope("wire");
  stat_accepted_ = scope_->GetCounter("server.connections");
  stat_frames_ = scope_->GetCounter("server.frames");
  stat_protocol_errors_ = scope_->GetCounter("server.protocol_errors");
  stat_bytes_in_ = scope_->GetCounter("server.bytes_in");
  stat_bytes_out_ = scope_->GetCounter("server.bytes_out");
  stat_rx_bytes_ = scope_->GetCounter("rx_bytes");
  stat_tx_bytes_ = scope_->GetCounter("tx_bytes");
  stats::Counter* unknown = scope_->GetCounter("ops.UNKNOWN");
  for (int op = 0; op < 256; ++op) {
    const uint8_t code = static_cast<uint8_t>(op);
    stat_ops_[op] = wire::IsKnownOpcode(code)
                        ? scope_->GetCounter(std::string("ops.") +
                                             wire::OpcodeName(code))
                        : unknown;
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("tcp server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  // Deliberately no SO_REUSEADDR: binding a port that is still claimed must
  // fail here, not produce two listeners racing for accepts (the port-reuse
  // flake class this layer is designed out of). Ephemeral binds (port 0)
  // never contend anyway.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IOError(std::string("bind 127.0.0.1:") +
                                std::to_string(opts_.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, opts_.backlog) != 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  listen_fd_.store(fd, std::memory_order_release);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] {
    affinity::ScopedDomain domain("net.accept");
    AcceptLoop();
  });
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocked accept(2); close() alone does not on all
  // kernels.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    LockGuard lock(mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
  }
  port_.store(0, std::memory_order_release);
}

void TcpServer::ReapFinished() {
  LockGuard lock(mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::AcceptLoop() {
  COUCHKV_ASSERT_AFFINE();
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;  // Stop() retired the listener
    int fd = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop(), or fatal
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_total_.fetch_add(1, std::memory_order_relaxed);
    stat_accepted_->Add();
    ReapFinished();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    {
      LockGuard lock(mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      affinity::ScopedDomain domain("net.conn");
      ConnLoop(raw);
    });
  }
}

void TcpServer::ConnLoop(Conn* conn) {
  conn_affine_.AssertAffine();
  wire::FrameDecoder decoder(wire::kMagicRequest, opts_.max_frame_body);
  char buf[64 << 10];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: peer is gone
    stat_bytes_in_->Add(static_cast<uint64_t>(n));
    stat_rx_bytes_->Add(static_cast<uint64_t>(n));
    RequestContext ctx;
    ctx.received_nanos = opts_.clock->NowNanos();
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    for (;;) {
      wire::Message req;
      Status err = Status::OK();
      auto r = decoder.Next(&req, &err);
      if (r == wire::FrameDecoder::Result::kNeedMore) break;
      if (r == wire::FrameDecoder::Result::kError) {
        // Malformed framing: answer with a protocol error (best effort —
        // we cannot know the intended opaque) and drop the connection;
        // resynchronizing inside a corrupt byte stream is guesswork.
        protocol_errors_total_.fetch_add(1, std::memory_order_relaxed);
        stat_protocol_errors_->Add();
        wire::Message resp;
        resp.magic = wire::kMagicResponse;
        resp.status = wire::WireStatusFor(err.code());
        resp.value = err.ToString();
        std::string bytes;
        if (wire::Encode(resp, &bytes).ok()) {
          // justified: best-effort error report on a connection being
          // closed for a framing violation; the close is the real signal.
          (void)SendAll(conn->fd, bytes.data(), bytes.size());
        }
        alive = false;
        break;
      }
      stat_ops_[req.opcode]->Add();
      wire::Message resp = handler_(req, ctx);
      resp.opaque = req.opaque;  // the handler never re-correlates frames
      frames_total_.fetch_add(1, std::memory_order_relaxed);
      stat_frames_->Add();
      std::string bytes;
      Status enc = wire::Encode(resp, &bytes);
      if (!enc.ok()) {
        LOG_ERROR << "wire: response encode failed: " << enc.ToString();
        alive = false;
        break;
      }
      if (!SendAll(conn->fd, bytes.data(), bytes.size())) {
        alive = false;
        break;
      }
      stat_bytes_out_->Add(bytes.size());
      stat_tx_bytes_->Add(bytes.size());
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace couchkv::net
