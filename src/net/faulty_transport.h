// Deterministic, seedable fault injection for the transport layer: per-link
// message drops, latency distributions, one-way partitions, slow nodes.
// Node crash/restart is orthogonal — the cluster layer owns process state
// (Cluster::CrashNode / RestartNode); this class only decides message fates.
//
// Determinism model: every *directed link* owns an independent RNG stream
// seeded from (seed, src, dst). The fate of the k-th message on a link is a
// pure function of the seed and k, regardless of how traffic on different
// links interleaves across threads. A workload whose per-link message
// sequences are driver-ordered therefore produces an identical fault
// schedule on every run with the same seed — the property the torture
// harness's determinism check asserts via ScheduleFingerprint().
#ifndef COUCHKV_NET_FAULTY_TRANSPORT_H_
#define COUCHKV_NET_FAULTY_TRANSPORT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "net/transport.h"

namespace couchkv::net {

// Fault configuration for one directed link (or a class of links).
struct LinkFaults {
  // Probability that a message on this link is dropped, 0..1. Applied to
  // requests and (via the reverse link) replies independently.
  double drop = 0.0;
  // Injected latency, drawn uniformly from [min, max] microseconds per
  // admitted message. 0/0 = no delay and no RNG draw.
  uint64_t min_latency_us = 0;
  uint64_t max_latency_us = 0;
  // A blocked link delivers nothing until unblocked (one-way partition).
  bool blocked = false;
};

struct TransportStats {
  uint64_t delivered = 0;
  uint64_t dropped = 0;   // lost to the drop probability
  uint64_t blocked = 0;   // refused by a partition
  uint64_t latency_us_total = 0;
};

class FaultyTransport : public Transport {
 public:
  explicit FaultyTransport(uint64_t seed) : seed_(seed) {}

  // --- Fault configuration (precedence: exact link > client-side default >
  // global default; a perfect link is the initial state) ---
  void SetDefaultFaults(const LinkFaults& faults);
  // Applies to every link with a client endpoint on either side. These are
  // the links whose message order the workload driver controls, so faults
  // configured here keep the full schedule deterministic.
  void SetClientFaults(const LinkFaults& faults);
  void SetLinkFaults(const Endpoint& src, const Endpoint& dst,
                     const LinkFaults& faults);

  // --- Partitions ---
  // One-way: messages src -> dst (requests that way, and replies to calls
  // made dst -> src) stop being delivered.
  void Block(const Endpoint& src, const Endpoint& dst);
  void Unblock(const Endpoint& src, const Endpoint& dst);
  // Two-way partition between a pair of endpoints.
  void PartitionPair(const Endpoint& a, const Endpoint& b);
  // Isolates a node from all traffic in both directions.
  void IsolateNode(uint32_t node_id);
  void HealNode(uint32_t node_id);
  // Removes every partition (directed blocks and isolations). Probabilistic
  // faults (drop/latency) remain configured.
  void HealAll();
  // Forgets all fault configuration: back to a perfect network.
  void Reset();

  // A slow node adds a fixed extra delay to every message touching it.
  void SetNodeSlowdown(uint32_t node_id, uint64_t extra_us);

  // --- Transport ---
  Status Request(const Endpoint& src, const Endpoint& dst) override;
  Status Reply(const Endpoint& src, const Endpoint& dst) override;

  // --- Introspection ---
  TransportStats stats() const;
  // Order-independent combination of per-link decision fingerprints: equal
  // across two runs iff every link saw the identical decision sequence.
  uint64_t ScheduleFingerprint() const;
  // Human-readable decision log for one directed link (capped), e.g.
  // "DELIVER", "DROP", "BLOCKED", "DELIVER+120us".
  std::vector<std::string> Schedule(const Endpoint& src,
                                    const Endpoint& dst) const;

  uint64_t seed() const { return seed_; }

 private:
  struct LinkState {
    Rng rng;
    uint64_t fingerprint = 0;
    std::vector<std::string> log;
    explicit LinkState(uint64_t seed) : rng(seed) {}
  };
  using LinkKey = std::pair<Endpoint, Endpoint>;

  // Decides the fate of one message traveling src -> dst. Returns OK or the
  // fault status; sets *sleep_us to any injected latency (applied by the
  // caller outside the lock).
  Status Admit(const Endpoint& src, const Endpoint& dst, uint64_t* sleep_us)
      EXCLUDES(mu_);

  LinkState& StateFor(const LinkKey& key) REQUIRES(mu_);
  const LinkFaults& FaultsFor(const LinkKey& key) const REQUIRES(mu_);
  bool Blocked(const Endpoint& src, const Endpoint& dst) const REQUIRES(mu_);
  void Record(LinkState& state, const std::string& decision) REQUIRES(mu_);

  const uint64_t seed_;

  mutable Mutex mu_{"net.faulty_transport"};
  COUCHKV_LOCK_ORDER("net.faulty_transport", "net.transport_metrics");
  LinkFaults default_faults_ GUARDED_BY(mu_);
  LinkFaults client_faults_ GUARDED_BY(mu_);
  bool have_client_faults_ GUARDED_BY(mu_) = false;
  std::map<LinkKey, LinkFaults> link_faults_ GUARDED_BY(mu_);
  std::set<LinkKey> blocked_links_ GUARDED_BY(mu_);
  std::set<uint32_t> isolated_nodes_ GUARDED_BY(mu_);
  std::map<uint32_t, uint64_t> slow_nodes_ GUARDED_BY(mu_);
  std::map<LinkKey, std::unique_ptr<LinkState>> links_ GUARDED_BY(mu_);
  TransportStats stats_ GUARDED_BY(mu_);
};

}  // namespace couchkv::net

#endif  // COUCHKV_NET_FAULTY_TRANSPORT_H_
