#include "net/transport.h"

#include "net/transport_metrics.h"

namespace couchkv::net {

Status DirectTransport::Request(const Endpoint& src, const Endpoint& dst) {
  TransportMetrics::Instance().OnDelivered(src, dst, 0);
  return Status::OK();
}

Status DirectTransport::Reply(const Endpoint& src, const Endpoint& dst) {
  // The reply leg travels the reverse directed link.
  TransportMetrics::Instance().OnDelivered(dst, src, 0);
  return Status::OK();
}

}  // namespace couchkv::net
