#include "net/transport_metrics.h"

#include <string>

namespace couchkv::net {

TransportMetrics& TransportMetrics::Instance() {
  static TransportMetrics* g = new TransportMetrics();  // leaked: see Registry
  return *g;
}

TransportMetrics::TransportMetrics() {
  scope_ = stats::Registry::Global().GetScope("transport");
  sent_ = scope_->GetCounter("sent");
  delivered_ = scope_->GetCounter("delivered");
  dropped_ = scope_->GetCounter("dropped");
  blocked_ = scope_->GetCounter("blocked");
  injected_latency_us_ = scope_->GetCounter("injected_latency_us");
}

TransportMetrics::NodeCounters* TransportMetrics::SlotFor(const Endpoint& src,
                                                          const Endpoint& dst) {
  // Attribute the message to the node it touches; node-to-node traffic
  // (replication) counts against the destination.
  uint32_t id;
  if (dst.is_node()) {
    id = dst.id;
  } else if (src.is_node()) {
    id = src.id;
  } else {
    return nullptr;
  }
  if (id >= kMaxNodes) return nullptr;
  NodeCounters* slot = slots_[id].load(std::memory_order_acquire);
  if (slot != nullptr) return slot;
  LockGuard lock(publish_mu_);
  slot = slots_[id].load(std::memory_order_acquire);
  if (slot != nullptr) return slot;
  auto* fresh = new NodeCounters();  // leaked with the process-wide scope
  std::string prefix = "node." + std::to_string(id) + ".";
  fresh->sent = scope_->GetCounter(prefix + "sent");
  fresh->delivered = scope_->GetCounter(prefix + "delivered");
  fresh->dropped = scope_->GetCounter(prefix + "dropped");
  slots_[id].store(fresh, std::memory_order_release);
  return fresh;
}

void TransportMetrics::OnDelivered(const Endpoint& src, const Endpoint& dst,
                                   uint64_t latency_us) {
  sent_->Add();
  delivered_->Add();
  if (latency_us > 0) injected_latency_us_->Add(latency_us);
  if (NodeCounters* slot = SlotFor(src, dst)) {
    slot->sent->Add();
    slot->delivered->Add();
  }
}

void TransportMetrics::OnDropped(const Endpoint& src, const Endpoint& dst) {
  sent_->Add();
  dropped_->Add();
  if (NodeCounters* slot = SlotFor(src, dst)) {
    slot->sent->Add();
    slot->dropped->Add();
  }
}

void TransportMetrics::OnBlocked(const Endpoint& src, const Endpoint& dst) {
  sent_->Add();
  blocked_->Add();
  if (NodeCounters* slot = SlotFor(src, dst)) {
    slot->sent->Add();
    slot->dropped->Add();
  }
}

}  // namespace couchkv::net
