// A Transport whose admission legs are real TCP round-trips: every message
// leg admitted for a node crosses the kernel as a framed NOOP to that
// node's wire listener, so "the node is reachable" stops being an
// in-process flag and becomes what it is in production — a connect(2) and a
// request/response on a socket. SmartClient, the torture harness, DCP
// replication and the benches run unmodified on top: a crashed node's
// listener is gone, so its links fail with TempFail exactly like any other
// transient transport fault, and a rebooted node is rediscovered through
// the resolver (its fresh ephemeral port) on the next hop.
//
// An optional fault filter (typically net::FaultyTransport) is consulted
// first on every leg: the filter decides the message's fate with its
// deterministic per-link schedule, and only admitted messages touch the
// socket. That composition lets the seeded partition/crash torture suites
// keep their fault schedules while all surviving traffic flows over real
// connections.
#ifndef COUCHKV_NET_SOCKET_TRANSPORT_H_
#define COUCHKV_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "common/status.h"
#include "common/synchronization.h"
#include "net/transport.h"
#include "net/wire/wire.h"
#include "stats/registry.h"

namespace couchkv::net {

struct SocketTransportOptions {
  // Bound on one NOOP round-trip; a peer that accepts but never answers
  // surfaces as TempFail instead of a hang.
  uint64_t recv_timeout_ms = 5000;
};

class SocketTransport : public Transport {
 public:
  // Maps a node id to its current wire port (0 = no listener: crashed or
  // never started). Queried on every hop, never cached across failures, so
  // a node that rebooted onto a fresh ephemeral port is found again.
  using PortResolver = std::function<uint16_t(uint32_t node_id)>;
  using Options = SocketTransportOptions;

  explicit SocketTransport(PortResolver resolver,
                           Transport* fault_filter = nullptr,
                           Options opts = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Status Request(const Endpoint& src, const Endpoint& dst) override;
  Status Reply(const Endpoint& src, const Endpoint& dst) override;

  // Closes every pooled connection (they re-establish lazily). Tests use
  // this to force the reconnect path.
  void DropConnections();

  // Completed socket round-trips (exposed for tests: proof that traffic
  // actually crossed the wire).
  uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

 private:
  // One pooled connection, keyed by (caller endpoint, node id) so each
  // logical link owns a socket — concurrent callers on different links
  // never serialize on one fd.
  struct Conn {
    Mutex mu{"net.socket_conn"};
    COUCHKV_LOCK_ORDER("net.socket_conn", "cluster.topology");
    int fd GUARDED_BY(mu) = -1;
    uint16_t port GUARDED_BY(mu) = 0;  // port fd was connected to
  };

  // Runs one framed NOOP round-trip src -> node(dst). TempFail on any
  // socket-level failure after one reconnect attempt.
  Status Hop(const Endpoint& src, uint32_t node_id);
  // Sends the NOOP and reads the response on conn (conn->mu held).
  Status RoundTrip(Conn* conn, uint32_t node_id) REQUIRES(conn->mu);
  Status ConnectLocked(Conn* conn, uint16_t port) REQUIRES(conn->mu);

  PortResolver resolver_;
  Transport* fault_filter_;  // may be null; not owned
  Options opts_;

  Mutex mu_{"net.socket_transport"};
  std::map<std::pair<Endpoint, uint32_t>, std::shared_ptr<Conn>> conns_
      GUARDED_BY(mu_);

  std::atomic<uint32_t> next_opaque_{1};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> reconnects_{0};

  // Scope "wire": client-side leg counters.
  std::shared_ptr<stats::Scope> scope_;
  stats::Counter* stat_hops_ = nullptr;
  stats::Counter* stat_hop_failures_ = nullptr;
  stats::Counter* stat_reconnects_ = nullptr;
};

}  // namespace couchkv::net

#endif  // COUCHKV_NET_SOCKET_TRANSPORT_H_
