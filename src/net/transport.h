// The explicit transport layer every cross-node interaction is routed
// through (DESIGN.md: "all cross-node traffic goes through an explicit
// transport layer with injectable latency/failures"). In the real system
// each hop is a TCP connection; here a hop is a function call bracketed by
// two admission decisions — one for the request leg, one for the reply leg —
// so a fault-injecting implementation can drop, delay, or partition traffic
// on any directed link without the caller knowing.
//
// Callers use the typed `Call` helper: a lost request means the operation
// never ran; a lost reply means it ran but the caller cannot know (the
// classic ambiguous-outcome failure smart clients must retry through).
#ifndef COUCHKV_NET_TRANSPORT_H_
#define COUCHKV_NET_TRANSPORT_H_

#include <cstdint>
#include <string>
#include <tuple>

#include "common/status.h"

namespace couchkv::net {

// Well-known service endpoint ids (Endpoint::Service ordinals).
constexpr uint32_t kServiceXdcr = 1;
constexpr uint32_t kServiceGsi = 2;
constexpr uint32_t kServiceQuery = 3;

// A participant in cross-node traffic: a smart client, a server node, or a
// cluster-level service (XDCR shipper, GSI scatter-gather, ...).
struct Endpoint {
  enum class Kind : uint8_t { kClient = 0, kNode = 1, kService = 2 };

  Kind kind = Kind::kClient;
  uint32_t id = 0;

  static Endpoint Client(uint32_t id = 0) { return {Kind::kClient, id}; }
  static Endpoint Node(uint32_t id) { return {Kind::kNode, id}; }
  static Endpoint Service(uint32_t id) { return {Kind::kService, id}; }

  bool is_node() const { return kind == Kind::kNode; }
  bool is_client() const { return kind == Kind::kClient; }

  std::string ToString() const;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    return std::tie(a.kind, a.id) < std::tie(b.kind, b.id);
  }
};

// Admission control for the two legs of a remote call. Implementations
// decide the fate of each message; they never see payloads, so every RPC in
// the system — KV ops, DCP replication deliveries, GSI key versions, XDCR
// shipments — routes through the same two hooks.
class Transport {
 public:
  virtual ~Transport() = default;

  // Fate of the request traveling src -> dst. Non-OK: the request is lost
  // and the operation must not run. Always TempFail-style codes so retry
  // layers treat link faults like any other transient failure.
  virtual Status Request(const Endpoint& src, const Endpoint& dst) = 0;

  // Fate of the reply traveling dst -> src, after the operation ran.
  // Non-OK: the reply is lost; the caller sees failure for an operation
  // that actually executed.
  virtual Status Reply(const Endpoint& src, const Endpoint& dst) = 0;
};

// Today's behaviour: every message is delivered; the only overhead beyond
// the virtual dispatch is the relaxed-atomic send accounting. Installed by
// default in every Cluster.
class DirectTransport : public Transport {
 public:
  Status Request(const Endpoint& src, const Endpoint& dst) override;
  Status Reply(const Endpoint& src, const Endpoint& dst) override;
};

// Routes `op` from src to dst through transport `t`. Returns the op's
// result, or the transport's error when either leg is lost. `op` must
// return Status or StatusOr<T>.
template <typename Fn>
auto Call(Transport* t, const Endpoint& src, const Endpoint& dst, Fn&& op)
    -> decltype(op()) {
  Status sent = t->Request(src, dst);
  if (!sent.ok()) return sent;
  auto result = op();
  Status replied = t->Reply(src, dst);
  if (!replied.ok()) return replied;
  return result;
}

}  // namespace couchkv::net

#endif  // COUCHKV_NET_TRANSPORT_H_
