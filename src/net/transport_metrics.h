// Process-wide transport instrumentation, shared by every Transport
// implementation: totals plus per-node link counters in the registry's
// global "transport" scope. Node::Stats() serves each node its own slice
// ("transport.node.<id>.*"), so STATS shows per-link sends and drops the
// way the paper's monitoring channel shows replication-link health.
#ifndef COUCHKV_NET_TRANSPORT_METRICS_H_
#define COUCHKV_NET_TRANSPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/synchronization.h"
#include "net/transport.h"
#include "stats/registry.h"

namespace couchkv::net {

class TransportMetrics {
 public:
  static TransportMetrics& Instance();

  // One call per admission decision. `latency_us` is the injected delay
  // (FaultyTransport) or 0.
  void OnDelivered(const Endpoint& src, const Endpoint& dst,
                   uint64_t latency_us);
  void OnDropped(const Endpoint& src, const Endpoint& dst);
  void OnBlocked(const Endpoint& src, const Endpoint& dst);

 private:
  // Per-node counters, published once via CAS so the hot path is a single
  // acquire load + relaxed adds (no lock after first touch of a node).
  struct NodeCounters {
    stats::Counter* sent;  // admission attempts touching this node
    stats::Counter* delivered;
    stats::Counter* dropped;  // dropped or blocked
  };
  static constexpr uint32_t kMaxNodes = 64;

  TransportMetrics();
  NodeCounters* SlotFor(const Endpoint& src, const Endpoint& dst);

  std::shared_ptr<stats::Scope> scope_;
  stats::Counter* sent_;
  stats::Counter* delivered_;
  stats::Counter* dropped_;
  stats::Counter* blocked_;
  stats::Counter* injected_latency_us_;
  // Serializes slot publication only; slots_ itself is atomic so readers
  // stay lock-free (the CAS-publish pattern documented above).
  Mutex publish_mu_{"net.transport_metrics"};
  COUCHKV_LOCK_ORDER("net.transport_metrics", "stats.scope");
  std::atomic<NodeCounters*> slots_[kMaxNodes] = {};
};

}  // namespace couchkv::net

#endif  // COUCHKV_NET_TRANSPORT_METRICS_H_
