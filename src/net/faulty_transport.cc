#include "net/faulty_transport.h"

#include <chrono>
#include <thread>

#include "net/transport_metrics.h"

namespace couchkv::net {

namespace {

// How many decisions each link keeps as a readable log. Fingerprints cover
// the full history; the log is for test diagnostics.
constexpr size_t kMaxLogEntries = 8192;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t EndpointHash(const Endpoint& e) {
  return (static_cast<uint64_t>(e.kind) << 32) | e.id;
}

uint64_t LinkSeed(uint64_t seed, const Endpoint& src, const Endpoint& dst) {
  uint64_t h = seed;
  h = Mix(h, EndpointHash(src));
  h = Mix(h, EndpointHash(dst));
  return h;
}

}  // namespace

std::string Endpoint::ToString() const {
  switch (kind) {
    case Kind::kClient:
      return "client:" + std::to_string(id);
    case Kind::kNode:
      return "node:" + std::to_string(id);
    case Kind::kService:
      return "svc:" + std::to_string(id);
  }
  return "?";
}

void FaultyTransport::SetDefaultFaults(const LinkFaults& faults) {
  LockGuard lock(mu_);
  default_faults_ = faults;
}

void FaultyTransport::SetClientFaults(const LinkFaults& faults) {
  LockGuard lock(mu_);
  client_faults_ = faults;
  have_client_faults_ = true;
}

void FaultyTransport::SetLinkFaults(const Endpoint& src, const Endpoint& dst,
                                    const LinkFaults& faults) {
  LockGuard lock(mu_);
  link_faults_[{src, dst}] = faults;
}

void FaultyTransport::Block(const Endpoint& src, const Endpoint& dst) {
  LockGuard lock(mu_);
  blocked_links_.insert({src, dst});
}

void FaultyTransport::Unblock(const Endpoint& src, const Endpoint& dst) {
  LockGuard lock(mu_);
  blocked_links_.erase({src, dst});
}

void FaultyTransport::PartitionPair(const Endpoint& a, const Endpoint& b) {
  LockGuard lock(mu_);
  blocked_links_.insert({a, b});
  blocked_links_.insert({b, a});
}

void FaultyTransport::IsolateNode(uint32_t node_id) {
  LockGuard lock(mu_);
  isolated_nodes_.insert(node_id);
}

void FaultyTransport::HealNode(uint32_t node_id) {
  LockGuard lock(mu_);
  isolated_nodes_.erase(node_id);
}

void FaultyTransport::HealAll() {
  LockGuard lock(mu_);
  blocked_links_.clear();
  isolated_nodes_.clear();
}

void FaultyTransport::Reset() {
  LockGuard lock(mu_);
  blocked_links_.clear();
  isolated_nodes_.clear();
  link_faults_.clear();
  slow_nodes_.clear();
  default_faults_ = {};
  client_faults_ = {};
  have_client_faults_ = false;
}

void FaultyTransport::SetNodeSlowdown(uint32_t node_id, uint64_t extra_us) {
  LockGuard lock(mu_);
  if (extra_us == 0) {
    slow_nodes_.erase(node_id);
  } else {
    slow_nodes_[node_id] = extra_us;
  }
}

FaultyTransport::LinkState& FaultyTransport::StateFor(const LinkKey& key) {
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_
             .emplace(key, std::make_unique<LinkState>(
                               LinkSeed(seed_, key.first, key.second)))
             .first;
  }
  return *it->second;
}

const LinkFaults& FaultyTransport::FaultsFor(const LinkKey& key) const {
  auto it = link_faults_.find(key);
  if (it != link_faults_.end()) return it->second;
  if (have_client_faults_ &&
      (key.first.is_client() || key.second.is_client())) {
    return client_faults_;
  }
  return default_faults_;
}

bool FaultyTransport::Blocked(const Endpoint& src, const Endpoint& dst) const {
  if (blocked_links_.count({src, dst})) return true;
  if (src.is_node() && isolated_nodes_.count(src.id)) return true;
  if (dst.is_node() && isolated_nodes_.count(dst.id)) return true;
  return false;
}

void FaultyTransport::Record(LinkState& state, const std::string& decision) {
  for (char c : decision) {
    state.fingerprint =
        state.fingerprint * 1099511628211ULL + static_cast<uint8_t>(c);
  }
  state.fingerprint = Mix(state.fingerprint, 0xD1CE);
  if (state.log.size() < kMaxLogEntries) state.log.push_back(decision);
}

Status FaultyTransport::Admit(const Endpoint& src, const Endpoint& dst,
                              uint64_t* sleep_us) {
  LockGuard lock(mu_);
  LinkKey key{src, dst};
  LinkState& state = StateFor(key);

  // Partitions are configuration, not chance: they consume no RNG draw, so
  // blocking and healing a link does not perturb its decision stream.
  if (Blocked(src, dst)) {
    ++stats_.blocked;
    Record(state, "BLOCKED");
    TransportMetrics::Instance().OnBlocked(src, dst);
    return Status::TempFail("link blocked: " + src.ToString() + "->" +
                            dst.ToString());
  }

  const LinkFaults& faults = FaultsFor(key);
  if (faults.drop > 0.0 && state.rng.NextDouble() < faults.drop) {
    ++stats_.dropped;
    Record(state, "DROP");
    TransportMetrics::Instance().OnDropped(src, dst);
    return Status::TempFail("message dropped: " + src.ToString() + "->" +
                            dst.ToString());
  }

  uint64_t delay = 0;
  if (faults.max_latency_us > faults.min_latency_us) {
    delay = state.rng.UniformRange(faults.min_latency_us,
                                   faults.max_latency_us);
  } else {
    delay = faults.min_latency_us;
  }
  if (src.is_node()) {
    auto slow = slow_nodes_.find(src.id);
    if (slow != slow_nodes_.end()) delay += slow->second;
  }
  if (dst.is_node()) {
    auto slow = slow_nodes_.find(dst.id);
    if (slow != slow_nodes_.end()) delay += slow->second;
  }

  ++stats_.delivered;
  stats_.latency_us_total += delay;
  Record(state, delay == 0 ? "DELIVER"
                           : "DELIVER+" + std::to_string(delay) + "us");
  TransportMetrics::Instance().OnDelivered(src, dst, delay);
  *sleep_us = delay;
  return Status::OK();
}

Status FaultyTransport::Request(const Endpoint& src, const Endpoint& dst) {
  uint64_t sleep_us = 0;
  Status st = Admit(src, dst, &sleep_us);
  if (sleep_us > 0) {
    // justified: injected link latency — the duration comes from the
    // seeded fault schedule, so the delay itself is deterministic.
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return st;
}

Status FaultyTransport::Reply(const Endpoint& src, const Endpoint& dst) {
  // The reply leg travels the reverse directed link, so a one-way partition
  // dst -> src kills acknowledgements of operations that executed.
  return Request(dst, src);
}

TransportStats FaultyTransport::stats() const {
  LockGuard lock(mu_);
  return stats_;
}

uint64_t FaultyTransport::ScheduleFingerprint() const {
  LockGuard lock(mu_);
  // Summation makes the combination order-independent across links while
  // each term stays order-dependent within its link.
  uint64_t fp = 0;
  for (const auto& [key, state] : links_) {
    fp += Mix(LinkSeed(seed_, key.first, key.second), state->fingerprint);
  }
  return fp;
}

std::vector<std::string> FaultyTransport::Schedule(const Endpoint& src,
                                                   const Endpoint& dst) const {
  LockGuard lock(mu_);
  auto it = links_.find({src, dst});
  if (it == links_.end()) return {};
  return it->second->log;
}

}  // namespace couchkv::net
