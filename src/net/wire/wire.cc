#include "net/wire/wire.h"

#include <cstring>

namespace couchkv::net::wire {

namespace {

void PutU16BE(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v & 0xff));
}

uint16_t GetU16BE(const char* p) {
  return static_cast<uint16_t>((static_cast<uint8_t>(p[0]) << 8) |
                               static_cast<uint8_t>(p[1]));
}

uint32_t GetU32BEUnchecked(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64BEUnchecked(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

}  // namespace

bool IsKnownOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kGet:
    case Opcode::kSet:
    case Opcode::kAdd:
    case Opcode::kReplace:
    case Opcode::kDelete:
    case Opcode::kNoop:
    case Opcode::kStat:
    case Opcode::kTouch:
    case Opcode::kGetLocked:
    case Opcode::kUnlockKey:
    case Opcode::kGetClusterMap:
    case Opcode::kObserveTrace:
      return true;
  }
  return false;
}

const char* OpcodeName(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kGet: return "GET";
    case Opcode::kSet: return "SET";
    case Opcode::kAdd: return "ADD";
    case Opcode::kReplace: return "REPLACE";
    case Opcode::kDelete: return "DELETE";
    case Opcode::kNoop: return "NOOP";
    case Opcode::kStat: return "STAT";
    case Opcode::kTouch: return "TOUCH";
    case Opcode::kGetLocked: return "GETL";
    case Opcode::kUnlockKey: return "UNLOCK";
    case Opcode::kGetClusterMap: return "GET_CLUSTER_MAP";
    case Opcode::kObserveTrace: return "OBSERVE_TRACE";
  }
  return "UNKNOWN";
}

uint16_t WireStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return kSuccess;
    case StatusCode::kNotFound: return kKeyNotFound;
    case StatusCode::kKeyExists: return kKeyExistsErr;
    case StatusCode::kLocked: return kLockedErr;
    case StatusCode::kNotMyVBucket: return kNotMyVBucketErr;
    case StatusCode::kTempFail: return kTempFailErr;
    case StatusCode::kTimeout: return kTimeoutErr;
    case StatusCode::kInvalidArgument: return kInvalidArguments;
    case StatusCode::kParseError: return kParseErrorErr;
    case StatusCode::kPlanError: return kPlanErrorErr;
    case StatusCode::kIOError: return kIOErrorErr;
    case StatusCode::kCorruption: return kCorruptionErr;
    case StatusCode::kUnsupported: return kUnsupportedErr;
    case StatusCode::kAborted: return kAbortedErr;
    case StatusCode::kInternal: return kInternalError;
  }
  return kInternalError;
}

Status StatusFromWire(uint16_t status, std::string message) {
  switch (status) {
    case kSuccess: return Status::OK();
    case kKeyNotFound: return Status::NotFound(std::move(message));
    case kKeyExistsErr: return Status::KeyExists(std::move(message));
    case kLockedErr: return Status::Locked(std::move(message));
    case kNotMyVBucketErr: return Status::NotMyVBucket(std::move(message));
    case kTempFailErr: return Status::TempFail(std::move(message));
    case kTimeoutErr: return Status::Timeout(std::move(message));
    case kInvalidArguments: return Status::InvalidArgument(std::move(message));
    case kParseErrorErr: return Status::ParseError(std::move(message));
    case kPlanErrorErr: return Status::PlanError(std::move(message));
    case kIOErrorErr: return Status::IOError(std::move(message));
    case kCorruptionErr: return Status::Corruption(std::move(message));
    case kUnsupportedErr:
    case kUnknownCommand:
      return Status::Unsupported(std::move(message));
    case kAbortedErr: return Status::Aborted(std::move(message));
    case kNotStored:
    case kInternalError:
    default:
      return Status::Internal(std::move(message));
  }
}

Status Encode(const Message& m, std::string* out) {
  const bool is_response =
      m.magic == kMagicResponse || m.magic == kMagicFlexResponse;
  const bool flex = !m.framing.empty() || m.is_flex();
  if (m.key.size() > UINT16_MAX) {
    return Status::InvalidArgument("wire: key exceeds 64KiB");
  }
  if (m.extras.size() > UINT8_MAX) {
    return Status::InvalidArgument("wire: extras exceed 255 bytes");
  }
  if (flex && m.key.size() > UINT8_MAX) {
    return Status::InvalidArgument("wire: flex frame key exceeds 255 bytes");
  }
  if (m.framing.size() > UINT8_MAX) {
    return Status::InvalidArgument("wire: framing extras exceed 255 bytes");
  }
  uint64_t body =
      m.framing.size() + m.extras.size() + m.key.size() + m.value.size();
  if (body > kMaxBodyLen) {
    return Status::InvalidArgument("wire: body exceeds kMaxBodyLen");
  }
  out->reserve(out->size() + kHeaderSize + body);
  if (flex) {
    out->push_back(static_cast<char>(is_response ? kMagicFlexResponse
                                                 : kMagicFlexRequest));
    out->push_back(static_cast<char>(m.opcode));
    out->push_back(static_cast<char>(m.framing.size()));
    out->push_back(static_cast<char>(m.key.size()));
  } else {
    out->push_back(static_cast<char>(m.magic));
    out->push_back(static_cast<char>(m.opcode));
    PutU16BE(out, static_cast<uint16_t>(m.key.size()));
  }
  out->push_back(static_cast<char>(m.extras.size()));
  out->push_back(0);  // data type
  PutU16BE(out, is_response ? m.status : m.vbucket);
  PutU32BE(out, static_cast<uint32_t>(body));
  PutU32BE(out, m.opaque);
  PutU64BE(out, m.cas);
  out->append(m.framing);
  out->append(m.extras);
  out->append(m.key);
  out->append(m.value);
  return Status::OK();
}

void PutU32BE(std::string* out, uint32_t v) {
  for (int i = 3; i >= 0; --i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64BE(std::string* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU32BE(std::string_view in, size_t offset, uint32_t* v) {
  if (offset + 4 > in.size()) return false;
  *v = GetU32BEUnchecked(in.data() + offset);
  return true;
}

bool GetU64BE(std::string_view in, size_t offset, uint64_t* v) {
  if (offset + 8 > in.size()) return false;
  *v = GetU64BEUnchecked(in.data() + offset);
  return true;
}

void PutMutationExtras(std::string* extras, uint32_t flags, uint32_t expiry) {
  PutU32BE(extras, flags);
  PutU32BE(extras, expiry);
}

bool GetMutationExtras(std::string_view extras, uint32_t* flags,
                       uint32_t* expiry) {
  return extras.size() == 8 && GetU32BE(extras, 0, flags) &&
         GetU32BE(extras, 4, expiry);
}

namespace {

// Scans the TLV stream for `tag`, skipping unknown entries, and points
// `payload` at its bytes. False when absent or the stream is truncated.
bool FindFrameTag(std::string_view framing, uint8_t tag,
                  std::string_view* payload) {
  size_t pos = 0;
  while (pos + 2 <= framing.size()) {
    const uint8_t t = static_cast<uint8_t>(framing[pos]);
    const uint8_t len = static_cast<uint8_t>(framing[pos + 1]);
    if (pos + 2 + len > framing.size()) return false;  // truncated entry
    if (t == tag) {
      *payload = framing.substr(pos + 2, len);
      return true;
    }
    pos += 2 + len;
  }
  return false;
}

void AppendFrameTag(std::string* framing, uint8_t tag,
                    std::string_view payload) {
  framing->push_back(static_cast<char>(tag));
  framing->push_back(static_cast<char>(payload.size()));
  framing->append(payload);
}

}  // namespace

void PutTraceFrame(std::string* framing, const TraceFrame& t) {
  std::string payload;
  PutU64BE(&payload, t.trace_id);
  PutU32BE(&payload, t.parent_span_id);
  PutU32BE(&payload, t.flags);
  AppendFrameTag(framing, kFrameTagTraceContext, payload);
}

bool GetTraceFrame(std::string_view framing, TraceFrame* t) {
  std::string_view p;
  if (!FindFrameTag(framing, kFrameTagTraceContext, &p) || p.size() != 16) {
    return false;
  }
  return GetU64BE(p, 0, &t->trace_id) && GetU32BE(p, 8, &t->parent_span_id) &&
         GetU32BE(p, 12, &t->flags);
}

void PutDurabilityFrame(std::string* framing, const DurabilityFrame& d) {
  std::string payload;
  payload.push_back(static_cast<char>(d.replicate_to));
  payload.push_back(static_cast<char>(d.persist_to));
  PutU32BE(&payload, d.timeout_ms);
  AppendFrameTag(framing, kFrameTagDurability, payload);
}

bool GetDurabilityFrame(std::string_view framing, DurabilityFrame* d) {
  std::string_view p;
  if (!FindFrameTag(framing, kFrameTagDurability, &p) || p.size() != 6) {
    return false;
  }
  d->replicate_to = static_cast<uint8_t>(p[0]);
  d->persist_to = static_cast<uint8_t>(p[1]);
  return GetU32BE(p, 2, &d->timeout_ms);
}

void PutServerDurationFrame(std::string* framing, const ServerDuration& d) {
  std::string payload;
  PutU32BE(&payload, d.total_us);
  PutU32BE(&payload, d.dispatch_us);
  PutU32BE(&payload, d.engine_us);
  PutU32BE(&payload, d.replicate_us);
  PutU32BE(&payload, d.persist_us);
  AppendFrameTag(framing, kFrameTagServerDuration, payload);
}

bool GetServerDurationFrame(std::string_view framing, ServerDuration* d) {
  std::string_view p;
  if (!FindFrameTag(framing, kFrameTagServerDuration, &p) || p.size() != 20) {
    return false;
  }
  return GetU32BE(p, 0, &d->total_us) && GetU32BE(p, 4, &d->dispatch_us) &&
         GetU32BE(p, 8, &d->engine_us) && GetU32BE(p, 12, &d->replicate_us) &&
         GetU32BE(p, 16, &d->persist_us);
}

FrameDecoder::Result FrameDecoder::Next(Message* out, Status* error) {
  if (poisoned_) {
    *error = Status::ParseError("wire: decoder poisoned by earlier error");
    return Result::kError;
  }
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buf_.size() - pos_ < kHeaderSize) return Result::kNeedMore;

  const char* h = buf_.data() + pos_;
  const uint8_t magic = static_cast<uint8_t>(h[0]);
  const uint8_t opcode = static_cast<uint8_t>(h[1]);
  // The flex twin of the expected classic magic is equally welcome; it only
  // changes how bytes 2-3 split into framing/key lengths.
  const uint8_t flex_magic = expected_magic_ == kMagicRequest
                                 ? kMagicFlexRequest
                                 : kMagicFlexResponse;
  const bool flex = magic == flex_magic;
  const uint16_t key_len =
      flex ? static_cast<uint8_t>(h[3]) : GetU16BE(h + 2);
  const uint8_t framing_len = flex ? static_cast<uint8_t>(h[2]) : 0;
  const uint8_t ext_len = static_cast<uint8_t>(h[4]);
  const uint8_t data_type = static_cast<uint8_t>(h[5]);
  const uint16_t vb_or_status = GetU16BE(h + 6);
  const uint32_t body_len = GetU32BEUnchecked(h + 8);
  const uint32_t opaque = GetU32BEUnchecked(h + 12);
  const uint64_t cas = GetU64BEUnchecked(h + 16);

  // Validate everything derivable from the header before waiting for the
  // body: a corrupt length field must not stall the connection (or balloon
  // the buffer) waiting for bytes that will never come.
  if (magic != expected_magic_ && !flex) {
    poisoned_ = true;
    *error = Status::ParseError("wire: bad magic byte");
    return Result::kError;
  }
  if (data_type != 0) {
    poisoned_ = true;
    *error = Status::ParseError("wire: nonzero data type");
    return Result::kError;
  }
  if (body_len > max_body_) {
    poisoned_ = true;
    *error = Status::InvalidArgument("wire: body length exceeds limit");
    return Result::kError;
  }
  if (static_cast<uint32_t>(key_len) + ext_len + framing_len > body_len) {
    poisoned_ = true;
    *error = Status::InvalidArgument("wire: extras+key exceed body length");
    return Result::kError;
  }
  if (buf_.size() - pos_ < kHeaderSize + body_len) return Result::kNeedMore;

  const char* body = h + kHeaderSize;
  out->magic = magic;
  out->opcode = opcode;
  if (expected_magic_ == kMagicResponse) {
    out->status = vb_or_status;
    out->vbucket = 0;
  } else {
    out->vbucket = vb_or_status;
    out->status = 0;
  }
  out->opaque = opaque;
  out->cas = cas;
  out->framing.assign(body, framing_len);
  out->extras.assign(body + framing_len, ext_len);
  out->key.assign(body + framing_len + ext_len, key_len);
  out->value.assign(body + framing_len + ext_len + key_len,
                    body_len - framing_len - ext_len - key_len);
  pos_ += kHeaderSize + body_len;
  return Result::kFrame;
}

}  // namespace couchkv::net::wire
