// The memcached-style binary wire protocol (paper §3.1: the data service
// speaks "the memcached binary protocol" to clients). This module is the
// pure half of the wire stack: byte layout, opcode and status tables, an
// encoder, and an incremental frame decoder. It performs no I/O — buffers
// in, messages out — so every parsing decision is unit-testable and
// fuzzable without a socket (tests/wire_protocol_test.cc,
// tests/wire_malformed_test.cc).
//
// Frame layout (24-byte header, all multi-byte fields big-endian, matching
// memcached's binary protocol):
//
//   offset  size  request            response
//   0       1     magic 0x80         magic 0x81
//   1       1     opcode             opcode (echoed)
//   2       2     key length         key length
//   4       1     extras length      extras length
//   5       1     data type (0)      data type (0)
//   6       2     vbucket id         status
//   8       4     total body length  total body length
//   12      4     opaque             opaque (echoed)
//   16      8     cas                cas
//   24      ...   extras, key, value
//
// total body length = extras length + key length + value length. A decoder
// rejects (never crashes on) any violation: wrong magic, nonzero data type,
// body longer than kMaxBodyLen, or extras+key exceeding the body.
//
// Framed extras (memcached "flexible framing"): the alternative magics 0x08
// (request) / 0x18 (response) re-purpose the header's key-length field:
//
//   offset  size  flex request       flex response
//   2       1     framing extras len framing extras len
//   3       1     key length         key length
//
// and the body becomes framing-extras + extras + key + value. The framing
// area is a sequence of TLV entries (1-byte tag, 1-byte length, payload);
// unknown tags are skipped, so either side may add entries without breaking
// the other — that is the whole point. Classic-magic frames remain valid
// forever: a server answers classic with classic and flex with flex, so an
// old client never sees a magic it does not know.
#ifndef COUCHKV_NET_WIRE_WIRE_H_
#define COUCHKV_NET_WIRE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace couchkv::net::wire {

constexpr uint8_t kMagicRequest = 0x80;
constexpr uint8_t kMagicResponse = 0x81;
// Flexible-framing twins of the classic magics (memcached alt-magic
// numbering). A flex frame carries a framed-extras area before the regular
// extras; everything else is unchanged.
constexpr uint8_t kMagicFlexRequest = 0x08;
constexpr uint8_t kMagicFlexResponse = 0x18;
constexpr size_t kHeaderSize = 24;

// Upper bound on total body length (extras + key + value). Couchbase caps
// values at 20 MiB; anything larger in a header is a protocol error, which
// keeps a malicious length field from making the decoder buffer gigabytes.
constexpr uint32_t kMaxBodyLen = 20u << 20;

// Largest key the protocol admits (memcached's limit).
constexpr size_t kMaxKeyLen = 250;

// Opcodes. Values follow memcached / Couchbase data protocol numbering
// where an equivalent command exists.
enum class Opcode : uint8_t {
  kGet = 0x00,
  kSet = 0x01,
  kAdd = 0x02,
  kReplace = 0x03,
  kDelete = 0x04,
  kNoop = 0x0a,
  kStat = 0x10,
  kTouch = 0x1c,
  kGetLocked = 0x94,   // GETL: pessimistic lock (paper §3.1.1)
  kUnlockKey = 0x95,
  kGetClusterMap = 0xb5,  // vBucket map + node wire ports, JSON body
  kObserveTrace = 0xb6,   // flight-recorder dump, JSON body (key = trace id)
};

bool IsKnownOpcode(uint8_t op);
const char* OpcodeName(uint8_t op);

// Response status codes (the 2-byte field at offset 6). Values follow
// memcached's binary-protocol status table where one exists; the long tail
// of the couchkv Status taxonomy extends it above 0x0086.
enum WireStatus : uint16_t {
  kSuccess = 0x0000,
  kKeyNotFound = 0x0001,
  kKeyExistsErr = 0x0002,
  kInvalidArguments = 0x0004,
  kNotStored = 0x0005,
  kNotMyVBucketErr = 0x0007,
  kLockedErr = 0x0009,
  kUnknownCommand = 0x0081,
  kUnsupportedErr = 0x0083,
  kInternalError = 0x0084,
  kTempFailErr = 0x0086,
  kTimeoutErr = 0x0088,
  kIOErrorErr = 0x0089,
  kCorruptionErr = 0x008a,
  kAbortedErr = 0x008b,
  kParseErrorErr = 0x008c,
  kPlanErrorErr = 0x008d,
};

// Status taxonomy <-> wire status. Every StatusCode has a distinct wire
// value, so StatusFromWire(WireStatusFor(code)) == code — the round-trip
// property tests/wire_protocol_test.cc asserts for the whole enum.
uint16_t WireStatusFor(StatusCode code);
// `message` becomes the Status message (error responses carry the message
// text as their value). Unknown wire values map to kInternal.
Status StatusFromWire(uint16_t status, std::string message);

// One decoded frame, request or response (layout is shared; the magic byte
// selects which interpretation of the field at offset 6 applies).
struct Message {
  uint8_t magic = kMagicRequest;
  uint8_t opcode = 0;
  uint16_t vbucket = 0;  // requests only
  uint16_t status = 0;   // responses only
  uint32_t opaque = 0;
  uint64_t cas = 0;
  // Framed-extras TLV area (see the frame helpers below). Non-empty framing
  // makes Encode emit the flex magic; a decoded classic frame leaves it
  // empty.
  std::string framing;
  std::string extras;
  std::string key;
  std::string value;

  bool is_request() const {
    return magic == kMagicRequest || magic == kMagicFlexRequest;
  }
  bool is_flex() const {
    return magic == kMagicFlexRequest || magic == kMagicFlexResponse;
  }

  static Message Req(Opcode op) {
    Message m;
    m.magic = kMagicRequest;
    m.opcode = static_cast<uint8_t>(op);
    return m;
  }
  static Message Resp(const Message& req, uint16_t st) {
    Message m;
    m.magic = kMagicResponse;
    m.opcode = req.opcode;
    m.status = st;
    m.opaque = req.opaque;
    return m;
  }
};

// Appends the framed message to `out`. InvalidArgument when a field exceeds
// the protocol's limits (key > 64 KiB, extras > 255 B, body > kMaxBodyLen).
// Messages with a non-empty `framing` area are emitted with the flex magic
// (framing > 255 B or key > 255 B is InvalidArgument there — both length
// fields shrink to one byte).
Status Encode(const Message& m, std::string* out);

// --- Framed-extras entries -----------------------------------------------
// Each entry is tag (1 B), payload length (1 B), payload. Readers scan for
// the tag they want and skip everything else, so new tags never break old
// peers.
constexpr uint8_t kFrameTagTraceContext = 0x01;
constexpr uint8_t kFrameTagDurability = 0x02;
constexpr uint8_t kFrameTagServerDuration = 0x03;

// Trace context, 16-byte payload: trace id u64, parent span id u32,
// flags u32. Rides requests; the serving side tags its flight-recorder
// entry (and any onward hops) with the same trace id.
struct TraceFrame {
  uint64_t trace_id = 0;
  uint32_t parent_span_id = 0;
  uint32_t flags = 0;
};

// Durability requirement, 6-byte payload: replicate_to u8, persist_to u8,
// timeout_ms u32. Rides mutation requests; the server blocks the response
// until the requirement holds (or times out), the way Couchbase carries
// sync-writes in a framing entry.
struct DurabilityFrame {
  uint8_t replicate_to = 0;
  uint8_t persist_to = 0;
  uint32_t timeout_ms = 0;
};

// Server-reported duration, 20-byte payload: five u32 microsecond fields.
// Rides responses to flex requests. Phases sum to <= total (the remainder
// is response packing); a phase that did not run reports 0.
struct ServerDuration {
  uint32_t total_us = 0;
  uint32_t dispatch_us = 0;   // socket read -> engine call
  uint32_t engine_us = 0;     // KV engine (hash table + front-end)
  uint32_t replicate_us = 0;  // DCP replicate-ack wait (durable ops)
  uint32_t persist_us = 0;    // flusher persistence wait (durable ops)
};

// Appends one TLV entry. Put* never fails (payloads are fixed-size and tiny);
// Get* scans the framing area for its tag, skipping unknown entries, and
// returns false when the tag is absent, its payload has the wrong size, or
// the TLV stream is truncated.
void PutTraceFrame(std::string* framing, const TraceFrame& t);
bool GetTraceFrame(std::string_view framing, TraceFrame* t);
void PutDurabilityFrame(std::string* framing, const DurabilityFrame& d);
bool GetDurabilityFrame(std::string_view framing, DurabilityFrame* d);
void PutServerDurationFrame(std::string* framing, const ServerDuration& d);
bool GetServerDurationFrame(std::string_view framing, ServerDuration* d);

// --- Big-endian field helpers (for extras payloads) ---
void PutU32BE(std::string* out, uint32_t v);
void PutU64BE(std::string* out, uint64_t v);
bool GetU32BE(std::string_view in, size_t offset, uint32_t* v);
bool GetU64BE(std::string_view in, size_t offset, uint64_t* v);

// Extras layouts used by the KV opcodes:
//   SET/ADD/REPLACE request ... 8 B: flags u32, expiry u32
//   mutation response ......... 8 B: seqno u64 (cas travels in the header)
//   GET/GETL response ......... 4 B: flags u32
//   GETL request .............. 4 B: lock duration ms u32
//   TOUCH request ............. 4 B: expiry u32
void PutMutationExtras(std::string* extras, uint32_t flags, uint32_t expiry);
bool GetMutationExtras(std::string_view extras, uint32_t* flags,
                       uint32_t* expiry);

// Incremental frame decoder: feed it raw bytes as they arrive off a socket
// (in any fragmentation — single bytes, half headers, many pipelined frames
// per read) and pull complete messages out. A protocol violation is
// returned as kError with a diagnosis; the decoder is then poisoned (every
// later Next also errors) because resynchronizing inside a byte stream with
// corrupt lengths is guesswork — the connection must be closed.
class FrameDecoder {
 public:
  enum class Result { kNeedMore, kFrame, kError };

  // `expected_magic`: kMagicRequest on the server side, kMagicResponse on
  // the client side. The matching flex magic is accepted too (0x08 for
  // 0x80, 0x18 for 0x81); any other magic is a protocol error.
  explicit FrameDecoder(uint8_t expected_magic,
                        uint32_t max_body = kMaxBodyLen)
      : expected_magic_(expected_magic), max_body_(max_body) {}

  void Feed(std::string_view bytes) { buf_.append(bytes); }

  // Extracts the next complete frame into *out. On kError, *error holds the
  // diagnosis (InvalidArgument / ParseError).
  Result Next(Message* out, Status* error);

  size_t buffered() const { return buf_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  const uint8_t expected_magic_;
  const uint32_t max_body_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
  bool poisoned_ = false;
};

}  // namespace couchkv::net::wire

#endif  // COUCHKV_NET_WIRE_WIRE_H_
