// Cross-datacenter replication (paper §4.6): per-bucket, optionally
// key-filtered, topology-aware replication from a source cluster to a
// destination cluster, implemented as a DCP consumer on every source node.
// Conflicts are resolved deterministically (revno, then CAS) so that both
// clusters converge to the same winner (§4.6.1) — eventual consistency
// across clusters, CP within a cluster / AP across clusters.
#ifndef COUCHKV_XDCR_XDCR_H_
#define COUCHKV_XDCR_XDCR_H_

#include <memory>
#include <regex>
#include <string>

#include "cluster/cluster.h"
#include "stats/registry.h"

namespace couchkv::xdcr {

struct XdcrSpec {
  std::string source_bucket;
  std::string target_bucket;
  // Filtered replication: only keys matching this ECMAScript regex are
  // replicated ("filtered replication (based on a regular expression on the
  // document ID)"). Empty = replicate everything.
  std::string key_filter_regex;
};

// Thin view over the link's registry counters (scope "xdcr.<service_name>",
// created by Start()). All zeros before Start().
struct XdcrStats {
  uint64_t docs_sent = 0;       // mutations shipped to the target
  uint64_t docs_filtered = 0;   // dropped by the key filter
  uint64_t docs_rejected = 0;   // lost conflict resolution at the target
  uint64_t docs_retried = 0;    // re-routed after target topology changes
  uint64_t backlog = 0;         // source mutations not yet shipped (XDCR lag)
};

// One directional replication link. For bidirectional XDCR create two links
// (one per direction); conflict resolution keeps them convergent.
class XdcrLink : public cluster::ClusterService,
                 public std::enable_shared_from_this<XdcrLink> {
 public:
  XdcrLink(cluster::Cluster* source, cluster::Cluster* target, XdcrSpec spec);

  // Registers DCP streams on the source and topology notifications.
  // `service_name` must be unique per link when registering several.
  Status Start(const std::string& service_name);

  // ClusterService: source topology changed → re-wire streams.
  void OnTopologyChange(const std::string& bucket) override;

  XdcrStats stats() const;

 private:
  void Wire();
  // Ships one mutation to the target cluster through its transport.
  // Returns non-OK (stalling the source DCP stream for retry) when the
  // target is unreachable; re-delivery is idempotent thanks to conflict
  // resolution.
  Status ShipMutation(const kv::Mutation& m);

  // Replication lag: source mutations DCP has not yet shipped, summed over
  // the vBuckets this link streams. Scraped into the "xdcr.backlog" gauge.
  uint64_t ComputeBacklog() const;

  cluster::Cluster* source_;
  cluster::Cluster* target_;
  XdcrSpec spec_;
  std::unique_ptr<std::regex> filter_;
  std::string stream_name_;

  // Registry-backed link counters, resolved by Start() into the scope
  // "xdcr.<service_name>" — null (reporting disabled) before Start().
  // The link owns no mutex: these pointers are written by Start() strictly
  // before Wire() registers the DCP streams whose callbacks read them (the
  // producer's stream-map lock publishes the writes), and the counters
  // themselves are internally atomic.
  std::shared_ptr<stats::Scope> stats_scope_;
  stats::Counter* docs_sent_ = nullptr;
  stats::Counter* docs_filtered_ = nullptr;
  stats::Counter* docs_rejected_ = nullptr;
  stats::Counter* docs_retried_ = nullptr;
  stats::Gauge* backlog_ = nullptr;
};

}  // namespace couchkv::xdcr

#endif  // COUCHKV_XDCR_XDCR_H_
