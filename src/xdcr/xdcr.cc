#include "xdcr/xdcr.h"

#include <thread>

#include "common/logging.h"
#include "net/transport.h"

namespace couchkv::xdcr {

XdcrLink::XdcrLink(cluster::Cluster* source, cluster::Cluster* target,
                   XdcrSpec spec)
    : source_(source), target_(target), spec_(std::move(spec)) {
  if (!spec_.key_filter_regex.empty()) {
    filter_ = std::make_unique<std::regex>(spec_.key_filter_regex);
  }
}

Status XdcrLink::Start(const std::string& service_name) {
  if (source_->map(spec_.source_bucket) == nullptr) {
    return Status::NotFound("source bucket missing: " + spec_.source_bucket);
  }
  if (target_->map(spec_.target_bucket) == nullptr) {
    return Status::NotFound("target bucket missing: " + spec_.target_bucket);
  }
  stream_name_ = "xdcr:" + service_name;
  stats_scope_ =
      stats::Registry::Global().GetScope("xdcr." + service_name);
  docs_sent_ = stats_scope_->GetCounter("docs_sent");
  docs_filtered_ = stats_scope_->GetCounter("docs_filtered");
  docs_rejected_ = stats_scope_->GetCounter("docs_rejected");
  docs_retried_ = stats_scope_->GetCounter("docs_retried");
  backlog_ = stats_scope_->GetGauge("backlog");
  source_->RegisterService(service_name, shared_from_this());
  Wire();
  return Status::OK();
}

void XdcrLink::OnTopologyChange(const std::string& bucket) {
  if (bucket == spec_.source_bucket) Wire();
}

void XdcrLink::Wire() {
  auto map = source_->map(spec_.source_bucket);
  if (!map) return;
  for (cluster::NodeId id : source_->node_ids()) {
    cluster::Node* n = source_->node(id);
    if (n == nullptr || !n->HasService(cluster::kDataService)) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(spec_.source_bucket);
    if (b == nullptr) continue;
    b->producer()->RemoveStreamsNamed(stream_name_);
    if (!n->healthy()) continue;
    auto self = shared_from_this();
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != id) continue;
      // XDCR streams resume from 0 on (re)wire; conflict resolution makes
      // re-delivery idempotent (equal metadata never overwrites).
      auto st = b->producer()->AddStream(
          stream_name_, vb, 0,
          [self](const kv::Mutation& m) { return self->ShipMutation(m); });
      if (!st.ok()) {
        LOG_WARN << "xdcr stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

Status XdcrLink::ShipMutation(const kv::Mutation& m) {
  if (filter_ != nullptr && !std::regex_search(m.doc.key, *filter_)) {
    docs_filtered_->Add();
    return Status::OK();
  }
  // Topology-aware routing: resolve the target's active node per shipment,
  // so destination failover/rebalance is picked up immediately (§4.6:
  // "XDCR is able to utilize the updated cluster topology information").
  Status last = Status::TempFail("xdcr: no attempts made");
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto target_map = target_->map(spec_.target_bucket);
    if (!target_map) return Status::OK();  // target bucket gone: drop
    cluster::NodeId active = target_map->ActiveFor(m.vbucket);
    cluster::Node* n = target_->node(active);
    std::shared_ptr<cluster::Bucket> b = (n != nullptr && n->healthy())
                                             ? n->bucket(spec_.target_bucket)
                                             : nullptr;
    Status st;
    if (b == nullptr) {
      // Target active is down or still booting: transient, retry.
      st = Status::TempFail("xdcr target node unavailable");
    } else {
      // One shipment = one message on the xdcr-service -> target-node link
      // of the TARGET cluster's transport.
      st = net::Call(target_->transport(),
                     net::Endpoint::Service(net::kServiceXdcr),
                     net::Endpoint::Node(active),
                     [&] { return b->vbucket(m.vbucket)->ApplyXdcr(m.doc); });
    }
    if (st.ok()) {
      docs_sent_->Add();
      n->dispatcher()->Notify();
      return Status::OK();
    }
    if (st.IsKeyExists()) {
      docs_rejected_->Add();
      return Status::OK();  // local version won; both sides already agree
    }
    if (st.IsNotMyVBucket() || st.IsTempFail()) {
      docs_retried_->Add();
      last = st;
      std::this_thread::yield();
      continue;  // stale routing / dropped message: re-read the target map
    }
    LOG_WARN << "xdcr apply failed: " << st.ToString();
    return st;
  }
  // Exhausted: stall the stream; the dispatcher re-delivers later.
  return last;
}

uint64_t XdcrLink::ComputeBacklog() const {
  uint64_t backlog = 0;
  for (cluster::NodeId id : source_->node_ids()) {
    cluster::Node* n = source_->node(id);
    if (n == nullptr || !n->healthy()) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(spec_.source_bucket);
    if (b == nullptr) continue;
    dcp::Producer* p = b->producer();
    for (uint16_t vb = 0; vb < p->num_vbuckets(); ++vb) {
      uint64_t acked = p->StreamSeqno(stream_name_, vb);
      if (acked == UINT64_MAX) continue;  // no stream here
      uint64_t high = p->high_seqno(vb);
      if (high > acked) backlog += high - acked;
    }
  }
  return backlog;
}

XdcrStats XdcrLink::stats() const {
  XdcrStats s;
  if (docs_sent_ == nullptr) return s;  // Start() not called yet
  s.docs_sent = docs_sent_->Value();
  s.docs_filtered = docs_filtered_->Value();
  s.docs_rejected = docs_rejected_->Value();
  s.docs_retried = docs_retried_->Value();
  s.backlog = ComputeBacklog();
  backlog_->Set(static_cast<int64_t>(s.backlog));
  return s;
}

}  // namespace couchkv::xdcr
