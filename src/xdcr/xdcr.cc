#include "xdcr/xdcr.h"

#include <thread>

#include "common/logging.h"
#include "net/transport.h"

namespace couchkv::xdcr {

XdcrLink::XdcrLink(cluster::Cluster* source, cluster::Cluster* target,
                   XdcrSpec spec)
    : source_(source), target_(target), spec_(std::move(spec)) {
  if (!spec_.key_filter_regex.empty()) {
    filter_ = std::make_unique<std::regex>(spec_.key_filter_regex);
  }
}

Status XdcrLink::Start(const std::string& service_name) {
  if (source_->map(spec_.source_bucket) == nullptr) {
    return Status::NotFound("source bucket missing: " + spec_.source_bucket);
  }
  if (target_->map(spec_.target_bucket) == nullptr) {
    return Status::NotFound("target bucket missing: " + spec_.target_bucket);
  }
  stream_name_ = "xdcr:" + service_name;
  source_->RegisterService(service_name, shared_from_this());
  Wire();
  return Status::OK();
}

void XdcrLink::OnTopologyChange(const std::string& bucket) {
  if (bucket == spec_.source_bucket) Wire();
}

void XdcrLink::Wire() {
  auto map = source_->map(spec_.source_bucket);
  if (!map) return;
  for (cluster::NodeId id : source_->node_ids()) {
    cluster::Node* n = source_->node(id);
    if (n == nullptr || !n->HasService(cluster::kDataService)) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(spec_.source_bucket);
    if (b == nullptr) continue;
    b->producer()->RemoveStreamsNamed(stream_name_);
    if (!n->healthy()) continue;
    auto self = shared_from_this();
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != id) continue;
      // XDCR streams resume from 0 on (re)wire; conflict resolution makes
      // re-delivery idempotent (equal metadata never overwrites).
      auto st = b->producer()->AddStream(
          stream_name_, vb, 0,
          [self](const kv::Mutation& m) { return self->ShipMutation(m); });
      if (!st.ok()) {
        LOG_WARN << "xdcr stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

Status XdcrLink::ShipMutation(const kv::Mutation& m) {
  if (filter_ != nullptr && !std::regex_search(m.doc.key, *filter_)) {
    docs_filtered_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  // Topology-aware routing: resolve the target's active node per shipment,
  // so destination failover/rebalance is picked up immediately (§4.6:
  // "XDCR is able to utilize the updated cluster topology information").
  Status last = Status::TempFail("xdcr: no attempts made");
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto target_map = target_->map(spec_.target_bucket);
    if (!target_map) return Status::OK();  // target bucket gone: drop
    cluster::NodeId active = target_map->ActiveFor(m.vbucket);
    cluster::Node* n = target_->node(active);
    std::shared_ptr<cluster::Bucket> b = (n != nullptr && n->healthy())
                                             ? n->bucket(spec_.target_bucket)
                                             : nullptr;
    Status st;
    if (b == nullptr) {
      // Target active is down or still booting: transient, retry.
      st = Status::TempFail("xdcr target node unavailable");
    } else {
      // One shipment = one message on the xdcr-service -> target-node link
      // of the TARGET cluster's transport.
      st = net::Call(target_->transport(),
                     net::Endpoint::Service(net::kServiceXdcr),
                     net::Endpoint::Node(active),
                     [&] { return b->vbucket(m.vbucket)->ApplyXdcr(m.doc); });
    }
    if (st.ok()) {
      docs_sent_.fetch_add(1, std::memory_order_relaxed);
      n->dispatcher()->Notify();
      return Status::OK();
    }
    if (st.IsKeyExists()) {
      docs_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();  // local version won; both sides already agree
    }
    if (st.IsNotMyVBucket() || st.IsTempFail()) {
      docs_retried_.fetch_add(1, std::memory_order_relaxed);
      last = st;
      std::this_thread::yield();
      continue;  // stale routing / dropped message: re-read the target map
    }
    LOG_WARN << "xdcr apply failed: " << st.ToString();
    return st;
  }
  // Exhausted: stall the stream; the dispatcher re-delivers later.
  return last;
}

XdcrStats XdcrLink::stats() const {
  XdcrStats s;
  s.docs_sent = docs_sent_.load();
  s.docs_filtered = docs_filtered_.load();
  s.docs_rejected = docs_rejected_.load();
  s.docs_retried = docs_retried_.load();
  return s;
}

}  // namespace couchkv::xdcr
