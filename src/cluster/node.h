// A Couchbase Server node: runs a configurable set of services
// (multi-dimensional scaling, paper §4.4). Every node carries the cluster-
// manager machinery; the data service adds buckets, a flusher, and a DCP
// dispatcher. The index and query services are attached by the gsi / n1ql
// modules through the service registry.
#ifndef COUCHKV_CLUSTER_NODE_H_
#define COUCHKV_CLUSTER_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "cluster/bucket.h"
#include "cluster/types.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "dcp/dcp.h"
#include "net/tcp_server.h"
#include "stats/flight_recorder.h"
#include "stats/registry.h"
#include "storage/env.h"

namespace couchkv::cluster {

class Node {
 public:
  // `env` is this node's private "disk"; pass nullptr to give the node its
  // own in-memory filesystem.
  Node(NodeId id, uint32_t services, Clock* clock,
       std::unique_ptr<storage::Env> env = nullptr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  uint32_t services() const { return services_; }
  bool HasService(Service s) const { return (services_ & s) != 0; }

  // Health: an unhealthy node simulates a crashed process — every request
  // fails and its background machinery is ignored by the orchestrator.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  void set_healthy(bool h) { healthy_.store(h, std::memory_order_release); }

  // True between Crash() and Boot(): the process is gone (buckets destroyed,
  // dispatcher stopped), as opposed to an unhealthy-but-running node whose
  // in-memory state survives. Recovery paths branch on this: a crashed node
  // must warm up from its disk; a partitioned node still holds its data.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // Simulates a process crash: stops the DCP dispatcher, then destroys all
  // buckets hard (hash tables and the disk write queue are lost; the flusher
  // may be killed between writing a batch and committing it). The node's
  // env (its simulated disk) survives. Caller (Cluster::CrashNode) must
  // first detach streams on OTHER nodes that point into this node's memory.
  void Crash();

  // Brings a crashed node back up with a fresh dispatcher and no buckets;
  // the cluster layer recreates buckets and warms them up from the env.
  // Does not flip healthy() — the caller does that once recovery completes.
  void Boot();

  Status CreateBucket(const BucketConfig& config);
  // Returns a pin on the bucket: holders keep it alive even if the node
  // crashes mid-operation (Crash() drops the node's reference, and the
  // object dies when the last in-flight operation lets go).
  std::shared_ptr<Bucket> bucket(const std::string& name);
  dcp::Dispatcher* dispatcher() { return dispatcher_.get(); }
  storage::Env* env() { return env_.get(); }
  Clock* clock() { return clock_; }
  // This node's stats scope ("node.<id>"): the wire front-end registers its
  // per-node histograms here so Stats(group="wire") exposes them.
  stats::Scope* stats_scope() { return scope_.get(); }
  // The per-node flight recorder (last N completed wire ops + in-flight
  // table); always present, recorded into by the wire service. Crash()
  // clears it — a dead process would have lost its ring.
  stats::FlightRecorder* flight_recorder() { return &flight_recorder_; }

  // --- Data service (KV API) entry points; the smart client calls these ---
  StatusOr<kv::GetResult> Get(const std::string& bucket, uint16_t vb,
                              std::string_view key);
  StatusOr<kv::DocMeta> Set(const std::string& bucket, uint16_t vb,
                            std::string_view key, std::string_view value,
                            uint32_t flags, uint32_t expiry, uint64_t cas);
  StatusOr<kv::DocMeta> Add(const std::string& bucket, uint16_t vb,
                            std::string_view key, std::string_view value,
                            uint32_t flags, uint32_t expiry);
  StatusOr<kv::DocMeta> Replace(const std::string& bucket, uint16_t vb,
                                std::string_view key, std::string_view value,
                                uint32_t flags, uint32_t expiry, uint64_t cas);
  StatusOr<kv::DocMeta> Remove(const std::string& bucket, uint16_t vb,
                               std::string_view key, uint64_t cas);
  StatusOr<kv::GetResult> GetAndLock(const std::string& bucket, uint16_t vb,
                                     std::string_view key, uint64_t lock_ms);
  Status Unlock(const std::string& bucket, uint16_t vb, std::string_view key,
                uint64_t cas);
  StatusOr<kv::DocMeta> Touch(const std::string& bucket, uint16_t vb,
                              std::string_view key, uint32_t expiry);

  // --- Wire front-end (TCP listener for the binary protocol) ---
  // Starts a TCP listener on an ephemeral 127.0.0.1 port serving `handler`.
  // The handler is retained so RestartWireServer() can bring the listener
  // back after a crash/boot cycle (on a fresh port — ephemeral ports are
  // never reused deliberately). InvalidArgument if already listening.
  Status StartWireServer(net::TcpServer::Handler handler);
  // Re-starts the listener with the retained handler; OK (no-op) when no
  // handler was ever installed or the listener is still up.
  Status RestartWireServer();
  // Stops the listener and joins its threads. Idempotent. Crash() calls
  // this first — connection threads dispatch into bucket state, so they
  // must be gone before the buckets are.
  void StopWireServer();
  // The listener's current port; 0 when not listening. Lock-free: resolvers
  // call this on every hop.
  uint16_t wire_port() const {
    return wire_port_.load(std::memory_order_acquire);
  }

  // The memcached-style STATS [group] admin op (paper §3.1.2): scrapes this
  // node's scope, every hosted bucket's scope (refreshing their gauges
  // first), and this node's slice of the transport scope. `group` filters by
  // dot-delimited segment ("kv", "storage", "dcp", ...); empty returns all.
  // TempFail when the node is down, like every other op.
  StatusOr<stats::Snapshot> Stats(const std::string& group = "");

 private:
  // Common pre-checks; returns a pinned bucket (see bucket()) or an error.
  // Callers hold the returned shared_ptr across the whole operation so a
  // concurrent Crash() cannot free the memory under them.
  StatusOr<std::shared_ptr<Bucket>> Route(const std::string& bucket,
                                          uint16_t vb);

  const NodeId id_;
  const uint32_t services_;
  Clock* clock_;
  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<dcp::Dispatcher> dispatcher_;
  std::atomic<bool> healthy_{true};
  std::atomic<bool> crashed_{false};
  std::shared_ptr<stats::Scope> scope_;  // "node.<id>"
  stats::Counter* stat_scrapes_ = nullptr;
  stats::Counter* boots_ = nullptr;
  stats::FlightRecorder flight_recorder_;

  mutable Mutex mu_{"cluster.node"};
  std::map<std::string, std::shared_ptr<Bucket>> buckets_ GUARDED_BY(mu_);

  // Wire listener state. Separate mutex: StopWireServer() joins connection
  // threads, and those threads take mu_ through the KV entry points — a
  // single lock would deadlock Crash().
  mutable Mutex wire_mu_{"cluster.node.wire"};
  std::unique_ptr<net::TcpServer> wire_server_ GUARDED_BY(wire_mu_);
  net::TcpServer::Handler wire_handler_ GUARDED_BY(wire_mu_);
  std::atomic<uint16_t> wire_port_{0};
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_NODE_H_
