#include "cluster/vbucket_map.h"

#include <algorithm>
#include <map>

namespace couchkv::cluster {

const char* VBucketStateName(VBucketState s) {
  switch (s) {
    case VBucketState::kActive: return "active";
    case VBucketState::kReplica: return "replica";
    case VBucketState::kPending: return "pending";
    case VBucketState::kDead: return "dead";
  }
  return "?";
}

size_t ClusterMap::CountActive(NodeId node) const {
  size_t n = 0;
  for (const auto& e : entries) {
    if (e.active == node) ++n;
  }
  return n;
}

ClusterMap BuildBalancedMap(const std::vector<NodeId>& nodes,
                            uint32_t num_replicas, uint64_t version) {
  ClusterMap map;
  map.version = version;
  if (nodes.empty()) return map;
  // Replica chains cannot be longer than the node count allows.
  uint32_t replicas =
      std::min<uint32_t>(num_replicas, static_cast<uint32_t>(nodes.size()) - 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    VBucketEntry& e = map.entries[vb];
    size_t base = vb % nodes.size();
    e.active = nodes[base];
    e.replicas.clear();
    for (uint32_t r = 1; r <= replicas; ++r) {
      e.replicas.push_back(nodes[(base + r) % nodes.size()]);
    }
  }
  return map;
}

ClusterMap BuildMinimalMoveMap(const ClusterMap& old_map,
                               const std::vector<NodeId>& nodes,
                               uint32_t num_replicas, uint64_t version) {
  ClusterMap map;
  map.version = version;
  if (nodes.empty()) return map;
  const size_t n = nodes.size();
  // Fair share per node: base everywhere, +1 for the first `extra` nodes.
  const size_t base = kNumVBuckets / n;
  const size_t extra = kNumVBuckets % n;
  std::map<NodeId, size_t> quota;
  std::map<NodeId, size_t> count;
  std::map<NodeId, size_t> node_index;
  for (size_t i = 0; i < n; ++i) {
    quota[nodes[i]] = base + (i < extra ? 1 : 0);
    count[nodes[i]] = 0;
    node_index[nodes[i]] = i;
  }
  // Pass 1: keep every active that may stay (owner still present and under
  // its fair share).
  std::vector<uint16_t> unplaced;
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    NodeId cur = old_map.entries[vb].active;
    auto it = quota.find(cur);
    if (it != quota.end() && count[cur] < it->second) {
      map.entries[vb].active = cur;
      ++count[cur];
    } else {
      unplaced.push_back(vb);
    }
  }
  // Pass 2: place the remainder on nodes below their share.
  size_t cursor = 0;
  for (uint16_t vb : unplaced) {
    while (count[nodes[cursor]] >= quota[nodes[cursor]]) {
      cursor = (cursor + 1) % n;
    }
    map.entries[vb].active = nodes[cursor];
    ++count[nodes[cursor]];
  }
  // Replica chains: round-robin after the active's position.
  uint32_t replicas =
      std::min<uint32_t>(num_replicas, static_cast<uint32_t>(n) - 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    VBucketEntry& e = map.entries[vb];
    size_t start = node_index[e.active];
    for (uint32_t r = 1; r <= replicas; ++r) {
      e.replicas.push_back(nodes[(start + r) % n]);
    }
  }
  return map;
}

}  // namespace couchkv::cluster
