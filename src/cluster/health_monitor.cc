#include "cluster/health_monitor.h"

#include <algorithm>
#include <chrono>

#include "common/affinity.h"
#include "common/logging.h"
#include "net/transport.h"

namespace couchkv::cluster {

const char* PeerHealthName(PeerHealth s) {
  switch (s) {
    case PeerHealth::kHealthy:
      return "healthy";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kConfirmedDown:
      return "confirmed_down";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(Cluster* cluster, HealthMonitorOptions opts)
    : cluster_(cluster), opts_(opts) {
  scope_ = stats::Registry::Global().GetScope("health");
  probes_sent_ = scope_->GetCounter("probes_sent");
  probe_failures_ = scope_->GetCounter("probe_failures");
  failovers_executed_stat_ = scope_->GetCounter("failovers_executed");
  budget_denials_ = scope_->GetCounter("failover_budget_denials");
  probe_rtt_ns_ = scope_->GetHistogram("probe_rtt_ns");
  pairs_suspect_ = scope_->GetGauge("pairs_suspect");
  pairs_confirmed_down_ = scope_->GetGauge("pairs_confirmed_down");
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::Start() {
  UniqueLock lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    affinity::ScopedDomain domain("cluster.health");
    ThreadMain();
  });
}

void HealthMonitor::Stop() {
  {
    UniqueLock lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
    thread_cv_.NotifyAll();
  }
  thread_.join();
  UniqueLock lock(thread_mu_);
  running_ = false;
}

void HealthMonitor::ThreadMain() {
  COUCHKV_ASSERT_AFFINE();
  for (;;) {
    {
      UniqueLock lock(thread_mu_);
      if (stop_) return;
    }
    TickOnce();
    UniqueLock lock(thread_mu_);
    if (stop_) return;
    // Spurious wakeups only shorten one interval; the next round re-reads
    // stop_, so there is no missed-signal window.
    thread_cv_.WaitFor(
        lock, std::chrono::milliseconds(opts_.heartbeat_interval_ms));
  }
}

void HealthMonitor::TickOnce() {
  std::vector<NodeId> members = cluster_->member_ids();
  if (members.size() < 2) return;
  std::map<PairKey, bool> results = ProbeAll(members);
  UpdateDetector(members, results);
  // Best-effort per round: denial reasons (quorum, budget, veto) are
  // counted, and the next tick re-evaluates from fresh probes.
  if (opts_.auto_failover_enabled) RunOrchestration(members);
}

std::map<HealthMonitor::PairKey, bool> HealthMonitor::ProbeAll(
    const std::vector<NodeId>& members) {
  std::map<PairKey, bool> results;
  net::Transport* transport = cluster_->transport();
  Clock* clock = cluster_->clock();
  for (NodeId observer : members) {
    Node* on = cluster_->node(observer);
    // A dead process sends no heartbeats (it has opinions about no one).
    if (on == nullptr || !on->healthy()) continue;
    for (NodeId peer : members) {
      if (peer == observer) continue;
      Node* pn = cluster_->node(peer);
      uint64_t t0 = clock->NowNanos();
      // The ping is an ordinary two-leg RPC: a blocked, lossy, or one-way
      // link and a crashed peer all surface as a failed probe — the
      // detector knows nothing the network does not tell it.
      Status st = net::Call(
          transport, net::Endpoint::Node(observer), net::Endpoint::Node(peer),
          [&] {
            return (pn != nullptr && pn->healthy())
                       ? Status::OK()
                       : Status::TempFail("node is down");
          });
      probes_sent_->Add();
      if (st.ok()) {
        probe_rtt_ns_->Record(clock->NowNanos() - t0);
      } else {
        probe_failures_->Add();
      }
      results[{observer, peer}] = st.ok();
    }
  }
  return results;
}

void HealthMonitor::UpdateDetector(const std::vector<NodeId>& members,
                                   const std::map<PairKey, bool>& results) {
  const uint64_t now_ms = cluster_->clock()->NowMillis();
  LockGuard lock(mu_);
  // Prune pairs that reference ex-members so a failed-over node's stale
  // entries can't linger (and a later re-add starts with fresh grace).
  for (auto it = peers_.begin(); it != peers_.end();) {
    bool keep = std::find(members.begin(), members.end(), it->first.first) !=
                    members.end() &&
                std::find(members.begin(), members.end(), it->first.second) !=
                    members.end();
    it = keep ? std::next(it) : peers_.erase(it);
  }
  for (const auto& [pair, ok] : results) {
    auto [it, inserted] = peers_.try_emplace(pair);
    PeerState& ps = it->second;
    if (inserted) ps.last_success_ms = now_ms;  // full timeout of grace
    if (ok) {
      // Any successful ping resets the pair: a flapping link keeps
      // re-earning its grace period and can never reach confirmed_down.
      ps.last_success_ms = now_ms;
      ps.state = PeerHealth::kHealthy;
    } else {
      ps.state = now_ms - ps.last_success_ms >= opts_.auto_failover_timeout_ms
                     ? PeerHealth::kConfirmedDown
                     : PeerHealth::kSuspect;
    }
  }
  int64_t suspect = 0;
  int64_t confirmed = 0;
  for (const auto& [pair, ps] : peers_) {
    suspect += ps.state == PeerHealth::kSuspect ? 1 : 0;
    confirmed += ps.state == PeerHealth::kConfirmedDown ? 1 : 0;
  }
  pairs_suspect_->Set(suspect);
  pairs_confirmed_down_->Set(confirmed);
}

std::vector<NodeId> HealthMonitor::ConfirmedDownBy(
    NodeId observer, const std::vector<NodeId>& members) const {
  std::vector<NodeId> down;
  LockGuard lock(mu_);
  for (NodeId peer : members) {
    if (peer == observer) continue;
    auto it = peers_.find({observer, peer});
    if (it != peers_.end() && it->second.state == PeerHealth::kConfirmedDown) {
      down.push_back(peer);
    }
  }
  return down;
}

bool HealthMonitor::RunOrchestration(const std::vector<NodeId>& members) {
  net::Transport* transport = cluster_->transport();
  for (NodeId actor : members) {
    Node* an = cluster_->node(actor);
    if (an == nullptr || !an->healthy()) continue;
    // Gather every member's confirmed-down set over the transport; an
    // unreachable member simply contributes no votes. The actor's own
    // opinion rides along (observer == actor short-circuits the network).
    std::map<NodeId, uint32_t> votes;
    for (NodeId observer : members) {
      Node* on = cluster_->node(observer);
      if (on == nullptr || !on->healthy()) continue;
      StatusOr<std::vector<NodeId>> opinion =
          observer == actor
              ? StatusOr<std::vector<NodeId>>(
                    ConfirmedDownBy(observer, members))
              : net::Call(transport, net::Endpoint::Node(actor),
                          net::Endpoint::Node(observer),
                          [&]() -> StatusOr<std::vector<NodeId>> {
                            return ConfirmedDownBy(observer, members);
                          });
      if (!opinion.ok()) continue;
      for (NodeId peer : opinion.value()) votes[peer] += 1;
    }
    // Quorum: a strict majority of ALL members (not just reachable ones)
    // must confirm a peer down. A partitioned minority can never assemble
    // one, so only one side of a split can ever act (no split-brain); an
    // exactly-even split means nobody acts.
    std::vector<NodeId> down;
    for (const auto& [peer, count] : votes) {
      if (static_cast<size_t>(count) * 2 > members.size()) down.push_back(peer);
    }
    // Deference (orchestrator election): the actor must believe every
    // lower-id member is down, otherwise that member is the orchestrator
    // and this node stays out of the way.
    bool defer = false;
    for (NodeId lower : members) {
      if (lower >= actor) break;
      if (std::find(down.begin(), down.end(), lower) == down.end()) {
        defer = true;
        break;
      }
    }
    if (defer || down.empty()) continue;
    {
      LockGuard lock(mu_);
      if (budget_used_ >= opts_.max_auto_failovers) {
        budget_denials_->Add();
        return false;
      }
    }
    // One failover per round: the victim with the lowest id goes first,
    // and the next round re-probes before anything else happens.
    NodeId victim = *std::min_element(down.begin(), down.end());
    Status st = cluster_->Failover(victim, FailoverMode::kAuto);
    if (st.ok()) {
      LockGuard lock(mu_);
      ++failovers_;
      ++budget_used_;
      failovers_executed_stat_->Add();
      return true;
    }
    // Vetoed (would lose data), already failed over by a concurrent actor,
    // or gone: all are terminal for this round. Cluster counts the vetoes.
    LOG_ERROR << "auto-failover of node " << victim
              << " not executed: " << st.ToString();
    return false;
  }
  return false;
}

PeerHealth HealthMonitor::Opinion(NodeId observer, NodeId peer) const {
  LockGuard lock(mu_);
  auto it = peers_.find({observer, peer});
  return it == peers_.end() ? PeerHealth::kHealthy : it->second.state;
}

int HealthMonitor::failovers_executed() const {
  LockGuard lock(mu_);
  return failovers_;
}

void HealthMonitor::ResetFailoverBudget() {
  LockGuard lock(mu_);
  budget_used_ = 0;
}

}  // namespace couchkv::cluster
