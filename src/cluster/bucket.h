// The node-local portion of a Couchbase bucket: 1024 VBucket objects (only
// those hosted here carry data), the bucket's DCP producer, the disk write
// queue and its flusher thread (paper Figure 6: mutations are acknowledged
// from memory and persisted asynchronously), and the compactor.
#ifndef COUCHKV_CLUSTER_BUCKET_H_
#define COUCHKV_CLUSTER_BUCKET_H_

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/types.h"
#include "cluster/vbucket.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/affinity.h"
#include "common/synchronization.h"
#include "dcp/dcp.h"
#include "stats/registry.h"
#include "storage/env.h"

namespace couchkv::cluster {

// Thin view over the bucket's registry scope (single source of truth: the
// monitoring path and this accessor read the same counters).
struct BucketStats {
  uint64_t ops_set = 0;  // all mutations: set/add/replace/remove/touch
  uint64_t ops_get = 0;
  uint64_t disk_queue_depth = 0;
  uint64_t total_commits = 0;
  uint64_t total_compactions = 0;
  uint64_t mem_used = 0;
};

class Bucket {
 public:
  Bucket(BucketConfig config, NodeId node_id, storage::Env* env, Clock* clock,
         dcp::Dispatcher* dispatcher);
  ~Bucket();

  Bucket(const Bucket&) = delete;
  Bucket& operator=(const Bucket&) = delete;

  const BucketConfig& config() const { return config_; }
  NodeId node_id() const { return node_id_; }

  VBucket* vbucket(uint16_t vb) { return vbuckets_[vb].get(); }
  dcp::Producer* producer() { return producer_.get(); }
  std::shared_ptr<dcp::Producer> producer_shared() { return producer_; }

  // Transitions a vBucket's state, opening its storage file if this node is
  // becoming responsible for it.
  Status SetVBucketState(uint16_t vb, VBucketState state);

  // Blocks until the disk write queue is empty and everything queued at call
  // time is committed.
  void FlushAll();

  // Warmup (node restart): repopulates the hash tables of all non-dead
  // vBuckets from their storage files, restoring seqno high-water marks.
  // Couchbase performs exactly this scan when a node rejoins. Returns the
  // number of documents loaded. On a scan failure (corruption past the last
  // good commit) the half-loaded vBucket is discarded and the error
  // propagates — a partially-warmed partition must never serve reads.
  StatusOr<uint64_t> Warmup();

  // Blocks until `seqno` of vBucket `vb` is persisted locally, or timeout.
  Status WaitForPersistence(uint16_t vb, uint64_t seqno, uint64_t timeout_ms);

  // Crash-stops the bucket: the flusher exits WITHOUT draining the disk
  // queue, possibly between writing a batch and committing it (the storage
  // layer's recovery then discards the torn tail). Everything still in
  // memory only is lost, exactly as in a process crash.
  void Kill();

  // Discards a vBucket's in-memory and on-disk state and re-creates it in
  // its current lifecycle state, so a DCP stream re-backfills it from
  // scratch. Used to roll back a replica that ran ahead of a crashed-and-
  // recovered active. Caller must ensure nothing is feeding this vBucket
  // (its incoming stream died with the crashed active).
  Status RollbackVBucket(uint16_t vb);

  // Runs one compaction sweep: compacts any hosted vBucket file whose
  // fragmentation exceeds the configured threshold. Returns #compacted.
  size_t MaybeCompact();

  // Enforces the memory quota by evicting clean values (paper §4.3.3).
  // Returns bytes reclaimed.
  uint64_t EnforceQuota();

  uint64_t mem_used() const;
  BucketStats stats() const;

  // Refreshes the scope's point-in-time gauges (mem used, queue depth, DCP
  // backlog, fragmentation). Called by the STATS scrape path before Collect.
  void UpdateScrapeGauges();

  // The bucket's registry scope ("node.<id>.bucket.<name>").
  stats::Scope* stats_scope() const { return scope_.get(); }

  // Test hook: the disk write queue depth.
  size_t disk_queue_depth() const;

  // True while front-end mutations are rejected with TempFail because the
  // flusher cannot drain the queue (see BucketConfig::
  // disk_failure_tempfail_queue_depth).
  bool backpressure_active() const {
    return backpressure_.load(std::memory_order_acquire);
  }

 private:
  void FlusherLoop();
  // Puts a failed flush batch back on the disk write queue, preserving
  // seqnos. A doc is NOT requeued if a newer version of the same key was
  // enqueued in the meantime (the newer write supersedes it). Returns the
  // number of docs requeued.
  size_t RequeueFailedBatch(uint16_t vb, std::vector<kv::Document>& docs);
  // Recomputes the TempFail backpressure flag from the disk-unhealthy state
  // and the current queue depth.
  void UpdateBackpressure();
  std::unique_ptr<VBucket> MakeVBucket(uint16_t vb);
  void EnqueueForPersistence(uint16_t vb, const kv::Document& doc);
  std::string VBucketFilePath(uint16_t vb) const;
  Status EnsureStorage(uint16_t vb);

  BucketConfig config_;
  NodeId node_id_;
  storage::Env* env_;
  Clock* clock_;
  dcp::Dispatcher* dispatcher_;

  // Registry scope + instruments resolved once at construction; vBuckets,
  // files, and the producer hold raw pointers into the scope, which the
  // shared_ptr keeps alive (even past DropScope on destruction).
  std::shared_ptr<stats::Scope> scope_;
  OpInstruments op_inst_;
  kv::CacheCounters cache_counters_;
  storage::StorageCounters storage_counters_;
  dcp::DcpCounters dcp_counters_;
  stats::Counter* flush_batches_ = nullptr;
  stats::Counter* flush_docs_ = nullptr;
  stats::Counter* flush_fails_ = nullptr;    // SaveDocs/Commit failures
  stats::Counter* flush_retries_ = nullptr;  // docs re-enqueued after failure
  Histogram* flush_ns_ = nullptr;

  std::vector<std::unique_ptr<VBucket>> vbuckets_;
  std::shared_ptr<dcp::Producer> producer_;

  // Disk write queue: deduplicates by (vb, key) so repeated updates to a hot
  // document collapse into one write ("asynchrony ... provides an
  // opportunity for repeated updates to an object to be aggregated at the
  // level of persistence", paper §2.3.2). Sharded by vBucket so front-end
  // writers on different partitions do not contend on one mutex.
  static constexpr size_t kQueueShards = 16;
  struct QueueShard {
    Mutex mu{"cluster.flusher_shard"};
    std::map<std::pair<uint16_t, std::string>, kv::Document> items
        GUARDED_BY(mu);
  };
  std::array<QueueShard, kQueueShards> shards_;
  std::atomic<uint64_t> queued_{0};    // total items across shards

  mutable Mutex queue_mu_{"cluster.flusher_queue"};  // guards the flusher's cv + flags
  CondVar queue_cv_;
  std::atomic<bool> flushing_{false};  // a batch is being written right now
  uint64_t flush_epoch_ GUARDED_BY(queue_mu_) = 0;  // bumped per flush batch
  CondVar flush_cv_;                   // signaled after each commit
  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_hard_{false};  // crash: exit without draining
  // Disk-failure state: set when a flush batch fails (the batch was
  // re-enqueued), cleared when a full pass commits cleanly. Feeds the
  // TempFail backpressure flag the vBuckets read on the mutation path.
  std::atomic<bool> disk_unhealthy_{false};
  std::atomic<bool> backpressure_{false};
  Mutex storage_mu_{"cluster.bucket.storage"};  // serializes lazy CouchFile creation
  // The flusher loop body (batch collection, SaveDocs, commit bookkeeping)
  // runs only on this bucket's flusher thread.
  COUCHKV_AFFINE_TO("cluster.bucket.flusher_loop", "storage.flusher");
  std::thread flusher_;
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_BUCKET_H_
