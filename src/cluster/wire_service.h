// The per-node wire front-end: maps each decoded binary-protocol request to
// the node's KV API and packs the result back into a response frame. One
// WireService instance backs one node's TcpServer; it is stateless beyond
// the cluster/node pointers and pre-resolved metric handles, so handler
// threads need no synchronization of their own (the Node API is already
// thread-safe).
//
// Extras layouts (all big-endian, mirroring the memcached binary protocol):
//   SET/ADD/REPLACE request ... 8 bytes: flags u32, expiry u32
//   mutation response ......... 8 bytes: seqno u64
//   GET/GETL response ......... 4 bytes: flags u32
//   GETL request .............. 4 bytes: lock duration ms u32
//   TOUCH request ............. 4 bytes: expiry u32
// STAT carries the group filter in the key and returns the snapshot as a
// JSON object in the value. GET_CLUSTER_MAP carries the bucket name in the
// key and returns the routing document described in DESIGN.md.
// OBSERVE_TRACE carries an optional decimal trace-id filter in the key and
// returns this node's flight-recorder dump as JSON.
//
// Tracing: every request is timed against the node's Clock into a
// dispatch / engine / replicate / persist phase breakdown, recorded in the
// node's flight recorder, and — when the request was a flex frame — shipped
// back in a server-duration framed extra. A trace-context framed extra on
// the request tags the recorder entry and becomes the thread's ambient
// trace for the duration of the op (nested spans and outbound transport
// hops join it). A durability framed extra on a mutation blocks the
// response until the requirement holds, with the replicate and persist
// waits timed separately.
#ifndef COUCHKV_CLUSTER_WIRE_SERVICE_H_
#define COUCHKV_CLUSTER_WIRE_SERVICE_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "net/tcp_server.h"
#include "net/wire/wire.h"
#include "stats/registry.h"

namespace couchkv::cluster {

class WireService {
 public:
  // `cluster` must outlive the service; `node_id` names the node this
  // service fronts (its ops execute there, NMVB and all). `bucket` is the
  // bucket this listener serves — one listener serves one bucket, the way a
  // classic memcached port maps to one bucket (GET_CLUSTER_MAP with an
  // empty key resolves to it).
  WireService(Cluster* cluster, NodeId node_id, std::string bucket);

  // The TcpServer handler: one request frame in, one response frame out.
  // Never throws and never blocks indefinitely; unknown opcodes come back
  // as kUnknownCommand rather than dropping the connection.
  net::wire::Message Handle(const net::wire::Message& req,
                            const net::RequestContext& ctx);

 private:
  // The opcode switch (the engine phase). Pure dispatch: no timing, no
  // durability — Handle wraps it with both.
  net::wire::Message DispatchOpcode(const net::wire::Message& req);

  net::wire::Message HandleGet(const net::wire::Message& req, bool lock);
  net::wire::Message HandleMutation(const net::wire::Message& req);
  net::wire::Message HandleDelete(const net::wire::Message& req);
  net::wire::Message HandleUnlock(const net::wire::Message& req);
  net::wire::Message HandleTouch(const net::wire::Message& req);
  net::wire::Message HandleStat(const net::wire::Message& req);
  net::wire::Message HandleClusterMap(const net::wire::Message& req);
  net::wire::Message HandleObserveTrace(const net::wire::Message& req);

  Cluster* cluster_;
  const NodeId node_id_;
  const std::string bucket_;

  // Per-node wire metrics, registered in the node's "node.<id>" scope so a
  // wire STAT (group "wire") returns them. The shared_ptr pins the scope's
  // storage even if the node object goes away mid-request.
  std::shared_ptr<stats::Scope> node_scope_;
  stats::Counter* stat_ops_ = nullptr;
  Histogram* h_server_ = nullptr;     // total server-side nanos
  Histogram* h_dispatch_ = nullptr;   // socket read -> engine call
  Histogram* h_engine_ = nullptr;     // KV engine
  Histogram* h_replicate_ = nullptr;  // durable ops: replicate-ack wait
  Histogram* h_persist_ = nullptr;    // durable ops: persistence wait
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_WIRE_SERVICE_H_
