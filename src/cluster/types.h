// Shared cluster-level types: service sets (multi-dimensional scaling),
// bucket configuration, vBucket states, durability requirements.
#ifndef COUCHKV_CLUSTER_TYPES_H_
#define COUCHKV_CLUSTER_TYPES_H_

#include <cstdint>
#include <string>

#include "kv/hash_table.h"

namespace couchkv::cluster {

using NodeId = uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

// Every Couchbase deployment uses exactly 1024 logical partitions (paper
// §4.1: "This is not a configurable number").
constexpr uint16_t kNumVBuckets = 1024;

// The services a node can run — the three dimensions of multi-dimensional
// scaling (paper §4.4). Combinable as a bitmask.
enum Service : uint32_t {
  kDataService = 1u << 0,
  kIndexService = 1u << 1,
  kQueryService = 1u << 2,
  kAllServices = kDataService | kIndexService | kQueryService,
};

// vBucket lifecycle states during normal operation and rebalance
// (paper §4.3.1: Active / Replica / Dead).
enum class VBucketState {
  kActive,   // serves all request types
  kReplica,  // accepts replication traffic only
  kPending,  // rebalance destination being built up (internal)
  kDead,     // not responsible for this partition
};

const char* VBucketStateName(VBucketState s);

// Per-bucket configuration.
struct BucketConfig {
  std::string name;
  uint32_t num_replicas = 1;  // up to 3 (paper §4.1.1)
  kv::EvictionPolicy eviction = kv::EvictionPolicy::kValueOnly;
  uint64_t memory_quota_bytes = 256ull << 20;
  // Compactor fires when a vBucket file's fragmentation exceeds this.
  double compaction_threshold = 0.5;
  // Disk-failure backpressure: while the flusher is in its retry loop (a
  // SaveDocs/Commit failed and the batch was re-enqueued) AND the disk
  // write queue holds at least this many docs, front-end mutations return
  // TempFail instead of growing the unpersistable backlog without bound.
  // Reads are never throttled. 0 disables the throttle.
  uint64_t disk_failure_tempfail_queue_depth = 1u << 16;
};

// Client-selected durability for a single mutation (paper §2.3.2
// "Durability guarantees": wait for replication and/or persistence on a
// per-mutation basis).
struct Durability {
  uint32_t replicate_to = 0;  // replicas that must hold the mutation
  uint32_t persist_to = 0;    // nodes that must have persisted it (0 or 1+)
  uint64_t timeout_ms = 2500;

  static Durability None() { return {}; }
  static Durability Replicate(uint32_t n) { return {n, 0, 2500}; }
  static Durability Persist(uint32_t n) { return {0, n, 2500}; }
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_TYPES_H_
