// Heartbeat failure detection and orchestrated auto-failover (paper §4.3.1:
// the cluster manager "monitors the health of the cluster" and, past a
// configurable timeout, fails the node over automatically).
//
// Every cluster member periodically pings its peers THROUGH the cluster's
// net::Transport — a FaultyTransport partition, delay, or one-way link is
// exactly what the detector sees; no code here reads Node::healthy() across
// the wire or any other omniscient flag. Each (observer, peer) pair runs the
// state machine
//
//     healthy -> suspect -> confirmed_down
//
// where a peer turns suspect on the first failed ping and confirmed_down
// once pings have failed continuously for auto_failover_timeout_ms. Any
// successful ping snaps the pair back to healthy (a flapping link therefore
// never confirms).
//
// Auto-failover is executed by the acting orchestrator with the paper's
// safeguards:
//   * quorum    — a peer is failed over only when a strict majority of all
//                 members confirms it down (opinions are gathered over the
//                 transport too, so a partitioned minority cannot see a
//                 quorum and split-brain);
//   * deference — an observer acts only if every lower-id member is itself
//                 confirmed down (orchestrator re-election: when the
//                 orchestrator dies, the next-lowest healthy node acts);
//   * budget    — at most max_auto_failovers until ResetFailoverBudget(),
//                 so a cascade cannot eat the whole cluster;
//   * data      — Cluster::Failover(kAuto) refuses when a vBucket would
//                 drop to zero copies.
#ifndef COUCHKV_CLUSTER_HEALTH_MONITOR_H_
#define COUCHKV_CLUSTER_HEALTH_MONITOR_H_

#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/affinity.h"
#include "common/synchronization.h"
#include "stats/registry.h"

namespace couchkv::cluster {

enum class PeerHealth { kHealthy, kSuspect, kConfirmedDown };

const char* PeerHealthName(PeerHealth s);

struct HealthMonitorOptions {
  // Period of the background detection round (Start()'s thread). TickOnce()
  // can also be driven manually for deterministic tests.
  uint64_t heartbeat_interval_ms = 100;
  // How long a peer must fail pings continuously before an observer
  // confirms it down. Measured on the cluster's Clock.
  uint64_t auto_failover_timeout_ms = 1000;
  // Auto-failovers allowed before an operator resets the budget.
  int max_auto_failovers = 1;
  // When false the detector still runs (states, gauges) but never executes
  // a failover.
  bool auto_failover_enabled = true;
};

class HealthMonitor {
 public:
  // `cluster` must outlive the monitor; call Stop() (or destroy the
  // monitor) before tearing the cluster down.
  explicit HealthMonitor(Cluster* cluster, HealthMonitorOptions opts = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Background detection thread running TickOnce() every
  // heartbeat_interval_ms. Idempotent.
  void Start();
  void Stop();

  // One full detection round: ping phase (every member probes every peer
  // over the transport), detector update, then the acting orchestrator
  // gathers opinions (over the transport) and executes at most one
  // quorum-confirmed auto-failover.
  void TickOnce();

  // What `observer` currently believes about `peer`. Unknown pairs (never
  // probed, or pruned after a membership change) read healthy.
  PeerHealth Opinion(NodeId observer, NodeId peer) const;

  // Monotonic count of auto-failovers this monitor executed. Not affected
  // by ResetFailoverBudget().
  int failovers_executed() const;
  // Re-arms the auto-failover budget (the operator acknowledging the
  // previous failovers, as Couchbase requires before the next one).
  void ResetFailoverBudget();

 private:
  struct PeerState {
    PeerHealth state = PeerHealth::kHealthy;
    // Clock ms of the last successful ping; initialized to the first
    // observation so a freshly added pair gets a full timeout of grace.
    uint64_t last_success_ms = 0;
  };
  // (observer, peer), observer != peer.
  using PairKey = std::pair<NodeId, NodeId>;

  // Ping every peer on behalf of every live member; returns each pair's
  // success/failure for this round.
  std::map<PairKey, bool> ProbeAll(const std::vector<NodeId>& members);
  void UpdateDetector(const std::vector<NodeId>& members,
                      const std::map<PairKey, bool>& results);
  // Runs the orchestration rule for this round; executes at most one
  // failover. Returns true if one was executed.
  bool RunOrchestration(const std::vector<NodeId>& members);
  // `observer`'s current confirmed-down set as seen from its own state.
  std::vector<NodeId> ConfirmedDownBy(NodeId observer,
                                      const std::vector<NodeId>& members) const;

  void ThreadMain();

  Cluster* cluster_;
  const HealthMonitorOptions opts_;

  std::shared_ptr<stats::Scope> scope_;  // "health"
  stats::Counter* probes_sent_ = nullptr;
  stats::Counter* probe_failures_ = nullptr;
  stats::Counter* failovers_executed_stat_ = nullptr;
  stats::Counter* budget_denials_ = nullptr;
  Histogram* probe_rtt_ns_ = nullptr;
  stats::Gauge* pairs_suspect_ = nullptr;
  stats::Gauge* pairs_confirmed_down_ = nullptr;

  mutable Mutex mu_{"cluster.health"};
  std::map<PairKey, PeerState> peers_ GUARDED_BY(mu_);
  // Lifetime total (reported by failovers_executed()) and the portion of
  // it charged against opts_.max_auto_failovers since the last budget
  // reset.
  int failovers_ GUARDED_BY(mu_) = 0;
  int budget_used_ GUARDED_BY(mu_) = 0;

  // ThreadMain (probe rounds + orchestration) runs only on the monitor's
  // ticker thread; TickOnce alone is also driven directly by tests, so the
  // assert guards the loop, not the tick.
  COUCHKV_AFFINE_TO("cluster.health.ticker", "cluster.health");
  Mutex thread_mu_{"cluster.health.thread"};
  CondVar thread_cv_;
  bool stop_ GUARDED_BY(thread_mu_) = false;
  bool running_ GUARDED_BY(thread_mu_) = false;
  std::thread thread_;
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_HEALTH_MONITOR_H_
