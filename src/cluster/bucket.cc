#include "cluster/bucket.h"

#include <algorithm>

#include "common/affinity.h"

#include "common/logging.h"

namespace couchkv::cluster {

Bucket::Bucket(BucketConfig config, NodeId node_id, storage::Env* env,
               Clock* clock, dcp::Dispatcher* dispatcher)
    : config_(std::move(config)),
      node_id_(node_id),
      env_(env),
      clock_(clock),
      dispatcher_(dispatcher) {
  scope_ = stats::Registry::Global().GetScope(
      "node." + std::to_string(node_id_) + ".bucket." + config_.name);
  op_inst_ = OpInstruments::In(scope_.get());
  cache_counters_ = kv::CacheCounters::In(scope_.get());
  storage_counters_ = storage::StorageCounters::In(scope_.get());
  dcp_counters_ = dcp::DcpCounters::In(scope_.get());
  flush_batches_ = scope_->GetCounter("flusher.batches");
  flush_docs_ = scope_->GetCounter("flusher.batch_docs");
  flush_fails_ = scope_->GetCounter("flusher.flush_fails");
  flush_retries_ = scope_->GetCounter("flusher.flush_retries");
  flush_ns_ = scope_->GetHistogram("flusher.flush_ns");

  vbuckets_.reserve(kNumVBuckets);
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    vbuckets_.push_back(MakeVBucket(vb));
  }
  // DCP backfill reads from the vBucket's storage file.
  producer_ = std::make_shared<dcp::Producer>(
      kNumVBuckets,
      [this](uint16_t vb, uint64_t since, const dcp::MutationFn& fn) {
        storage::CouchFile* file = vbuckets_[vb]->file();
        if (file == nullptr) return Status::OK();
        return file->ChangesSince(since, [&](const kv::Document& doc) {
          kv::Mutation m;
          m.vbucket = vb;
          m.doc = doc;
          // A failed delivery aborts the backfill scan; the producer's
          // stall/retry logic decides what happens next.
          return fn(m);
        });
      },
      &dcp_counters_);
  dispatcher_->AddProducer(producer_);
  flusher_ = std::thread([this] {
    affinity::ScopedDomain domain("storage.flusher");
    FlusherLoop();
  });
}

Bucket::~Bucket() {
  stop_.store(true);
  queue_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  dispatcher_->RemoveProducer(producer_);
  // Deregister from exposition; scope_ keeps the metric storage alive for
  // anything still holding pointers into it.
  stats::Registry::Global().DropScope(scope_->name());
}

std::unique_ptr<VBucket> Bucket::MakeVBucket(uint16_t vb) {
  auto v = std::make_unique<VBucket>(vb, VBucketState::kDead, clock_,
                                     config_.eviction, &op_inst_,
                                     &cache_counters_);
  v->set_backpressure_flag(&backpressure_);
  v->set_sink([this, vb](const kv::Document& doc) {
    producer_->OnMutation(vb, doc);
    EnqueueForPersistence(vb, doc);
    dispatcher_->Notify();
  });
  return v;
}

std::string Bucket::VBucketFilePath(uint16_t vb) const {
  return config_.name + ".n" + std::to_string(node_id_) + ".vb" +
         std::to_string(vb) + ".couch";
}

Status Bucket::EnsureStorage(uint16_t vb) {
  LockGuard lock(storage_mu_);
  VBucket* v = vbuckets_[vb].get();
  if (v->file() != nullptr) return Status::OK();
  auto file_or =
      storage::CouchFile::Open(env_, VBucketFilePath(vb), &storage_counters_);
  if (!file_or.ok()) return file_or.status();
  std::shared_ptr<storage::CouchFile> file = std::move(file_or).value();
  v->set_file(std::move(file));
  return Status::OK();
}

Status Bucket::SetVBucketState(uint16_t vb, VBucketState state) {
  if (vb >= kNumVBuckets) return Status::InvalidArgument("bad vbucket");
  VBucket* v = vbuckets_[vb].get();
  if (state != VBucketState::kDead) {
    COUCHKV_RETURN_IF_ERROR(EnsureStorage(vb));
  }
  v->set_state(state);
  return Status::OK();
}

void Bucket::EnqueueForPersistence(uint16_t vb, const kv::Document& doc) {
  QueueShard& shard = shards_[vb % kQueueShards];
  bool inserted;
  {
    LockGuard lock(shard.mu);
    // Later write supersedes earlier (dedup aggregation).
    inserted = shard.items.insert_or_assign({vb, doc.key}, doc).second;
  }
  if (inserted && queued_.fetch_add(1) == 0) {
    queue_cv_.NotifyOne();
  }
  UpdateBackpressure();
}

size_t Bucket::RequeueFailedBatch(uint16_t vb, std::vector<kv::Document>& docs) {
  QueueShard& shard = shards_[vb % kQueueShards];
  size_t requeued = 0;
  {
    LockGuard lock(shard.mu);
    for (kv::Document& doc : docs) {
      // try_emplace: if the key was re-enqueued by a front-end write while
      // this batch was failing, that newer version wins; re-inserting the
      // old one would persist stale data over it.
      if (shard.items.try_emplace({vb, doc.key}, std::move(doc)).second) {
        ++requeued;
      }
    }
  }
  if (requeued > 0) queued_.fetch_add(requeued);
  flush_retries_->Add(requeued);
  return requeued;
}

void Bucket::UpdateBackpressure() {
  uint64_t limit = config_.disk_failure_tempfail_queue_depth;
  bool want = limit > 0 && disk_unhealthy_.load(std::memory_order_acquire) &&
              queued_.load(std::memory_order_acquire) >= limit;
  backpressure_.store(want, std::memory_order_release);
}

void Bucket::FlusherLoop() {
  COUCHKV_ASSERT_AFFINE();
  // Retry backoff after a failed pass: doubles up to the cap, resets on a
  // clean pass, so a dead disk is retried at a bounded rate instead of in a
  // hot loop, and a transient fault converges quickly.
  std::chrono::milliseconds backoff(0);
  constexpr std::chrono::milliseconds kMaxBackoff(64);
  for (;;) {
    if (stop_hard_.load()) return;  // crash: abandon the queue
    std::map<std::pair<uint16_t, std::string>, kv::Document> batch;
    {
      UniqueLock lock(queue_mu_);
      // The deadline bounds the flush latency even if a notify is lost (the
      // enqueue fast path deliberately avoids taking queue_mu_).
      auto deadline = std::chrono::steady_clock::now() +
                      std::max(backoff, std::chrono::milliseconds(1));
      while (!stop_.load() && queued_.load() == 0) {
        if (!queue_cv_.WaitUntil(lock, deadline)) break;
      }
      if (backoff.count() > 0 && !stop_.load() && !stop_hard_.load()) {
        // A failed pass re-enqueued its docs, so queued_ > 0 and the wait
        // above returned immediately; honor the backoff before retrying.
        while (std::chrono::steady_clock::now() < deadline &&
               !stop_.load() && !stop_hard_.load()) {
          if (!queue_cv_.WaitUntil(lock, deadline)) break;
        }
      }
    }
    if (stop_hard_.load()) return;
    if (queued_.load() == 0) {
      if (stop_.load()) return;
      continue;
    }
    flushing_.store(true);
    uint64_t flush_start_ns = Clock::Real()->NowNanos();
    for (QueueShard& shard : shards_) {
      LockGuard lock(shard.mu);
      batch.merge(shard.items);
      shard.items.clear();
    }
    queued_.fetch_sub(batch.size());
    flush_batches_->Add();
    flush_docs_->Add(batch.size());
    // Group the batch by vBucket: one SaveDocs + Commit per file, so a
    // flush cycle is a small number of sequential writes + fsyncs.
    std::map<uint16_t, std::vector<kv::Document>> by_vb;
    for (auto& [key, doc] : batch) {
      by_vb[key.first].push_back(std::move(doc));
    }
    bool pass_failed = false;
    for (auto& [vb, docs] : by_vb) {
      if (stop_hard_.load()) {
        flushing_.store(false);
        return;  // crash between per-vBucket batches
      }
      VBucket* v = vbuckets_[vb].get();
      // One locked pointer read per vBucket; the cached raw pointer stays
      // valid for the SaveDocs/Commit sequence (file_ only ever transitions
      // null -> non-null).
      storage::CouchFile* file = v->file();
      Status st = Status::OK();
      if (file == nullptr) {
        st = EnsureStorage(vb);
        if (st.ok()) file = v->file();
      }
      if (st.ok()) st = file->SaveDocs(docs);
      if (stop_hard_.load()) {
        // Crash between the batch write and its commit record: the torn
        // tail is discarded by recovery on the next open.
        flushing_.store(false);
        return;
      }
      if (st.ok()) st = file->Commit();
      if (!st.ok()) {
        // Acknowledged-from-memory writes must not be dropped on a disk
        // fault: put the batch back on the queue (newer enqueued versions
        // win) so the flusher retries until the disk recovers, and flag the
        // disk unhealthy so the front end sheds write load once the queue
        // passes the TempFail threshold. PersistTo waiters keep waiting —
        // they time out honestly instead of acking an unpersisted write.
        flush_fails_->Add();
        size_t requeued = RequeueFailedBatch(vb, docs);
        pass_failed = true;
        LOG_WARN << "flush failed for vb " << vb << ": " << st.ToString()
                 << "; re-enqueued " << requeued << "/" << docs.size()
                 << " docs for retry";
        continue;
      }
      for (const kv::Document& doc : docs) {
        v->hash_table().MarkClean(doc.key, doc.meta.seqno);
      }
    }
    disk_unhealthy_.store(pass_failed, std::memory_order_release);
    UpdateBackpressure();
    backoff = pass_failed
                  ? std::min(std::max(backoff * 2, std::chrono::milliseconds(1)),
                             kMaxBackoff)
                  : std::chrono::milliseconds(0);
    flush_ns_->Record(Clock::Real()->NowNanos() - flush_start_ns);
    {
      LockGuard lock(queue_mu_);
      ++flush_epoch_;
      flushing_.store(false);
    }
    flush_cv_.NotifyAll();
  }
}

StatusOr<uint64_t> Bucket::Warmup() {
  uint64_t loaded = 0;
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    VBucket* v = vbuckets_[vb].get();
    if (v->state() == VBucketState::kDead) continue;
    COUCHKV_RETURN_IF_ERROR(EnsureStorage(vb));
    // ChangesSince streams in seqno order, which both Restore and the DCP
    // change log require.
    Status st = v->file()->ChangesSince(0, [&](const kv::Document& doc) {
      if (!doc.meta.deleted) {
        v->hash_table().Restore(doc);
        ++loaded;
      }
      // Re-seed the DCP change log so consumers attaching later can stream
      // history without a storage backfill.
      producer_->OnMutation(vb, doc);
      return Status::OK();
    });
    if (!st.ok()) {
      // Corruption mid-scan: a partially-warmed partition would serve a
      // stale subset of its documents as if complete. Discard the
      // half-loaded vBucket (state resets to dead) and propagate, so the
      // caller aborts the node bring-up instead of half-serving.
      {
        LockGuard lock(storage_mu_);
        vbuckets_[vb] = MakeVBucket(vb);
      }
      return st;
    }
  }
  dispatcher_->Notify();
  return loaded;
}

void Bucket::FlushAll() {
  UniqueLock lock(queue_mu_);
  queue_cv_.NotifyAll();
  while (queued_.load() > 0 || flushing_.load()) {
    flush_cv_.Wait(lock);
  }
}

void Bucket::Kill() {
  stop_hard_.store(true);
  stop_.store(true);
  queue_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  flush_cv_.NotifyAll();
}

Status Bucket::RollbackVBucket(uint16_t vb) {
  if (vb >= kNumVBuckets) return Status::InvalidArgument("bad vbucket");
  VBucketState prev_state = vbuckets_[vb]->state();
  // Purge queued-but-unflushed writes for this partition so the flusher
  // cannot resurrect the discarded state into the fresh file.
  {
    QueueShard& shard = shards_[vb % kQueueShards];
    LockGuard lock(shard.mu);
    size_t purged = 0;
    for (auto it = shard.items.begin(); it != shard.items.end();) {
      if (it->first.first == vb) {
        it = shard.items.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    if (purged > 0) queued_.fetch_sub(purged);
  }
  // Let any in-flight flush batch (snapshotted before the purge) complete
  // so no flusher reference to the old VBucket object survives.
  {
    UniqueLock lock(queue_mu_);
    while (flushing_.load()) flush_cv_.Wait(lock);
  }
  std::string path = VBucketFilePath(vb);
  {
    LockGuard lock(storage_mu_);
    vbuckets_[vb] = MakeVBucket(vb);  // drops the hash table + file handle
    if (env_->Exists(path)) {
      COUCHKV_RETURN_IF_ERROR(env_->Remove(path));
    }
  }
  return SetVBucketState(vb, prev_state);
}

Status Bucket::WaitForPersistence(uint16_t vb, uint64_t seqno,
                                  uint64_t timeout_ms) {
  VBucket* v = vbuckets_[vb].get();
  UniqueLock lock(queue_mu_);
  queue_cv_.NotifyAll();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (v->persisted_seqno() < seqno) {
    if (!flush_cv_.WaitUntil(lock, deadline)) break;
  }
  return v->persisted_seqno() >= seqno ? Status::OK()
                                       : Status::Timeout("persistence wait");
}

size_t Bucket::MaybeCompact() {
  size_t compacted = 0;
  for (auto& v : vbuckets_) {
    storage::CouchFile* file = v->file();
    if (file == nullptr || v->state() == VBucketState::kDead) continue;
    if (file->Fragmentation() > config_.compaction_threshold) {
      Status st = file->Compact();
      if (st.ok()) {
        ++compacted;
      } else {
        LOG_WARN << "compaction failed: " << st.ToString();
      }
    }
  }
  return compacted;
}

uint64_t Bucket::EnforceQuota() {
  uint64_t used = mem_used();
  if (used <= config_.memory_quota_bytes) return 0;
  // Evict proportionally from every hosted vBucket.
  uint64_t reclaimed = 0;
  uint64_t target_per_vb = config_.memory_quota_bytes / kNumVBuckets;
  for (auto& v : vbuckets_) {
    if (v->state() == VBucketState::kDead) continue;
    reclaimed += v->hash_table().EvictTo(target_per_vb);
  }
  return reclaimed;
}

uint64_t Bucket::mem_used() const {
  uint64_t total = 0;
  for (const auto& v : vbuckets_) total += v->hash_table().mem_used();
  return total;
}

size_t Bucket::disk_queue_depth() const { return queued_.load(); }

void Bucket::UpdateScrapeGauges() {
  scope_->GetGauge("bucket.mem_used")->Set(static_cast<int64_t>(mem_used()));
  scope_->GetGauge("bucket.disk_queue_depth")
      ->Set(static_cast<int64_t>(disk_queue_depth()));
  scope_->GetGauge("dcp.backlog")
      ->Set(static_cast<int64_t>(producer_->TotalBacklog()));
  // Worst fragmentation across hosted vBucket files, in basis points (the
  // §4.3.3 compaction trigger input).
  double worst_frag = 0.0;
  uint64_t items = 0, non_resident = 0;
  for (const auto& v : vbuckets_) {
    if (v->state() == VBucketState::kDead) continue;
    if (storage::CouchFile* file = v->file(); file != nullptr) {
      double f = file->Fragmentation();
      if (f > worst_frag) worst_frag = f;
    }
    auto hs = v->hash_table().stats();
    items += hs.num_items;
    non_resident += hs.num_non_resident;
  }
  scope_->GetGauge("storage.fragmentation_bp")
      ->Set(static_cast<int64_t>(worst_frag * 10000));
  scope_->GetGauge("kv.curr_items")->Set(static_cast<int64_t>(items));
  scope_->GetGauge("kv.non_resident_items")
      ->Set(static_cast<int64_t>(non_resident));
}

BucketStats Bucket::stats() const {
  BucketStats s;
  s.ops_get = op_inst_.ops_get->Value();
  s.ops_set = op_inst_.ops_mutate->Value();
  s.disk_queue_depth = disk_queue_depth();
  s.mem_used = mem_used();
  s.total_commits = storage_counters_.commits->Value();
  s.total_compactions = storage_counters_.compactions->Value();
  return s;
}

}  // namespace couchkv::cluster
