// The Couchbase cluster: node membership, per-bucket cluster maps,
// orchestrator election, intra-cluster replication wiring, rebalance with
// per-vBucket atomic switchover, and failover (paper §4.1, §4.3.1).
//
// Everything here is the logic of ns_server (the Erlang cluster manager)
// re-implemented in C++ over in-process nodes.
#ifndef COUCHKV_CLUSTER_CLUSTER_H_
#define COUCHKV_CLUSTER_CLUSTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/types.h"
#include "cluster/vbucket_map.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "stats/registry.h"

namespace couchkv::cluster {

// Higher-level services (views, GSI, XDCR) register with the cluster so
// they can re-attach their DCP streams when the topology changes.
class ClusterService {
 public:
  virtual ~ClusterService() = default;
  virtual void OnTopologyChange(const std::string& bucket) = 0;
};

struct ClusterOptions {
  Clock* clock = Clock::Real();
  // When true, nodes write through PosixEnv into `data_dir`; otherwise each
  // node gets a private in-memory filesystem.
  bool use_posix = false;
  std::string data_dir = "/tmp/couchkv";
  // Simulated fsync latency for in-memory node disks (0 = free). Stands in
  // for real disk sync cost when benchmarking durability/persistence.
  uint64_t simulated_fsync_us = 0;
  // Test hook: wraps the Env a new node gets as its private disk (e.g. in a
  // storage::FaultyEnv) before the node boots. Receives the node id and the
  // env built per the options above; returns the env to install. The
  // wrapper IS the node's disk from then on — it survives
  // CrashNode/RestartNode, so warmup recovers through it too.
  std::function<std::unique_ptr<storage::Env>(NodeId,
                                              std::unique_ptr<storage::Env>)>
      wrap_node_env;
};

// Who asked for a failover. Auto-failover (the HealthMonitor orchestrator)
// refuses to proceed when it would drop a vBucket to zero copies — the paper
// only auto-fails-over when safe, leaving risky cases to the administrator.
// Manual failover honors the admin's judgment and accepts the data loss.
enum class FailoverMode { kManual, kAuto };

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Membership ---
  NodeId AddNode(uint32_t services = kAllServices);
  Node* node(NodeId id);
  std::vector<NodeId> node_ids() const;
  std::vector<NodeId> healthy_data_nodes() const;
  // Nodes that are still cluster members: everything not failed over. A
  // crashed or partitioned member stays in this set (and keeps its vote in
  // the failure detector's quorum) until a failover removes it.
  std::vector<NodeId> member_ids() const;
  bool failed_over(NodeId id) const;

  // The elected orchestrator: lowest-id healthy node (paper §4.3.1 — on
  // orchestrator crash "they will elect a new orchestrator immediately").
  NodeId orchestrator() const;

  // --- Buckets ---
  // Creates the bucket on every data-service node and wires replication.
  Status CreateBucket(const BucketConfig& config);
  std::shared_ptr<const ClusterMap> map(const std::string& bucket) const;
  std::vector<std::string> bucket_names() const;

  // --- Topology operations (run by the orchestrator) ---
  // Recomputes a balanced map over the current healthy data nodes and moves
  // vBuckets, with an atomic per-partition switchover.
  Status Rebalance();

  // Takes `id` out of service, promoting for each of its active partitions
  // the healthy replica with the highest high_seqno (DCP delivers in order,
  // so the most-caught-up replica holds a superset of every other replica —
  // promoting it preserves all ReplicateTo-acked writes). A second call for
  // the same node returns InvalidArgument. In kAuto mode the call is vetoed
  // (Aborted, nothing mutated) when any vBucket would lose its last copy.
  Status Failover(NodeId id, FailoverMode mode = FailoverMode::kManual);

  // Reintegrates a failed-over node by delta recovery: divergent vBuckets
  // (those whose high_seqno ran past what the promoted active had at
  // failover time) are rolled back, everything else catches up via DCP from
  // the current actives starting at its local high seqno; vBuckets whose
  // active was lost entirely (active == kNoNode) are resurrected from the
  // recovered node's copy. Ends with a Rebalance to spread actives back.
  // The node may be crashed (it is booted and warmed up from disk first) or
  // alive-but-partitioned (heal the partition before calling).
  Status RecoverNode(NodeId id);

  // --- Crash / restart (torture testing) ---
  // Kills node `id` like a process crash: its in-memory hash tables, disk
  // write queue, and DCP state are destroyed; its flusher may be stopped
  // between writing a batch and committing it (torn write — the storage
  // layer's recovery discards the uncommitted tail). The node's simulated
  // disk survives. Unlike Failover(), the cluster map is left untouched, so
  // requests for the node's partitions fail with TempFail until restart.
  Status CrashNode(NodeId id);

  // Boots a crashed node: recreates its buckets, recovers each hosted
  // vBucket from storage through the real Warmup path, rolls back replicas
  // elsewhere that ran ahead of the recovered actives (replicated-but-
  // unpersisted writes died in the crash), and re-wires replication.
  Status RestartNode(NodeId id);

  // --- Transport ---
  // All cross-node traffic (smart-client KV ops, DCP replication and
  // rebalance deliveries, GSI fan-out, XDCR shipments) is admitted through
  // this transport. Defaults to a DirectTransport (perfect network).
  net::Transport* transport() const {
    return transport_.load(std::memory_order_acquire);
  }
  // Installs a transport (e.g. net::FaultyTransport). `t` must outlive the
  // cluster; nullptr restores the built-in DirectTransport. Existing
  // callbacks pick the new transport up on their next delivery.
  void set_transport(net::Transport* t) {
    transport_.store(t != nullptr ? t : &direct_transport_,
                     std::memory_order_release);
  }

  // --- Wire front-ends (TCP listeners, binary protocol) ---
  // Starts a binary-protocol listener on every node, each serving `bucket`
  // and bound to an ephemeral 127.0.0.1 port (read them back through
  // wire_port()). CrashNode kills the crashed node's listener;
  // RestartNode/RecoverNode bring it back on a FRESH port, so consumers
  // must re-resolve (WirePortResolver does).
  Status StartWireServers(const std::string& bucket);
  // Stops every listener and joins their threads. Idempotent; also run by
  // the destructor before any node state is torn down.
  void StopWireServers();
  // Node `id`'s current listener port; 0 when down or never started.
  uint16_t wire_port(NodeId id);
  // A resolver for net::SocketTransport: re-queries the live port on every
  // hop, so crashed nodes resolve to 0 and rebooted nodes to their fresh
  // port. Safe to call until the cluster is destroyed.
  net::SocketTransport::PortResolver WirePortResolver();

  // --- Durability (paper §2.3.2) ---
  // Blocks until `seqno` in (bucket, vb) satisfies `dur`, observing replica
  // high-seqnos and persisted-seqnos across the cluster.
  Status WaitForDurability(const std::string& bucket, uint16_t vb,
                           uint64_t seqno, const Durability& dur);

  // --- Service registry ---
  void RegisterService(const std::string& name,
                       std::shared_ptr<ClusterService> service);
  ClusterService* FindService(const std::string& name) const;

  // Drains all async machinery (DCP + flushers) — deterministic tests.
  void Quiesce();

  Clock* clock() const { return opts_.clock; }

  // Total number of vBucket moves performed by Rebalance() calls.
  uint64_t total_vbucket_moves() const {
    return total_moves_.load(std::memory_order_relaxed);
  }

 private:
  // What Failover() learned about a node at the moment it was removed, kept
  // until RecoverNode() reintegrates it.
  struct FailoverRecord {
    // bucket -> per-vBucket seqno the promoted active held at failover. A
    // recovered copy at or below this seqno is a guaranteed prefix of the
    // new active's history (DCP delivers in order) and may catch up by
    // delta; above it, the copy holds writes the promotion discarded and
    // must be rolled back.
    std::map<std::string, std::vector<uint64_t>> safe_seqno;
    // bucket -> per-vBucket bit: the node hosted a copy (active or replica)
    // when it was failed over. Drives warmup state selection on recovery.
    std::map<std::string, std::vector<bool>> hosted;
  };

  std::unique_ptr<storage::Env> MakeNodeEnv(NodeId id);
  // Applies vBucket states + replication streams for `bucket` per `map`.
  void ApplyMap(const std::string& bucket,
                std::shared_ptr<const ClusterMap> map);
  void SetupReplication(const std::string& bucket, const ClusterMap& map);
  void PublishMap(const std::string& bucket,
                  std::shared_ptr<const ClusterMap> map);
  void NotifyServices(const std::string& bucket);
  Status MoveVBucket(const std::string& bucket, uint16_t vb, NodeId from,
                     NodeId to);

  ClusterOptions opts_;

  net::DirectTransport direct_transport_;
  std::atomic<net::Transport*> transport_{&direct_transport_};

  mutable Mutex mu_{"cluster.topology"};
  COUCHKV_LOCK_ORDER("cluster.topology", "cluster.node");
  COUCHKV_LOCK_ORDER("cluster.topology", "cluster.vbucket.op");
  std::map<NodeId, std::unique_ptr<Node>> nodes_ GUARDED_BY(mu_);
  NodeId next_node_id_ GUARDED_BY(mu_) = 0;
  std::map<std::string, BucketConfig> bucket_configs_ GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const ClusterMap>> maps_
      GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<ClusterService>> services_
      GUARDED_BY(mu_);
  std::map<NodeId, FailoverRecord> failed_over_ GUARDED_BY(mu_);
  // Atomic so total_vbucket_moves() stays a lock-free accessor.
  std::atomic<uint64_t> total_moves_{0};

  // Scope "cluster": failover/recovery counters the HealthMonitor tests and
  // dashboards read.
  std::shared_ptr<stats::Scope> scope_;
  stats::Counter* failover_manual_ = nullptr;
  stats::Counter* failover_auto_ = nullptr;
  stats::Counter* failover_vetoed_ = nullptr;
  stats::Counter* recovery_delta_ = nullptr;
  stats::Counter* recovery_rollback_vbs_ = nullptr;
  stats::Counter* recovery_resurrected_vbs_ = nullptr;
  // Seqnos the failed node had seen but the promoted replica had not — the
  // write window the failover gave up (0 whenever replication was caught
  // up; unknowable, and skipped, when the failed node's memory is gone).
  Histogram* promotion_lag_ = nullptr;
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_CLUSTER_H_
