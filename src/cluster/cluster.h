// The Couchbase cluster: node membership, per-bucket cluster maps,
// orchestrator election, intra-cluster replication wiring, rebalance with
// per-vBucket atomic switchover, and failover (paper §4.1, §4.3.1).
//
// Everything here is the logic of ns_server (the Erlang cluster manager)
// re-implemented in C++ over in-process nodes.
#ifndef COUCHKV_CLUSTER_CLUSTER_H_
#define COUCHKV_CLUSTER_CLUSTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/types.h"
#include "cluster/vbucket_map.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "net/transport.h"

namespace couchkv::cluster {

// Higher-level services (views, GSI, XDCR) register with the cluster so
// they can re-attach their DCP streams when the topology changes.
class ClusterService {
 public:
  virtual ~ClusterService() = default;
  virtual void OnTopologyChange(const std::string& bucket) = 0;
};

struct ClusterOptions {
  Clock* clock = Clock::Real();
  // When true, nodes write through PosixEnv into `data_dir`; otherwise each
  // node gets a private in-memory filesystem.
  bool use_posix = false;
  std::string data_dir = "/tmp/couchkv";
  // Simulated fsync latency for in-memory node disks (0 = free). Stands in
  // for real disk sync cost when benchmarking durability/persistence.
  uint64_t simulated_fsync_us = 0;
  // Test hook: wraps the Env a new node gets as its private disk (e.g. in a
  // storage::FaultyEnv) before the node boots. Receives the node id and the
  // env built per the options above; returns the env to install. The
  // wrapper IS the node's disk from then on — it survives
  // CrashNode/RestartNode, so warmup recovers through it too.
  std::function<std::unique_ptr<storage::Env>(NodeId,
                                              std::unique_ptr<storage::Env>)>
      wrap_node_env;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Membership ---
  NodeId AddNode(uint32_t services = kAllServices);
  Node* node(NodeId id);
  std::vector<NodeId> node_ids() const;
  std::vector<NodeId> healthy_data_nodes() const;

  // The elected orchestrator: lowest-id healthy node (paper §4.3.1 — on
  // orchestrator crash "they will elect a new orchestrator immediately").
  NodeId orchestrator() const;

  // --- Buckets ---
  // Creates the bucket on every data-service node and wires replication.
  Status CreateBucket(const BucketConfig& config);
  std::shared_ptr<const ClusterMap> map(const std::string& bucket) const;
  std::vector<std::string> bucket_names() const;

  // --- Topology operations (run by the orchestrator) ---
  // Recomputes a balanced map over the current healthy data nodes and moves
  // vBuckets, with an atomic per-partition switchover.
  Status Rebalance();

  // Takes `id` out of service, promoting replica partitions to active.
  Status Failover(NodeId id);

  // --- Crash / restart (torture testing) ---
  // Kills node `id` like a process crash: its in-memory hash tables, disk
  // write queue, and DCP state are destroyed; its flusher may be stopped
  // between writing a batch and committing it (torn write — the storage
  // layer's recovery discards the uncommitted tail). The node's simulated
  // disk survives. Unlike Failover(), the cluster map is left untouched, so
  // requests for the node's partitions fail with TempFail until restart.
  Status CrashNode(NodeId id);

  // Boots a crashed node: recreates its buckets, recovers each hosted
  // vBucket from storage through the real Warmup path, rolls back replicas
  // elsewhere that ran ahead of the recovered actives (replicated-but-
  // unpersisted writes died in the crash), and re-wires replication.
  Status RestartNode(NodeId id);

  // --- Transport ---
  // All cross-node traffic (smart-client KV ops, DCP replication and
  // rebalance deliveries, GSI fan-out, XDCR shipments) is admitted through
  // this transport. Defaults to a DirectTransport (perfect network).
  net::Transport* transport() const {
    return transport_.load(std::memory_order_acquire);
  }
  // Installs a transport (e.g. net::FaultyTransport). `t` must outlive the
  // cluster; nullptr restores the built-in DirectTransport. Existing
  // callbacks pick the new transport up on their next delivery.
  void set_transport(net::Transport* t) {
    transport_.store(t != nullptr ? t : &direct_transport_,
                     std::memory_order_release);
  }

  // --- Durability (paper §2.3.2) ---
  // Blocks until `seqno` in (bucket, vb) satisfies `dur`, observing replica
  // high-seqnos and persisted-seqnos across the cluster.
  Status WaitForDurability(const std::string& bucket, uint16_t vb,
                           uint64_t seqno, const Durability& dur);

  // --- Service registry ---
  void RegisterService(const std::string& name,
                       std::shared_ptr<ClusterService> service);
  ClusterService* FindService(const std::string& name) const;

  // Drains all async machinery (DCP + flushers) — deterministic tests.
  void Quiesce();

  Clock* clock() const { return opts_.clock; }

  // Total number of vBucket moves performed by Rebalance() calls.
  uint64_t total_vbucket_moves() const {
    return total_moves_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<storage::Env> MakeNodeEnv(NodeId id);
  // Applies vBucket states + replication streams for `bucket` per `map`.
  void ApplyMap(const std::string& bucket,
                std::shared_ptr<const ClusterMap> map);
  void SetupReplication(const std::string& bucket, const ClusterMap& map);
  void PublishMap(const std::string& bucket,
                  std::shared_ptr<const ClusterMap> map);
  void NotifyServices(const std::string& bucket);
  Status MoveVBucket(const std::string& bucket, uint16_t vb, NodeId from,
                     NodeId to);

  ClusterOptions opts_;

  net::DirectTransport direct_transport_;
  std::atomic<net::Transport*> transport_{&direct_transport_};

  mutable Mutex mu_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_ GUARDED_BY(mu_);
  NodeId next_node_id_ GUARDED_BY(mu_) = 0;
  std::map<std::string, BucketConfig> bucket_configs_ GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const ClusterMap>> maps_
      GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<ClusterService>> services_
      GUARDED_BY(mu_);
  // Atomic so total_vbucket_moves() stays a lock-free accessor.
  std::atomic<uint64_t> total_moves_{0};
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_CLUSTER_H_
