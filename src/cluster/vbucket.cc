#include "cluster/vbucket.h"

#include "stats/trace.h"

namespace couchkv::cluster {

OpInstruments OpInstruments::In(stats::Scope* scope) {
  OpInstruments i;
  i.ops_get = scope->GetCounter("kv.ops_get");
  i.ops_mutate = scope->GetCounter("kv.ops_mutate");
  i.get_ns = scope->GetHistogram("kv.get_ns");
  i.mutate_ns = scope->GetHistogram("kv.mutate_ns");
  return i;
}

Status VBucket::CheckActive() const {
  if (state_ != VBucketState::kActive) {
    return Status::NotMyVBucket("vbucket " + std::to_string(id_) + " is " +
                                VBucketStateName(state_));
  }
  return Status::OK();
}

Status VBucket::CheckWritable() const {
  COUCHKV_RETURN_IF_ERROR(CheckActive());
  if (backpressure_ != nullptr &&
      backpressure_->load(std::memory_order_acquire)) {
    return Status::TempFail("disk write queue not draining (vbucket " +
                            std::to_string(id_) + ")");
  }
  return Status::OK();
}

kv::Document VBucket::MakeDoc(std::string_view key, std::string_view value,
                              const kv::DocMeta& meta) const {
  kv::Document doc;
  doc.key = std::string(key);
  doc.meta = meta;
  if (!meta.deleted) doc.value = std::string(value);
  return doc;
}

StatusOr<kv::GetResult> VBucket::Get(std::string_view key) {
  trace::Span span("kv.get", inst_.get_ns);
  LockGuard lock(op_mu_);
  span.Phase("dispatch");
  COUCHKV_RETURN_IF_ERROR(CheckActive());
  if (inst_.ops_get != nullptr) inst_.ops_get->Add();
  auto r = ht_.Get(key);
  span.Phase("cache");
  if (!r.ok()) return r;
  if (!r->resident) {
    // Read-through: the value was evicted; fetch it from the append-only
    // store and restore it into the cache (paper §4.3.3).
    storage::CouchFile* f = file();
    if (f == nullptr) return Status::Internal("non-resident, no storage");
    auto doc_or = f->Get(key);
    if (!doc_or.ok()) return doc_or.status();
    ht_.Restore(doc_or.value());
    span.Phase("disk");
    return ht_.Get(key);
  }
  return r;
}

StatusOr<kv::DocMeta> VBucket::Set(std::string_view key,
                                   std::string_view value, uint32_t flags,
                                   uint32_t expiry, uint64_t cas) {
  trace::Span span("kv.set", inst_.mutate_ns);
  LockGuard lock(op_mu_);
  span.Phase("dispatch");
  COUCHKV_RETURN_IF_ERROR(CheckWritable());
  if (inst_.ops_mutate != nullptr) inst_.ops_mutate->Add();
  auto meta = ht_.Set(key, value, flags, expiry, cas);
  span.Phase("cache");
  if (meta.ok()) {
    Emit(MakeDoc(key, value, meta.value()));
    span.Phase("sink");
  }
  return meta;
}

StatusOr<kv::DocMeta> VBucket::Add(std::string_view key,
                                   std::string_view value, uint32_t flags,
                                   uint32_t expiry) {
  trace::Span span("kv.add", inst_.mutate_ns);
  LockGuard lock(op_mu_);
  span.Phase("dispatch");
  COUCHKV_RETURN_IF_ERROR(CheckWritable());
  if (inst_.ops_mutate != nullptr) inst_.ops_mutate->Add();
  auto meta = ht_.Add(key, value, flags, expiry);
  span.Phase("cache");
  if (meta.ok()) {
    Emit(MakeDoc(key, value, meta.value()));
    span.Phase("sink");
  }
  return meta;
}

StatusOr<kv::DocMeta> VBucket::Replace(std::string_view key,
                                       std::string_view value, uint32_t flags,
                                       uint32_t expiry, uint64_t cas) {
  trace::Span span("kv.replace", inst_.mutate_ns);
  LockGuard lock(op_mu_);
  span.Phase("dispatch");
  COUCHKV_RETURN_IF_ERROR(CheckWritable());
  if (inst_.ops_mutate != nullptr) inst_.ops_mutate->Add();
  auto meta = ht_.Replace(key, value, flags, expiry, cas);
  span.Phase("cache");
  if (meta.ok()) {
    Emit(MakeDoc(key, value, meta.value()));
    span.Phase("sink");
  }
  return meta;
}

StatusOr<kv::DocMeta> VBucket::Remove(std::string_view key, uint64_t cas) {
  trace::Span span("kv.remove", inst_.mutate_ns);
  LockGuard lock(op_mu_);
  span.Phase("dispatch");
  COUCHKV_RETURN_IF_ERROR(CheckWritable());
  if (inst_.ops_mutate != nullptr) inst_.ops_mutate->Add();
  auto meta = ht_.Remove(key, cas);
  span.Phase("cache");
  if (meta.ok()) {
    Emit(MakeDoc(key, {}, meta.value()));
    span.Phase("sink");
  }
  return meta;
}

StatusOr<kv::GetResult> VBucket::GetAndLock(std::string_view key,
                                            uint64_t lock_ms) {
  trace::Span span("kv.getl", inst_.get_ns);
  LockGuard lock(op_mu_);
  COUCHKV_RETURN_IF_ERROR(CheckActive());
  if (inst_.ops_get != nullptr) inst_.ops_get->Add();
  auto r = ht_.GetAndLock(key, lock_ms);
  if (!r.ok()) return r;
  if (!r->resident) {
    storage::CouchFile* f = file();
    if (f != nullptr) {
      auto doc_or = f->Get(key);
      if (doc_or.ok()) {
        ht_.Restore(doc_or.value());
        r->doc.value = doc_or.value().value;
        r->resident = true;
      }
    }
  }
  return r;
}

Status VBucket::Unlock(std::string_view key, uint64_t cas) {
  LockGuard lock(op_mu_);
  COUCHKV_RETURN_IF_ERROR(CheckActive());
  return ht_.Unlock(key, cas);
}

StatusOr<kv::DocMeta> VBucket::Touch(std::string_view key, uint32_t expiry) {
  trace::Span span("kv.touch", inst_.mutate_ns);
  LockGuard lock(op_mu_);
  COUCHKV_RETURN_IF_ERROR(CheckWritable());
  if (inst_.ops_mutate != nullptr) inst_.ops_mutate->Add();
  auto meta = ht_.Touch(key, expiry);
  if (meta.ok()) {
    // Touch changes metadata only; emit so indexes/replicas see new expiry.
    auto cur = ht_.Get(key);
    if (cur.ok()) Emit(cur->doc);
  }
  return meta;
}

Status VBucket::ApplyXdcr(const kv::Document& doc) {
  LockGuard lock(op_mu_);
  COUCHKV_RETURN_IF_ERROR(CheckActive());
  auto meta = ht_.SetWithMeta(doc);
  if (!meta.ok()) return meta.status();
  kv::Document applied = doc;
  applied.meta = meta.value();
  Emit(applied);
  return Status::OK();
}

void VBucket::ApplyReplicated(const kv::Document& doc) {
  LockGuard lock(op_mu_);
  ht_.ApplyRemote(doc);
  Emit(doc);
}

}  // namespace couchkv::cluster
