// The cluster map (paper §4.1): which node hosts the active copy and which
// host replicas of each of the 1024 vBuckets, plus the version counter smart
// clients use to detect staleness.
#ifndef COUCHKV_CLUSTER_VBUCKET_MAP_H_
#define COUCHKV_CLUSTER_VBUCKET_MAP_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "cluster/types.h"

namespace couchkv::cluster {

// Hashes a document key to its vBucket, exactly as Figure 5: CRC32 of the
// key modulo the partition count.
inline uint16_t KeyToVBucket(std::string_view key,
                             uint16_t num_vbuckets = kNumVBuckets) {
  return static_cast<uint16_t>(Crc32(key) % num_vbuckets);
}

// Assignment of one vBucket: the active node plus ordered replica nodes.
struct VBucketEntry {
  NodeId active = kNoNode;
  std::vector<NodeId> replicas;
};

// A versioned snapshot of the whole mapping. Immutable once published;
// smart clients cache it and refresh on NotMyVBucket (paper §4.1).
struct ClusterMap {
  uint64_t version = 0;
  std::vector<VBucketEntry> entries;  // size kNumVBuckets

  ClusterMap() : entries(kNumVBuckets) {}

  NodeId ActiveFor(uint16_t vb) const { return entries[vb].active; }
  const std::vector<NodeId>& ReplicasFor(uint16_t vb) const {
    return entries[vb].replicas;
  }

  // Number of active vBuckets assigned to `node`.
  size_t CountActive(NodeId node) const;
};

// Computes a balanced assignment of vBuckets over `nodes` with
// `num_replicas` replicas each (replica i of vb goes to a node different
// from the active and from lower replicas). Deterministic.
ClusterMap BuildBalancedMap(const std::vector<NodeId>& nodes,
                            uint32_t num_replicas, uint64_t version);

// Computes a balanced target that moves as few active vBuckets as possible
// from `old_map` (what rebalance actually wants): nodes keep their current
// partitions up to their fair share; only the excess and the partitions of
// departed nodes are reassigned. Replicas are re-derived round-robin.
ClusterMap BuildMinimalMoveMap(const ClusterMap& old_map,
                               const std::vector<NodeId>& nodes,
                               uint32_t num_replicas, uint64_t version);

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_VBUCKET_MAP_H_
