#include "cluster/wire_service.h"

#include <utility>

#include "json/value.h"
#include "stats/registry.h"

namespace couchkv::cluster {

namespace wire = net::wire;

namespace {

// A response carrying only a status (and its human-readable cause in the
// value, the way memcached ships error text bodies).
wire::Message ErrorResp(const wire::Message& req, const Status& st) {
  wire::Message resp = wire::Message::Resp(req, wire::WireStatusFor(st.code()));
  resp.value = st.ToString();
  return resp;
}

void PackMeta(const kv::DocMeta& meta, wire::Message* resp) {
  resp->cas = meta.cas;
  wire::PutU64BE(&resp->extras, meta.seqno);
}

}  // namespace

WireService::WireService(Cluster* cluster, NodeId node_id, std::string bucket)
    : cluster_(cluster), node_id_(node_id), bucket_(std::move(bucket)) {}

wire::Message WireService::Handle(const wire::Message& req) {
  switch (static_cast<wire::Opcode>(req.opcode)) {
    case wire::Opcode::kNoop: {
      // The SocketTransport heartbeat: an unhealthy-but-listening node must
      // answer TempFail so admission legs fail exactly like they would
      // against a dead process, just with a crisper error.
      Node* n = cluster_->node(node_id_);
      if (n == nullptr || !n->healthy()) {
        return ErrorResp(req, Status::TempFail("node is down"));
      }
      return wire::Message::Resp(req, wire::kSuccess);
    }
    case wire::Opcode::kGet:
      return HandleGet(req, /*lock=*/false);
    case wire::Opcode::kGetLocked:
      return HandleGet(req, /*lock=*/true);
    case wire::Opcode::kSet:
    case wire::Opcode::kAdd:
    case wire::Opcode::kReplace:
      return HandleMutation(req);
    case wire::Opcode::kDelete:
      return HandleDelete(req);
    case wire::Opcode::kUnlockKey:
      return HandleUnlock(req);
    case wire::Opcode::kTouch:
      return HandleTouch(req);
    case wire::Opcode::kStat:
      return HandleStat(req);
    case wire::Opcode::kGetClusterMap:
      return HandleClusterMap(req);
  }
  wire::Message resp = wire::Message::Resp(req, wire::kUnknownCommand);
  resp.value = "unknown opcode";
  return resp;
}

wire::Message WireService::HandleGet(const wire::Message& req, bool lock) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty()) {
    return ErrorResp(req, Status::InvalidArgument("GET requires a key"));
  }
  StatusOr<kv::GetResult> r = [&]() -> StatusOr<kv::GetResult> {
    if (!lock) {
      if (!req.extras.empty()) {
        return Status::InvalidArgument("GET takes no extras");
      }
      return n->Get(bucket_, req.vbucket, req.key);
    }
    uint32_t lock_ms = 0;
    if (!wire::GetU32BE(req.extras, 0, &lock_ms) || req.extras.size() != 4) {
      return Status::InvalidArgument("GETL requires 4-byte lock duration");
    }
    return n->GetAndLock(bucket_, req.vbucket, req.key, lock_ms);
  }();
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.cas = r->doc.meta.cas;
  wire::PutU32BE(&resp.extras, r->doc.meta.flags);
  resp.value = r->doc.value;
  return resp;
}

wire::Message WireService::HandleMutation(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  uint32_t flags = 0;
  uint32_t expiry = 0;
  if (!wire::GetMutationExtras(req.extras, &flags, &expiry)) {
    return ErrorResp(
        req, Status::InvalidArgument("mutation requires 8-byte extras"));
  }
  if (req.key.empty()) {
    return ErrorResp(req, Status::InvalidArgument("mutation requires a key"));
  }
  StatusOr<kv::DocMeta> r = [&]() -> StatusOr<kv::DocMeta> {
    switch (static_cast<wire::Opcode>(req.opcode)) {
      case wire::Opcode::kSet:
        return n->Set(bucket_, req.vbucket, req.key, req.value, flags, expiry,
                      req.cas);
      case wire::Opcode::kAdd:
        if (req.cas != 0) {
          return Status::InvalidArgument("ADD takes no cas");
        }
        return n->Add(bucket_, req.vbucket, req.key, req.value, flags, expiry);
      case wire::Opcode::kReplace:
        return n->Replace(bucket_, req.vbucket, req.key, req.value, flags,
                          expiry, req.cas);
      default:
        return Status::Internal("non-mutation opcode in HandleMutation");
    }
  }();
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleDelete(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty() || !req.extras.empty()) {
    return ErrorResp(req,
                     Status::InvalidArgument("DELETE takes a key, no extras"));
  }
  StatusOr<kv::DocMeta> r = n->Remove(bucket_, req.vbucket, req.key, req.cas);
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleUnlock(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty() || req.cas == 0) {
    return ErrorResp(
        req, Status::InvalidArgument("UNLOCK requires a key and the lock cas"));
  }
  Status st = n->Unlock(bucket_, req.vbucket, req.key, req.cas);
  if (!st.ok()) return ErrorResp(req, st);
  return wire::Message::Resp(req, wire::kSuccess);
}

wire::Message WireService::HandleTouch(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  uint32_t expiry = 0;
  if (req.key.empty() || req.extras.size() != 4 ||
      !wire::GetU32BE(req.extras, 0, &expiry)) {
    return ErrorResp(
        req, Status::InvalidArgument("TOUCH requires a key and 4-byte expiry"));
  }
  StatusOr<kv::DocMeta> r = n->Touch(bucket_, req.vbucket, req.key, expiry);
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleStat(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  StatusOr<stats::Snapshot> snap = n->Stats(req.key);
  if (!snap.ok()) return ErrorResp(req, snap.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.value = stats::ToJson(*snap);
  return resp;
}

wire::Message WireService::HandleClusterMap(const wire::Message& req) {
  const std::string& bucket = req.key.empty() ? bucket_ : req.key;
  std::shared_ptr<const ClusterMap> map = cluster_->map(bucket);
  if (map == nullptr) {
    return ErrorResp(req, Status::NotFound("no such bucket: " + bucket));
  }
  json::Value::Object doc;
  doc["bucket"] = json::Value::Str(bucket);
  doc["num_vbuckets"] = json::Value::Int(kNumVBuckets);
  doc["map_version"] = json::Value::Int(static_cast<int64_t>(map->version));
  json::Value::Array nodes;
  for (NodeId id : cluster_->node_ids()) {
    json::Value::Object entry;
    entry["id"] = json::Value::Int(id);
    entry["port"] = json::Value::Int(cluster_->wire_port(id));
    nodes.push_back(json::Value::MakeObject(std::move(entry)));
  }
  doc["nodes"] = json::Value::MakeArray(std::move(nodes));
  json::Value::Array active;
  active.reserve(map->entries.size());
  for (const VBucketEntry& e : map->entries) {
    // kNoNode serializes as -1: JSON numbers are doubles and UINT32_MAX
    // would silently round.
    active.push_back(json::Value::Int(
        e.active == kNoNode ? -1 : static_cast<int64_t>(e.active)));
  }
  doc["active"] = json::Value::MakeArray(std::move(active));
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.value = json::Value::MakeObject(std::move(doc)).ToJson();
  return resp;
}

}  // namespace couchkv::cluster
