#include "cluster/wire_service.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "json/value.h"
#include "stats/flight_recorder.h"
#include "stats/registry.h"
#include "stats/trace.h"

namespace couchkv::cluster {

namespace wire = net::wire;

namespace {

// A response carrying only a status (and its human-readable cause in the
// value, the way memcached ships error text bodies).
wire::Message ErrorResp(const wire::Message& req, const Status& st) {
  wire::Message resp = wire::Message::Resp(req, wire::WireStatusFor(st.code()));
  resp.value = st.ToString();
  return resp;
}

void PackMeta(const kv::DocMeta& meta, wire::Message* resp) {
  resp->cas = meta.cas;
  wire::PutU64BE(&resp->extras, meta.seqno);
}

bool IsMutationOpcode(uint8_t op) {
  switch (static_cast<wire::Opcode>(op)) {
    case wire::Opcode::kSet:
    case wire::Opcode::kAdd:
    case wire::Opcode::kReplace:
    case wire::Opcode::kDelete:
      return true;
    default:
      return false;
  }
}

// Nanosecond interval -> saturated u32 microseconds (the framed-extra field
// width; 71 minutes saturates, which is far beyond any served op).
uint32_t NanosToU32Micros(uint64_t nanos) {
  const uint64_t us = nanos / 1000;
  return us > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(us);
}

}  // namespace

WireService::WireService(Cluster* cluster, NodeId node_id, std::string bucket)
    : cluster_(cluster), node_id_(node_id), bucket_(std::move(bucket)) {
  // The node's scope exists for the node's whole lifetime; holding the
  // shared_ptr keeps the metric storage valid even across a crash (the
  // registry drops the scope from exposition only at ~Node).
  node_scope_ = stats::Registry::Global().GetScope(
      "node." + std::to_string(node_id_));
  stat_ops_ = node_scope_->GetCounter("wire.ops");
  h_server_ = node_scope_->GetHistogram("wire.server_ns");
  h_dispatch_ = node_scope_->GetHistogram("wire.dispatch_ns");
  h_engine_ = node_scope_->GetHistogram("wire.engine_ns");
  h_replicate_ = node_scope_->GetHistogram("wire.replicate_ns");
  h_persist_ = node_scope_->GetHistogram("wire.persist_ns");
}

wire::Message WireService::Handle(const wire::Message& req,
                                  const net::RequestContext& ctx) {
  Node* n = cluster_->node(node_id_);
  Clock* clock = n != nullptr ? n->clock() : Clock::Real();
  const uint64_t t_recv =
      ctx.received_nanos != 0 ? ctx.received_nanos : clock->NowNanos();

  // Adopt the caller's trace context (if any) as this thread's ambient
  // trace: nested engine spans and outbound transport hops tag themselves
  // with it, which is what makes a cross-node op one trace instead of two.
  wire::TraceFrame tf;
  const bool traced = wire::GetTraceFrame(req.framing, &tf);
  trace::TraceContext tc;
  if (traced) {
    tc.trace_id = tf.trace_id;
    tc.parent_span_id = tf.parent_span_id;
    tc.flags = tf.flags;
  }
  trace::ScopedTrace scoped(tc);

  stats::FlightRecorder* rec = n != nullptr ? n->flight_recorder() : nullptr;
  const uint64_t token =
      rec != nullptr
          ? rec->BeginOp(req.opcode, req.vbucket, tc.trace_id, t_recv)
          : 0;

  // Dispatch phase: everything between the socket read and the engine call
  // (frame decode plus in-order queueing behind earlier pipelined frames).
  const uint64_t t_dispatch_end = clock->NowNanos();
  wire::Message resp = DispatchOpcode(req);
  const uint64_t t_engine_end = clock->NowNanos();
  uint64_t t_replicate_end = t_engine_end;
  uint64_t t_persist_end = t_engine_end;

  // Durability: a mutation carrying a durability framed extra blocks here
  // until the requirement holds. The replicate and persist waits run (and
  // are timed) separately against one shared deadline, so the response's
  // phase breakdown attributes the stall to the right machinery.
  wire::DurabilityFrame dur;
  if (resp.status == wire::kSuccess && IsMutationOpcode(req.opcode) &&
      wire::GetDurabilityFrame(req.framing, &dur) &&
      (dur.replicate_to > 0 || dur.persist_to > 0)) {
    uint64_t seqno = 0;
    if (!wire::GetU64BE(resp.extras, 0, &seqno)) {
      resp = ErrorResp(req, Status::Internal(
                                "durable mutation response carries no seqno"));
    } else {
      const uint64_t timeout_ms =
          dur.timeout_ms != 0 ? dur.timeout_ms : Durability{}.timeout_ms;
      Status st = Status::OK();
      if (dur.replicate_to > 0) {
        Durability replicate_only;
        replicate_only.replicate_to = dur.replicate_to;
        replicate_only.persist_to = 0;
        replicate_only.timeout_ms = timeout_ms;
        st = cluster_->WaitForDurability(bucket_, req.vbucket, seqno,
                                         replicate_only);
      }
      t_replicate_end = clock->NowNanos();
      t_persist_end = t_replicate_end;
      if (st.ok() && dur.persist_to > 0) {
        const uint64_t spent_ms = (t_replicate_end - t_recv) / 1'000'000;
        Durability persist_only;
        persist_only.replicate_to = 0;
        persist_only.persist_to = dur.persist_to;
        persist_only.timeout_ms =
            timeout_ms > spent_ms ? timeout_ms - spent_ms : 1;
        st = cluster_->WaitForDurability(bucket_, req.vbucket, seqno,
                                         persist_only);
        t_persist_end = clock->NowNanos();
      }
      // The mutation itself succeeded; a failed durability wait reports the
      // ambiguous outcome (typically Timeout) — the write may exist, its
      // durability requirement was not met in time.
      if (!st.ok()) resp = ErrorResp(req, st);
    }
  }

  const uint64_t t_done = clock->NowNanos();
  wire::ServerDuration sd;
  sd.total_us = NanosToU32Micros(t_done - t_recv);
  sd.dispatch_us = NanosToU32Micros(t_dispatch_end - t_recv);
  sd.engine_us = NanosToU32Micros(t_engine_end - t_dispatch_end);
  sd.replicate_us = NanosToU32Micros(t_replicate_end - t_engine_end);
  sd.persist_us = NanosToU32Micros(t_persist_end - t_replicate_end);
  // Only flex requesters understand flex responses; a classic client gets
  // the exact frames it always got.
  if (req.is_flex()) wire::PutServerDurationFrame(&resp.framing, sd);

  stat_ops_->Add();
  h_server_->Record(t_done - t_recv);
  h_dispatch_->Record(t_dispatch_end - t_recv);
  h_engine_->Record(t_engine_end - t_dispatch_end);
  h_replicate_->Record(t_replicate_end - t_engine_end);
  h_persist_->Record(t_persist_end - t_replicate_end);

  if (rec != nullptr) {
    stats::OpRecord r;
    r.trace_id = tc.trace_id;
    r.start_nanos = t_recv;
    r.key_hash = Crc32(req.key);
    r.total_us = sd.total_us;
    r.dispatch_us = sd.dispatch_us;
    r.engine_us = sd.engine_us;
    r.replicate_us = sd.replicate_us;
    r.persist_us = sd.persist_us;
    r.vbucket = req.vbucket;
    r.status = resp.status;
    r.opcode = req.opcode;
    rec->Record(r);
    rec->EndOp(token);
  }

  const uint64_t threshold_us = trace::SlowOpThresholdUs();
  if (threshold_us != 0 && sd.total_us >= threshold_us &&
      COUCHKV_LOG_ENABLED(kWarn)) {
    std::ostringstream msg;
    msg << "slow wire op " << wire::OpcodeName(req.opcode) << " on node "
        << node_id_ << " took " << sd.total_us << "us (dispatch="
        << sd.dispatch_us << "us engine=" << sd.engine_us << "us replicate="
        << sd.replicate_us << "us persist=" << sd.persist_us << "us)";
    if (tc.trace_id != 0) {
      msg << " trace=" << tc.trace_id;
    }
    if (rec != nullptr) {
      msg << " flight-recorder tail: " << rec->ToJson(t_done, 4);
    }
    LOG_WARN << msg.str();
  }
  return resp;
}

wire::Message WireService::DispatchOpcode(const wire::Message& req) {
  switch (static_cast<wire::Opcode>(req.opcode)) {
    case wire::Opcode::kNoop: {
      // The SocketTransport heartbeat: an unhealthy-but-listening node must
      // answer TempFail so admission legs fail exactly like they would
      // against a dead process, just with a crisper error.
      Node* n = cluster_->node(node_id_);
      if (n == nullptr || !n->healthy()) {
        return ErrorResp(req, Status::TempFail("node is down"));
      }
      return wire::Message::Resp(req, wire::kSuccess);
    }
    case wire::Opcode::kGet:
      return HandleGet(req, /*lock=*/false);
    case wire::Opcode::kGetLocked:
      return HandleGet(req, /*lock=*/true);
    case wire::Opcode::kSet:
    case wire::Opcode::kAdd:
    case wire::Opcode::kReplace:
      return HandleMutation(req);
    case wire::Opcode::kDelete:
      return HandleDelete(req);
    case wire::Opcode::kUnlockKey:
      return HandleUnlock(req);
    case wire::Opcode::kTouch:
      return HandleTouch(req);
    case wire::Opcode::kStat:
      return HandleStat(req);
    case wire::Opcode::kGetClusterMap:
      return HandleClusterMap(req);
    case wire::Opcode::kObserveTrace:
      return HandleObserveTrace(req);
  }
  wire::Message resp = wire::Message::Resp(req, wire::kUnknownCommand);
  resp.value = "unknown opcode";
  return resp;
}

wire::Message WireService::HandleGet(const wire::Message& req, bool lock) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty()) {
    return ErrorResp(req, Status::InvalidArgument("GET requires a key"));
  }
  StatusOr<kv::GetResult> r = [&]() -> StatusOr<kv::GetResult> {
    if (!lock) {
      if (!req.extras.empty()) {
        return Status::InvalidArgument("GET takes no extras");
      }
      return n->Get(bucket_, req.vbucket, req.key);
    }
    uint32_t lock_ms = 0;
    if (!wire::GetU32BE(req.extras, 0, &lock_ms) || req.extras.size() != 4) {
      return Status::InvalidArgument("GETL requires 4-byte lock duration");
    }
    return n->GetAndLock(bucket_, req.vbucket, req.key, lock_ms);
  }();
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.cas = r->doc.meta.cas;
  wire::PutU32BE(&resp.extras, r->doc.meta.flags);
  resp.value = r->doc.value;
  return resp;
}

wire::Message WireService::HandleMutation(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  uint32_t flags = 0;
  uint32_t expiry = 0;
  if (!wire::GetMutationExtras(req.extras, &flags, &expiry)) {
    return ErrorResp(
        req, Status::InvalidArgument("mutation requires 8-byte extras"));
  }
  if (req.key.empty()) {
    return ErrorResp(req, Status::InvalidArgument("mutation requires a key"));
  }
  StatusOr<kv::DocMeta> r = [&]() -> StatusOr<kv::DocMeta> {
    switch (static_cast<wire::Opcode>(req.opcode)) {
      case wire::Opcode::kSet:
        return n->Set(bucket_, req.vbucket, req.key, req.value, flags, expiry,
                      req.cas);
      case wire::Opcode::kAdd:
        if (req.cas != 0) {
          return Status::InvalidArgument("ADD takes no cas");
        }
        return n->Add(bucket_, req.vbucket, req.key, req.value, flags, expiry);
      case wire::Opcode::kReplace:
        return n->Replace(bucket_, req.vbucket, req.key, req.value, flags,
                          expiry, req.cas);
      default:
        return Status::Internal("non-mutation opcode in HandleMutation");
    }
  }();
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleDelete(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty() || !req.extras.empty()) {
    return ErrorResp(req,
                     Status::InvalidArgument("DELETE takes a key, no extras"));
  }
  StatusOr<kv::DocMeta> r = n->Remove(bucket_, req.vbucket, req.key, req.cas);
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleUnlock(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  if (req.key.empty() || req.cas == 0) {
    return ErrorResp(
        req, Status::InvalidArgument("UNLOCK requires a key and the lock cas"));
  }
  Status st = n->Unlock(bucket_, req.vbucket, req.key, req.cas);
  if (!st.ok()) return ErrorResp(req, st);
  return wire::Message::Resp(req, wire::kSuccess);
}

wire::Message WireService::HandleTouch(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  uint32_t expiry = 0;
  if (req.key.empty() || req.extras.size() != 4 ||
      !wire::GetU32BE(req.extras, 0, &expiry)) {
    return ErrorResp(
        req, Status::InvalidArgument("TOUCH requires a key and 4-byte expiry"));
  }
  StatusOr<kv::DocMeta> r = n->Touch(bucket_, req.vbucket, req.key, expiry);
  if (!r.ok()) return ErrorResp(req, r.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  PackMeta(*r, &resp);
  return resp;
}

wire::Message WireService::HandleStat(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr) return ErrorResp(req, Status::TempFail("node is gone"));
  StatusOr<stats::Snapshot> snap = n->Stats(req.key);
  if (!snap.ok()) return ErrorResp(req, snap.status());
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.value = stats::ToJson(*snap);
  return resp;
}

wire::Message WireService::HandleClusterMap(const wire::Message& req) {
  const std::string& bucket = req.key.empty() ? bucket_ : req.key;
  std::shared_ptr<const ClusterMap> map = cluster_->map(bucket);
  if (map == nullptr) {
    return ErrorResp(req, Status::NotFound("no such bucket: " + bucket));
  }
  json::Value::Object doc;
  doc["bucket"] = json::Value::Str(bucket);
  doc["num_vbuckets"] = json::Value::Int(kNumVBuckets);
  doc["map_version"] = json::Value::Int(static_cast<int64_t>(map->version));
  json::Value::Array nodes;
  for (NodeId id : cluster_->node_ids()) {
    json::Value::Object entry;
    entry["id"] = json::Value::Int(id);
    entry["port"] = json::Value::Int(cluster_->wire_port(id));
    nodes.push_back(json::Value::MakeObject(std::move(entry)));
  }
  doc["nodes"] = json::Value::MakeArray(std::move(nodes));
  json::Value::Array active;
  active.reserve(map->entries.size());
  for (const VBucketEntry& e : map->entries) {
    // kNoNode serializes as -1: JSON numbers are doubles and UINT32_MAX
    // would silently round.
    active.push_back(json::Value::Int(
        e.active == kNoNode ? -1 : static_cast<int64_t>(e.active)));
  }
  doc["active"] = json::Value::MakeArray(std::move(active));
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  resp.value = json::Value::MakeObject(std::move(doc)).ToJson();
  return resp;
}

wire::Message WireService::HandleObserveTrace(const wire::Message& req) {
  Node* n = cluster_->node(node_id_);
  if (n == nullptr || !n->healthy()) {
    return ErrorResp(req, Status::TempFail("node is down"));
  }
  // Key: empty = whole recorder; otherwise a decimal trace id to filter by.
  uint64_t filter = 0;
  if (!req.key.empty()) {
    char* end = nullptr;
    filter = std::strtoull(req.key.c_str(), &end, 10);
    if (end == req.key.c_str() || *end != '\0' || filter == 0) {
      return ErrorResp(req, Status::InvalidArgument(
                                "OBSERVE_TRACE key must be a decimal "
                                "trace id (or empty for all)"));
    }
  }
  const std::string dump = n->flight_recorder()->ToJson(
      n->clock()->NowNanos(), /*max_records=*/0, filter);
  wire::Message resp = wire::Message::Resp(req, wire::kSuccess);
  // Splice the node id into the recorder's {"completed":... object.
  resp.value =
      "{\"node\":" + std::to_string(node_id_) + "," + dump.substr(1);
  return resp;
}

}  // namespace couchkv::cluster
