// A vBucket: one of the 1024 logical partitions of a bucket, as hosted on a
// particular node. Combines the object-managed cache (HashTable) with the
// append-only store (CouchFile) and funnels every mutation into the bucket's
// DCP producer and disk-write queue via the mutation sink.
//
// Front-end operations are serialized per vBucket (op mutex); this is what
// guarantees DCP sees seqnos in order.
#ifndef COUCHKV_CLUSTER_VBUCKET_H_
#define COUCHKV_CLUSTER_VBUCKET_H_

#include <atomic>
#include <functional>
#include <memory>

#include "cluster/types.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "kv/hash_table.h"
#include "stats/registry.h"
#include "storage/couch_file.h"

namespace couchkv::cluster {

// Front-end op accounting shared by all vBuckets of a bucket: op counts plus
// the latency histograms per-op trace::Spans record into.
struct OpInstruments {
  stats::Counter* ops_get = nullptr;
  stats::Counter* ops_mutate = nullptr;  // set/add/replace/remove/touch
  Histogram* get_ns = nullptr;
  Histogram* mutate_ns = nullptr;

  // Resolves the "kv.ops_*"/"kv.*_ns" metrics in `scope`.
  static OpInstruments In(stats::Scope* scope);
};

class VBucket {
 public:
  // Invoked (under the op lock) for every locally-originated or replicated
  // mutation; the Bucket wires this to DCP + the disk write queue.
  using MutationSink = std::function<void(const kv::Document&)>;

  // `instruments` and `cache_counters`, when given, must outlive the vBucket
  // (the bucket's stats scope keeps them alive).
  VBucket(uint16_t id, VBucketState state, Clock* clock,
          kv::EvictionPolicy eviction,
          const OpInstruments* instruments = nullptr,
          const kv::CacheCounters* cache_counters = nullptr)
      : id_(id),
        inst_(instruments != nullptr ? *instruments : OpInstruments{}),
        state_(state),
        ht_(clock, eviction, cache_counters) {}

  uint16_t id() const { return id_; }

  VBucketState state() const { return state_.load(std::memory_order_acquire); }
  // May be called inside WithOpLock (the rebalance switchover does this).
  void set_state(VBucketState s) {
    state_.store(s, std::memory_order_release);
  }

  void set_sink(MutationSink sink) EXCLUDES(op_mu_) {
    LockGuard lock(op_mu_);
    sink_ = std::move(sink);
  }
  // Wires the bucket's disk-failure backpressure flag: while `flag` is true,
  // front-end mutations fail with TempFail before touching the cache (the
  // paper's §3.1.1 temporary-failure condition — the client backs off and
  // retries). Reads are unaffected. `flag` must outlive the vBucket.
  void set_backpressure_flag(const std::atomic<bool>* flag) {
    backpressure_ = flag;
  }
  void set_file(std::shared_ptr<storage::CouchFile> file) EXCLUDES(file_mu_) {
    LockGuard lock(file_mu_);
    file_ = std::move(file);
  }
  // The pointer read is locked (the flusher races EnsureStorage here), but
  // the returned file may be used lock-free: file_ only ever transitions
  // null -> non-null and the CouchFile is internally synchronized. file_ sits
  // under its own leaf mutex — NOT op_mu_ — because DCP backfill reads it
  // while the rebalance switchover pumps the producer inside WithOpLock;
  // routing it through op_mu_ would self-deadlock that path.
  storage::CouchFile* file() const EXCLUDES(file_mu_) {
    LockGuard lock(file_mu_);
    return file_.get();
  }
  kv::HashTable& hash_table() { return ht_; }
  const kv::HashTable& hash_table() const { return ht_; }

  // --- Front-end (active-state) operations ---
  // All return NotMyVBucket unless the vBucket is active.

  StatusOr<kv::GetResult> Get(std::string_view key) EXCLUDES(op_mu_);
  StatusOr<kv::DocMeta> Set(std::string_view key, std::string_view value,
                            uint32_t flags, uint32_t expiry, uint64_t cas)
      EXCLUDES(op_mu_);
  StatusOr<kv::DocMeta> Add(std::string_view key, std::string_view value,
                            uint32_t flags, uint32_t expiry)
      EXCLUDES(op_mu_);
  StatusOr<kv::DocMeta> Replace(std::string_view key, std::string_view value,
                                uint32_t flags, uint32_t expiry, uint64_t cas)
      EXCLUDES(op_mu_);
  StatusOr<kv::DocMeta> Remove(std::string_view key, uint64_t cas)
      EXCLUDES(op_mu_);
  StatusOr<kv::GetResult> GetAndLock(std::string_view key, uint64_t lock_ms)
      EXCLUDES(op_mu_);
  Status Unlock(std::string_view key, uint64_t cas) EXCLUDES(op_mu_);
  StatusOr<kv::DocMeta> Touch(std::string_view key, uint32_t expiry)
      EXCLUDES(op_mu_);

  // --- Replication-state operations ---

  // Applies a mutation received over DCP (replica / rebalance apply path).
  // Feeds the sink so the mutation persists and re-streams.
  void ApplyReplicated(const kv::Document& doc) EXCLUDES(op_mu_);

  // Applies a document arriving over XDCR, running conflict resolution
  // (paper §4.6.1). Returns KeyExists if the local version wins. Allowed in
  // active state only.
  Status ApplyXdcr(const kv::Document& doc) EXCLUDES(op_mu_);

  // --- Common ---
  uint64_t high_seqno() const { return ht_.high_seqno(); }
  uint64_t persisted_seqno() const { return ht_.persisted_seqno(); }

  // Runs `fn` with the op lock held — used for the atomic rebalance
  // switchover (paper §4.3.1).
  void WithOpLock(const std::function<void()>& fn) EXCLUDES(op_mu_) {
    LockGuard lock(op_mu_);
    fn();
  }

 private:
  Status CheckActive() const REQUIRES(op_mu_);
  // CheckActive + disk-failure backpressure; gate for every front-end
  // mutation (Set/Add/Replace/Remove/Touch). Replication applies bypass it:
  // refusing those would stall DCP, not shed load.
  Status CheckWritable() const REQUIRES(op_mu_);
  void Emit(const kv::Document& doc) REQUIRES(op_mu_) {
    if (sink_) sink_(doc);
  }
  // Builds the Document for a just-applied mutation so it can be emitted.
  kv::Document MakeDoc(std::string_view key, std::string_view value,
                       const kv::DocMeta& meta) const;

  const uint16_t id_;
  OpInstruments inst_;  // null members = reporting disabled
  mutable Mutex op_mu_{"cluster.vbucket.op"};
  // Leaf lock under op_mu_: guards only the file pointer, held only for the
  // accessor-sized critical sections above, so file() stays callable from
  // code running inside WithOpLock (DCP backfill during rebalance).
  mutable Mutex file_mu_ ACQUIRED_AFTER(op_mu_){"cluster.vbucket.file"};
  COUCHKV_LOCK_ORDER("cluster.vbucket.op", "cluster.vbucket.file");
  COUCHKV_LOCK_ORDER("cluster.node", "cluster.vbucket.op");
  std::atomic<VBucketState> state_;
  // Bucket-owned disk-failure flag (null = no throttle); read-only here.
  const std::atomic<bool>* backpressure_ = nullptr;
  kv::HashTable ht_;  // internally synchronized
  std::shared_ptr<storage::CouchFile> file_ GUARDED_BY(file_mu_);
  MutationSink sink_ GUARDED_BY(op_mu_);
};

}  // namespace couchkv::cluster

#endif  // COUCHKV_CLUSTER_VBUCKET_H_
