#include "cluster/node.h"

namespace couchkv::cluster {

Node::Node(NodeId id, uint32_t services, Clock* clock,
           std::unique_ptr<storage::Env> env)
    : id_(id),
      services_(services),
      clock_(clock),
      env_(env ? std::move(env) : storage::Env::NewMemEnv()),
      dispatcher_(std::make_unique<dcp::Dispatcher>()) {
  scope_ =
      stats::Registry::Global().GetScope("node." + std::to_string(id_));
  stat_scrapes_ = scope_->GetCounter("node.stat_scrapes");
  boots_ = scope_->GetCounter("node.boots");
  scope_->GetGauge("node.healthy")->Set(1);
}

Node::~Node() {
  // The wire listener goes first: its connection threads dispatch into
  // bucket state.
  StopWireServer();
  // Buckets must go before the dispatcher: their destructors unregister
  // producers.
  {
    LockGuard lock(mu_);
    buckets_.clear();
  }
  dispatcher_->Stop();
  stats::Registry::Global().DropScope(scope_->name());
}

void Node::Crash() {
  set_healthy(false);
  crashed_.store(true, std::memory_order_release);
  scope_->GetGauge("node.healthy")->Set(0);
  // Kill the wire listener before anything else: a crashed process has no
  // sockets, and the connection threads must be joined before the buckets
  // they dispatch into are destroyed.
  StopWireServer();
  // Stop the pump thread before freeing buckets: stream callbacks and
  // backfills on this dispatcher touch bucket state.
  dispatcher_->Stop();
  // A crashed process loses its flight recorder with the rest of its
  // memory; a rebooted node starts recording from an empty ring.
  flight_recorder_.Clear();
  LockGuard lock(mu_);
  for (auto& [name, b] : buckets_) b->Kill();
  buckets_.clear();
}

void Node::Boot() {
  LockGuard lock(mu_);
  buckets_.clear();
  dispatcher_ = std::make_unique<dcp::Dispatcher>();
  crashed_.store(false, std::memory_order_release);
  boots_->Add();
}

Status Node::CreateBucket(const BucketConfig& config) {
  if (!HasService(kDataService)) {
    return Status::Unsupported("node runs no data service");
  }
  LockGuard lock(mu_);
  if (buckets_.count(config.name)) {
    return Status::KeyExists("bucket exists: " + config.name);
  }
  buckets_[config.name] = std::make_shared<Bucket>(config, id_, env_.get(),
                                                   clock_, dispatcher_.get());
  return Status::OK();
}

std::shared_ptr<Bucket> Node::bucket(const std::string& name) {
  LockGuard lock(mu_);
  auto it = buckets_.find(name);
  return it == buckets_.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<Bucket>> Node::Route(const std::string& bucket,
                                              uint16_t vb) {
  if (!healthy()) return Status::TempFail("node is down");
  if (!HasService(kDataService)) {
    return Status::Unsupported("no data service on node");
  }
  std::shared_ptr<Bucket> b = this->bucket(bucket);
  if (b == nullptr) return Status::NotFound("no such bucket: " + bucket);
  if (vb >= kNumVBuckets) return Status::InvalidArgument("bad vbucket");
  return b;
}

StatusOr<kv::GetResult> Node::Get(const std::string& bucket, uint16_t vb,
                                  std::string_view key) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Get(key);
}

StatusOr<kv::DocMeta> Node::Set(const std::string& bucket, uint16_t vb,
                                std::string_view key, std::string_view value,
                                uint32_t flags, uint32_t expiry,
                                uint64_t cas) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Set(key, value, flags, expiry, cas);
}

StatusOr<kv::DocMeta> Node::Add(const std::string& bucket, uint16_t vb,
                                std::string_view key, std::string_view value,
                                uint32_t flags, uint32_t expiry) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Add(key, value, flags, expiry);
}

StatusOr<kv::DocMeta> Node::Replace(const std::string& bucket, uint16_t vb,
                                    std::string_view key,
                                    std::string_view value, uint32_t flags,
                                    uint32_t expiry, uint64_t cas) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Replace(key, value, flags, expiry, cas);
}

StatusOr<kv::DocMeta> Node::Remove(const std::string& bucket, uint16_t vb,
                                   std::string_view key, uint64_t cas) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Remove(key, cas);
}

StatusOr<kv::GetResult> Node::GetAndLock(const std::string& bucket,
                                         uint16_t vb, std::string_view key,
                                         uint64_t lock_ms) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->GetAndLock(key, lock_ms);
}

Status Node::Unlock(const std::string& bucket, uint16_t vb,
                    std::string_view key, uint64_t cas) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Unlock(key, cas);
}

StatusOr<kv::DocMeta> Node::Touch(const std::string& bucket, uint16_t vb,
                                  std::string_view key, uint32_t expiry) {
  auto b = Route(bucket, vb);
  if (!b.ok()) return b.status();
  return (*b)->vbucket(vb)->Touch(key, expiry);
}

Status Node::StartWireServer(net::TcpServer::Handler handler) {
  LockGuard lock(wire_mu_);
  if (wire_server_ != nullptr) {
    return Status::InvalidArgument("wire server already running");
  }
  wire_handler_ = std::move(handler);
  net::TcpServerOptions opts;
  opts.clock = clock_;  // receive stamps share the node's time base
  auto server = std::make_unique<net::TcpServer>(wire_handler_, opts);
  COUCHKV_RETURN_IF_ERROR(server->Start());
  wire_port_.store(server->port(), std::memory_order_release);
  wire_server_ = std::move(server);
  return Status::OK();
}

Status Node::RestartWireServer() {
  LockGuard lock(wire_mu_);
  // No handler = wire serving was never enabled; already running = the node
  // was partitioned, not crashed, and its listener survived. Both are fine.
  if (wire_handler_ == nullptr || wire_server_ != nullptr) {
    return Status::OK();
  }
  net::TcpServerOptions opts;
  opts.clock = clock_;
  auto server = std::make_unique<net::TcpServer>(wire_handler_, opts);
  COUCHKV_RETURN_IF_ERROR(server->Start());
  wire_port_.store(server->port(), std::memory_order_release);
  wire_server_ = std::move(server);
  return Status::OK();
}

void Node::StopWireServer() {
  std::unique_ptr<net::TcpServer> server;
  {
    LockGuard lock(wire_mu_);
    server = std::move(wire_server_);
    wire_port_.store(0, std::memory_order_release);
  }
  // Stop (and join connection threads) outside wire_mu_: handlers may call
  // back into this node, and keeping the lock across the join invites
  // ordering bugs if a handler ever needs wire state.
  if (server != nullptr) server->Stop();
}

StatusOr<stats::Snapshot> Node::Stats(const std::string& group) {
  if (!healthy()) return Status::TempFail("node is down");
  stat_scrapes_->Add();
  // Pin buckets so a concurrent crash cannot free them mid-scrape.
  std::vector<std::shared_ptr<Bucket>> pinned;
  {
    LockGuard lock(mu_);
    pinned.reserve(buckets_.size());
    for (auto& [name, b] : buckets_) pinned.push_back(b);
  }
  stats::Snapshot out;
  for (auto& b : pinned) {
    b->UpdateScrapeGauges();
    b->stats_scope()->Collect(&out, group);
  }
  scope_->Collect(&out, group);
  // The process-wide wire scope: listener byte/frame/per-opcode counters
  // (every in-process TcpServer shares it, so an external poller sees the
  // process total — the per-node phase histograms live in scope_ above).
  stats::Registry::Global().GetScope("wire")->Collect(&out, group);
  // This node's slice of the process-wide transport scope: the metrics
  // keyed by destination node carry our id.
  stats::Snapshot transport;
  stats::Registry::Global().GetScope("transport")->Collect(&transport, group);
  const std::string prefix = "transport.node." + std::to_string(id_) + ".";
  for (auto& [name, v] : transport) {
    if (name.rfind(prefix, 0) == 0) out.emplace(name, v);
  }
  return out;
}

}  // namespace couchkv::cluster
