#include "cluster/cluster.h"

#include <sys/stat.h>

#include <algorithm>
#include <thread>

#include "cluster/wire_service.h"
#include "common/logging.h"

namespace couchkv::cluster {

namespace {
// Stream name prefix for intra-cluster replication consumers.
std::string ReplStreamName(NodeId dst) {
  return "intra-repl:" + std::to_string(dst);
}
constexpr const char* kMoverStream = "rebalance-mover";
}  // namespace

Cluster::Cluster(ClusterOptions opts) : opts_(std::move(opts)) {
  if (opts_.use_posix) {
    ::mkdir(opts_.data_dir.c_str(), 0755);
  }
  scope_ = stats::Registry::Global().GetScope("cluster");
  failover_manual_ = scope_->GetCounter("failover.manual_total");
  failover_auto_ = scope_->GetCounter("failover.auto_total");
  failover_vetoed_ = scope_->GetCounter("failover.vetoed");
  recovery_delta_ = scope_->GetCounter("recovery.delta_total");
  recovery_rollback_vbs_ = scope_->GetCounter("recovery.rollback_vbuckets");
  recovery_resurrected_vbs_ =
      scope_->GetCounter("recovery.resurrected_vbuckets");
  promotion_lag_ = scope_->GetHistogram("failover.promotion_lag");
}

Cluster::~Cluster() {
  // Wire listeners first, and strictly before mu_ is taken: their handler
  // threads call back into node()/map(), which lock mu_ — stopping them
  // while holding it would deadlock the join.
  StopWireServers();
  LockGuard lock(mu_);
  // Stop every node's DCP pump before destroying any node: replication
  // callbacks registered on node A deliver into node B's vBuckets, so no
  // pump thread may survive the first ~Node.
  for (auto& [id, n] : nodes_) n->dispatcher()->Stop();
  nodes_.clear();
}

std::unique_ptr<storage::Env> Cluster::MakeNodeEnv(NodeId id) {
  if (!opts_.use_posix) {
    std::unique_ptr<storage::Env> env =
        storage::Env::NewMemEnv(opts_.simulated_fsync_us);
    if (opts_.wrap_node_env) env = opts_.wrap_node_env(id, std::move(env));
    return env;
  }
  // Give each node a directory, simulating its private disk.
  std::string dir = opts_.data_dir + "/node" + std::to_string(id);
  ::mkdir(dir.c_str(), 0755);
  // A thin wrapper that prefixes paths would be cleaner; we reuse PosixEnv
  // directly by prefixing inside an adapter.
  class PrefixEnv : public storage::Env {
   public:
    explicit PrefixEnv(std::string prefix) : prefix_(std::move(prefix)) {}
    StatusOr<std::unique_ptr<storage::File>> Open(
        const std::string& path) override {
      return storage::Env::Posix()->Open(prefix_ + "/" + path);
    }
    bool Exists(const std::string& path) const override {
      return storage::Env::Posix()->Exists(prefix_ + "/" + path);
    }
    Status Remove(const std::string& path) override {
      return storage::Env::Posix()->Remove(prefix_ + "/" + path);
    }
    Status Rename(const std::string& from, const std::string& to) override {
      return storage::Env::Posix()->Rename(prefix_ + "/" + from,
                                           prefix_ + "/" + to);
    }

   private:
    std::string prefix_;
  };
  std::unique_ptr<storage::Env> env = std::make_unique<PrefixEnv>(dir);
  if (opts_.wrap_node_env) env = opts_.wrap_node_env(id, std::move(env));
  return env;
}

NodeId Cluster::AddNode(uint32_t services) {
  LockGuard lock(mu_);
  NodeId id = next_node_id_++;
  nodes_[id] =
      std::make_unique<Node>(id, services, opts_.clock, MakeNodeEnv(id));
  return id;
}

Node* Cluster::node(NodeId id) {
  LockGuard lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> Cluster::node_ids() const {
  LockGuard lock(mu_);
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) ids.push_back(id);
  return ids;
}

std::vector<NodeId> Cluster::healthy_data_nodes() const {
  LockGuard lock(mu_);
  std::vector<NodeId> ids;
  for (const auto& [id, n] : nodes_) {
    if (n->healthy() && n->HasService(kDataService)) ids.push_back(id);
  }
  return ids;
}

std::vector<NodeId> Cluster::member_ids() const {
  LockGuard lock(mu_);
  std::vector<NodeId> ids;
  for (const auto& [id, n] : nodes_) {
    if (!failed_over_.count(id)) ids.push_back(id);
  }
  return ids;
}

bool Cluster::failed_over(NodeId id) const {
  LockGuard lock(mu_);
  return failed_over_.count(id) != 0;
}

NodeId Cluster::orchestrator() const {
  LockGuard lock(mu_);
  for (const auto& [id, n] : nodes_) {
    if (n->healthy()) return id;
  }
  return kNoNode;
}

Status Cluster::CreateBucket(const BucketConfig& config) {
  std::vector<NodeId> data_nodes = healthy_data_nodes();
  if (data_nodes.empty()) return Status::Unsupported("no data nodes");
  {
    LockGuard lock(mu_);
    if (bucket_configs_.count(config.name)) {
      return Status::KeyExists("bucket exists");
    }
    bucket_configs_[config.name] = config;
    for (NodeId id : data_nodes) {
      COUCHKV_RETURN_IF_ERROR(nodes_[id]->CreateBucket(config));
    }
  }
  auto map = std::make_shared<ClusterMap>(
      BuildBalancedMap(data_nodes, config.num_replicas, /*version=*/1));
  ApplyMap(config.name, map);
  PublishMap(config.name, map);
  return Status::OK();
}

std::shared_ptr<const ClusterMap> Cluster::map(
    const std::string& bucket) const {
  LockGuard lock(mu_);
  auto it = maps_.find(bucket);
  return it == maps_.end() ? nullptr : it->second;
}

std::vector<std::string> Cluster::bucket_names() const {
  LockGuard lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, cfg] : bucket_configs_) names.push_back(name);
  return names;
}

void Cluster::PublishMap(const std::string& bucket,
                         std::shared_ptr<const ClusterMap> map) {
  LockGuard lock(mu_);
  maps_[bucket] = std::move(map);
}

void Cluster::ApplyMap(const std::string& bucket,
                       std::shared_ptr<const ClusterMap> map) {
  // 1. vBucket states on every node.
  for (NodeId id : node_ids()) {
    Node* n = node(id);
    if (n == nullptr || !n->HasService(kDataService)) continue;
    std::shared_ptr<Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
      const VBucketEntry& e = map->entries[vb];
      VBucketState want;
      if (e.active == id) {
        want = VBucketState::kActive;
      } else if (std::find(e.replicas.begin(), e.replicas.end(), id) !=
                 e.replicas.end()) {
        want = VBucketState::kReplica;
      } else {
        want = VBucketState::kDead;
      }
      if (b->vbucket(vb)->state() != want) {
        Status st = b->SetVBucketState(vb, want);
        if (!st.ok()) {
          LOG_ERROR << "SetVBucketState failed: " << st.ToString();
        }
      }
    }
  }
  // 2. Replication streams.
  SetupReplication(bucket, *map);
}

void Cluster::SetupReplication(const std::string& bucket,
                               const ClusterMap& map) {
  // Tear down all existing replication streams for this bucket, then
  // re-create them according to the map. Streams resume from the replica's
  // current high seqno, so no data is re-sent unnecessarily (and fresh
  // replicas backfill from storage through DCP).
  std::vector<NodeId> ids = node_ids();
  for (NodeId src : ids) {
    Node* n = node(src);
    std::shared_ptr<Bucket> b = n ? n->bucket(bucket) : nullptr;
    if (b == nullptr) continue;
    for (NodeId dst : ids) {
      b->producer()->RemoveStreamsNamed(ReplStreamName(dst));
    }
  }
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    const VBucketEntry& e = map.entries[vb];
    Node* src_node = node(e.active);
    if (src_node == nullptr || !src_node->healthy()) continue;
    std::shared_ptr<Bucket> src_bucket = src_node->bucket(bucket);
    if (src_bucket == nullptr) continue;
    for (NodeId r : e.replicas) {
      Node* dst_node = node(r);
      if (dst_node == nullptr || !dst_node->healthy()) continue;
      std::shared_ptr<Bucket> dst_bucket = dst_node->bucket(bucket);
      if (dst_bucket == nullptr) continue;
      VBucket* dst_vb = dst_bucket->vbucket(vb);
      uint64_t from = dst_vb->high_seqno();
      // Each replicated mutation is one message on the active->replica link.
      // A lost delivery returns non-OK, which stalls the stream (at-least-
      // once: it is retried on a later pump; ApplyReplicated is idempotent).
      auto stream_or = src_bucket->producer()->AddStream(
          ReplStreamName(r), vb, from,
          [this, dst_vb, src = e.active, dst = r](const kv::Mutation& m) {
            return net::Call(transport(), net::Endpoint::Node(src),
                             net::Endpoint::Node(dst), [&] {
                               dst_vb->ApplyReplicated(m.doc);
                               return Status::OK();
                             });
          });
      if (!stream_or.ok()) {
        LOG_ERROR << "replication stream failed: "
                  << stream_or.status().ToString();
      }
    }
    src_node->dispatcher()->Notify();
  }
}

void Cluster::NotifyServices(const std::string& bucket) {
  std::vector<std::shared_ptr<ClusterService>> services;
  {
    LockGuard lock(mu_);
    for (auto& [name, s] : services_) services.push_back(s);
  }
  for (auto& s : services) s->OnTopologyChange(bucket);
}

Status Cluster::MoveVBucket(const std::string& bucket, uint16_t vb,
                            NodeId from, NodeId to) {
  Node* src_node = node(from);
  Node* dst_node = node(to);
  if (src_node == nullptr || dst_node == nullptr) {
    return Status::InvalidArgument("bad nodes for move");
  }
  std::shared_ptr<Bucket> src = src_node->bucket(bucket);
  std::shared_ptr<Bucket> dst = dst_node->bucket(bucket);
  if (src == nullptr || dst == nullptr) {
    return Status::InvalidArgument("bucket missing on nodes");
  }
  COUCHKV_RETURN_IF_ERROR(dst->SetVBucketState(vb, VBucketState::kPending));
  VBucket* dst_vb = dst->vbucket(vb);
  VBucket* src_vb = src->vbucket(vb);

  // Stream the partition's data through DCP: backfill from storage plus the
  // in-memory tail (paper §4.3.1: "the cluster moves the data directly
  // between two server nodes").
  auto stream_or = src->producer()->AddStream(
      kMoverStream, vb, dst_vb->high_seqno(),
      [this, dst_vb, from, to](const kv::Mutation& m) {
        return net::Call(transport(), net::Endpoint::Node(from),
                         net::Endpoint::Node(to), [&] {
                           dst_vb->ApplyReplicated(m.doc);
                           return Status::OK();
                         });
      });
  if (!stream_or.ok()) return stream_or.status();
  uint64_t stream_id = stream_or.value();

  // Catch-up phase: pump until the destination has seen everything.
  while (dst_vb->high_seqno() < src_vb->high_seqno()) {
    src->producer()->PumpOnce();
  }

  // Atomic switchover: block writers on the source, drain the last deltas,
  // then flip states. After this the source answers NotMyVBucket and smart
  // clients refresh their map.
  src_vb->WithOpLock([&] {
    while (dst_vb->high_seqno() < src_vb->high_seqno()) {
      src->producer()->PumpOnce();
    }
    src_vb->set_state(VBucketState::kDead);
    dst_vb->set_state(VBucketState::kActive);
  });
  src->producer()->RemoveStream(stream_id);
  total_moves_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Cluster::Rebalance() {
  std::vector<NodeId> data_nodes = healthy_data_nodes();
  if (data_nodes.empty()) return Status::Unsupported("no data nodes");

  for (const std::string& bucket : bucket_names()) {
    BucketConfig config;
    std::shared_ptr<const ClusterMap> old_map;
    {
      LockGuard lock(mu_);
      config = bucket_configs_[bucket];
      old_map = maps_[bucket];
    }
    // Ensure the bucket exists on any newly added node.
    for (NodeId id : data_nodes) {
      Node* n = node(id);
      if (n->bucket(bucket) == nullptr) {
        COUCHKV_RETURN_IF_ERROR(n->CreateBucket(config));
      }
    }
    // Minimal-move target: only the excess of over-quota nodes (and the
    // partitions of departed nodes) change owner.
    ClusterMap target = BuildMinimalMoveMap(*old_map, data_nodes,
                                            config.num_replicas,
                                            old_map->version + 1);

    // Move actives that change owner, publishing an updated map after each
    // partition so clients can re-route immediately.
    ClusterMap working = *old_map;
    for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
      NodeId cur = working.entries[vb].active;
      NodeId want = target.entries[vb].active;
      if (cur == want) continue;
      if (cur == kNoNode) {
        // The partition's data was lost at failover (nothing to promote)
        // and never recovered. There is nothing to move; re-own it empty so
        // the keyspace becomes writable again instead of wedging the whole
        // rebalance.
        Node* dst_node = node(want);
        std::shared_ptr<Bucket> dst =
            dst_node != nullptr ? dst_node->bucket(bucket) : nullptr;
        if (dst == nullptr) {
          return Status::InvalidArgument("no destination for lost vb");
        }
        COUCHKV_RETURN_IF_ERROR(
            dst->SetVBucketState(vb, VBucketState::kActive));
        working.entries[vb].active = want;
        working.version += 1;
        PublishMap(bucket, std::make_shared<ClusterMap>(working));
        continue;
      }
      COUCHKV_RETURN_IF_ERROR(MoveVBucket(bucket, vb, cur, want));
      working.entries[vb].active = want;
      working.version += 1;
      PublishMap(bucket, std::make_shared<ClusterMap>(working));
    }

    // Apply the final map (replica placement + streams) and publish it.
    target.version = working.version + 1;
    auto final_map = std::make_shared<ClusterMap>(target);
    ApplyMap(bucket, final_map);
    PublishMap(bucket, final_map);
    NotifyServices(bucket);
  }
  return Status::OK();
}

Status Cluster::Failover(NodeId id, FailoverMode mode) {
  Node* failed = node(id);
  if (failed == nullptr) return Status::NotFound("no such node");
  {
    LockGuard lock(mu_);
    if (failed_over_.count(id)) {
      return Status::InvalidArgument("node " + std::to_string(id) +
                                     " is already failed over");
    }
  }
  // A replica that survives the node is the freshest one the failed node
  // was replicating to; its high seqno reads stay valid below because
  // replication INTO it is stalled (its source is the node being removed).
  auto best_replica = [&](const std::string& bucket, uint16_t vb,
                          const VBucketEntry& e, uint64_t* high) {
    NodeId promoted = kNoNode;
    for (NodeId r : e.replicas) {
      if (r == id) continue;
      Node* rn = node(r);
      if (rn == nullptr || !rn->healthy()) continue;
      std::shared_ptr<Bucket> rb = rn->bucket(bucket);
      if (rb == nullptr) continue;
      uint64_t seq = rb->vbucket(vb)->high_seqno();
      // Strict > keeps the tie-break on chain order, so equal-seqno
      // promotions stay deterministic across runs.
      if (promoted == kNoNode || seq > *high) {
        promoted = r;
        *high = seq;
      }
    }
    return promoted;
  };
  // Auto-failover safety veto (paper §4.3.1: ns_server refuses an automatic
  // failover that would lose data): probe the surgery read-only first, and
  // abort before any state is touched if a partition would lose its last
  // copy. Manual failover proceeds and records the loss (active = kNoNode).
  if (mode == FailoverMode::kAuto) {
    for (const std::string& bucket : bucket_names()) {
      std::shared_ptr<const ClusterMap> old_map = map(bucket);
      if (!old_map) continue;
      for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
        const VBucketEntry& probe = old_map->entries[vb];
        if (probe.active != id) continue;
        uint64_t high = 0;
        if (best_replica(bucket, vb, probe, &high) == kNoNode) {
          failover_vetoed_->Add();
          return Status::Aborted(
              "auto-failover of node " + std::to_string(id) + " vetoed: vb " +
              std::to_string(vb) + " of bucket " + bucket +
              " would drop to zero copies");
        }
      }
    }
  }
  failed->set_healthy(false);

  FailoverRecord record;
  for (const std::string& bucket : bucket_names()) {
    std::shared_ptr<const ClusterMap> old_map = map(bucket);
    if (!old_map) continue;
    std::shared_ptr<Bucket> failed_bucket = failed->bucket(bucket);
    std::vector<uint64_t>& safe = record.safe_seqno[bucket];
    std::vector<bool>& hosted = record.hosted[bucket];
    safe.assign(kNumVBuckets, 0);
    hosted.assign(kNumVBuckets, false);
    ClusterMap next = *old_map;
    next.version += 1;
    for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
      VBucketEntry& e = next.entries[vb];
      hosted[vb] = e.active == id || std::find(e.replicas.begin(),
                                               e.replicas.end(),
                                               id) != e.replicas.end();
      // Remove the failed node from replica chains.
      std::erase(e.replicas, id);
      if (e.active != id) {
        // Active survives elsewhere; its current seqno bounds what a
        // recovered copy of this vb may legitimately hold.
        Node* an = node(e.active);
        std::shared_ptr<Bucket> ab =
            an != nullptr ? an->bucket(bucket) : nullptr;
        if (ab != nullptr) safe[vb] = ab->vbucket(vb)->high_seqno();
        continue;
      }
      // Promote the most-caught-up healthy replica (paper §4.3.1 promotes
      // replicas of the server that went down; picking the highest seqno
      // closes the data-loss window chain-order promotion had, since an
      // in-order DCP stream makes the freshest replica a superset of every
      // other).
      uint64_t promoted_high = 0;
      NodeId promoted = best_replica(bucket, vb, e, &promoted_high);
      if (promoted == kNoNode) {
        LOG_ERROR << "vb " << vb << " lost: no replica to promote";
        e.active = kNoNode;
        continue;
      }
      safe[vb] = promoted_high;
      // How far behind the promotion is. Only measurable while the failed
      // node's memory is still around (partitioned, not crashed).
      if (failed_bucket != nullptr) {
        uint64_t failed_high = failed_bucket->vbucket(vb)->high_seqno();
        promotion_lag_->Record(
            failed_high > promoted_high ? failed_high - promoted_high : 0);
      }
      std::erase(e.replicas, promoted);
      e.active = promoted;
    }
    auto next_ptr = std::make_shared<ClusterMap>(next);
    ApplyMap(bucket, next_ptr);
    PublishMap(bucket, next_ptr);
    NotifyServices(bucket);
  }
  {
    LockGuard lock(mu_);
    failed_over_[id] = std::move(record);
  }
  (mode == FailoverMode::kAuto ? failover_auto_ : failover_manual_)->Add();
  return Status::OK();
}

Status Cluster::RecoverNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  FailoverRecord record;
  {
    LockGuard lock(mu_);
    auto it = failed_over_.find(id);
    if (it == failed_over_.end()) {
      return Status::InvalidArgument("node " + std::to_string(id) +
                                     " is not failed over");
    }
    record = it->second;
  }
  std::map<std::string, BucketConfig> configs;
  {
    LockGuard lock(mu_);
    configs = bucket_configs_;
  }
  uint64_t rollbacks = 0;
  uint64_t resurrected = 0;
  std::map<std::string, std::shared_ptr<const ClusterMap>> interim_maps;
  if (n->HasService(kDataService)) {
    if (n->crashed()) {
      // The process died: boot it and warm up exactly the vBuckets it
      // hosted at failover from its surviving disk.
      n->Boot();
      for (const auto& [name, config] : configs) {
        COUCHKV_RETURN_IF_ERROR(n->CreateBucket(config));
        std::shared_ptr<Bucket> b = n->bucket(name);
        auto hosted_it = record.hosted.find(name);
        if (hosted_it == record.hosted.end()) continue;
        for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
          if (!hosted_it->second[vb]) continue;
          COUCHKV_RETURN_IF_ERROR(
              b->SetVBucketState(vb, VBucketState::kReplica));
        }
        auto loaded = b->Warmup();
        if (!loaded.ok()) return loaded.status();
      }
    } else {
      // Alive (it was partitioned, not dead): demote any stale actives so
      // clients holding a pre-failover map get NotMyVBucket, not a second
      // master, once the node is marked healthy again below.
      for (const auto& [name, config] : configs) {
        std::shared_ptr<Bucket> b = n->bucket(name);
        if (b == nullptr) continue;
        for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
          if (b->vbucket(vb)->state() == VBucketState::kActive) {
            COUCHKV_RETURN_IF_ERROR(
                b->SetVBucketState(vb, VBucketState::kReplica));
          }
        }
      }
    }
    // Delta-recovery map surgery: re-enter the node as an extra replica of
    // every vBucket it still holds (SetupReplication resumes each stream
    // from the replica's high seqno, so only the delta flows), after rolling
    // back copies that diverged past the promotion point. Partitions that
    // lost every copy at failover are resurrected from the recovered data.
    for (const auto& [name, config] : configs) {
      std::shared_ptr<Bucket> b = n->bucket(name);
      std::shared_ptr<const ClusterMap> m = map(name);
      if (b == nullptr || m == nullptr) continue;
      const std::vector<uint64_t>& safe = record.safe_seqno[name];
      const std::vector<bool>& hosted = record.hosted[name];
      ClusterMap interim = *m;
      interim.version += 1;
      for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
        if (hosted.empty() || !hosted[vb]) continue;
        VBucketEntry& e = interim.entries[vb];
        if (e.active == kNoNode) {
          // Every other copy is gone; the recovered one, whatever it holds,
          // is the authoritative survivor.
          e.active = id;
          std::erase(e.replicas, id);
          ++resurrected;
          continue;
        }
        uint64_t local_high = b->vbucket(vb)->high_seqno();
        if (local_high > (vb < safe.size() ? safe[vb] : 0)) {
          // The copy ran past what the promoted active had at failover:
          // its tail was never adopted and would collide with the new
          // write stream. Drop and re-backfill from scratch.
          COUCHKV_RETURN_IF_ERROR(b->RollbackVBucket(vb));
          ++rollbacks;
        }
        if (e.active != id && std::find(e.replicas.begin(), e.replicas.end(),
                                        id) == e.replicas.end()) {
          e.replicas.push_back(id);
        }
      }
      interim_maps[name] = std::make_shared<ClusterMap>(interim);
    }
  }
  n->set_healthy(true);
  {
    LockGuard lock(mu_);
    failed_over_.erase(id);
  }
  for (const auto& [name, interim] : interim_maps) {
    ApplyMap(name, interim);
    PublishMap(name, interim);
    NotifyServices(name);
  }
  recovery_delta_->Add();
  recovery_rollback_vbs_->Add(rollbacks);
  recovery_resurrected_vbs_->Add(resurrected);
  // A recovered-from-crash node needs its listener back (fresh port); an
  // alive-but-partitioned one still has its listener and this is a no-op.
  COUCHKV_RETURN_IF_ERROR(n->RestartWireServer());
  // Spread actives back onto the reintegrated node (and give resurrected
  // partitions their replicas back).
  return Rebalance();
}

Status Cluster::CrashNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (!n->healthy()) return Status::InvalidArgument("node already down");
  // Mark the node down first so clients stop routing to it mid-teardown.
  n->set_healthy(false);
  // Detach the replication streams feeding this node's replicas: their
  // delivery callbacks hold pointers into the buckets about to be freed.
  // RemoveStreamsNamed is a barrier, so after this loop no other node's
  // dispatcher can touch the crashing node's memory.
  for (const std::string& bucket : bucket_names()) {
    for (NodeId src : node_ids()) {
      if (src == id) continue;
      Node* sn = node(src);
      std::shared_ptr<Bucket> sb = sn != nullptr ? sn->bucket(bucket) : nullptr;
      if (sb != nullptr) {
        sb->producer()->RemoveStreamsNamed(ReplStreamName(id));
      }
    }
  }
  n->Crash();
  return Status::OK();
}

Status Cluster::RestartNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->healthy()) return Status::InvalidArgument("node is running");
  n->Boot();
  std::map<std::string, BucketConfig> configs;
  {
    LockGuard lock(mu_);
    configs = bucket_configs_;
  }
  for (const auto& [name, config] : configs) {
    if (!n->HasService(kDataService)) break;
    COUCHKV_RETURN_IF_ERROR(n->CreateBucket(config));
    std::shared_ptr<Bucket> b = n->bucket(name);
    std::shared_ptr<const ClusterMap> m = map(name);
    if (!m) continue;
    // Set the hosted states before warmup so Warmup() scans exactly the
    // files this node is responsible for. Opening each file runs the
    // storage layer's recovery, which discards any uncommitted (torn) tail.
    for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
      const VBucketEntry& e = m->entries[vb];
      VBucketState want = VBucketState::kDead;
      if (e.active == id) {
        want = VBucketState::kActive;
      } else if (std::find(e.replicas.begin(), e.replicas.end(), id) !=
                 e.replicas.end()) {
        want = VBucketState::kReplica;
      }
      if (want != VBucketState::kDead) {
        COUCHKV_RETURN_IF_ERROR(b->SetVBucketState(vb, want));
      }
    }
    auto loaded = b->Warmup();
    if (!loaded.ok()) return loaded.status();
    // A replica elsewhere may be AHEAD of the reborn active: writes that
    // were replicated but not yet persisted died with the process. Such a
    // replica is rolled back (dropped and re-backfilled from the active's
    // storage) — the divergent seqnos would otherwise collide with the new
    // write stream. This mirrors Couchbase's replica rollback on failover.
    for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
      const VBucketEntry& e = m->entries[vb];
      if (e.active != id) continue;
      uint64_t active_high = b->vbucket(vb)->high_seqno();
      for (NodeId r : e.replicas) {
        Node* rn = node(r);
        if (rn == nullptr || !rn->healthy()) continue;
        std::shared_ptr<Bucket> rb = rn->bucket(name);
        if (rb == nullptr) continue;
        if (rb->vbucket(vb)->high_seqno() > active_high) {
          Status st = rb->RollbackVBucket(vb);
          if (!st.ok()) {
            LOG_ERROR << "replica rollback failed for vb " << vb << ": "
                      << st.ToString();
          }
        }
      }
    }
  }
  n->set_healthy(true);
  // Back on the wire: a fresh ephemeral port (never the old one), which
  // clients rediscover through the resolver on their next hop.
  COUCHKV_RETURN_IF_ERROR(n->RestartWireServer());
  for (const auto& [name, config] : configs) {
    std::shared_ptr<const ClusterMap> m = map(name);
    if (m) ApplyMap(name, m);
    NotifyServices(name);
  }
  return Status::OK();
}

Status Cluster::StartWireServers(const std::string& bucket) {
  std::vector<std::pair<NodeId, Node*>> nodes;
  {
    LockGuard lock(mu_);
    for (auto& [id, n] : nodes_) nodes.emplace_back(id, n.get());
  }
  // Start outside mu_: each Start() spawns an accept thread whose
  // connections immediately call node()/map() through the handler.
  for (auto& [id, n] : nodes) {
    WireService service(this, id, bucket);
    COUCHKV_RETURN_IF_ERROR(n->StartWireServer(
        [service](const net::wire::Message& req,
                  const net::RequestContext& ctx) mutable {
          return service.Handle(req, ctx);
        }));
  }
  return Status::OK();
}

void Cluster::StopWireServers() {
  std::vector<Node*> nodes;
  {
    LockGuard lock(mu_);
    for (auto& [id, n] : nodes_) nodes.push_back(n.get());
  }
  for (Node* n : nodes) n->StopWireServer();
}

uint16_t Cluster::wire_port(NodeId id) {
  Node* n = node(id);
  return n != nullptr ? n->wire_port() : 0;
}

net::SocketTransport::PortResolver Cluster::WirePortResolver() {
  return [this](uint32_t node_id) { return wire_port(node_id); };
}

Status Cluster::WaitForDurability(const std::string& bucket, uint16_t vb,
                                  uint64_t seqno, const Durability& dur) {
  if (dur.replicate_to == 0 && dur.persist_to == 0) return Status::OK();
  std::shared_ptr<const ClusterMap> m = map(bucket);
  if (!m) return Status::NotFound("no such bucket");
  const VBucketEntry& e = m->entries[vb];

  uint64_t deadline =
      opts_.clock->NowMillis() + dur.timeout_ms;
  // The active node's flusher is woken once to shorten the persistence wait.
  if (dur.persist_to > 0) {
    Node* an = node(e.active);
    if (an != nullptr) {
      std::shared_ptr<Bucket> b = an->bucket(bucket);
      if (b != nullptr) {
        Status wait = b->WaitForPersistence(vb, seqno, dur.timeout_ms);
        // A Timeout here (e.g. the flusher is stalled on a failing disk) is
        // NOT success: fall through to the observe loop, which re-reads
        // persisted_seqno and enforces the deadline itself — the ack can
        // only come from an actual persisted_seqno advance. Any other error
        // is a routing/topology failure the caller must see.
        if (!wait.ok() && !wait.IsTimeout()) return wait;
      }
    }
  }
  for (;;) {
    uint32_t replicated = 0;
    uint32_t persisted = 0;
    bool active_persisted = false;
    Node* an = node(e.active);
    if (an != nullptr) {
      std::shared_ptr<Bucket> b = an->bucket(bucket);
      if (b != nullptr && b->vbucket(vb)->persisted_seqno() >= seqno) {
        ++persisted;  // active's persistence counts toward persist_to
        active_persisted = true;
      }
      an->dispatcher()->Notify();
    }
    for (NodeId r : e.replicas) {
      Node* rn = node(r);
      if (rn == nullptr || !rn->healthy()) continue;
      std::shared_ptr<Bucket> rb = rn->bucket(bucket);
      if (rb == nullptr) continue;
      VBucket* rvb = rb->vbucket(vb);
      if (rvb->high_seqno() >= seqno) ++replicated;
      if (rvb->persisted_seqno() >= seqno) ++persisted;
    }
    // persist_to >= 1 requires the active among the persisted nodes (the
    // Couchbase PersistTo.MASTER rule). Without it, a persist-ack could be
    // backed only by a replica — which a crash-restart of the active rolls
    // back, silently voiding the durability promise.
    if (replicated >= dur.replicate_to && persisted >= dur.persist_to &&
        (dur.persist_to == 0 || active_persisted)) {
      return Status::OK();
    }
    if (opts_.clock->NowMillis() > deadline) {
      return Status::Timeout("durability requirement not met");
    }
    std::this_thread::yield();
  }
}

void Cluster::RegisterService(const std::string& name,
                              std::shared_ptr<ClusterService> service) {
  LockGuard lock(mu_);
  services_[name] = std::move(service);
}

ClusterService* Cluster::FindService(const std::string& name) const {
  LockGuard lock(mu_);
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.get();
}

void Cluster::Quiesce() {
  // Alternate DCP drains and flushes until stable. Two rounds suffice:
  // draining DCP can enqueue disk writes (replica applies), but flushing
  // never creates new DCP traffic.
  for (int round = 0; round < 3; ++round) {
    for (NodeId id : node_ids()) {
      Node* n = node(id);
      if (n != nullptr) n->dispatcher()->Quiesce();
    }
    for (NodeId id : node_ids()) {
      Node* n = node(id);
      if (n == nullptr) continue;
      for (const std::string& bucket : bucket_names()) {
        std::shared_ptr<Bucket> b = n->bucket(bucket);
        if (b != nullptr) b->FlushAll();
      }
    }
  }
}

}  // namespace couchkv::cluster
