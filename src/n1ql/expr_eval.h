// N1QL expression evaluation over bound documents, with N1QL's
// MISSING/NULL propagation semantics.
#ifndef COUCHKV_N1QL_EXPR_EVAL_H_
#define COUCHKV_N1QL_EXPR_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "json/value.h"
#include "n1ql/ast.h"

namespace couchkv::n1ql {

// A document bound to an alias within a row.
struct BoundDoc {
  json::Value value;
  std::string meta_id;
  uint64_t meta_cas = 0;
};

// One row flowing through the execution pipeline: alias -> document.
struct Row {
  std::map<std::string, BoundDoc> bindings;
};

struct EvalContext {
  const Row* row = nullptr;
  // The FROM alias used to resolve unqualified paths (e.g. `name` in
  // SELECT name FROM profiles).
  std::string default_alias;
  // Positional parameters ($1 is params[0]).
  const std::vector<json::Value>* params = nullptr;
  // Pre-computed aggregate results keyed by normalized expression text
  // (supplied by the Group operator so COUNT(*) etc. can be referenced in
  // projections, HAVING and ORDER BY).
  const std::map<std::string, json::Value>* aggregates = nullptr;
};

// True for COUNT/SUM/AVG/MIN/MAX.
bool IsAggregateFunction(const std::string& lower_name);

// Evaluates `expr` in `ctx`. Returns an error only for structural problems
// (unknown function, parameter out of range); data-dependent oddities yield
// MISSING or NULL per N1QL semantics.
StatusOr<json::Value> Eval(const Expr& expr, const EvalContext& ctx);

// Evaluates as a condition: MISSING/NULL/false → false.
StatusOr<bool> EvalCondition(const Expr& expr, const EvalContext& ctx);

// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_EXPR_EVAL_H_
