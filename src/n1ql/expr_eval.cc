#include "n1ql/expr_eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace couchkv::n1ql {

namespace {

using json::Value;

#define EVAL_CHECK(var, expr)                 \
  auto var##_or = Eval((expr), ctx);          \
  if (!var##_or.ok()) return var##_or.status(); \
  const Value& var = *var##_or

Value EvalPathOn(const Value& base, const std::vector<PathSegment>& path,
                 size_t start) {
  const Value* cur = &base;
  static const Value kMissing;
  for (size_t i = start; i < path.size(); ++i) {
    if (path[i].is_index()) {
      cur = &cur->At(static_cast<size_t>(path[i].index));
    } else {
      cur = &cur->Field(path[i].field);
    }
    if (cur->is_missing()) return kMissing;
  }
  return *cur;
}

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Classic two-pointer wildcard match; % = any run, _ = one char.
  size_t ti = 0, pi = 0;
  size_t star_t = std::string::npos, star_p = std::string::npos;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

namespace {

StatusOr<Value> EvalFunction(const Expr& e, const EvalContext& ctx);

StatusOr<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // AND/OR get special (short-circuiting, three-valued) treatment.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    EVAL_CHECK(lhs, *e.children[0]);
    bool is_and = e.binary_op == BinaryOp::kAnd;
    bool l_known = !lhs.is_missing() && !lhs.is_null();
    if (l_known && lhs.Truthy() != is_and) {
      return Value::Bool(!is_and);  // false AND x / true OR x
    }
    EVAL_CHECK(rhs, *e.children[1]);
    bool r_known = !rhs.is_missing() && !rhs.is_null();
    if (r_known && rhs.Truthy() != is_and) return Value::Bool(!is_and);
    if (!l_known || !r_known) return Value::Null();
    return Value::Bool(is_and);
  }

  EVAL_CHECK(lhs, *e.children[0]);
  EVAL_CHECK(rhs, *e.children[1]);

  switch (e.binary_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLte:
    case BinaryOp::kGt:
    case BinaryOp::kGte: {
      if (lhs.is_missing() || rhs.is_missing()) return Value::Missing();
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      int c = Value::Compare(lhs, rhs);
      switch (e.binary_op) {
        case BinaryOp::kEq: return Value::Bool(c == 0);
        case BinaryOp::kNeq: return Value::Bool(c != 0);
        case BinaryOp::kLt: return Value::Bool(c < 0);
        case BinaryOp::kLte: return Value::Bool(c <= 0);
        case BinaryOp::kGt: return Value::Bool(c > 0);
        default: return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lhs.is_missing() || rhs.is_missing()) return Value::Missing();
      if (!lhs.is_number() || !rhs.is_number()) return Value::Null();
      double a = lhs.AsNumber(), b = rhs.AsNumber();
      switch (e.binary_op) {
        case BinaryOp::kAdd: return Value::Number(a + b);
        case BinaryOp::kSub: return Value::Number(a - b);
        case BinaryOp::kMul: return Value::Number(a * b);
        case BinaryOp::kDiv:
          return b == 0 ? Value::Null() : Value::Number(a / b);
        default:
          return b == 0 ? Value::Null()
                        : Value::Number(std::fmod(a, b));
      }
    }
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (lhs.is_missing() || rhs.is_missing()) return Value::Missing();
      if (!lhs.is_string() || !rhs.is_string()) return Value::Null();
      bool m = LikeMatch(lhs.AsString(), rhs.AsString());
      return Value::Bool(e.binary_op == BinaryOp::kLike ? m : !m);
    }
    case BinaryOp::kConcat: {
      if (!lhs.is_string() || !rhs.is_string()) return Value::Null();
      return Value::Str(lhs.AsString() + rhs.AsString());
    }
    case BinaryOp::kIn:
    case BinaryOp::kNotIn: {
      if (lhs.is_missing() || rhs.is_missing()) return Value::Missing();
      if (!rhs.is_array()) return Value::Null();
      bool found = false;
      for (const Value& v : rhs.AsArray()) {
        if (Value::Compare(lhs, v) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(e.binary_op == BinaryOp::kIn ? found : !found);
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

StatusOr<Value> EvalFunction(const Expr& e, const EvalContext& ctx) {
  const std::string& fn = e.fn_name;

  // Aggregates must have been computed by the Group operator.
  if (IsAggregateFunction(fn)) {
    if (ctx.aggregates != nullptr) {
      auto it = ctx.aggregates->find(e.ToString());
      if (it != ctx.aggregates->end()) return it->second;
    }
    return Status::PlanError("aggregate " + fn +
                             " used outside GROUP BY / aggregate query");
  }

  // Internal helpers produced by the parser.
  if (fn == "__field__") {
    EVAL_CHECK(base, *e.children[0]);
    EVAL_CHECK(name, *e.children[1]);
    if (!name.is_string()) return Value::Missing();
    return base.Field(name.AsString());
  }
  if (fn == "__element__") {
    EVAL_CHECK(base, *e.children[0]);
    EVAL_CHECK(idx, *e.children[1]);
    if (!idx.is_number()) return Value::Missing();
    return base.At(static_cast<size_t>(idx.AsNumber()));
  }
  if (fn == "__star__") {
    return Eval(*e.children[0], ctx);
  }

  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const ExprPtr& c : e.children) {
    EVAL_CHECK(v, *c);
    args.push_back(v);
  }
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(fn + " expects " + std::to_string(n) +
                                     " argument(s)");
    }
    return Status::OK();
  };

  if (fn == "lower" || fn == "upper") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_string()) return Value::Null();
    std::string s = args[0].AsString();
    for (char& c : s) {
      c = fn == "lower" ? static_cast<char>(std::tolower(c))
                        : static_cast<char>(std::toupper(c));
    }
    return Value::Str(std::move(s));
  }
  if (fn == "length") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_string()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (fn == "substr") {
    if (args.size() < 2 || args.size() > 3) {
      return Status::InvalidArgument("substr expects 2 or 3 arguments");
    }
    if (!args[0].is_string() || !args[1].is_number()) return Value::Null();
    const std::string& s = args[0].AsString();
    auto pos = static_cast<size_t>(std::max(0.0, args[1].AsNumber()));
    if (pos >= s.size()) return Value::Str("");
    size_t len = args.size() == 3 && args[2].is_number()
                     ? static_cast<size_t>(args[2].AsNumber())
                     : std::string::npos;
    return Value::Str(s.substr(pos, len));
  }
  if (fn == "abs" || fn == "floor" || fn == "ceil" || fn == "round") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_number()) return Value::Null();
    double d = args[0].AsNumber();
    if (fn == "abs") d = std::fabs(d);
    else if (fn == "floor") d = std::floor(d);
    else if (fn == "ceil") d = std::ceil(d);
    else d = std::round(d);
    return Value::Number(d);
  }
  if (fn == "array_length") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (!args[0].is_array()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].AsArray().size()));
  }
  if (fn == "array_contains") {
    COUCHKV_RETURN_IF_ERROR(arity(2));
    if (!args[0].is_array()) return Value::Null();
    for (const Value& v : args[0].AsArray()) {
      if (Value::Compare(v, args[1]) == 0) return Value::Bool(true);
    }
    return Value::Bool(false);
  }
  if (fn == "to_string") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (args[0].is_string()) return args[0];
    return Value::Str(args[0].ToJson());
  }
  if (fn == "to_number") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    if (args[0].is_number()) return args[0];
    if (args[0].is_string()) {
      char* end = nullptr;
      const std::string& s = args[0].AsString();
      double d = std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size() && !s.empty()) return Value::Number(d);
    }
    return Value::Null();
  }
  if (fn == "type") {
    COUCHKV_RETURN_IF_ERROR(arity(1));
    return Value::Str(json::TypeName(args[0].type()));
  }
  if (fn == "greatest" || fn == "least") {
    if (args.empty()) return Value::Null();
    Value best = args[0];
    for (const Value& v : args) {
      int c = Value::Compare(v, best);
      if ((fn == "greatest" && c > 0) || (fn == "least" && c < 0)) best = v;
    }
    return best;
  }
  if (fn == "ifmissing") {
    for (const Value& v : args) {
      if (!v.is_missing()) return v;
    }
    return Value::Missing();
  }
  if (fn == "ifnull") {
    for (const Value& v : args) {
      if (!v.is_null() && !v.is_missing()) return v;
    }
    return Value::Null();
  }
  return Status::InvalidArgument("unknown function: " + fn);
}

}  // namespace

StatusOr<Value> Eval(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kParameter: {
      if (ctx.params == nullptr || e.param_index == 0 ||
          e.param_index > ctx.params->size()) {
        return Status::InvalidArgument("parameter $" +
                                       std::to_string(e.param_index) +
                                       " not supplied");
      }
      return (*ctx.params)[e.param_index - 1];
    }
    case ExprKind::kPath: {
      if (ctx.row == nullptr || e.path.empty()) return Value::Missing();
      const std::string& head = e.path[0].field;
      // A leading segment naming a binding (alias or collection variable)
      // roots the path there; otherwise resolve against the default alias.
      auto it = e.path[0].is_index() ? ctx.row->bindings.end()
                                     : ctx.row->bindings.find(head);
      if (it != ctx.row->bindings.end()) {
        return EvalPathOn(it->second.value, e.path, 1);
      }
      auto def = ctx.row->bindings.find(ctx.default_alias);
      if (def == ctx.row->bindings.end()) return Value::Missing();
      return EvalPathOn(def->second.value, e.path, 0);
    }
    case ExprKind::kMeta: {
      if (ctx.row == nullptr) return Value::Missing();
      std::string alias =
          e.meta_alias.empty() ? ctx.default_alias : e.meta_alias;
      auto it = ctx.row->bindings.find(alias);
      if (it == ctx.row->bindings.end()) return Value::Missing();
      if (e.meta_field == "id") return Value::Str(it->second.meta_id);
      return Value::Number(static_cast<double>(it->second.meta_cas));
    }
    case ExprKind::kUnary: {
      EVAL_CHECK(v, *e.children[0]);
      if (e.unary_op == UnaryOp::kNeg) {
        if (!v.is_number()) return Value::Null();
        return Value::Number(-v.AsNumber());
      }
      if (v.is_missing()) return Value::Missing();
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.Truthy());
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx);
    case ExprKind::kIsPredicate: {
      EVAL_CHECK(v, *e.children[0]);
      switch (e.is_kind) {
        case IsKind::kNull: return Value::Bool(v.is_null());
        case IsKind::kNotNull:
          return Value::Bool(!v.is_null() && !v.is_missing());
        case IsKind::kMissing: return Value::Bool(v.is_missing());
        case IsKind::kNotMissing: return Value::Bool(!v.is_missing());
        case IsKind::kValued:
          return Value::Bool(!v.is_null() && !v.is_missing());
      }
      return Value::Null();
    }
    case ExprKind::kFunction:
      return EvalFunction(e, ctx);
    case ExprKind::kArrayLiteral: {
      Value::Array arr;
      arr.reserve(e.children.size());
      for (const ExprPtr& c : e.children) {
        EVAL_CHECK(v, *c);
        arr.push_back(v);
      }
      return Value::MakeArray(std::move(arr));
    }
    case ExprKind::kObjectLiteral: {
      Value::Object obj;
      for (size_t i = 0; i < e.children.size(); ++i) {
        EVAL_CHECK(v, *e.children[i]);
        obj[e.object_keys[i]] = v;
      }
      return Value::MakeObject(std::move(obj));
    }
    case ExprKind::kCollection: {
      EVAL_CHECK(arr, *e.children[0]);
      if (!arr.is_array()) return Value::Bool(e.coll_kind == CollectionKind::kEvery);
      Row extended = ctx.row ? *ctx.row : Row{};
      EvalContext inner = ctx;
      inner.row = &extended;
      bool every = e.coll_kind == CollectionKind::kEvery;
      for (const Value& elem : arr.AsArray()) {
        extended.bindings[e.var_name] = BoundDoc{elem, "", 0};
        auto cond = EvalCondition(*e.children[1], inner);
        if (!cond.ok()) return cond.status();
        if (*cond && !every) return Value::Bool(true);   // ANY satisfied
        if (!*cond && every) return Value::Bool(false);  // EVERY violated
      }
      return Value::Bool(every);
    }
    case ExprKind::kArrayComprehension: {
      EVAL_CHECK(arr, *e.children[1]);
      if (!arr.is_array()) return Value::Missing();
      Row extended = ctx.row ? *ctx.row : Row{};
      EvalContext inner = ctx;
      inner.row = &extended;
      Value::Array out;
      for (const Value& elem : arr.AsArray()) {
        extended.bindings[e.var_name] = BoundDoc{elem, "", 0};
        if (e.children.size() > 2 && e.children[2]) {
          auto cond = EvalCondition(*e.children[2], inner);
          if (!cond.ok()) return cond.status();
          if (!*cond) continue;
        }
        auto v = Eval(*e.children[0], inner);
        if (!v.ok()) return v.status();
        out.push_back(std::move(v).value());
      }
      return Value::MakeArray(std::move(out));
    }
    case ExprKind::kCase: {
      for (const CaseArm& arm : e.case_arms) {
        auto cond = EvalCondition(*arm.when, ctx);
        if (!cond.ok()) return cond.status();
        if (*cond) return Eval(*arm.then, ctx);
      }
      if (e.case_else) return Eval(*e.case_else, ctx);
      return Value::Null();
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<bool> EvalCondition(const Expr& expr, const EvalContext& ctx) {
  auto v = Eval(expr, ctx);
  if (!v.ok()) return v.status();
  return v->Truthy();
}

#undef EVAL_CHECK

}  // namespace couchkv::n1ql
