#include "n1ql/planner.h"

#include <algorithm>
#include <functional>

#include "n1ql/expr_eval.h"

namespace couchkv::n1ql {

const char* ScanKindName(ScanKind k) {
  switch (k) {
    case ScanKind::kKeyScan: return "KeyScan";
    case ScanKind::kIndexScan: return "IndexScan";
    case ScanKind::kPrimaryScan: return "PrimaryScan";
    case ScanKind::kNoScan: return "NoScan";
  }
  return "?";
}

std::optional<std::string> RelativePathText(const Expr& expr,
                                            const std::string& alias) {
  if (expr.kind != ExprKind::kPath || expr.path.empty()) return std::nullopt;
  size_t start = 0;
  if (!expr.path[0].is_index() && expr.path[0].field == alias) start = 1;
  if (start >= expr.path.size()) return std::nullopt;
  std::string out;
  for (size_t i = start; i < expr.path.size(); ++i) {
    if (expr.path[i].is_index()) {
      out += "[" + std::to_string(expr.path[i].index) + "]";
    } else {
      if (!out.empty()) out += ".";
      out += expr.path[i].field;
    }
  }
  return out;
}

namespace {

// Flattens an AND tree into conjuncts.
void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->children[0], out);
    CollectConjuncts(e->children[1], out);
  } else {
    out->push_back(e);
  }
}

// A sargable predicate: <path> op <constant>.
struct Sarg {
  std::string path;       // relative to the FROM alias
  BinaryOp op;
  json::Value bound;      // evaluated constant
  bool is_meta_id = false;
};

// Evaluates an expression that must be constant (literals / parameters /
// arithmetic over them). Returns nullopt when it references documents.
std::optional<json::Value> EvalConst(const Expr& e,
                                     const std::vector<json::Value>& params) {
  EvalContext ctx;
  ctx.params = &params;
  // No row: paths evaluate to missing, which we reject below.
  if (e.kind == ExprKind::kPath || e.kind == ExprKind::kMeta) {
    return std::nullopt;
  }
  auto v = Eval(e, ctx);
  if (!v.ok()) return std::nullopt;
  return std::move(v).value();
}

// Tries to interpret a conjunct as a sargable predicate on a path or on
// META().id.
std::optional<Sarg> MatchSarg(const Expr& e, const std::string& alias,
                              const std::vector<json::Value>& params) {
  if (e.kind != ExprKind::kBinary) return std::nullopt;
  BinaryOp op = e.binary_op;
  if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLte &&
      op != BinaryOp::kGt && op != BinaryOp::kGte) {
    return std::nullopt;
  }
  const Expr* lhs = e.children[0].get();
  const Expr* rhs = e.children[1].get();
  bool flipped = false;
  auto path_side = [&](const Expr* side) -> std::optional<Sarg> {
    Sarg s;
    if (side->kind == ExprKind::kMeta && side->meta_field == "id" &&
        (side->meta_alias.empty() || side->meta_alias == alias)) {
      s.is_meta_id = true;
    } else {
      auto rel = RelativePathText(*side, alias);
      if (!rel.has_value()) return std::nullopt;
      s.path = *rel;
    }
    return s;
  };
  std::optional<Sarg> s = path_side(lhs);
  const Expr* const_side = rhs;
  if (!s.has_value()) {
    s = path_side(rhs);
    const_side = lhs;
    flipped = true;
  }
  if (!s.has_value()) return std::nullopt;
  auto bound = EvalConst(*const_side, params);
  if (!bound.has_value()) return std::nullopt;
  if (flipped) {
    // c op path  ==>  path op' c
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLte: op = BinaryOp::kGte; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGte: op = BinaryOp::kLte; break;
      default: break;
    }
  }
  s->op = op;
  s->bound = std::move(*bound);
  return s;
}

// Collects every path referenced by the statement (relative to the FROM
// alias); used for covering-index detection. Returns false if something
// cannot be resolved to a document path (then covering is impossible).
bool CollectReferencedPaths(const Expr& e, const std::string& alias,
                            std::vector<std::string>* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return true;
    case ExprKind::kMeta:
      if (e.meta_field == "id" &&
          (e.meta_alias.empty() || e.meta_alias == alias)) {
        return true;  // meta id always rides along with index entries
      }
      return false;
    case ExprKind::kPath: {
      auto rel = RelativePathText(e, alias);
      if (!rel.has_value()) return false;
      out->push_back(*rel);
      return true;
    }
    default:
      for (const ExprPtr& c : e.children) {
        if (c != nullptr && !CollectReferencedPaths(*c, alias, out)) {
          return false;
        }
      }
      return e.kind != ExprKind::kCollection &&
             e.kind != ExprKind::kArrayComprehension
                 ? true
                 : true;
  }
}

void CollectAggregatesExpr(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFunction && IsAggregateFunction(e->fn_name)) {
    out->push_back(e);
    return;  // no nested aggregates
  }
  for (const ExprPtr& c : e->children) CollectAggregatesExpr(c, out);
  if (e->kind == ExprKind::kCase) {
    for (const auto& arm : e->case_arms) {
      CollectAggregatesExpr(arm.when, out);
      CollectAggregatesExpr(arm.then, out);
    }
    CollectAggregatesExpr(e->case_else, out);
  }
}

}  // namespace

void CollectAggregates(const SelectStatement& stmt,
                       std::vector<ExprPtr>* out) {
  for (const SelectItem& item : stmt.items) CollectAggregatesExpr(item.expr, out);
  CollectAggregatesExpr(stmt.having, out);
  for (const OrderKey& k : stmt.order_by) CollectAggregatesExpr(k.expr, out);
}

json::Value QueryPlan::Describe(const SelectStatement& stmt) const {
  json::Value plan = json::Value::MakeObject();
  json::Value ops = json::Value::MakeArray();
  json::Value scan_op = json::Value::MakeObject();
  scan_op["#operator"] = json::Value::Str(ScanKindName(scan.kind));
  if (!scan.index_name.empty()) {
    scan_op["index"] = json::Value::Str(scan.index_name);
  }
  if (scan.kind == ScanKind::kIndexScan) {
    scan_op["covering"] = json::Value::Bool(scan.covering);
    if (!scan.range_description.empty()) {
      scan_op["range"] = json::Value::Str(scan.range_description);
    }
  }
  ops.Append(std::move(scan_op));
  if (scan.kind != ScanKind::kNoScan && !scan.covering &&
      scan.kind != ScanKind::kKeyScan) {
    json::Value fetch = json::Value::MakeObject();
    fetch["#operator"] = json::Value::Str("Fetch");
    ops.Append(std::move(fetch));
  }
  for (const JoinClause& jc : stmt.joins) {
    json::Value op = json::Value::MakeObject();
    switch (jc.kind) {
      case JoinClause::Kind::kJoin:
        op["#operator"] = json::Value::Str(
            jc.join_kind == JoinKind::kInner ? "Join" : "LeftOuterJoin");
        break;
      case JoinClause::Kind::kNest:
        op["#operator"] = json::Value::Str("Nest");
        break;
      case JoinClause::Kind::kUnnest:
        op["#operator"] = json::Value::Str("Unnest");
        break;
    }
    ops.Append(std::move(op));
  }
  if (stmt.where != nullptr) {
    json::Value filter = json::Value::MakeObject();
    filter["#operator"] = json::Value::Str("Filter");
    filter["condition"] = json::Value::Str(stmt.where->ToString());
    ops.Append(std::move(filter));
  }
  if (has_aggregates || !stmt.group_by.empty()) {
    json::Value group = json::Value::MakeObject();
    group["#operator"] = json::Value::Str("Group");
    ops.Append(std::move(group));
  }
  {
    json::Value proj = json::Value::MakeObject();
    proj["#operator"] = json::Value::Str("InitialProject");
    ops.Append(std::move(proj));
  }
  if (!stmt.order_by.empty()) {
    json::Value sort = json::Value::MakeObject();
    sort["#operator"] = json::Value::Str("Sort");
    ops.Append(std::move(sort));
  }
  if (stmt.limit != nullptr || stmt.offset != nullptr) {
    json::Value lim = json::Value::MakeObject();
    lim["#operator"] = json::Value::Str("Limit");
    ops.Append(std::move(lim));
  }
  {
    json::Value proj = json::Value::MakeObject();
    proj["#operator"] = json::Value::Str("FinalProject");
    ops.Append(std::move(proj));
  }
  plan["operators"] = std::move(ops);
  return plan;
}

StatusOr<QueryPlan> PlanSelect(const SelectStatement& stmt,
                               const std::vector<gsi::IndexDefinition>& indexes,
                               const std::vector<json::Value>& params) {
  QueryPlan plan;
  CollectAggregates(stmt, &plan.aggregate_exprs);
  plan.has_aggregates = !plan.aggregate_exprs.empty();

  if (!stmt.from.has_value()) {
    plan.scan.kind = ScanKind::kNoScan;
    return plan;
  }
  const FromTerm& from = *stmt.from;

  // 1. USE KEYS always wins: direct key-value retrieval performance
  //    (paper §3.2.3).
  if (from.use_keys != nullptr) {
    plan.scan.kind = ScanKind::kKeyScan;
    plan.scan.use_keys = from.use_keys;
    return plan;
  }

  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(stmt.where, &conjuncts);
  std::vector<std::optional<Sarg>> sargs;
  sargs.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    sargs.push_back(MatchSarg(*c, from.alias, params));
  }

  // Referenced paths for covering detection.
  std::vector<std::string> referenced;
  bool coverable = true;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      coverable = false;
      continue;
    }
    if (item.expr != nullptr &&
        !CollectReferencedPaths(*item.expr, from.alias, &referenced)) {
      coverable = false;
    }
  }
  if (stmt.where != nullptr &&
      !CollectReferencedPaths(*stmt.where, from.alias, &referenced)) {
    coverable = false;
  }
  for (const OrderKey& k : stmt.order_by) {
    if (!CollectReferencedPaths(*k.expr, from.alias, &referenced)) {
      coverable = false;
    }
  }
  for (const ExprPtr& g : stmt.group_by) {
    if (!CollectReferencedPaths(*g, from.alias, &referenced)) {
      coverable = false;
    }
  }
  if (!stmt.joins.empty()) coverable = false;

  // 2. Look for the best qualifying secondary index.
  const gsi::IndexDefinition* best = nullptr;
  gsi::ScanRange best_range;
  int best_score = -1;
  std::string best_desc;
  for (const gsi::IndexDefinition& def : indexes) {
    if (def.is_primary || def.key_paths.empty()) continue;
    if (def.array_index) continue;  // array indexes handled via ANY below
    // Partial index: the query must repeat the index predicate verbatim as
    // a conjunct (textual implication check, as Couchbase requires the
    // WHERE clause to match).
    if (!def.where_text.empty()) {
      bool implied = false;
      for (const ExprPtr& c : conjuncts) {
        if (c->ToString() == def.where_text) {
          implied = true;
          break;
        }
      }
      if (!implied) continue;
    }
    const std::string& lead = def.key_paths[0];
    gsi::ScanRange range;
    int score = 0;
    for (const auto& s : sargs) {
      if (!s.has_value() || s->is_meta_id || s->path != lead) continue;
      switch (s->op) {
        case BinaryOp::kEq:
          range.lo = s->bound;
          range.hi = s->bound;
          range.lo_inclusive = range.hi_inclusive = true;
          score = std::max(score, 100);
          break;
        case BinaryOp::kGt:
          range.lo = s->bound;
          range.lo_inclusive = false;
          score = std::max(score, 50);
          break;
        case BinaryOp::kGte:
          range.lo = s->bound;
          range.lo_inclusive = true;
          score = std::max(score, 50);
          break;
        case BinaryOp::kLt:
          range.hi = s->bound;
          range.hi_inclusive = false;
          score = std::max(score, 50);
          break;
        case BinaryOp::kLte:
          range.hi = s->bound;
          range.hi_inclusive = true;
          score = std::max(score, 50);
          break;
        default:
          break;
      }
    }
    if (score == 0) continue;
    if (!def.where_text.empty()) score += 10;  // partial indexes are smaller
    if (score > best_score) {
      best = &def;
      best_range = range;
      best_score = score;
      best_desc.clear();
      if (range.lo.has_value()) {
        best_desc += (range.lo_inclusive ? ">= " : "> ") + range.lo->ToJson();
      }
      if (range.hi.has_value()) {
        if (!best_desc.empty()) best_desc += " AND ";
        best_desc += (range.hi_inclusive ? "<= " : "< ") + range.hi->ToJson();
      }
    }
  }

  // META().id range predicates can use the primary index as a ranged scan
  // (this is what YCSB workload E does, §10.1.2).
  const gsi::IndexDefinition* primary = nullptr;
  for (const gsi::IndexDefinition& def : indexes) {
    if (def.is_primary) {
      primary = &def;
      break;
    }
  }
  gsi::ScanRange id_range;
  bool has_id_range = false;
  for (const auto& s : sargs) {
    if (!s.has_value() || !s->is_meta_id) continue;
    has_id_range = true;
    switch (s->op) {
      case BinaryOp::kEq:
        id_range.lo = s->bound;
        id_range.hi = s->bound;
        break;
      case BinaryOp::kGt:
        id_range.lo = s->bound;
        id_range.lo_inclusive = false;
        break;
      case BinaryOp::kGte:
        id_range.lo = s->bound;
        break;
      case BinaryOp::kLt:
        id_range.hi = s->bound;
        id_range.hi_inclusive = false;
        break;
      case BinaryOp::kLte:
        id_range.hi = s->bound;
        break;
      default:
        break;
    }
  }

  if (best != nullptr) {
    plan.scan.kind = ScanKind::kIndexScan;
    plan.scan.index_name = best->name;
    plan.scan.range = best_range;
    plan.scan.index_key_paths = best->key_paths;
    plan.scan.range_description = best_desc;
    // WHERE is fully absorbed when every conjunct is a sargable predicate
    // on the chosen leading key (or restates the partial-index predicate).
    plan.scan.where_consumed = true;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      bool absorbed =
          (sargs[i].has_value() && !sargs[i]->is_meta_id &&
           sargs[i]->path == best->key_paths[0]) ||
          (!best->where_text.empty() &&
           conjuncts[i]->ToString() == best->where_text);
      if (!absorbed) {
        plan.scan.where_consumed = false;
        break;
      }
    }
    if (coverable) {
      bool all_covered = true;
      for (const std::string& p : referenced) {
        if (std::find(best->key_paths.begin(), best->key_paths.end(), p) ==
            best->key_paths.end()) {
          all_covered = false;
          break;
        }
      }
      plan.scan.covering = all_covered;
    }
    return plan;
  }

  // 3. Fall back to the primary index (full or id-ranged scan).
  if (primary != nullptr) {
    plan.scan.kind = ScanKind::kPrimaryScan;
    plan.scan.index_name = primary->name;
    if (has_id_range) {
      plan.scan.range = id_range;
      plan.scan.range_description = "meta().id range";
    }
    plan.scan.where_consumed = true;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!sargs[i].has_value() || !sargs[i]->is_meta_id) {
        plan.scan.where_consumed = false;
        break;
      }
    }
    return plan;
  }
  return Status::PlanError(
      "no index available for keyspace " + from.keyspace +
      " (no sargable secondary index and no primary index); "
      "CREATE PRIMARY INDEX or add a suitable GSI index");
}

}  // namespace couchkv::n1ql
