// Execution helpers shared by the N1QL query service and the analytics
// service: aggregate computation, LIMIT/OFFSET evaluation, row projection.
#ifndef COUCHKV_N1QL_EXEC_UTIL_H_
#define COUCHKV_N1QL_EXEC_UTIL_H_

#include <vector>

#include "common/status.h"
#include "n1ql/ast.h"
#include "n1ql/expr_eval.h"

namespace couchkv::n1ql {

// Computes one aggregate call over the rows of a group.
StatusOr<json::Value> ComputeAggregate(const Expr& agg,
                                       const std::vector<Row>& rows,
                                       const std::string& default_alias,
                                       const std::vector<json::Value>& params);

// Evaluates a LIMIT/OFFSET expression to a count; `fallback` when null.
StatusOr<size_t> EvalCountExpr(const ExprPtr& e,
                               const std::vector<json::Value>& params,
                               size_t fallback);

// Projects one row through the select list ('*', `alias`.*, expressions
// with aliases). Missing values are omitted from the result object.
StatusOr<json::Value> ProjectSelectItems(const std::vector<SelectItem>& items,
                                         const EvalContext& ctx);

// ORDER BY / GROUP BY may name a select-list output alias (standard SQL):
// when `expr` is a bare single-segment path matching an item's alias, the
// item's expression is returned instead; otherwise `expr` itself.
const ExprPtr& ResolveOutputAlias(const ExprPtr& expr,
                                  const std::vector<SelectItem>& items);

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_EXEC_UTIL_H_
