// Recursive-descent parser for N1QL.
#ifndef COUCHKV_N1QL_PARSER_H_
#define COUCHKV_N1QL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "n1ql/ast.h"

namespace couchkv::n1ql {

// Parses a single N1QL statement (optionally prefixed with EXPLAIN).
StatusOr<Statement> ParseStatement(std::string_view query);

// Parses a standalone expression (used in tests and by the planner).
StatusOr<ExprPtr> ParseExpression(std::string_view text);

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_PARSER_H_
