#include "n1ql/ast.h"

namespace couchkv::n1ql {

ExprPtr MakeLiteral(json::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

namespace {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLte: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGte: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
    case BinaryOp::kConcat: return "||";
    case BinaryOp::kIn: return "IN";
    case BinaryOp::kNotIn: return "NOT IN";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToJson();
    case ExprKind::kParameter:
      return "$" + std::to_string(param_index);
    case ExprKind::kPath: {
      std::string out;
      for (size_t i = 0; i < path.size(); ++i) {
        if (path[i].is_index()) {
          out += "[" + std::to_string(path[i].index) + "]";
        } else {
          if (i > 0) out += ".";
          out += path[i].field;
        }
      }
      return out;
    }
    case ExprKind::kMeta:
      return "meta(" + meta_alias + ")." + meta_field;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kIsPredicate: {
      const char* what = "";
      switch (is_kind) {
        case IsKind::kNull: what = "IS NULL"; break;
        case IsKind::kNotNull: what = "IS NOT NULL"; break;
        case IsKind::kMissing: what = "IS MISSING"; break;
        case IsKind::kNotMissing: what = "IS NOT MISSING"; break;
        case IsKind::kValued: what = "IS VALUED"; break;
      }
      return "(" + children[0]->ToString() + " " + what + ")";
    }
    case ExprKind::kFunction: {
      std::string out = fn_name + "(";
      if (fn_distinct) out += "DISTINCT ";
      if (fn_star) out += "*";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kArrayLiteral: {
      std::string out = "[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + "]";
    }
    case ExprKind::kObjectLiteral: {
      std::string out = "{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + object_keys[i] + "\": " + children[i]->ToString();
      }
      return out + "}";
    }
    case ExprKind::kCollection: {
      std::string out = coll_kind == CollectionKind::kAny ? "ANY " : "EVERY ";
      out += var_name + " IN " + children[0]->ToString() + " SATISFIES " +
             children[1]->ToString() + " END";
      return out;
    }
    case ExprKind::kArrayComprehension: {
      std::string out = "ARRAY " + children[0]->ToString() + " FOR " +
                        var_name + " IN " + children[1]->ToString();
      if (children.size() > 2 && children[2]) {
        out += " WHEN " + children[2]->ToString();
      }
      return out + " END";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& arm : case_arms) {
        out += " WHEN " + arm.when->ToString() + " THEN " +
               arm.then->ToString();
      }
      if (case_else) out += " ELSE " + case_else->ToString();
      return out + " END";
    }
  }
  return "?";
}

}  // namespace couchkv::n1ql
