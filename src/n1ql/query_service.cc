#include "n1ql/query_service.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/clock.h"
#include "n1ql/exec_util.h"
#include "n1ql/parser.h"
#include "stats/trace.h"

namespace couchkv::n1ql {

namespace {
using json::Value;

StatusOr<size_t> EvalCount(const ExprPtr& e, const QueryOptions& opts,
                           size_t fallback) {
  return EvalCountExpr(e, opts.params, fallback);
}

}  // namespace

QueryService::QueryService(cluster::Cluster* cluster,
                           std::shared_ptr<gsi::IndexService> gsi,
                           std::shared_ptr<views::ViewEngine> views)
    : cluster_(cluster),
      gsi_(std::move(gsi)),
      views_(std::move(views)),
      pool_(std::max(4u, std::thread::hardware_concurrency())) {
  stats_scope_ = stats::Registry::Global().GetScope("n1ql");
  queries_ = stats_scope_->GetCounter("queries");
  query_errors_ = stats_scope_->GetCounter("query_errors");
  dml_mutations_ = stats_scope_->GetCounter("dml_mutations");
  query_ns_ = stats_scope_->GetHistogram("query_ns");
  fetch_ns_ = stats_scope_->GetHistogram("fetch_ns");
}

client::SmartClient* QueryService::ClientFor(const std::string& bucket) {
  LockGuard lock(mu_);
  auto it = clients_.find(bucket);
  if (it == clients_.end()) {
    it = clients_
             .emplace(bucket,
                      std::make_unique<client::SmartClient>(cluster_, bucket))
             .first;
  }
  return it->second.get();
}

EvalContext QueryService::MakeContext(const ExecRow& row,
                                      const std::string& default_alias,
                                      const QueryOptions& opts) const {
  EvalContext ctx;
  ctx.row = &row.row;
  ctx.default_alias = default_alias;
  ctx.params = &opts.params;
  ctx.aggregates = &row.aggregates;
  return ctx;
}

StatusOr<QueryResult> QueryService::Execute(const std::string& query,
                                            const QueryOptions& opts) {
  // MDS: queries require a healthy query-service node somewhere.
  bool have_query_node = false;
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n != nullptr && n->healthy() && n->HasService(cluster::kQueryService)) {
      have_query_node = true;
      break;
    }
  }
  if (!have_query_node) {
    return Status::Unsupported("no query service node in the cluster");
  }

  queries_->Add();
  trace::Span span("n1ql.query", query_ns_);
  auto stmt_or = ParseStatement(query);
  if (!stmt_or.ok()) {
    query_errors_->Add();
    return stmt_or.status();
  }
  Statement& stmt = *stmt_or;
  span.Phase("parse");

  uint64_t start = Clock::Real()->NowNanos();
  StatusOr<QueryResult> result = Status::Internal("unreachable");
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      result = ExecSelect(stmt.select, opts, stmt.explain);
      break;
    case Statement::Kind::kInsert:
      result = ExecInsert(stmt.insert, opts);
      break;
    case Statement::Kind::kUpdate:
      result = ExecUpdate(stmt.update, opts);
      break;
    case Statement::Kind::kDelete:
      result = ExecDelete(stmt.del, opts);
      break;
    case Statement::Kind::kCreateIndex:
      result = ExecCreateIndex(stmt.create_index);
      break;
    case Statement::Kind::kDropIndex:
      result = ExecDropIndex(stmt.drop_index);
      break;
  }
  span.Phase("exec");
  if (result.ok()) {
    result->metrics.elapsed_ns = Clock::Real()->NowNanos() - start;
    result->metrics.result_count = result->rows.size();
    dml_mutations_->Add(result->metrics.mutation_count);
  } else {
    query_errors_->Add();
  }
  return result;
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

StatusOr<std::vector<QueryService::ExecRow>> QueryService::FetchRows(
    const std::string& bucket, const std::string& alias,
    const std::vector<std::string>& ids, QueryMetrics* metrics) {
  // Fetch is parallelized across the pool (paper §4.5.3: "The execution of
  // the fetch operator is parallelized").
  trace::Span span("n1ql.fetch", fetch_ns_);
  client::SmartClient* client = ClientFor(bucket);
  std::vector<std::optional<ExecRow>> slots(ids.size());
  std::atomic<size_t> fetched{0};
  auto fetch_one = [&](size_t i) {
    auto reply = client->Get(ids[i]);
    if (!reply.ok()) return;
    auto parsed = json::Parse(reply->value);
    if (!parsed.ok()) return;
    ExecRow row;
    row.row.bindings[alias] =
        BoundDoc{std::move(parsed).value(), ids[i], reply->cas};
    slots[i] = std::move(row);
    fetched.fetch_add(1, std::memory_order_relaxed);
  };
  // Small fetches run inline: per-task pool overhead would dominate, and
  // concurrent queries would contend on the shared pool's queue.
  constexpr size_t kParallelFetchThreshold = 64;
  if (ids.size() < kParallelFetchThreshold) {
    for (size_t i = 0; i < ids.size(); ++i) fetch_one(i);
  } else {
    // Per-call completion latch: the pool is shared across concurrent
    // queries, so waiting for global pool idleness would stall under load.
    Mutex done_mu{"n1ql.scatter_done"};
    CondVar done_cv;
    size_t outstanding = ids.size();
    for (size_t i = 0; i < ids.size(); ++i) {
      pool_.Submit([&, i] {
        fetch_one(i);
        LockGuard lock(done_mu);
        if (--outstanding == 0) done_cv.NotifyAll();
      });
    }
    UniqueLock lock(done_mu);
    while (outstanding > 0) done_cv.Wait(lock);
  }
  metrics->docs_fetched += fetched.load();
  std::vector<ExecRow> rows;
  rows.reserve(ids.size());
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

StatusOr<std::vector<QueryService::ExecRow>> QueryService::RunScan(
    const SelectStatement& stmt, const QueryPlan& plan,
    const QueryOptions& opts, QueryMetrics* metrics) {
  if (plan.scan.kind == ScanKind::kNoScan) {
    // SELECT without FROM: one empty row.
    return std::vector<ExecRow>{ExecRow{}};
  }
  const FromTerm& from = *stmt.from;

  if (plan.scan.kind == ScanKind::kKeyScan) {
    EvalContext ctx;
    ctx.params = &opts.params;
    auto keys = Eval(*plan.scan.use_keys, ctx);
    if (!keys.ok()) return keys.status();
    std::vector<std::string> ids;
    if (keys->is_string()) {
      ids.push_back(keys->AsString());
    } else if (keys->is_array()) {
      for (const Value& k : keys->AsArray()) {
        if (k.is_string()) ids.push_back(k.AsString());
      }
    } else {
      return Status::InvalidArgument("USE KEYS expects a string or array");
    }
    return FetchRows(from.keyspace, from.alias, ids, metrics);
  }

  // Index-backed scans. Push LIMIT+OFFSET into the index scan only when the
  // rest of the pipeline cannot drop or reorder rows.
  size_t scan_limit = SIZE_MAX;
  if (plan.scan.where_consumed && stmt.joins.empty() &&
      stmt.order_by.empty() && stmt.group_by.empty() &&
      !plan.has_aggregates && !stmt.distinct) {
    auto limit = EvalCount(stmt.limit, opts, SIZE_MAX);
    if (!limit.ok()) return limit.status();
    auto offset = EvalCount(stmt.offset, opts, 0);
    if (!offset.ok()) return offset.status();
    if (*limit != SIZE_MAX) scan_limit = *limit + *offset;
  }

  auto entries = gsi_->Scan(from.keyspace, plan.scan.index_name,
                            plan.scan.range, scan_limit, opts.consistency);
  if (!entries.ok()) return entries.status();

  if (plan.scan.kind == ScanKind::kIndexScan && plan.scan.covering) {
    // Covered query (paper §5.1.2): reconstruct the referenced fields from
    // the index entries; no document fetch at all.
    std::vector<ExecRow> rows;
    rows.reserve(entries->size());
    for (const gsi::IndexEntry& e : *entries) {
      Value doc = Value::MakeObject();
      if (plan.scan.index_key_paths.size() == 1) {
        doc.SetPath(plan.scan.index_key_paths[0], e.key);
      } else if (e.key.is_array()) {
        const auto& parts = e.key.AsArray();
        for (size_t i = 0;
             i < plan.scan.index_key_paths.size() && i < parts.size(); ++i) {
          doc.SetPath(plan.scan.index_key_paths[i], parts[i]);
        }
      }
      ExecRow row;
      row.row.bindings[from.alias] = BoundDoc{std::move(doc), e.doc_id, 0};
      rows.push_back(std::move(row));
    }
    return rows;
  }

  std::vector<std::string> ids;
  ids.reserve(entries->size());
  for (const gsi::IndexEntry& e : *entries) ids.push_back(e.doc_id);
  return FetchRows(from.keyspace, from.alias, ids, metrics);
}

Status QueryService::RunJoins(const SelectStatement& stmt,
                              const QueryOptions& opts,
                              std::vector<ExecRow>* rows,
                              QueryMetrics* metrics) {
  const std::string default_alias = stmt.from ? stmt.from->alias : "";
  for (const JoinClause& jc : stmt.joins) {
    std::vector<ExecRow> next;
    for (ExecRow& row : *rows) {
      EvalContext ctx = MakeContext(row, default_alias, opts);
      if (jc.kind == JoinClause::Kind::kUnnest) {
        // UNNEST: repeat the parent for each element of the nested array
        // (paper §3.2.3 / §4.5.3).
        auto arr = Eval(*jc.unnest_expr, ctx);
        if (!arr.ok()) return arr.status();
        if (!arr->is_array()) continue;  // inner unnest drops the row
        for (const Value& elem : arr->AsArray()) {
          ExecRow out = row;
          out.row.bindings[jc.alias] = BoundDoc{elem, "", 0};
          next.push_back(std::move(out));
        }
        continue;
      }
      // JOIN / NEST: evaluate ON KEYS to find the inner document ids, then
      // KeyScan the inner keyspace (the nested-loop join of §4.5.3).
      auto keys = Eval(*jc.on_keys, ctx);
      if (!keys.ok()) return keys.status();
      std::vector<std::string> ids;
      if (keys->is_string()) {
        ids.push_back(keys->AsString());
      } else if (keys->is_array()) {
        for (const Value& k : keys->AsArray()) {
          if (k.is_string()) ids.push_back(k.AsString());
        }
      }
      auto inner = FetchRows(jc.keyspace, jc.alias, ids, metrics);
      if (!inner.ok()) return inner.status();
      if (jc.kind == JoinClause::Kind::kNest) {
        // NEST: one output row; inner docs collected into an array
        // (paper §3.2.3: "its right-hand input is collected into an array").
        if (inner->empty() && jc.join_kind == JoinKind::kInner) continue;
        Value::Array collected;
        for (ExecRow& in : *inner) {
          collected.push_back(in.row.bindings[jc.alias].value);
        }
        ExecRow out = std::move(row);
        out.row.bindings[jc.alias] =
            BoundDoc{Value::MakeArray(std::move(collected)), "", 0};
        next.push_back(std::move(out));
      } else {
        if (inner->empty()) {
          if (jc.join_kind == JoinKind::kLeftOuter) {
            next.push_back(std::move(row));  // alias left unbound (MISSING)
          }
          continue;
        }
        for (ExecRow& in : *inner) {
          ExecRow out = row;
          out.row.bindings[jc.alias] = std::move(in.row.bindings[jc.alias]);
          next.push_back(std::move(out));
        }
      }
    }
    *rows = std::move(next);
  }
  return Status::OK();
}

Status QueryService::RunGroup(const SelectStatement& stmt,
                              const QueryPlan& plan, const QueryOptions& opts,
                              std::vector<ExecRow>* rows) {
  const std::string default_alias = stmt.from ? stmt.from->alias : "";
  // Partition rows into groups keyed by the GROUP BY values (one global
  // group when there is no GROUP BY but aggregates are present).
  std::map<std::string, std::vector<Row>> groups;
  std::map<std::string, ExecRow> representatives;
  for (ExecRow& row : *rows) {
    std::string key;
    EvalContext ctx = MakeContext(row, default_alias, opts);
    for (const ExprPtr& g : stmt.group_by) {
      auto v = Eval(*g, ctx);
      if (!v.ok()) return v.status();
      key += v->ToJson();
      key += '\x1f';
    }
    groups[key].push_back(row.row);
    representatives.emplace(key, row);
  }
  if (groups.empty() && stmt.group_by.empty()) {
    // Aggregates over an empty input still produce one row (COUNT(*) = 0).
    groups[""] = {};
    representatives.emplace("", ExecRow{});
  }
  std::vector<ExecRow> out;
  out.reserve(groups.size());
  for (auto& [key, members] : groups) {
    ExecRow result = representatives.at(key);
    for (const ExprPtr& agg : plan.aggregate_exprs) {
      auto v = ComputeAggregate(*agg, members, default_alias, opts.params);
      if (!v.ok()) return v.status();
      result.aggregates[agg->ToString()] = std::move(v).value();
    }
    out.push_back(std::move(result));
  }
  *rows = std::move(out);
  return Status::OK();
}

StatusOr<Value> QueryService::ProjectRow(const SelectStatement& stmt,
                                         const ExecRow& row,
                                         const QueryOptions& opts,
                                         const std::string& default_alias) {
  EvalContext ctx = MakeContext(row, default_alias, opts);
  return ProjectSelectItems(stmt.items, ctx);
}

StatusOr<QueryResult> QueryService::ExecSelect(const SelectStatement& stmt,
                                               const QueryOptions& opts,
                                               bool explain) {
  // §3.2.4: general (non-key) joins are linguistically restricted — "joins
  // are only allowed when one of the two sides involves the primary key".
  // The analytics service (§6.2) runs them instead.
  for (const JoinClause& jc : stmt.joins) {
    if (jc.kind == JoinClause::Kind::kJoin && jc.on_keys == nullptr) {
      return Status::Unsupported(
          "general join conditions are not supported by the query service; "
          "use ON KEYS, or run the query on the analytics service");
    }
  }
  std::vector<gsi::IndexDefinition> indexes;
  if (stmt.from.has_value()) {
    indexes = gsi_->ListIndexes(stmt.from->keyspace);
  }
  auto plan_or = PlanSelect(stmt, indexes, opts.params);
  if (!plan_or.ok()) return plan_or.status();
  QueryPlan& plan = *plan_or;

  QueryResult result;
  if (explain) {
    result.rows.push_back(plan.Describe(stmt));
    return result;
  }

  const std::string default_alias = stmt.from ? stmt.from->alias : "";

  // Scan (+ implicit fetch).
  auto rows_or = RunScan(stmt, plan, opts, &result.metrics);
  if (!rows_or.ok()) return rows_or.status();
  std::vector<ExecRow> rows = std::move(rows_or).value();

  // Joins / NEST / UNNEST.
  COUCHKV_RETURN_IF_ERROR(RunJoins(stmt, opts, &rows, &result.metrics));

  // Filter.
  if (stmt.where != nullptr) {
    std::vector<ExecRow> kept;
    kept.reserve(rows.size());
    for (ExecRow& row : rows) {
      EvalContext ctx = MakeContext(row, default_alias, opts);
      auto cond = EvalCondition(*stmt.where, ctx);
      if (!cond.ok()) return cond.status();
      if (*cond) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Group / aggregate.
  if (plan.has_aggregates || !stmt.group_by.empty()) {
    COUCHKV_RETURN_IF_ERROR(RunGroup(stmt, plan, opts, &rows));
    if (stmt.having != nullptr) {
      std::vector<ExecRow> kept;
      for (ExecRow& row : rows) {
        EvalContext ctx = MakeContext(row, default_alias, opts);
        auto cond = EvalCondition(*stmt.having, ctx);
        if (!cond.ok()) return cond.status();
        if (*cond) kept.push_back(std::move(row));
      }
      rows = std::move(kept);
    }
  }

  // Sort.
  if (!stmt.order_by.empty()) {
    struct Keyed {
      std::vector<Value> keys;
      size_t index;
    };
    std::vector<Keyed> keyed(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      keyed[i].index = i;
      EvalContext ctx = MakeContext(rows[i], default_alias, opts);
      for (const OrderKey& k : stmt.order_by) {
        auto v = Eval(*ResolveOutputAlias(k.expr, stmt.items), ctx);
        if (!v.ok()) return v.status();
        keyed[i].keys.push_back(std::move(v).value());
      }
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int c = Value::Compare(a.keys[k], b.keys[k]);
                         if (c != 0) {
                           return stmt.order_by[k].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    std::vector<ExecRow> sorted;
    sorted.reserve(rows.size());
    for (const Keyed& k : keyed) sorted.push_back(std::move(rows[k.index]));
    rows = std::move(sorted);
  }

  // Offset / limit.
  auto offset = EvalCount(stmt.offset, opts, 0);
  if (!offset.ok()) return offset.status();
  auto limit = EvalCount(stmt.limit, opts, SIZE_MAX);
  if (!limit.ok()) return limit.status();
  if (*offset > 0) {
    if (*offset >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + static_cast<long>(*offset));
    }
  }
  if (rows.size() > *limit) rows.resize(*limit);

  // Projection (+ DISTINCT on the projected values).
  std::set<std::string> seen;
  for (const ExecRow& row : rows) {
    auto projected = ProjectRow(stmt, row, opts, default_alias);
    if (!projected.ok()) return projected.status();
    if (stmt.distinct) {
      std::string ser = projected->ToJson();
      if (!seen.insert(ser).second) continue;
    }
    result.rows.push_back(std::move(projected).value());
  }
  return result;
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

StatusOr<QueryResult> QueryService::ExecInsert(const InsertStatement& stmt,
                                               const QueryOptions& opts) {
  client::SmartClient* client = ClientFor(stmt.keyspace);
  QueryResult result;
  EvalContext ctx;
  ctx.params = &opts.params;
  for (const auto& [key_expr, value_expr] : stmt.values) {
    auto key = Eval(*key_expr, ctx);
    if (!key.ok()) return key.status();
    if (!key->is_string()) {
      return Status::InvalidArgument("INSERT key must be a string");
    }
    auto value = Eval(*value_expr, ctx);
    if (!value.ok()) return value.status();
    StatusOr<client::MutateReply> reply =
        stmt.upsert ? client->Upsert(key->AsString(), value->ToJson())
                    : client->Insert(key->AsString(), value->ToJson());
    if (!reply.ok()) return reply.status();
    ++result.metrics.mutation_count;
  }
  return result;
}

StatusOr<std::vector<QueryService::ExecRow>> QueryService::ResolveDmlTargets(
    const std::string& keyspace, const std::string& alias,
    const ExprPtr& use_keys, const ExprPtr& where, const QueryOptions& opts,
    QueryMetrics* metrics) {
  // Reuse the SELECT machinery: build a synthetic `SELECT * FROM ks ...`.
  SelectStatement synth;
  SelectItem star;
  star.star = true;
  synth.items.push_back(star);
  FromTerm from;
  from.keyspace = keyspace;
  from.alias = alias;
  from.use_keys = use_keys;
  synth.from = from;
  synth.where = where;

  auto plan = PlanSelect(synth, gsi_->ListIndexes(keyspace), opts.params);
  if (!plan.ok()) return plan.status();
  // DML must see the document body, never a covered projection.
  plan->scan.covering = false;
  auto rows = RunScan(synth, *plan, opts, metrics);
  if (!rows.ok()) return rows;
  if (where != nullptr) {
    std::vector<ExecRow> kept;
    for (ExecRow& row : *rows) {
      EvalContext ctx = MakeContext(row, alias, opts);
      auto cond = EvalCondition(*where, ctx);
      if (!cond.ok()) return cond.status();
      if (*cond) kept.push_back(std::move(row));
    }
    return kept;
  }
  return rows;
}

StatusOr<QueryResult> QueryService::ExecUpdate(const UpdateStatement& stmt,
                                               const QueryOptions& opts) {
  QueryResult result;
  auto targets = ResolveDmlTargets(stmt.keyspace, stmt.alias, stmt.use_keys,
                                   stmt.where, opts, &result.metrics);
  if (!targets.ok()) return targets.status();
  auto limit = EvalCount(stmt.limit, opts, SIZE_MAX);
  if (!limit.ok()) return limit.status();
  if (targets->size() > *limit) targets->resize(*limit);

  client::SmartClient* client = ClientFor(stmt.keyspace);
  for (ExecRow& row : *targets) {
    BoundDoc& bound = row.row.bindings[stmt.alias];
    Value doc = bound.value;
    EvalContext ctx = MakeContext(row, stmt.alias, opts);
    for (const UpdatePair& pair : stmt.set) {
      auto v = Eval(*pair.value, ctx);
      if (!v.ok()) return v.status();
      if (!doc.SetPath(pair.path, std::move(v).value())) {
        return Status::InvalidArgument("cannot SET path " + pair.path);
      }
    }
    for (const std::string& path : stmt.unset) {
      doc.RemovePath(path);
    }
    client::WriteOptions wopts;
    wopts.cas = bound.meta_cas;  // optimistic: fail on concurrent change
    auto reply = client->Replace(bound.meta_id, doc.ToJson(), wopts);
    if (!reply.ok()) {
      if (reply.status().IsKeyExists()) continue;  // lost the race: skip
      return reply.status();
    }
    ++result.metrics.mutation_count;
  }
  return result;
}

StatusOr<QueryResult> QueryService::ExecDelete(const DeleteStatement& stmt,
                                               const QueryOptions& opts) {
  QueryResult result;
  auto targets = ResolveDmlTargets(stmt.keyspace, stmt.alias, stmt.use_keys,
                                   stmt.where, opts, &result.metrics);
  if (!targets.ok()) return targets.status();
  auto limit = EvalCount(stmt.limit, opts, SIZE_MAX);
  if (!limit.ok()) return limit.status();
  if (targets->size() > *limit) targets->resize(*limit);

  client::SmartClient* client = ClientFor(stmt.keyspace);
  for (ExecRow& row : *targets) {
    BoundDoc& bound = row.row.bindings[stmt.alias];
    auto reply = client->Remove(bound.meta_id, bound.meta_cas);
    if (!reply.ok()) {
      if (reply.status().IsKeyExists() || reply.status().IsNotFound()) continue;
      return reply.status();
    }
    ++result.metrics.mutation_count;
  }
  return result;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

StatusOr<QueryResult> QueryService::ExecCreateIndex(
    const CreateIndexStatement& stmt) {
  if (stmt.using_clause == CreateIndexStatement::Using::kView) {
    // USING VIEW (paper §3.3.1): materialize a local view index keyed on the
    // indexed paths. Queryable through the View API.
    views::ViewDefinition def;
    def.name = stmt.name;
    for (const ExprPtr& key : stmt.keys) {
      auto rel = RelativePathText(*key, stmt.keyspace);
      if (!rel.has_value()) {
        return Status::Unsupported("USING VIEW requires plain path keys");
      }
      def.map.key_paths.push_back(*rel);
    }
    if (!def.map.key_paths.empty()) {
      def.map.filter_exists_path = def.map.key_paths[0];
    }
    if (stmt.primary) {
      return Status::Unsupported(
          "PRIMARY INDEX USING VIEW is not supported; use GSI");
    }
    COUCHKV_RETURN_IF_ERROR(views_->CreateView(stmt.keyspace, def));
    LockGuard lock(mu_);
    view_indexes_[stmt.keyspace + "." + stmt.name] = stmt.name;
    return QueryResult{};
  }

  gsi::IndexDefinition def;
  def.name = stmt.name;
  def.bucket = stmt.keyspace;
  def.is_primary = stmt.primary;
  def.array_index = stmt.array_index;
  def.num_partitions = stmt.num_partitions;
  def.mode = stmt.memory_optimized ? gsi::IndexStorageMode::kMemoryOptimized
                                   : gsi::IndexStorageMode::kStandard;
  for (const ExprPtr& key : stmt.keys) {
    auto rel = RelativePathText(*key, stmt.keyspace);
    if (!rel.has_value()) {
      return Status::Unsupported(
          "only plain document paths can be indexed (got " + key->ToString() +
          ")");
    }
    def.key_paths.push_back(*rel);
  }
  if (stmt.where != nullptr) {
    def.where_text = stmt.where->ToString();
    ExprPtr where = stmt.where;
    std::string alias = stmt.keyspace;
    def.where_fn = [where, alias](const json::Value& doc) {
      Row row;
      row.bindings[alias] = BoundDoc{doc, "", 0};
      EvalContext ctx;
      ctx.row = &row;
      ctx.default_alias = alias;
      auto cond = EvalCondition(*where, ctx);
      return cond.ok() && *cond;
    };
  }
  COUCHKV_RETURN_IF_ERROR(gsi_->CreateIndex(std::move(def)));
  return QueryResult{};
}

StatusOr<QueryResult> QueryService::ExecDropIndex(
    const DropIndexStatement& stmt) {
  {
    LockGuard lock(mu_);
    auto it = view_indexes_.find(stmt.keyspace + "." + stmt.name);
    if (it != view_indexes_.end()) {
      Status st = views_->DropView(stmt.keyspace, it->second);
      if (st.ok()) view_indexes_.erase(it);
      if (!st.ok()) return st;
      return QueryResult{};
    }
  }
  COUCHKV_RETURN_IF_ERROR(gsi_->DropIndex(stmt.keyspace, stmt.name));
  return QueryResult{};
}

}  // namespace couchkv::n1ql
