// Tokenizer for N1QL. Keywords are case-insensitive; identifiers may be
// escaped with backticks (`Profile`); strings use single or double quotes;
// positional parameters are $1, $2, ...
#ifndef COUCHKV_N1QL_LEXER_H_
#define COUCHKV_N1QL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace couchkv::n1ql {

enum class TokenType {
  kEof,
  kIdentifier,   // possibly a keyword; parser decides
  kString,
  kNumber,
  kParameter,    // $n
  kLParen, kRParen,
  kLBracket, kRBracket,
  kLBrace, kRBrace,
  kComma, kDot, kColon, kSemicolon, kStar,
  kEq, kNeq, kLt, kLte, kGt, kGte,
  kPlus, kMinus, kSlash, kPercent,
  kConcat,  // ||
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    // identifier/keyword text (original case preserved)
  std::string upper;   // upper-cased text for keyword comparison
  double number = 0;
  size_t param_index = 0;
  size_t offset = 0;   // position in the input, for error messages
};

// Tokenizes `input`; returns ParseError on malformed input.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_LEXER_H_
