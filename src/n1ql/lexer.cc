#include "n1ql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace couchkv::n1ql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = in.size();

  auto error = [&](const std::string& what) {
    return Status::ParseError("lex error at offset " + std::to_string(i) +
                              ": " + what);
  };
  auto push = [&](TokenType t, size_t off) {
    Token tok;
    tok.type = t;
    tok.offset = off;
    tokens.push_back(tok);
  };

  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments: -- to end of line, /* ... */
    if (c == '-' && i + 1 < n && in[i + 1] == '-') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      size_t end = in.find("*/", i + 2);
      if (end == std::string_view::npos) return error("unterminated comment");
      i = end + 2;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(in[i])) ++i;
      Token tok;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(in.substr(start, i - start));
      tok.upper = tok.text;
      for (char& ch : tok.upper) ch = static_cast<char>(std::toupper(ch));
      tok.offset = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '`') {
      ++i;
      size_t end = in.find('`', i);
      if (end == std::string_view::npos) {
        return error("unterminated backtick identifier");
      }
      Token tok;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(in.substr(i, end - i));
      tok.upper.clear();  // escaped identifiers never match keywords
      tok.offset = start;
      tokens.push_back(std::move(tok));
      i = end + 1;
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (in[i] == quote) {
          // Doubled quote escapes itself ('' -> ').
          if (i + 1 < n && in[i + 1] == quote) {
            text.push_back(quote);
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        if (in[i] == '\\' && i + 1 < n) {
          char e = in[i + 1];
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            default: text.push_back(e);
          }
          i += 2;
          continue;
        }
        text.push_back(in[i]);
        ++i;
      }
      if (!closed) return error("unterminated string");
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tok.offset = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(in[i])) ||
                       in[i] == '.' || in[i] == 'e' || in[i] == 'E' ||
                       ((in[i] == '+' || in[i] == '-') &&
                        (in[i - 1] == 'e' || in[i - 1] == 'E')))) {
        ++i;
      }
      std::string num(in.substr(start, i - start));
      char* end = nullptr;
      double d = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) return error("bad number " + num);
      Token tok;
      tok.type = TokenType::kNumber;
      tok.number = d;
      tok.text = num;
      tok.offset = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '$') {
      ++i;
      size_t ds = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      if (i == ds) return error("expected parameter number after $");
      Token tok;
      tok.type = TokenType::kParameter;
      tok.param_index =
          static_cast<size_t>(std::strtoull(in.substr(ds, i - ds).data(),
                                            nullptr, 10));
      tok.offset = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    // Punctuation and operators.
    ++i;
    switch (c) {
      case '(': push(TokenType::kLParen, start); break;
      case ')': push(TokenType::kRParen, start); break;
      case '[': push(TokenType::kLBracket, start); break;
      case ']': push(TokenType::kRBracket, start); break;
      case '{': push(TokenType::kLBrace, start); break;
      case '}': push(TokenType::kRBrace, start); break;
      case ',': push(TokenType::kComma, start); break;
      case '.': push(TokenType::kDot, start); break;
      case ':': push(TokenType::kColon, start); break;
      case ';': push(TokenType::kSemicolon, start); break;
      case '*': push(TokenType::kStar, start); break;
      case '+': push(TokenType::kPlus, start); break;
      case '-': push(TokenType::kMinus, start); break;
      case '/': push(TokenType::kSlash, start); break;
      case '%': push(TokenType::kPercent, start); break;
      case '=':
        if (i < n && in[i] == '=') ++i;  // == accepted as =
        push(TokenType::kEq, start);
        break;
      case '!':
        if (i < n && in[i] == '=') {
          ++i;
          push(TokenType::kNeq, start);
        } else {
          return error("unexpected '!'");
        }
        break;
      case '<':
        if (i < n && in[i] == '=') {
          ++i;
          push(TokenType::kLte, start);
        } else if (i < n && in[i] == '>') {
          ++i;
          push(TokenType::kNeq, start);
        } else {
          push(TokenType::kLt, start);
        }
        break;
      case '>':
        if (i < n && in[i] == '=') {
          ++i;
          push(TokenType::kGte, start);
        } else {
          push(TokenType::kGt, start);
        }
        break;
      case '|':
        if (i < n && in[i] == '|') {
          ++i;
          push(TokenType::kConcat, start);
        } else {
          return error("unexpected '|'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenType::kEof, n);
  return tokens;
}

}  // namespace couchkv::n1ql
