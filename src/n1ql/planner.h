// The N1QL query planner (paper §4.5.3): picks the access path for each
// keyspace — KeyScan (USE KEYS), IndexScan (a sargable secondary index,
// possibly covering), or PrimaryScan (full scan via the primary index) —
// and records it in a QueryPlan the executor then runs.
#ifndef COUCHKV_N1QL_PLANNER_H_
#define COUCHKV_N1QL_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "gsi/index_service.h"
#include "n1ql/ast.h"

namespace couchkv::n1ql {

enum class ScanKind { kKeyScan, kIndexScan, kPrimaryScan, kNoScan };

const char* ScanKindName(ScanKind k);

// The chosen access path for the FROM keyspace.
struct ScanChoice {
  ScanKind kind = ScanKind::kNoScan;  // kNoScan: FROM-less SELECT
  // kKeyScan
  ExprPtr use_keys;
  // kIndexScan / kPrimaryScan
  std::string index_name;
  gsi::ScanRange range;  // bounds derived from sargable predicates
  bool covering = false;
  std::vector<std::string> index_key_paths;  // for covering reconstruction
  std::string range_description;             // for EXPLAIN
  // True when the WHERE clause is entirely absorbed by the scan range, so
  // LIMIT can be pushed down into the index scan.
  bool where_consumed = false;
};

struct QueryPlan {
  ScanChoice scan;
  // True when the statement has aggregates / GROUP BY (executor runs the
  // Group operator).
  bool has_aggregates = false;
  // Normalized texts of aggregate calls appearing anywhere in the query.
  std::vector<ExprPtr> aggregate_exprs;

  // Rendered plan for EXPLAIN (mirrors Figure 11's operator list).
  json::Value Describe(const SelectStatement& stmt) const;
};

// If `expr` is a path rooted at `alias` (or unqualified), returns its text
// relative to the document root ("a.b[0]"); otherwise nullopt.
std::optional<std::string> RelativePathText(const Expr& expr,
                                            const std::string& alias);

// Collects every aggregate call in the statement.
void CollectAggregates(const SelectStatement& stmt,
                       std::vector<ExprPtr>* out);

// Chooses the access path for `stmt` given the indexes defined on the
// bucket. `params` lets sargable bounds reference positional parameters.
StatusOr<QueryPlan> PlanSelect(const SelectStatement& stmt,
                               const std::vector<gsi::IndexDefinition>& indexes,
                               const std::vector<json::Value>& params);

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_PLANNER_H_
