#include "n1ql/exec_util.h"

namespace couchkv::n1ql {

using json::Value;

StatusOr<Value> ComputeAggregate(const Expr& agg, const std::vector<Row>& rows,
                                 const std::string& default_alias,
                                 const std::vector<Value>& params) {
  std::vector<Value> inputs;
  inputs.reserve(rows.size());
  for (const Row& r : rows) {
    if (agg.fn_star) {
      inputs.push_back(Value::Bool(true));  // COUNT(*): every row counts
      continue;
    }
    EvalContext ctx;
    ctx.row = &r;
    ctx.default_alias = default_alias;
    ctx.params = &params;
    auto v = Eval(*agg.children[0], ctx);
    if (!v.ok()) return v.status();
    inputs.push_back(std::move(v).value());
  }
  if (agg.fn_distinct) {
    std::vector<Value> uniq;
    for (Value& v : inputs) {
      bool dup = false;
      for (const Value& u : uniq) {
        if (Value::Compare(u, v) == 0) {
          dup = true;
          break;
        }
      }
      if (!dup) uniq.push_back(std::move(v));
    }
    inputs = std::move(uniq);
  }
  if (agg.fn_name == "count") {
    int64_t n = 0;
    for (const Value& v : inputs) {
      if (!v.is_missing() && !v.is_null()) ++n;
    }
    return Value::Int(n);
  }
  if (agg.fn_name == "sum" || agg.fn_name == "avg") {
    double sum = 0;
    int64_t n = 0;
    for (const Value& v : inputs) {
      if (v.is_number()) {
        sum += v.AsNumber();
        ++n;
      }
    }
    if (agg.fn_name == "sum") return n ? Value::Number(sum) : Value::Null();
    return n ? Value::Number(sum / static_cast<double>(n)) : Value::Null();
  }
  // MIN / MAX over the collation order, ignoring missing/null.
  Value best = Value::Missing();
  for (const Value& v : inputs) {
    if (v.is_missing() || v.is_null()) continue;
    if (best.is_missing()) {
      best = v;
    } else {
      int c = Value::Compare(v, best);
      if ((agg.fn_name == "min" && c < 0) || (agg.fn_name == "max" && c > 0)) {
        best = v;
      }
    }
  }
  return best.is_missing() ? Value::Null() : best;
}

StatusOr<size_t> EvalCountExpr(const ExprPtr& e,
                               const std::vector<Value>& params,
                               size_t fallback) {
  if (e == nullptr) return fallback;
  EvalContext ctx;
  ctx.params = &params;
  auto v = Eval(*e, ctx);
  if (!v.ok()) return v.status();
  if (!v->is_number() || v->AsNumber() < 0) {
    return Status::InvalidArgument("LIMIT/OFFSET must be a non-negative number");
  }
  return static_cast<size_t>(v->AsNumber());
}

StatusOr<Value> ProjectSelectItems(const std::vector<SelectItem>& items,
                                   const EvalContext& ctx) {
  Value out = Value::MakeObject();
  size_t anon = 1;
  for (const SelectItem& item : items) {
    if (item.star) {
      // '*' merges every bound document into the result object.
      for (const auto& [alias, doc] : ctx.row->bindings) {
        if (doc.value.is_object()) {
          for (const auto& [k, v] : doc.value.AsObject()) {
            out[k] = v;
          }
        } else if (!doc.value.is_missing()) {
          out[alias] = doc.value;
        }
      }
      continue;
    }
    // alias.* form arrives as __star__(path).
    if (item.expr->kind == ExprKind::kFunction &&
        item.expr->fn_name == "__star__") {
      auto v = Eval(*item.expr->children[0], ctx);
      if (!v.ok()) return v.status();
      if (v->is_object()) {
        for (const auto& [k, field] : v->AsObject()) out[k] = field;
      }
      continue;
    }
    auto v = Eval(*item.expr, ctx);
    if (!v.ok()) return v.status();
    std::string name = item.alias;
    if (name.empty()) name = "$" + std::to_string(anon++);
    if (!v->is_missing()) out[name] = std::move(v).value();
  }
  return out;
}

const ExprPtr& ResolveOutputAlias(const ExprPtr& expr,
                                  const std::vector<SelectItem>& items) {
  if (expr == nullptr || expr->kind != ExprKind::kPath ||
      expr->path.size() != 1 || expr->path[0].is_index()) {
    return expr;
  }
  for (const SelectItem& item : items) {
    if (!item.star && item.expr != nullptr &&
        item.alias == expr->path[0].field) {
      // Do not substitute when the "alias" is really the trailing segment
      // of the same path (SELECT name FROM b ORDER BY name is identical
      // either way, so substitution is still safe).
      return item.expr;
    }
  }
  return expr;
}

}  // namespace couchkv::n1ql
