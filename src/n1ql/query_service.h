// The Query Service (paper §4.3.5, §4.5): parses N1QL, plans against the
// index catalog, and executes the operator pipeline of Figure 11 — scan →
// fetch → join/nest/unnest → filter → group → project → sort → limit →
// final project — with parallel fetch. Also executes DML and index DDL.
#ifndef COUCHKV_N1QL_QUERY_SERVICE_H_
#define COUCHKV_N1QL_QUERY_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "gsi/index_service.h"
#include "n1ql/ast.h"
#include "n1ql/expr_eval.h"
#include "n1ql/planner.h"
#include "stats/registry.h"
#include "views/view_engine.h"

namespace couchkv::n1ql {

struct QueryOptions {
  std::vector<json::Value> params;  // positional $1, $2, ...
  // Query scan consistency (paper §3.2.3): not_bounded or request_plus.
  gsi::ScanConsistency consistency = gsi::ScanConsistency::kNotBounded;
};

struct QueryMetrics {
  uint64_t elapsed_ns = 0;
  size_t result_count = 0;
  size_t docs_fetched = 0;    // Fetch-operator document reads
  size_t mutation_count = 0;  // DML statements
};

struct QueryResult {
  std::vector<json::Value> rows;
  QueryMetrics metrics;
};

class QueryService {
 public:
  QueryService(cluster::Cluster* cluster,
               std::shared_ptr<gsi::IndexService> gsi,
               std::shared_ptr<views::ViewEngine> views);

  // Parses and executes one N1QL statement.
  StatusOr<QueryResult> Execute(const std::string& query,
                                const QueryOptions& opts = {});

 private:
  struct ExecRow {
    Row row;
    std::map<std::string, json::Value> aggregates;
  };

  client::SmartClient* ClientFor(const std::string& bucket);

  StatusOr<QueryResult> ExecSelect(const SelectStatement& stmt,
                                   const QueryOptions& opts, bool explain);
  StatusOr<QueryResult> ExecInsert(const InsertStatement& stmt,
                                   const QueryOptions& opts);
  StatusOr<QueryResult> ExecUpdate(const UpdateStatement& stmt,
                                   const QueryOptions& opts);
  StatusOr<QueryResult> ExecDelete(const DeleteStatement& stmt,
                                   const QueryOptions& opts);
  StatusOr<QueryResult> ExecCreateIndex(const CreateIndexStatement& stmt);
  StatusOr<QueryResult> ExecDropIndex(const DropIndexStatement& stmt);

  // --- operators ---
  // Runs the chosen scan, producing bound rows. Sets metrics.docs_fetched.
  StatusOr<std::vector<ExecRow>> RunScan(const SelectStatement& stmt,
                                         const QueryPlan& plan,
                                         const QueryOptions& opts,
                                         QueryMetrics* metrics);
  // Parallel fetch of documents by id; missing ids are skipped.
  StatusOr<std::vector<ExecRow>> FetchRows(const std::string& bucket,
                                           const std::string& alias,
                                           const std::vector<std::string>& ids,
                                           QueryMetrics* metrics);
  Status RunJoins(const SelectStatement& stmt, const QueryOptions& opts,
                  std::vector<ExecRow>* rows, QueryMetrics* metrics);
  Status RunGroup(const SelectStatement& stmt, const QueryPlan& plan,
                  const QueryOptions& opts, std::vector<ExecRow>* rows);
  StatusOr<json::Value> ProjectRow(const SelectStatement& stmt,
                                   const ExecRow& row,
                                   const QueryOptions& opts,
                                   const std::string& default_alias);

  // Resolves the target documents for UPDATE/DELETE.
  StatusOr<std::vector<ExecRow>> ResolveDmlTargets(
      const std::string& keyspace, const std::string& alias,
      const ExprPtr& use_keys, const ExprPtr& where, const QueryOptions& opts,
      QueryMetrics* metrics);

  EvalContext MakeContext(const ExecRow& row, const std::string& default_alias,
                          const QueryOptions& opts) const;

  cluster::Cluster* cluster_;
  std::shared_ptr<gsi::IndexService> gsi_;
  std::shared_ptr<views::ViewEngine> views_;
  ThreadPool pool_;

  // Service-wide observability (scope "n1ql"): statement counts, end-to-end
  // query latency, and the fan-out fetch operator's latency.
  std::shared_ptr<stats::Scope> stats_scope_;
  stats::Counter* queries_ = nullptr;
  stats::Counter* query_errors_ = nullptr;
  stats::Counter* dml_mutations_ = nullptr;
  Histogram* query_ns_ = nullptr;
  Histogram* fetch_ns_ = nullptr;

  Mutex mu_{"n1ql.query_service"};
  COUCHKV_LOCK_ORDER("n1ql.query_service", "views.engine");
  COUCHKV_LOCK_ORDER("n1ql.query_service", "dcp.stream_delivery");
  COUCHKV_LOCK_ORDER("n1ql.query_service", "thread_pool.pool");
  std::map<std::string, std::unique_ptr<client::SmartClient>> clients_
      GUARDED_BY(mu_);
  // Indexes created USING VIEW (paper §3.3.1), tracked for DROP INDEX.
  // "bucket.name" -> view
  std::map<std::string, std::string> view_indexes_ GUARDED_BY(mu_);
};

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_QUERY_SERVICE_H_
