// Abstract syntax tree for the N1QL dialect described in the paper (§3.2):
// SELECT with USE KEYS / JOIN ON KEYS / NEST / UNNEST, DML (INSERT, UPSERT,
// UPDATE, DELETE), index DDL, and EXPLAIN.
#ifndef COUCHKV_N1QL_AST_H_
#define COUCHKV_N1QL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "json/value.h"

namespace couchkv::n1ql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kParameter,     // positional $1, $2, ...
  kPath,          // alias.a.b[0] (alias may be implicit)
  kMeta,          // META(alias).id / .cas
  kUnary,
  kBinary,
  kIsPredicate,   // IS [NOT] NULL / MISSING / VALUED
  kFunction,      // COUNT, SUM, LOWER, ...
  kArrayLiteral,
  kObjectLiteral,
  kCollection,    // ANY / EVERY var IN expr SATISFIES cond END
  kArrayComprehension,  // ARRAY expr FOR var IN expr [WHEN cond] END
  kCase,          // CASE WHEN c THEN v ... [ELSE e] END
};

enum class UnaryOp { kNot, kNeg };

enum class BinaryOp {
  kEq, kNeq, kLt, kLte, kGt, kGte,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
  kLike, kNotLike,
  kConcat,
  kIn, kNotIn,
};

enum class IsKind { kNull, kNotNull, kMissing, kNotMissing, kValued };

enum class CollectionKind { kAny, kEvery };

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

// One step in a path: either a named field or an array subscript.
struct PathSegment {
  std::string field;       // empty for subscripts
  int64_t index = -1;      // >= 0 for subscripts
  bool is_index() const { return field.empty(); }
};

struct CaseArm {
  ExprPtr when;
  ExprPtr then;
};

struct Expr {
  ExprKind kind;

  // kLiteral
  json::Value literal;
  // kParameter
  size_t param_index = 0;  // 1-based
  // kPath: first segment is the alias or the first field (resolved against
  // the single FROM alias when it does not match any alias).
  std::vector<PathSegment> path;
  // kMeta
  std::string meta_alias;  // may be empty (single-keyspace queries)
  std::string meta_field;  // "id" or "cas"
  // kUnary
  UnaryOp unary_op = UnaryOp::kNot;
  // kBinary
  BinaryOp binary_op = BinaryOp::kEq;
  // kIsPredicate
  IsKind is_kind = IsKind::kNull;
  // kFunction
  std::string fn_name;  // lower-cased
  bool fn_distinct = false;
  bool fn_star = false;  // COUNT(*)
  // kCollection / kArrayComprehension
  CollectionKind coll_kind = CollectionKind::kAny;
  std::string var_name;
  // kCase
  std::vector<CaseArm> case_arms;
  ExprPtr case_else;

  std::vector<ExprPtr> children;  // operands / args / elements
  std::vector<std::string> object_keys;  // kObjectLiteral field names

  // Reconstructed (normalized) text, for EXPLAIN and index matching.
  std::string ToString() const;
};

ExprPtr MakeLiteral(json::Value v);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class JoinKind { kInner, kLeftOuter };

// FROM b [AS x] plus the chain of join-ish clauses.
struct FromTerm {
  std::string keyspace;
  std::string alias;           // defaults to keyspace name
  ExprPtr use_keys;            // USE KEYS expr (string or array of strings)
};

struct JoinClause {
  enum class Kind { kJoin, kNest, kUnnest } kind = Kind::kJoin;
  JoinKind join_kind = JoinKind::kInner;
  // kJoin / kNest: right-hand keyspace + ON KEYS expr (evaluated per left
  // row; yields a key or array of keys — the only join N1QL permits, §3.2.4).
  std::string keyspace;
  ExprPtr on_keys;
  // General join condition (`JOIN b ON a.x = b.y`). Rejected by the N1QL
  // query service per §3.2.4; executed by the analytics service (§6.2),
  // whose engine supports "richer (and more expensive) queries such as
  // large joins".
  ExprPtr on_condition;
  // kUnnest: the array-valued expression to flatten.
  ExprPtr unnest_expr;
  std::string alias;
};

struct SelectItem {
  ExprPtr expr;       // null for '*'
  std::string alias;  // output field name ("" = derived)
  bool star = false;
  std::string star_alias;  // `x`.* form
};

struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<FromTerm> from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderKey> order_by;
  ExprPtr limit;   // must evaluate to a number
  ExprPtr offset;
};

struct InsertStatement {
  std::string keyspace;
  bool upsert = false;  // UPSERT INTO ...
  // (KEY, VALUE) VALUES (k1, v1), (k2, v2), ...
  std::vector<std::pair<ExprPtr, ExprPtr>> values;
};

struct UpdatePair {
  std::string path;  // textual path relative to the document root
  ExprPtr value;
};

struct UpdateStatement {
  std::string keyspace;
  std::string alias;
  ExprPtr use_keys;
  std::vector<UpdatePair> set;
  std::vector<std::string> unset;
  ExprPtr where;
  ExprPtr limit;
};

struct DeleteStatement {
  std::string keyspace;
  std::string alias;
  ExprPtr use_keys;
  ExprPtr where;
  ExprPtr limit;
};

struct CreateIndexStatement {
  std::string name;
  std::string keyspace;
  bool primary = false;
  std::vector<ExprPtr> keys;
  ExprPtr where;
  enum class Using { kGsi, kView } using_clause = Using::kGsi;
  bool memory_optimized = false;  // WITH {"memory_optimized": true}
  uint32_t num_partitions = 1;    // WITH {"num_partitions": N}
  bool array_index = false;       // leading key is DISTINCT ARRAY ... form
};

struct DropIndexStatement {
  std::string keyspace;
  std::string name;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateIndex,
    kDropIndex,
  } kind = Kind::kSelect;
  bool explain = false;

  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  CreateIndexStatement create_index;
  DropIndexStatement drop_index;
};

}  // namespace couchkv::n1ql

#endif  // COUCHKV_N1QL_AST_H_
