#include "n1ql/parser.h"

#include "n1ql/lexer.h"

namespace couchkv::n1ql {

namespace {

#define PARSE_CHECK(expr)            \
  do {                               \
    Status _st = (expr);             \
    if (!_st.ok()) return _st;       \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatementTop() {
    Statement stmt;
    if (AcceptKeyword("EXPLAIN")) stmt.explain = true;
    if (PeekKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      PARSE_CHECK(ParseSelect(&stmt.select));
    } else if (PeekKeyword("INSERT") || PeekKeyword("UPSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      PARSE_CHECK(ParseInsert(&stmt.insert));
    } else if (PeekKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      PARSE_CHECK(ParseUpdate(&stmt.update));
    } else if (PeekKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      PARSE_CHECK(ParseDelete(&stmt.del));
    } else if (PeekKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateIndex;
      PARSE_CHECK(ParseCreateIndex(&stmt.create_index));
    } else if (PeekKeyword("DROP")) {
      stmt.kind = Statement::Kind::kDropIndex;
      PARSE_CHECK(ParseDropIndex(&stmt.drop_index));
    } else {
      return Err("expected a statement");
    }
    Accept(TokenType::kSemicolon);
    if (!Peek(TokenType::kEof)) return Err("trailing tokens after statement");
    return stmt;
  }

  StatusOr<ExprPtr> ParseExpressionTop() {
    ExprPtr e;
    PARSE_CHECK(ParseExpr(&e));
    if (!Peek(TokenType::kEof)) return Err("trailing tokens after expression");
    return e;
  }

 private:
  // --- token helpers ---
  const Token& Cur() const { return tokens_[pos_]; }
  bool Peek(TokenType t) const { return Cur().type == t; }
  bool PeekKeyword(std::string_view kw) const {
    return Cur().type == TokenType::kIdentifier && Cur().upper == kw;
  }
  bool Accept(TokenType t) {
    if (Peek(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const std::string& what) {
    if (!Accept(t)) return Err("expected " + what);
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) return Err("expected " + std::string(kw));
    return Status::OK();
  }
  Status Err(const std::string& what) const {
    return Status::ParseError("parse error near offset " +
                              std::to_string(Cur().offset) + ": " + what);
  }
  // Identifier that is not treated as a keyword here.
  StatusOr<std::string> ExpectIdent(const std::string& what) {
    if (!Peek(TokenType::kIdentifier)) return Err("expected " + what);
    std::string name = Cur().text;
    ++pos_;
    return name;
  }

  // --- statements ---

  Status ParseSelect(SelectStatement* out) {
    PARSE_CHECK(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) out->distinct = true;
    else AcceptKeyword("ALL");
    // select list
    for (;;) {
      SelectItem item;
      if (Accept(TokenType::kStar)) {
        item.star = true;
      } else {
        PARSE_CHECK(ParseExpr(&item.expr));
        // `alias`.* form shows up as a path whose last segment is '*'.. we
        // instead detect "expr DOT STAR" inside ParsePathSuffix; here handle
        // AS alias.
        if (AcceptKeyword("AS")) {
          auto name = ExpectIdent("alias after AS");
          if (!name.ok()) return name.status();
          item.alias = *name;
        } else if (Peek(TokenType::kIdentifier) && !IsClauseKeyword()) {
          item.alias = Cur().text;
          ++pos_;
        }
        if (item.expr->kind == ExprKind::kPath && item.alias.empty()) {
          // Default output name: last path segment.
          for (auto it = item.expr->path.rbegin(); it != item.expr->path.rend();
               ++it) {
            if (!it->is_index()) {
              item.alias = it->field;
              break;
            }
          }
        }
      }
      out->items.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }
    // FROM
    if (AcceptKeyword("FROM")) {
      FromTerm from;
      auto ks = ExpectIdent("keyspace after FROM");
      if (!ks.ok()) return ks.status();
      from.keyspace = *ks;
      // Dotted keyspaces like catalog.details: treat the last part as the
      // keyspace name (namespaces are not modeled).
      while (Accept(TokenType::kDot)) {
        auto part = ExpectIdent("keyspace part");
        if (!part.ok()) return part.status();
        from.keyspace = *part;
      }
      if (AcceptKeyword("AS")) {
        auto alias = ExpectIdent("alias");
        if (!alias.ok()) return alias.status();
        from.alias = *alias;
      } else if (Peek(TokenType::kIdentifier) && !IsClauseKeyword() &&
                 !PeekKeyword("USE") && !PeekKeyword("JOIN") &&
                 !PeekKeyword("INNER") && !PeekKeyword("LEFT") &&
                 !PeekKeyword("NEST") && !PeekKeyword("UNNEST")) {
        from.alias = Cur().text;
        ++pos_;
      }
      if (from.alias.empty()) from.alias = from.keyspace;
      if (AcceptKeyword("USE")) {
        PARSE_CHECK(ExpectKeyword("KEYS"));
        PARSE_CHECK(ParseExpr(&from.use_keys));
      }
      out->from = std::move(from);
      // join chain
      for (;;) {
        JoinClause jc;
        if (AcceptKeyword("INNER")) {
          PARSE_CHECK(ExpectKeyword("JOIN"));
          jc.kind = JoinClause::Kind::kJoin;
          jc.join_kind = JoinKind::kInner;
        } else if (AcceptKeyword("LEFT")) {
          AcceptKeyword("OUTER");
          PARSE_CHECK(ExpectKeyword("JOIN"));
          jc.kind = JoinClause::Kind::kJoin;
          jc.join_kind = JoinKind::kLeftOuter;
        } else if (AcceptKeyword("JOIN")) {
          jc.kind = JoinClause::Kind::kJoin;
          jc.join_kind = JoinKind::kInner;
        } else if (AcceptKeyword("NEST")) {
          jc.kind = JoinClause::Kind::kNest;
        } else if (AcceptKeyword("UNNEST")) {
          jc.kind = JoinClause::Kind::kUnnest;
        } else {
          break;
        }
        if (jc.kind == JoinClause::Kind::kUnnest) {
          PARSE_CHECK(ParseExpr(&jc.unnest_expr));
          if (AcceptKeyword("AS")) {
            auto alias = ExpectIdent("alias");
            if (!alias.ok()) return alias.status();
            jc.alias = *alias;
          } else if (Peek(TokenType::kIdentifier) && !IsClauseKeyword() &&
                     !PeekJoinKeyword()) {
            jc.alias = Cur().text;
            ++pos_;
          }
          if (jc.alias.empty()) return Err("UNNEST requires an alias");
        } else {
          auto ks = ExpectIdent("keyspace");
          if (!ks.ok()) return ks.status();
          jc.keyspace = *ks;
          if (AcceptKeyword("AS")) {
            auto alias = ExpectIdent("alias");
            if (!alias.ok()) return alias.status();
            jc.alias = *alias;
          } else if (Peek(TokenType::kIdentifier) && !PeekKeyword("ON")) {
            jc.alias = Cur().text;
            ++pos_;
          }
          if (jc.alias.empty()) jc.alias = jc.keyspace;
          PARSE_CHECK(ExpectKeyword("ON"));
          if (AcceptKeyword("KEYS")) {
            PARSE_CHECK(ParseExpr(&jc.on_keys));
          } else {
            // General join condition — only the analytics service runs it.
            PARSE_CHECK(ParseExpr(&jc.on_condition));
          }
        }
        out->joins.push_back(std::move(jc));
      }
    }
    if (AcceptKeyword("WHERE")) PARSE_CHECK(ParseExpr(&out->where));
    if (AcceptKeyword("GROUP")) {
      PARSE_CHECK(ExpectKeyword("BY"));
      for (;;) {
        ExprPtr e;
        PARSE_CHECK(ParseExpr(&e));
        out->group_by.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
      if (AcceptKeyword("HAVING")) PARSE_CHECK(ParseExpr(&out->having));
    }
    if (AcceptKeyword("ORDER")) {
      PARSE_CHECK(ExpectKeyword("BY"));
      for (;;) {
        OrderKey key;
        PARSE_CHECK(ParseExpr(&key.expr));
        if (AcceptKeyword("DESC")) key.descending = true;
        else AcceptKeyword("ASC");
        out->order_by.push_back(std::move(key));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) PARSE_CHECK(ParseExpr(&out->limit));
    if (AcceptKeyword("OFFSET")) PARSE_CHECK(ParseExpr(&out->offset));
    return Status::OK();
  }

  Status ParseInsert(InsertStatement* out) {
    out->upsert = AcceptKeyword("UPSERT");
    if (!out->upsert) PARSE_CHECK(ExpectKeyword("INSERT"));
    PARSE_CHECK(ExpectKeyword("INTO"));
    auto ks = ExpectIdent("keyspace");
    if (!ks.ok()) return ks.status();
    out->keyspace = *ks;
    PARSE_CHECK(Expect(TokenType::kLParen, "'('"));
    PARSE_CHECK(ExpectKeyword("KEY"));
    PARSE_CHECK(Expect(TokenType::kComma, "','"));
    PARSE_CHECK(ExpectKeyword("VALUE"));
    PARSE_CHECK(Expect(TokenType::kRParen, "')'"));
    PARSE_CHECK(ExpectKeyword("VALUES"));
    for (;;) {
      PARSE_CHECK(Expect(TokenType::kLParen, "'('"));
      ExprPtr key, value;
      PARSE_CHECK(ParseExpr(&key));
      PARSE_CHECK(Expect(TokenType::kComma, "','"));
      PARSE_CHECK(ParseExpr(&value));
      PARSE_CHECK(Expect(TokenType::kRParen, "')'"));
      out->values.emplace_back(std::move(key), std::move(value));
      if (!Accept(TokenType::kComma)) break;
    }
    return Status::OK();
  }

  Status ParseUpdate(UpdateStatement* out) {
    PARSE_CHECK(ExpectKeyword("UPDATE"));
    auto ks = ExpectIdent("keyspace");
    if (!ks.ok()) return ks.status();
    out->keyspace = *ks;
    out->alias = out->keyspace;
    if (AcceptKeyword("AS")) {
      auto alias = ExpectIdent("alias");
      if (!alias.ok()) return alias.status();
      out->alias = *alias;
    }
    if (AcceptKeyword("USE")) {
      PARSE_CHECK(ExpectKeyword("KEYS"));
      PARSE_CHECK(ParseExpr(&out->use_keys));
    }
    if (AcceptKeyword("SET")) {
      for (;;) {
        UpdatePair pair;
        PARSE_CHECK(ParsePathText(&pair.path));
        PARSE_CHECK(Expect(TokenType::kEq, "'='"));
        PARSE_CHECK(ParseExpr(&pair.value));
        out->set.push_back(std::move(pair));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("UNSET")) {
      for (;;) {
        std::string path;
        PARSE_CHECK(ParsePathText(&path));
        out->unset.push_back(std::move(path));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("WHERE")) PARSE_CHECK(ParseExpr(&out->where));
    if (AcceptKeyword("LIMIT")) PARSE_CHECK(ParseExpr(&out->limit));
    return Status::OK();
  }

  Status ParseDelete(DeleteStatement* out) {
    PARSE_CHECK(ExpectKeyword("DELETE"));
    PARSE_CHECK(ExpectKeyword("FROM"));
    auto ks = ExpectIdent("keyspace");
    if (!ks.ok()) return ks.status();
    out->keyspace = *ks;
    out->alias = out->keyspace;
    if (AcceptKeyword("AS")) {
      auto alias = ExpectIdent("alias");
      if (!alias.ok()) return alias.status();
      out->alias = *alias;
    }
    if (AcceptKeyword("USE")) {
      PARSE_CHECK(ExpectKeyword("KEYS"));
      PARSE_CHECK(ParseExpr(&out->use_keys));
    }
    if (AcceptKeyword("WHERE")) PARSE_CHECK(ParseExpr(&out->where));
    if (AcceptKeyword("LIMIT")) PARSE_CHECK(ParseExpr(&out->limit));
    return Status::OK();
  }

  Status ParseCreateIndex(CreateIndexStatement* out) {
    PARSE_CHECK(ExpectKeyword("CREATE"));
    if (AcceptKeyword("PRIMARY")) out->primary = true;
    PARSE_CHECK(ExpectKeyword("INDEX"));
    if (Peek(TokenType::kIdentifier) && !PeekKeyword("ON")) {
      out->name = Cur().text;
      ++pos_;
    } else if (out->primary) {
      out->name = "#primary";
    } else {
      return Err("index name required");
    }
    PARSE_CHECK(ExpectKeyword("ON"));
    auto ks = ExpectIdent("keyspace");
    if (!ks.ok()) return ks.status();
    out->keyspace = *ks;
    if (!out->primary) {
      PARSE_CHECK(Expect(TokenType::kLParen, "'('"));
      for (;;) {
        // Array index form: DISTINCT ARRAY v FOR v IN path END.
        if (AcceptKeyword("DISTINCT") || AcceptKeyword("ALL")) {
          PARSE_CHECK(ExpectKeyword("ARRAY"));
          auto var = ExpectIdent("variable");
          if (!var.ok()) return var.status();
          PARSE_CHECK(ExpectKeyword("FOR"));
          auto var2 = ExpectIdent("variable");
          if (!var2.ok()) return var2.status();
          if (*var != *var2) return Err("array index variable mismatch");
          PARSE_CHECK(ExpectKeyword("IN"));
          ExprPtr arr;
          PARSE_CHECK(ParseExpr(&arr));
          PARSE_CHECK(ExpectKeyword("END"));
          out->array_index = true;
          out->keys.push_back(std::move(arr));
        } else {
          ExprPtr e;
          PARSE_CHECK(ParseExpr(&e));
          out->keys.push_back(std::move(e));
        }
        if (!Accept(TokenType::kComma)) break;
      }
      PARSE_CHECK(Expect(TokenType::kRParen, "')'"));
    }
    if (AcceptKeyword("WHERE")) PARSE_CHECK(ParseExpr(&out->where));
    if (AcceptKeyword("USING")) {
      if (AcceptKeyword("GSI")) {
        out->using_clause = CreateIndexStatement::Using::kGsi;
      } else if (AcceptKeyword("VIEW")) {
        out->using_clause = CreateIndexStatement::Using::kView;
      } else {
        return Err("expected GSI or VIEW after USING");
      }
    }
    if (AcceptKeyword("WITH")) {
      // WITH { "memory_optimized": true, "num_partitions": 4, ... }
      ExprPtr with;
      PARSE_CHECK(ParseExpr(&with));
      if (with->kind == ExprKind::kObjectLiteral) {
        for (size_t i = 0; i < with->object_keys.size(); ++i) {
          const std::string& k = with->object_keys[i];
          const ExprPtr& v = with->children[i];
          if (v->kind != ExprKind::kLiteral) continue;
          if (k == "memory_optimized") {
            out->memory_optimized = v->literal.Truthy();
          } else if (k == "num_partitions") {
            out->num_partitions =
                static_cast<uint32_t>(v->literal.AsNumber());
          }
          // "defer_build" and friends are accepted and ignored.
        }
      }
    }
    return Status::OK();
  }

  Status ParseDropIndex(DropIndexStatement* out) {
    PARSE_CHECK(ExpectKeyword("DROP"));
    PARSE_CHECK(ExpectKeyword("INDEX"));
    auto ks = ExpectIdent("keyspace");
    if (!ks.ok()) return ks.status();
    out->keyspace = *ks;
    PARSE_CHECK(Expect(TokenType::kDot, "'.'"));
    auto name = ExpectIdent("index name");
    if (!name.ok()) return name.status();
    out->name = *name;
    return Status::OK();
  }

  // A dotted path as raw text, e.g. "a.b[2].c" (for UPDATE SET targets).
  Status ParsePathText(std::string* out) {
    auto first = ExpectIdent("path");
    if (!first.ok()) return first.status();
    *out = *first;
    for (;;) {
      if (Accept(TokenType::kDot)) {
        auto part = ExpectIdent("path segment");
        if (!part.ok()) return part.status();
        *out += "." + *part;
      } else if (Accept(TokenType::kLBracket)) {
        if (!Peek(TokenType::kNumber)) return Err("expected array index");
        *out += "[" + std::to_string(static_cast<long long>(Cur().number)) +
                "]";
        ++pos_;
        PARSE_CHECK(Expect(TokenType::kRBracket, "']'"));
      } else {
        break;
      }
    }
    return Status::OK();
  }

  bool IsClauseKeyword() const {
    static const char* kClauses[] = {
        "FROM",  "WHERE", "GROUP",  "HAVING", "ORDER",  "LIMIT",
        "OFFSET", "AS",   "ON",     "USE",    "SET",    "UNSET",
        "VALUES", "END",  "SATISFIES", "WHEN", "THEN", "ELSE", "FOR", "IN",
        "AND", "OR", "NOT", "ASC", "DESC", "USING", "WITH", "BY"};
    for (const char* kw : kClauses) {
      if (PeekKeyword(kw)) return true;
    }
    return false;
  }
  bool PeekJoinKeyword() const {
    return PeekKeyword("JOIN") || PeekKeyword("INNER") ||
           PeekKeyword("LEFT") || PeekKeyword("NEST") || PeekKeyword("UNNEST");
  }

  // --- expressions (precedence climbing) ---

  Status ParseExpr(ExprPtr* out) { return ParseOr(out); }

  Status ParseOr(ExprPtr* out) {
    PARSE_CHECK(ParseAnd(out));
    while (AcceptKeyword("OR")) {
      ExprPtr rhs;
      PARSE_CHECK(ParseAnd(&rhs));
      *out = MakeBinary(BinaryOp::kOr, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseAnd(ExprPtr* out) {
    PARSE_CHECK(ParseNot(out));
    while (AcceptKeyword("AND")) {
      ExprPtr rhs;
      PARSE_CHECK(ParseNot(&rhs));
      *out = MakeBinary(BinaryOp::kAnd, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseNot(ExprPtr* out) {
    if (AcceptKeyword("NOT")) {
      ExprPtr inner;
      PARSE_CHECK(ParseNot(&inner));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->children = {inner};
      *out = e;
      return Status::OK();
    }
    return ParseComparison(out);
  }

  Status ParseComparison(ExprPtr* out) {
    PARSE_CHECK(ParseAdditive(out));
    // IS predicates
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      IsKind kind;
      if (AcceptKeyword("NULL")) {
        kind = negated ? IsKind::kNotNull : IsKind::kNull;
      } else if (AcceptKeyword("MISSING")) {
        kind = negated ? IsKind::kNotMissing : IsKind::kMissing;
      } else if (AcceptKeyword("VALUED")) {
        kind = IsKind::kValued;
        if (negated) return Err("IS NOT VALUED not supported");
      } else {
        return Err("expected NULL, MISSING or VALUED after IS");
      }
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kIsPredicate;
      e->is_kind = kind;
      e->children = {*out};
      *out = e;
      return Status::OK();
    }
    bool negated = false;
    if (PeekKeyword("NOT")) {
      // NOT LIKE / NOT IN / NOT BETWEEN
      size_t save = pos_;
      ++pos_;
      if (PeekKeyword("LIKE") || PeekKeyword("IN") || PeekKeyword("BETWEEN")) {
        negated = true;
      } else {
        pos_ = save;
        return Status::OK();
      }
    }
    if (AcceptKeyword("LIKE")) {
      ExprPtr rhs;
      PARSE_CHECK(ParseAdditive(&rhs));
      *out = MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike, *out,
                        rhs);
      return Status::OK();
    }
    if (AcceptKeyword("IN")) {
      ExprPtr rhs;
      PARSE_CHECK(ParseAdditive(&rhs));
      *out = MakeBinary(negated ? BinaryOp::kNotIn : BinaryOp::kIn, *out, rhs);
      return Status::OK();
    }
    if (AcceptKeyword("BETWEEN")) {
      ExprPtr lo, hi;
      PARSE_CHECK(ParseAdditive(&lo));
      PARSE_CHECK(ExpectKeyword("AND"));
      PARSE_CHECK(ParseAdditive(&hi));
      // a BETWEEN lo AND hi  ==>  a >= lo AND a <= hi
      ExprPtr ge = MakeBinary(BinaryOp::kGte, *out, lo);
      ExprPtr le = MakeBinary(BinaryOp::kLte, *out, hi);
      ExprPtr both = MakeBinary(BinaryOp::kAnd, ge, le);
      if (negated) {
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kUnary;
        e->unary_op = UnaryOp::kNot;
        e->children = {both};
        *out = e;
      } else {
        *out = both;
      }
      return Status::OK();
    }
    BinaryOp op;
    if (Accept(TokenType::kEq)) op = BinaryOp::kEq;
    else if (Accept(TokenType::kNeq)) op = BinaryOp::kNeq;
    else if (Accept(TokenType::kLte)) op = BinaryOp::kLte;
    else if (Accept(TokenType::kLt)) op = BinaryOp::kLt;
    else if (Accept(TokenType::kGte)) op = BinaryOp::kGte;
    else if (Accept(TokenType::kGt)) op = BinaryOp::kGt;
    else return Status::OK();
    ExprPtr rhs;
    PARSE_CHECK(ParseAdditive(&rhs));
    *out = MakeBinary(op, *out, rhs);
    return Status::OK();
  }

  Status ParseAdditive(ExprPtr* out) {
    PARSE_CHECK(ParseMultiplicative(out));
    for (;;) {
      BinaryOp op;
      if (Accept(TokenType::kPlus)) op = BinaryOp::kAdd;
      else if (Accept(TokenType::kMinus)) op = BinaryOp::kSub;
      else if (Accept(TokenType::kConcat)) op = BinaryOp::kConcat;
      else break;
      ExprPtr rhs;
      PARSE_CHECK(ParseMultiplicative(&rhs));
      *out = MakeBinary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseMultiplicative(ExprPtr* out) {
    PARSE_CHECK(ParseUnary(out));
    for (;;) {
      BinaryOp op;
      if (Accept(TokenType::kStar)) op = BinaryOp::kMul;
      else if (Accept(TokenType::kSlash)) op = BinaryOp::kDiv;
      else if (Accept(TokenType::kPercent)) op = BinaryOp::kMod;
      else break;
      ExprPtr rhs;
      PARSE_CHECK(ParseUnary(&rhs));
      *out = MakeBinary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseUnary(ExprPtr* out) {
    if (Accept(TokenType::kMinus)) {
      ExprPtr inner;
      PARSE_CHECK(ParseUnary(&inner));
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNeg;
      e->children = {inner};
      *out = e;
      return Status::OK();
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(ExprPtr* out) {
    const Token& t = Cur();
    switch (t.type) {
      case TokenType::kNumber: {
        ++pos_;
        *out = MakeLiteral(json::Value::Number(t.number));
        return Status::OK();
      }
      case TokenType::kString: {
        ++pos_;
        *out = MakeLiteral(json::Value::Str(t.text));
        return Status::OK();
      }
      case TokenType::kParameter: {
        ++pos_;
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kParameter;
        e->param_index = t.param_index;
        *out = e;
        return Status::OK();
      }
      case TokenType::kLParen: {
        ++pos_;
        PARSE_CHECK(ParseExpr(out));
        return Expect(TokenType::kRParen, "')'");
      }
      case TokenType::kLBracket: {
        ++pos_;
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kArrayLiteral;
        if (!Accept(TokenType::kRBracket)) {
          for (;;) {
            ExprPtr elem;
            PARSE_CHECK(ParseExpr(&elem));
            e->children.push_back(std::move(elem));
            if (!Accept(TokenType::kComma)) break;
          }
          PARSE_CHECK(Expect(TokenType::kRBracket, "']'"));
        }
        *out = e;
        return Status::OK();
      }
      case TokenType::kLBrace: {
        ++pos_;
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kObjectLiteral;
        if (!Accept(TokenType::kRBrace)) {
          for (;;) {
            if (!Peek(TokenType::kString) && !Peek(TokenType::kIdentifier)) {
              return Err("expected object key");
            }
            e->object_keys.push_back(Cur().text);
            ++pos_;
            PARSE_CHECK(Expect(TokenType::kColon, "':'"));
            ExprPtr v;
            PARSE_CHECK(ParseExpr(&v));
            e->children.push_back(std::move(v));
            if (!Accept(TokenType::kComma)) break;
          }
          PARSE_CHECK(Expect(TokenType::kRBrace, "'}'"));
        }
        *out = e;
        return Status::OK();
      }
      case TokenType::kIdentifier:
        return ParseIdentifierExpr(out);
      default:
        return Err("expected expression");
    }
  }

  // Words that may never start a plain path expression (they would swallow
  // clause structure); backticked identifiers bypass this (empty .upper).
  static bool IsReservedWord(const std::string& upper) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE", "GROUP",  "BY",     "HAVING", "ORDER",
        "LIMIT",  "OFFSET", "AS",   "ON",     "USE",    "KEYS",   "SET",
        "UNSET",  "VALUES", "INSERT", "UPSERT", "UPDATE", "DELETE", "CREATE",
        "DROP",   "INDEX",  "JOIN", "INNER",  "LEFT",   "OUTER",  "NEST",
        "UNNEST", "AND",    "OR",   "NOT",    "IS",     "IN",     "LIKE",
        "BETWEEN", "END",   "SATISFIES", "WHEN", "THEN", "ELSE",  "DISTINCT",
        "USING",  "WITH",   "ASC",  "DESC",   "INTO",   "PRIMARY", "FOR",
        "EXPLAIN"};
    for (const char* kw : kReserved) {
      if (upper == kw) return true;
    }
    return false;
  }

  Status ParseIdentifierExpr(ExprPtr* out) {
    // Keyword-led expressions first.
    if (PeekKeyword("NULL")) {
      ++pos_;
      *out = MakeLiteral(json::Value::Null());
      return Status::OK();
    }
    if (PeekKeyword("MISSING")) {
      ++pos_;
      *out = MakeLiteral(json::Value::Missing());
      return Status::OK();
    }
    if (PeekKeyword("TRUE")) {
      ++pos_;
      *out = MakeLiteral(json::Value::Bool(true));
      return Status::OK();
    }
    if (PeekKeyword("FALSE")) {
      ++pos_;
      *out = MakeLiteral(json::Value::Bool(false));
      return Status::OK();
    }
    if (PeekKeyword("CASE")) return ParseCase(out);
    if (PeekKeyword("ANY") || PeekKeyword("EVERY")) return ParseAnyEvery(out);
    if (PeekKeyword("ARRAY")) return ParseArrayComprehension(out);
    if (PeekKeyword("META")) return ParseMeta(out);

    if (IsReservedWord(Cur().upper)) {
      return Err("unexpected keyword " + Cur().upper + " in expression");
    }
    std::string name = Cur().text;
    ++pos_;
    if (Accept(TokenType::kLParen)) {
      // function call
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kFunction;
      e->fn_name = name;
      for (char& c : e->fn_name) c = static_cast<char>(std::tolower(c));
      if (Accept(TokenType::kStar)) {
        e->fn_star = true;
      } else if (!Peek(TokenType::kRParen)) {
        if (AcceptKeyword("DISTINCT")) e->fn_distinct = true;
        for (;;) {
          ExprPtr arg;
          PARSE_CHECK(ParseExpr(&arg));
          e->children.push_back(std::move(arg));
          if (!Accept(TokenType::kComma)) break;
        }
      }
      PARSE_CHECK(Expect(TokenType::kRParen, "')'"));
      *out = e;
      return ParsePathSuffix(out);  // e.g. meta-like fn().field
    }
    // Plain path: name(.field | [idx])*
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kPath;
    PathSegment seg;
    seg.field = name;
    e->path.push_back(seg);
    *out = e;
    return ParsePathSuffix(out);
  }

  Status ParsePathSuffix(ExprPtr* out) {
    for (;;) {
      if (Accept(TokenType::kDot)) {
        if (Accept(TokenType::kStar)) {
          // alias.* — only meaningful in a select list; represent as a
          // function "star" over the path.
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kFunction;
          e->fn_name = "__star__";
          e->children = {*out};
          *out = e;
          return Status::OK();
        }
        auto part = ExpectIdent("path segment");
        if (!part.ok()) return part.status();
        if ((*out)->kind == ExprKind::kPath) {
          PathSegment seg;
          seg.field = *part;
          (*out)->path.push_back(seg);
        } else {
          // field access on a non-path expression (e.g. fn().field): wrap.
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kFunction;
          e->fn_name = "__field__";
          e->children = {*out, MakeLiteral(json::Value::Str(*part))};
          *out = e;
        }
      } else if (Accept(TokenType::kLBracket)) {
        if (Peek(TokenType::kNumber)) {
          int64_t idx = static_cast<int64_t>(Cur().number);
          ++pos_;
          PARSE_CHECK(Expect(TokenType::kRBracket, "']'"));
          if ((*out)->kind == ExprKind::kPath) {
            PathSegment seg;
            seg.index = idx;
            (*out)->path.push_back(seg);
          } else {
            auto e = std::make_shared<Expr>();
            e->kind = ExprKind::kFunction;
            e->fn_name = "__element__";
            e->children = {*out, MakeLiteral(json::Value::Int(idx))};
            *out = e;
          }
        } else {
          ExprPtr idx;
          PARSE_CHECK(ParseExpr(&idx));
          PARSE_CHECK(Expect(TokenType::kRBracket, "']'"));
          auto e = std::make_shared<Expr>();
          e->kind = ExprKind::kFunction;
          e->fn_name = "__element__";
          e->children = {*out, idx};
          *out = e;
        }
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseMeta(ExprPtr* out) {
    ++pos_;  // META
    PARSE_CHECK(Expect(TokenType::kLParen, "'(' after META"));
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kMeta;
    if (Peek(TokenType::kIdentifier)) {
      e->meta_alias = Cur().text;
      ++pos_;
    }
    PARSE_CHECK(Expect(TokenType::kRParen, "')'"));
    PARSE_CHECK(Expect(TokenType::kDot, "'.' after META()"));
    auto field = ExpectIdent("meta field");
    if (!field.ok()) return field.status();
    e->meta_field = *field;
    for (char& c : e->meta_field) c = static_cast<char>(std::tolower(c));
    if (e->meta_field != "id" && e->meta_field != "cas") {
      return Err("META() supports .id and .cas");
    }
    *out = e;
    return Status::OK();
  }

  Status ParseAnyEvery(ExprPtr* out) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCollection;
    e->coll_kind =
        AcceptKeyword("ANY") ? CollectionKind::kAny : CollectionKind::kEvery;
    if (e->coll_kind == CollectionKind::kEvery) PARSE_CHECK(ExpectKeyword("EVERY"));
    auto var = ExpectIdent("variable");
    if (!var.ok()) return var.status();
    e->var_name = *var;
    PARSE_CHECK(ExpectKeyword("IN"));
    ExprPtr arr;
    PARSE_CHECK(ParseExpr(&arr));
    PARSE_CHECK(ExpectKeyword("SATISFIES"));
    ExprPtr cond;
    PARSE_CHECK(ParseExpr(&cond));
    PARSE_CHECK(ExpectKeyword("END"));
    e->children = {arr, cond};
    *out = e;
    return Status::OK();
  }

  Status ParseArrayComprehension(ExprPtr* out) {
    ++pos_;  // ARRAY
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kArrayComprehension;
    ExprPtr body;
    PARSE_CHECK(ParseExpr(&body));
    PARSE_CHECK(ExpectKeyword("FOR"));
    auto var = ExpectIdent("variable");
    if (!var.ok()) return var.status();
    e->var_name = *var;
    PARSE_CHECK(ExpectKeyword("IN"));
    ExprPtr arr;
    PARSE_CHECK(ParseExpr(&arr));
    ExprPtr when;
    if (AcceptKeyword("WHEN")) PARSE_CHECK(ParseExpr(&when));
    PARSE_CHECK(ExpectKeyword("END"));
    e->children = {body, arr, when};
    *out = e;
    return Status::OK();
  }

  Status ParseCase(ExprPtr* out) {
    ++pos_;  // CASE
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCase;
    while (AcceptKeyword("WHEN")) {
      CaseArm arm;
      PARSE_CHECK(ParseExpr(&arm.when));
      PARSE_CHECK(ExpectKeyword("THEN"));
      PARSE_CHECK(ParseExpr(&arm.then));
      e->case_arms.push_back(std::move(arm));
    }
    if (e->case_arms.empty()) return Err("CASE requires at least one WHEN");
    if (AcceptKeyword("ELSE")) PARSE_CHECK(ParseExpr(&e->case_else));
    PARSE_CHECK(ExpectKeyword("END"));
    *out = e;
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

#undef PARSE_CHECK

}  // namespace

StatusOr<Statement> ParseStatement(std::string_view query) {
  auto tokens = Tokenize(query);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value()).ParseStatementTop();
}

StatusOr<ExprPtr> ParseExpression(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value()).ParseExpressionTop();
}

}  // namespace couchkv::n1ql
