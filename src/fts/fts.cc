#include "fts/fts.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <thread>

#include "common/logging.h"

namespace couchkv::fts {

std::vector<std::string> Analyze(std::string_view text) {
  std::vector<std::string> terms;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      terms.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) terms.push_back(std::move(cur));
  return terms;
}

namespace {
void CollectStrings(const json::Value& v, std::string* out) {
  switch (v.type()) {
    case json::Type::kString:
      out->append(v.AsString());
      out->push_back(' ');
      break;
    case json::Type::kArray:
      for (const json::Value& e : v.AsArray()) CollectStrings(e, out);
      break;
    case json::Type::kObject:
      for (const auto& [k, e] : v.AsObject()) CollectStrings(e, out);
      break;
    default:
      break;
  }
}
}  // namespace

std::string ExtractText(const json::Value& doc,
                        const std::vector<std::string>& fields) {
  std::string text;
  if (fields.empty()) {
    CollectStrings(doc, &text);
  } else {
    for (const std::string& f : fields) {
      CollectStrings(doc.GetPath(f), &text);
    }
  }
  return text;
}

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

void InvertedIndex::ApplyMutation(const kv::Mutation& m) {
  WriterLockGuard lock(mu_);
  // Remove the document's previous postings.
  auto prev = doc_terms_.find(m.doc.key);
  if (prev != doc_terms_.end()) {
    for (const std::string& term : prev->second) {
      auto tit = terms_.find(term);
      if (tit != terms_.end()) {
        tit->second.erase(m.doc.key);
        if (tit->second.empty()) terms_.erase(tit);
      }
    }
    doc_terms_.erase(prev);
  }
  if (!m.doc.meta.deleted) {
    auto parsed = json::Parse(m.doc.value);
    if (parsed.ok()) {
      std::string text = ExtractText(parsed.value(), def_.fields);
      std::vector<std::string> terms = Analyze(text);
      std::vector<std::string> unique;
      for (uint32_t pos = 0; pos < terms.size(); ++pos) {
        Posting& p = terms_[terms[pos]][m.doc.key];
        if (p.term_frequency == 0) unique.push_back(terms[pos]);
        ++p.term_frequency;
        p.positions.push_back(pos);
      }
      if (!unique.empty()) doc_terms_[m.doc.key] = std::move(unique);
    }
  }
  processed_[m.vbucket].store(m.doc.meta.seqno, std::memory_order_release);
}

void InvertedIndex::CollectTermDocs(const std::string& term,
                                    std::map<std::string, Posting>* out) const {
  // Caller holds mu_ (shared).
  if (!term.empty() && term.back() == '*') {
    std::string prefix = term.substr(0, term.size() - 1);
    for (auto it = terms_.lower_bound(prefix);
         it != terms_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      for (const auto& [doc, posting] : it->second) {
        Posting& merged = (*out)[doc];
        merged.term_frequency += posting.term_frequency;
      }
    }
    return;
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) return;
  for (const auto& [doc, posting] : it->second) {
    (*out)[doc] = posting;
  }
}

std::vector<SearchHit> InvertedIndex::Search(const std::string& query,
                                             QueryMode mode,
                                             size_t limit) const {
  ReaderLockGuard lock(mu_);
  // Keep '*' during analysis by splitting ourselves.
  std::vector<std::string> raw_terms;
  {
    std::string cur;
    for (char c : query) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '*') {
        cur.push_back(static_cast<char>(std::tolower(c)));
      } else if (!cur.empty()) {
        raw_terms.push_back(std::move(cur));
        cur.clear();
      }
    }
    if (!cur.empty()) raw_terms.push_back(std::move(cur));
  }
  if (raw_terms.empty()) return {};

  double total_docs = static_cast<double>(doc_terms_.size());
  std::unordered_map<std::string, double> scores;
  std::unordered_map<std::string, size_t> matched_terms;
  std::vector<std::map<std::string, Posting>> per_term(raw_terms.size());
  for (size_t t = 0; t < raw_terms.size(); ++t) {
    CollectTermDocs(raw_terms[t], &per_term[t]);
    double df = static_cast<double>(per_term[t].size());
    double idf = df > 0 ? std::log((total_docs + 1) / df) + 1 : 0;
    for (const auto& [doc, posting] : per_term[t]) {
      scores[doc] += static_cast<double>(posting.term_frequency) * idf;
      matched_terms[doc] += 1;
    }
  }

  std::vector<SearchHit> hits;
  for (const auto& [doc, score] : scores) {
    if (mode != QueryMode::kAnyTerm &&
        matched_terms[doc] != raw_terms.size()) {
      continue;  // AND / phrase require every term
    }
    if (mode == QueryMode::kPhrase) {
      // Terms must appear at consecutive positions.
      bool found = false;
      const Posting& first = per_term[0].at(doc);
      for (uint32_t start : first.positions) {
        bool all = true;
        for (size_t t = 1; t < raw_terms.size(); ++t) {
          const Posting& p = per_term[t].at(doc);
          if (std::find(p.positions.begin(), p.positions.end(),
                        start + static_cast<uint32_t>(t)) ==
              p.positions.end()) {
            all = false;
            break;
          }
        }
        if (all) {
          found = true;
          break;
        }
      }
      if (!found) continue;
    }
    hits.push_back(SearchHit{doc, score});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a,
                                         const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

size_t InvertedIndex::num_terms() const {
  ReaderLockGuard lock(mu_);
  return terms_.size();
}

size_t InvertedIndex::num_docs() const {
  ReaderLockGuard lock(mu_);
  return doc_terms_.size();
}

// ---------------------------------------------------------------------------
// SearchService
// ---------------------------------------------------------------------------

Status SearchService::CreateIndex(FtsIndexDefinition def) {
  if (def.name.empty() || def.bucket.empty()) {
    return Status::InvalidArgument("fts index needs name and bucket");
  }
  if (cluster_->map(def.bucket) == nullptr) {
    return Status::NotFound("no such bucket: " + def.bucket);
  }
  auto index = std::make_shared<InvertedIndex>(def);
  {
    LockGuard lock(mu_);
    auto& per_bucket = indexes_[def.bucket];
    if (per_bucket.count(def.name)) {
      return Status::KeyExists("fts index exists: " + def.name);
    }
    per_bucket[def.name] = index;
  }
  WireIndex(def.bucket, index);
  return Status::OK();
}

Status SearchService::DropIndex(const std::string& bucket,
                                const std::string& name) {
  std::shared_ptr<InvertedIndex> index;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return Status::NotFound("no such fts index");
    auto it = bit->second.find(name);
    if (it == bit->second.end()) return Status::NotFound("no such fts index");
    index = it->second;
    bit->second.erase(it);
  }
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    std::shared_ptr<cluster::Bucket> b = n ? n->bucket(bucket) : nullptr;
    if (b != nullptr) {
      b->producer()->RemoveStreamsNamed(StreamName(index->definition()));
    }
  }
  return Status::OK();
}

void SearchService::WireIndex(const std::string& bucket,
                              std::shared_ptr<InvertedIndex> index) {
  auto map = cluster_->map(bucket);
  if (!map) return;
  const std::string stream = StreamName(index->definition());
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n == nullptr || !n->HasService(cluster::kDataService)) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    b->producer()->RemoveStreamsNamed(stream);
    if (!n->healthy()) continue;
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != id) continue;
      std::shared_ptr<InvertedIndex> idx = index;
      auto st = b->producer()->AddStream(
          stream, vb, index->processed_seqno(vb),
          [idx](const kv::Mutation& m) {
            idx->ApplyMutation(m);
            return Status::OK();
          });
      if (!st.ok()) {
        LOG_WARN << "fts stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

void SearchService::OnTopologyChange(const std::string& bucket) {
  std::vector<std::shared_ptr<InvertedIndex>> affected;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return;
    for (auto& [name, idx] : bit->second) affected.push_back(idx);
  }
  for (auto& idx : affected) WireIndex(bucket, idx);
}

Status SearchService::WaitCaughtUp(const std::string& bucket,
                                   InvertedIndex* index, uint64_t timeout_ms) {
  auto map = cluster_->map(bucket);
  if (!map) return Status::NotFound("no map");
  uint64_t deadline = cluster_->clock()->NowMillis() + timeout_ms;
  for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
    cluster::Node* n = cluster_->node(map->ActiveFor(vb));
    if (n == nullptr || !n->healthy()) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    uint64_t high = b->vbucket(vb)->high_seqno();
    while (index->processed_seqno(vb) < high) {
      n->dispatcher()->Notify();
      if (cluster_->clock()->NowMillis() > deadline) {
        return Status::Timeout("fts consistency wait");
      }
      std::this_thread::yield();
    }
  }
  return Status::OK();
}

StatusOr<std::vector<SearchHit>> SearchService::Search(
    const std::string& bucket, const std::string& name,
    const std::string& query, QueryMode mode, size_t limit, bool consistent) {
  std::shared_ptr<InvertedIndex> index;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return Status::NotFound("no such fts index");
    auto it = bit->second.find(name);
    if (it == bit->second.end()) return Status::NotFound("no such fts index");
    index = it->second;
  }
  if (consistent) {
    COUCHKV_RETURN_IF_ERROR(WaitCaughtUp(bucket, index.get(), 30000));
  }
  return index->Search(query, mode, limit);
}

const InvertedIndex* SearchService::index(const std::string& bucket,
                                          const std::string& name) const {
  LockGuard lock(mu_);
  auto bit = indexes_.find(bucket);
  if (bit == indexes_.end()) return nullptr;
  auto it = bit->second.find(name);
  return it == bit->second.end() ? nullptr : it->second.get();
}

}  // namespace couchkv::fts
