// Full-text search service (paper §6.1.3): "typically based on a reverse
// index, where all the words within the data are indexed to be able to do
// term-based, phrase-based, and/or prefix-based searches. Full-text search
// is another type of service currently being added that will receive data
// mutations via in-memory DCP and will be able to be scaled up or out
// independently as well."
//
// Implemented here as another DCP consumer: an inverted index over the
// string fields of JSON documents, with term, prefix, and phrase queries
// and tf-idf ranking.
#ifndef COUCHKV_FTS_FTS_H_
#define COUCHKV_FTS_FTS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "json/value.h"

namespace couchkv::fts {

// Lower-cases and splits `text` into alphanumeric terms.
std::vector<std::string> Analyze(std::string_view text);

// Recursively extracts the searchable text of a document: all string values
// under `fields` (or, when `fields` is empty, every string in the doc).
std::string ExtractText(const json::Value& doc,
                        const std::vector<std::string>& fields);

struct FtsIndexDefinition {
  std::string name;
  std::string bucket;
  // Paths whose content is indexed; empty = every string field.
  std::vector<std::string> fields;
};

struct SearchHit {
  std::string doc_id;
  double score = 0;  // tf-idf
};

enum class QueryMode {
  kAllTerms,  // document must contain every query term (AND)
  kAnyTerm,   // any term matches (OR)
  kPhrase,    // terms must appear consecutively
};

// One inverted index, fed by DCP.
class InvertedIndex {
 public:
  explicit InvertedIndex(FtsIndexDefinition def) : def_(std::move(def)) {}

  const FtsIndexDefinition& definition() const { return def_; }

  void ApplyMutation(const kv::Mutation& m);

  // Searches for `query`. A trailing '*' on a term makes it a prefix match.
  std::vector<SearchHit> Search(const std::string& query, QueryMode mode,
                                size_t limit) const;

  uint64_t processed_seqno(uint16_t vb) const {
    return processed_[vb].load(std::memory_order_acquire);
  }
  size_t num_terms() const;
  size_t num_docs() const;

 private:
  struct Posting {
    uint32_t term_frequency = 0;
    std::vector<uint32_t> positions;  // for phrase queries
  };

  // Docs matching one term (expanding a trailing-'*' prefix).
  void CollectTermDocs(const std::string& term,
                       std::map<std::string, Posting>* out) const
      REQUIRES_SHARED(mu_);

  FtsIndexDefinition def_;
  mutable SharedMutex mu_{"fts.index"};
  COUCHKV_LOCK_ORDER("dcp.stream_delivery", "fts.index");
  // term -> doc_id -> posting. std::map for ordered prefix expansion.
  std::map<std::string, std::unordered_map<std::string, Posting>> terms_
      GUARDED_BY(mu_);
  std::unordered_map<std::string, std::vector<std::string>> doc_terms_
      GUARDED_BY(mu_);
  std::array<std::atomic<uint64_t>, cluster::kNumVBuckets> processed_{};
};

// The search service: manages FTS indexes, wires DCP streams, re-wires on
// topology changes — the same lifecycle as the view and GSI services.
class SearchService : public cluster::ClusterService,
                      public std::enable_shared_from_this<SearchService> {
 public:
  explicit SearchService(cluster::Cluster* cluster) : cluster_(cluster) {}

  void Attach() { cluster_->RegisterService("fts", shared_from_this()); }

  Status CreateIndex(FtsIndexDefinition def);
  Status DropIndex(const std::string& bucket, const std::string& name);

  // Searches; waits for the index to cover all request-time mutations when
  // `consistent` (the FTS analogue of request_plus).
  StatusOr<std::vector<SearchHit>> Search(const std::string& bucket,
                                          const std::string& name,
                                          const std::string& query,
                                          QueryMode mode = QueryMode::kAllTerms,
                                          size_t limit = 10,
                                          bool consistent = false);

  void OnTopologyChange(const std::string& bucket) override;

  // Introspection for tests.
  const InvertedIndex* index(const std::string& bucket,
                             const std::string& name) const;

 private:
  void WireIndex(const std::string& bucket,
                 std::shared_ptr<InvertedIndex> index);
  Status WaitCaughtUp(const std::string& bucket, InvertedIndex* index,
                      uint64_t timeout_ms);
  std::string StreamName(const FtsIndexDefinition& def) const {
    return "fts:" + def.bucket + ":" + def.name;
  }

  cluster::Cluster* cluster_;
  mutable Mutex mu_{"fts.service"};
  std::map<std::string, std::map<std::string, std::shared_ptr<InvertedIndex>>>
      indexes_ GUARDED_BY(mu_);
};

}  // namespace couchkv::fts

#endif  // COUCHKV_FTS_FTS_H_
