#include "dcp/dcp.h"

#include <thread>

#include "common/affinity.h"
#include "common/logging.h"

namespace couchkv::dcp {

// ---------------------------------------------------------------------------
// ChangeLog
// ---------------------------------------------------------------------------

void ChangeLog::Append(kv::Document doc) {
  LockGuard lock(mu_);
  if (doc.meta.seqno > high_seqno_) high_seqno_ = doc.meta.seqno;
  items_.push_back(std::move(doc));
  while (items_.size() > max_items_) items_.pop_front();
}

uint64_t ChangeLog::ReadSince(uint64_t since, size_t max,
                              std::vector<kv::Document>* out) const {
  LockGuard lock(mu_);
  uint64_t start = StartSeqno();
  // Binary search would need random access; the deque provides it.
  size_t lo = 0, hi = items_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (items_[mid].meta.seqno <= since) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (size_t i = lo; i < items_.size() && out->size() < max; ++i) {
    out->push_back(items_[i]);
  }
  return start;
}

uint64_t ChangeLog::high_seqno() const {
  LockGuard lock(mu_);
  return high_seqno_;
}

uint64_t ChangeLog::start_seqno() const {
  LockGuard lock(mu_);
  return StartSeqno();
}

size_t ChangeLog::size() const {
  LockGuard lock(mu_);
  return items_.size();
}

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

DcpCounters DcpCounters::In(stats::Scope* scope) {
  DcpCounters c;
  c.items_appended = scope->GetCounter("dcp.items_appended");
  c.items_delivered = scope->GetCounter("dcp.items_delivered");
  c.backfill_items = scope->GetCounter("dcp.backfill_items");
  return c;
}

Producer::Producer(uint16_t num_vbuckets, BackfillFn backfill,
                   const DcpCounters* counters)
    : num_vbuckets_(num_vbuckets),
      backfill_(std::move(backfill)),
      counters_(counters != nullptr ? *counters : DcpCounters{}) {
  logs_.reserve(num_vbuckets_);
  for (uint16_t i = 0; i < num_vbuckets_; ++i) {
    logs_.push_back(std::make_unique<ChangeLog>());
  }
}

void Producer::OnMutation(uint16_t vbucket, kv::Document doc) {
  logs_[vbucket]->Append(std::move(doc));
  if (counters_.items_appended != nullptr) counters_.items_appended->Add();
}

StatusOr<uint64_t> Producer::AddStream(const std::string& name,
                                       uint16_t vbucket, uint64_t from_seqno,
                                       MutationFn fn) {
  if (vbucket >= num_vbuckets_) {
    return Status::InvalidArgument("vbucket out of range");
  }
  auto stream = std::make_shared<Stream>();
  stream->name = name;
  stream->vbucket = vbucket;
  stream->next_seqno.store(from_seqno + 1, std::memory_order_relaxed);
  stream->fn = std::move(fn);
  LockGuard lock(mu_);
  stream->id = next_stream_id_++;
  streams_[stream->id] = stream;
  return stream->id;
}

void Producer::RemoveStream(uint64_t stream_id) {
  std::shared_ptr<Stream> victim;
  {
    LockGuard lock(mu_);
    auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;
    victim = it->second;
    streams_.erase(it);
  }
  // Barrier: wait out any in-flight delivery and mark the stream closed so
  // a pumper that snapshotted it before the erase skips it.
  LockGuard delivery_lock(victim->delivery_mu);
  victim->closed = true;
}

void Producer::RemoveStreamsNamed(const std::string& name) {
  std::vector<std::shared_ptr<Stream>> victims;
  {
    LockGuard lock(mu_);
    for (auto it = streams_.begin(); it != streams_.end();) {
      if (it->second->name == name) {
        victims.push_back(it->second);
        it = streams_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& victim : victims) {
    LockGuard delivery_lock(victim->delivery_mu);
    victim->closed = true;
  }
}

bool Producer::BackfillStream(Stream& s, uint64_t window_start,
                              bool* delivered) {
  // The in-memory window no longer covers this stream's start point:
  // backfill the gap from the storage engine (paper: DCP "backfill").
  bool stalled = false;
  if (backfill_) {
    uint64_t delivered_up_to = s.next_seqno.load(std::memory_order_relaxed) - 1;
    Status st =
        backfill_(s.vbucket, delivered_up_to, [&](const kv::Mutation& m) {
          if (stalled) return Status::OK();  // skip; retry next pump
          uint64_t next = s.next_seqno.load(std::memory_order_relaxed);
          if (m.doc.meta.seqno >= next && m.doc.meta.seqno < window_start) {
            Status delivery = s.fn(m);
            if (!delivery.ok()) {
              stalled = true;
              return delivery;
            }
            if (m.doc.meta.seqno + 1 > next) {
              s.next_seqno.store(m.doc.meta.seqno + 1,
                                 std::memory_order_relaxed);
            }
            *delivered = true;
            if (counters_.items_delivered != nullptr) {
              counters_.items_delivered->Add();
              counters_.backfill_items->Add();
            }
          }
          return Status::OK();
        });
    if (!st.ok()) {
      LOG_WARN << "DCP backfill failed for vb " << s.vbucket << ": "
               << st.ToString();
    }
  }
  // Whether or not storage had everything, resume from the window — unless a
  // delivery stalled, in which case the backfill resumes from the first
  // undelivered seqno on a later pump.
  if (!stalled &&
      s.next_seqno.load(std::memory_order_relaxed) < window_start) {
    s.next_seqno.store(window_start, std::memory_order_relaxed);
  }
  return !stalled;
}

bool Producer::PumpStream(Stream& s, size_t batch_per_stream) {
  bool delivered = false;
  ChangeLog& log = *logs_[s.vbucket];

  if (!s.backfill_done) {
    uint64_t window_start = log.start_seqno();
    if (s.next_seqno.load(std::memory_order_relaxed) < window_start) {
      if (!BackfillStream(s, window_start, &delivered)) return delivered;
    }
    s.backfill_done = true;
  }

  std::vector<kv::Document> batch;
  log.ReadSince(s.next_seqno.load(std::memory_order_relaxed) - 1,
                batch_per_stream, &batch);
  for (kv::Document& doc : batch) {
    // Skip already-delivered seqnos.
    if (doc.meta.seqno < s.next_seqno.load(std::memory_order_relaxed)) {
      continue;
    }
    kv::Mutation m;
    m.vbucket = s.vbucket;
    m.doc = std::move(doc);
    // Advance only after a successful delivery: a failed (dropped /
    // partitioned) delivery stalls the stream so the mutation is retried
    // rather than lost.
    if (!s.fn(m).ok()) break;
    s.next_seqno.store(m.doc.meta.seqno + 1, std::memory_order_relaxed);
    delivered = true;
    if (counters_.items_delivered != nullptr) counters_.items_delivered->Add();
  }
  return delivered;
}

bool Producer::PumpOnce(size_t batch_per_stream) {
  // Snapshot the stream set, then deliver without holding the map lock so
  // callbacks may add/remove streams.
  std::vector<std::shared_ptr<Stream>> snapshot;
  {
    LockGuard lock(mu_);
    snapshot.reserve(streams_.size());
    for (auto& [id, s] : streams_) snapshot.push_back(s);
  }

  bool delivered = false;
  for (auto& s : snapshot) {
    LockGuard delivery_lock(s->delivery_mu);
    if (s->closed) continue;
    if (PumpStream(*s, batch_per_stream)) delivered = true;
  }
  return delivered;
}

void Producer::Drain() {
  while (PumpOnce()) {
  }
}

uint64_t Producer::StreamSeqno(const std::string& name,
                               uint16_t vbucket) const {
  LockGuard lock(mu_);
  uint64_t result = UINT64_MAX;
  bool found = false;
  for (const auto& [id, s] : streams_) {
    if (s->name == name && s->vbucket == vbucket) {
      found = true;
      uint64_t acked = s->next_seqno.load(std::memory_order_relaxed) - 1;
      if (acked < result) result = acked;
    }
  }
  return found ? result : UINT64_MAX;
}

uint64_t Producer::high_seqno(uint16_t vbucket) const {
  return logs_[vbucket]->high_seqno();
}

uint64_t Producer::TotalBacklog() const {
  LockGuard lock(mu_);
  uint64_t backlog = 0;
  for (const auto& [id, s] : streams_) {
    uint64_t high = logs_[s->vbucket]->high_seqno();
    uint64_t acked = s->next_seqno.load(std::memory_order_relaxed) - 1;
    if (high > acked) backlog += high - acked;
  }
  return backlog;
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

Dispatcher::Dispatcher()
    : thread_([this] {
        affinity::ScopedDomain domain("dcp.producer");
        Loop();
      }) {}

Dispatcher::~Dispatcher() { Stop(); }

void Dispatcher::AddProducer(std::shared_ptr<Producer> producer) {
  {
    LockGuard lock(mu_);
    producers_.push_back(std::move(producer));
    work_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
}

void Dispatcher::RemoveProducer(const std::shared_ptr<Producer>& producer) {
  LockGuard lock(mu_);
  std::erase(producers_, producer);
}

void Dispatcher::Notify() {
  // Fast path: a wakeup is already pending, nothing to do. This keeps the
  // per-write cost of notifying DCP to one atomic exchange.
  if (work_.exchange(true, std::memory_order_acq_rel)) return;
  // Taking the mutex pairs with the waiter's predicate check: the Loop
  // either sees work_==true before sleeping or is woken by this notify.
  { LockGuard lock(mu_); }
  cv_.NotifyAll();
}

void Dispatcher::Quiesce() {
  std::vector<std::shared_ptr<Producer>> snapshot;
  {
    LockGuard lock(mu_);
    snapshot = producers_;
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& p : snapshot) {
      if (p->PumpOnce()) progress = true;
    }
  }
}

void Dispatcher::Stop() {
  {
    LockGuard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Dispatcher::Loop() {
  COUCHKV_ASSERT_AFFINE();
  for (;;) {
    std::vector<std::shared_ptr<Producer>> snapshot;
    {
      UniqueLock lock(mu_);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
      while (!work_.load(std::memory_order_acquire) && !stop_) {
        if (!cv_.WaitUntil(lock, deadline)) break;  // poll tick
      }
      if (stop_) return;
      work_.store(false, std::memory_order_release);
      snapshot = producers_;
    }
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& p : snapshot) {
        if (p->PumpOnce()) progress = true;
      }
      {
        LockGuard lock(mu_);
        if (stop_) return;
      }
    }
  }
}

}  // namespace couchkv::dcp
