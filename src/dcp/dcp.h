// Database Change Protocol (paper §4.3.2): the in-memory stream of document
// mutations that every derived component — intra-cluster replication, the
// view engine, the GSI projector, XDCR — consumes. "DCP lies at the heart of
// Couchbase Server and supports its memory-first architecture by decoupling
// potential I/O bottlenecks from many critical functions."
//
// Model: the data service owns one Producer per bucket per node. Each
// mutation is appended to the per-vBucket ChangeLog. Consumers open Streams
// (per vBucket, from a start seqno); a dispatcher thread pumps the producer,
// delivering mutations to stream callbacks in seqno order. If a stream
// starts below the log's in-memory window, the gap is backfilled from the
// storage engine through a caller-supplied BackfillFn.
#ifndef COUCHKV_DCP_DCP_H_
#define COUCHKV_DCP_DCP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/affinity.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "kv/doc.h"
#include "stats/registry.h"

namespace couchkv::dcp {

// Registry-backed counters for one producer (one bucket on one node).
// Optional: producers constructed without them (tests) skip the reporting.
struct DcpCounters {
  stats::Counter* items_appended = nullptr;   // mutations entering ChangeLogs
  stats::Counter* items_delivered = nullptr;  // successful stream deliveries
  stats::Counter* backfill_items = nullptr;   // of those, served from storage

  // Resolves the "dcp.*" counters in `scope`.
  static DcpCounters In(stats::Scope* scope);
};

// Callback receiving mutations for one stream. Runs on the pumping thread.
// Returning non-OK stalls the stream: the mutation is NOT considered
// delivered and will be retried on a later pump. This is how consumers on
// the far side of a faulty net::Transport link get at-least-once delivery —
// a dropped message never silently advances the stream past it.
using MutationFn = std::function<Status(const kv::Mutation&)>;

// Reads mutations with seqno in (since, upto] for a vBucket from storage and
// feeds them to `fn` in seqno order. Supplied by the data service.
using BackfillFn = std::function<Status(
    uint16_t vbucket, uint64_t since, const MutationFn& fn)>;

// In-memory, bounded window of recent mutations for one vBucket.
class ChangeLog {
 public:
  explicit ChangeLog(size_t max_items = 1 << 16) : max_items_(max_items) {}

  // Appends a mutation; must be called with monotonically increasing seqnos
  // (the vBucket serializes its front-end ops, which guarantees this).
  void Append(kv::Document doc);

  // Copies mutations with seqno > since (up to `max`) into out. Returns the
  // first seqno present in the log, so callers can detect a trimmed gap.
  uint64_t ReadSince(uint64_t since, size_t max,
                     std::vector<kv::Document>* out) const;

  uint64_t high_seqno() const;
  uint64_t start_seqno() const;  // lowest seqno still in the window
  size_t size() const;

 private:
  uint64_t StartSeqno() const REQUIRES(mu_) {
    return items_.empty() ? high_seqno_ + 1 : items_.front().meta.seqno;
  }

  mutable Mutex mu_{"dcp.changelog"};
  std::deque<kv::Document> items_ GUARDED_BY(mu_);
  uint64_t high_seqno_ GUARDED_BY(mu_) = 0;
  size_t max_items_;
};

// One bucket's change feed on one node.
class Producer {
 public:
  // `num_vbuckets` logical partitions; `backfill` may be null if streams
  // always start at the current seqno. `counters`, when given, must outlive
  // the producer (the bucket's stats scope keeps it alive).
  Producer(uint16_t num_vbuckets, BackfillFn backfill,
           const DcpCounters* counters = nullptr);

  // Appends a mutation for vb (called by the data service on every write,
  // while holding the vBucket's op lock).
  void OnMutation(uint16_t vbucket, kv::Document doc);

  // Opens a stream delivering mutations with seqno > from_seqno for one
  // vBucket. `name` identifies the consumer in stats. Returns a stream id.
  StatusOr<uint64_t> AddStream(const std::string& name, uint16_t vbucket,
                               uint64_t from_seqno, MutationFn fn);

  // Stream removal is a barrier: on return no delivery callback for the
  // removed stream(s) is running or will run again, so callers may free
  // state the callbacks capture (e.g. when crashing a node).
  void RemoveStream(uint64_t stream_id);
  // Removes every stream whose name matches (used when an index is dropped).
  void RemoveStreamsNamed(const std::string& name);

  // Delivers pending mutations to all streams; returns true if any mutation
  // was successfully delivered (i.e. call again). A stream whose callback
  // fails stalls without counting as progress, so pump loops terminate even
  // while a link is partitioned. Thread-safe, but normally driven by a
  // single dispatcher thread.
  bool PumpOnce(size_t batch_per_stream = 256);

  // Pumps until no stream makes progress (all caught up or stalled).
  void Drain();

  // Lowest acknowledged seqno across streams of `name` for `vbucket`
  // (UINT64_MAX when that consumer has no stream there).
  uint64_t StreamSeqno(const std::string& name, uint16_t vbucket) const;

  uint64_t high_seqno(uint16_t vbucket) const;
  uint16_t num_vbuckets() const { return num_vbuckets_; }

  // Total undelivered items across all open streams (Σ per-stream
  // high_seqno − acked). The paper's DCP backlog stat: how far consumers
  // (replicas, views, GSI, XDCR) trail the data service.
  uint64_t TotalBacklog() const;

 private:
  struct Stream {
    // id/name/vbucket/fn are set before the stream is published into
    // streams_ and immutable afterwards.
    uint64_t id = 0;
    std::string name;
    uint16_t vbucket = 0;
    MutationFn fn;
    // First seqno not yet delivered. Atomic because pumpers advance it under
    // delivery_mu while StreamSeqno/TotalBacklog read it under the map lock
    // mu_ — two different capabilities, so neither mutex alone orders the
    // accesses.
    std::atomic<uint64_t> next_seqno{1};
    // Serializes delivery: the dispatcher thread and synchronous pumpers
    // (Quiesce, rebalance movers) may call PumpOnce concurrently.
    Mutex delivery_mu{"dcp.stream_delivery"};
    bool backfill_done GUARDED_BY(delivery_mu) = false;
    // Set when the stream is removed; a pumper that snapshotted the stream
    // before removal skips it. This is what makes RemoveStream* a barrier.
    bool closed GUARDED_BY(delivery_mu) = false;
  };

  // Delivers to one stream; returns true if any mutation went through.
  bool PumpStream(Stream& s, size_t batch_per_stream)
      REQUIRES(s.delivery_mu);
  // Serves the below-window gap from storage. Returns false if a delivery
  // stalled (retry on a later pump).
  bool BackfillStream(Stream& s, uint64_t window_start, bool* delivered)
      REQUIRES(s.delivery_mu);

  uint16_t num_vbuckets_;
  BackfillFn backfill_;
  DcpCounters counters_;  // null members = reporting disabled
  std::vector<std::unique_ptr<ChangeLog>> logs_;

  mutable Mutex mu_{"dcp.producer_streams"};  // guards streams_ map (not delivery)
  COUCHKV_LOCK_ORDER("dcp.producer_streams", "dcp.changelog");
  COUCHKV_LOCK_ORDER("dcp.stream_delivery", "dcp.changelog");
  COUCHKV_LOCK_ORDER("cluster.vbucket.op", "dcp.changelog");
  std::map<uint64_t, std::shared_ptr<Stream>> streams_ GUARDED_BY(mu_);
  uint64_t next_stream_id_ GUARDED_BY(mu_) = 1;
};

// Background thread that keeps a set of producers pumped. One per node.
class Dispatcher {
 public:
  Dispatcher();
  ~Dispatcher();

  void AddProducer(std::shared_ptr<Producer> producer);
  void RemoveProducer(const std::shared_ptr<Producer>& producer);

  // Wakes the pump thread (call after OnMutation for low latency).
  void Notify();

  // Synchronously pumps until all producers are drained (test determinism).
  void Quiesce();

  void Stop();

 private:
  void Loop();

  // Loop runs only on the dispatcher's pump thread. Quiesce deliberately
  // pumps producers from the calling thread, so only the loop asserts.
  COUCHKV_AFFINE_TO("dcp.dispatcher.pump", "dcp.producer");
  Mutex mu_{"dcp.dispatcher"};
  CondVar cv_;
  std::vector<std::shared_ptr<Producer>> producers_ GUARDED_BY(mu_);
  // work_ is atomic so Notify() can elide the mutex+notify when a wakeup is
  // already pending — Notify is called on every front-end write.
  std::atomic<bool> work_{false};
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace couchkv::dcp

#endif  // COUCHKV_DCP_DCP_H_
