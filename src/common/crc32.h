// CRC32 (Castagnoli polynomial) used for key → vBucket mapping, exactly the
// role CRC32 plays in the paper's Figure 5, and for storage-engine record
// checksums.
#ifndef COUCHKV_COMMON_CRC32_H_
#define COUCHKV_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace couchkv {

// Computes CRC32C over `data`. `seed` allows incremental computation.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace couchkv

#endif  // COUCHKV_COMMON_CRC32_H_
