#include "common/clock.h"

namespace couchkv {
namespace {

class SteadyClock : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

Clock* Clock::Real() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

}  // namespace couchkv
