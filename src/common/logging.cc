#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/synchronization.h"

namespace couchkv {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes the fprintf so concurrent log lines do not interleave; stderr
// itself is the guarded resource, so there is no GUARDED_BY field.
Mutex g_mu{"logging.stderr"};
COUCHKV_LOCK_ORDER("cluster.health", "logging.stderr");
COUCHKV_LOCK_ORDER("client.wire_client", "logging.stderr");

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal_log {
void Emit(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel()) return;
  LockGuard lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}
}  // namespace internal_log

}  // namespace couchkv
