// Runtime lock-order discipline ("lockdep"), the dynamic complement to the
// Clang Thread Safety Analysis annotations in common/synchronization.h: TSA
// proves WHICH lock guards each field; lockdep proves the ORDER locks are
// taken in can never deadlock.
//
// Model (after the Linux kernel's lockdep): every Mutex/SharedMutex belongs
// to a named lock CLASS, registered at its declaration site
// (`Mutex mu_{"cluster.node"};`). Each thread keeps a stack of held locks,
// and a process-global directed graph over lock classes gains an edge
// A -> B the first time any thread acquires a B-class lock while holding an
// A-class lock. A new edge that closes a cycle is a POTENTIAL deadlock —
// two code paths disagree about the order — and is reported with both
// acquisition stacks and aborts the process immediately, even though the
// deadly interleaving itself never executed. Every test run under
// -DCOUCHKV_LOCKDEP=ON is therefore a deadlock detector that does not need
// to get lucky with thread timing.
//
// Also reported (as WARN + counter, not fatal, queryable for tests):
//   * condvar waits entered while holding any lock besides the waited one
//     (the held lock blocks for an unbounded time);
//   * ScopedBlockingCall sites (disk I/O, socket round-trips) reached while
//     a lock class flagged kHotPath is held — the inventory the
//     thread-per-core hot-path rework needs.
//
// Everything here is compiled out to zero-cost no-ops unless the build sets
// -DCOUCHKV_LOCKDEP (CMake: -DCOUCHKV_LOCKDEP=ON).
//
// The graph can be dumped as JSON for the static cross-checker
// (scripts/analysis/lock_order.py): pass --dump-lock-graph=FILE on any test
// binary's command line, or set COUCHKV_LOCKDEP_DUMP=FILE or
// COUCHKV_LOCKDEP_DUMP_DIR=DIR (one file per process) in the environment.
#ifndef COUCHKV_COMMON_LOCKDEP_H_
#define COUCHKV_COMMON_LOCKDEP_H_

#include <cstdint>
#include <string>

namespace couchkv::lockdep {

// Lock-class flags (second argument of the Mutex/SharedMutex constructors).
// kHotPath: blocking calls (ScopedBlockingCall) while holding a lock of
//           this class are reported — the class sits on the request hot
//           path and must never wait on disk or the network.
// kNestable: two locks of this SAME class may be held at once (e.g. a
//            migration holding source+target of a per-shard lock); without
//            it, same-class nesting is treated as a potential self-deadlock.
inline constexpr unsigned kHotPath = 1u << 0;
inline constexpr unsigned kNestable = 1u << 1;

#if defined(COUCHKV_LOCKDEP)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// Statically declares the acquisition order `before` -> `after` between two
// lock classes. Expands to nothing at runtime: the declaration is consumed
// by scripts/analysis/lock_order.py, which builds the declared hierarchy
// DAG, fails the lint on cycles, and cross-checks each declared edge
// against the runtime-observed graph dump (a declared edge no test ever
// exercises is flagged as a coverage gap). Place these next to the mutex
// declarations they order.
#define COUCHKV_LOCK_ORDER(before, after) \
  static_assert(sizeof(before) > 1 && sizeof(after) > 1, "lock-order decl")

#if defined(COUCHKV_LOCKDEP)

// Registers (or finds) the class `name` and binds one mutex instance to it.
// Returns the class id stored in the mutex. Flags are OR-ed into the class:
// every declaration site of a class may pass them, the union applies.
uint32_t RegisterInstance(const char* name, unsigned flags);

// Acquisition hooks, called by the synchronization.h wrappers.
// OnAcquire runs BEFORE the underlying lock() blocks, so a cycle is
// reported even when the deadlock would actually hang. `trylock`
// acquisitions cannot block and therefore add no incoming edges (but the
// lock still joins the held stack and seeds outgoing edges).
void OnAcquire(const void* instance, uint32_t class_id, bool shared);
void OnTryAcquired(const void* instance, uint32_t class_id, bool shared);
void OnRelease(const void* instance);

// CondVar::Wait entry: reports (WARN + counter) when the thread holds any
// lock besides `waited_instance`.
void OnCondVarWait(const void* waited_instance);

// ScopedBlockingCall body: reports (WARN + counter) when any held lock's
// class carries kHotPath.
void OnBlockingCall(const char* what);

// --- Introspection (tests, tools) ---

// Process-lifetime counters for the non-fatal report kinds.
uint64_t CondVarHoldReports();
uint64_t BlockingWhileHotReports();
// Last non-fatal report line (empty when none yet).
std::string LastReport();

// Current class/edge graph as JSON:
//   {"classes":[{"name":...,"flags":...}],
//    "edges":[{"from":...,"to":...}]}
std::string DumpGraphJson();

// Number of distinct class->class edges observed so far.
uint64_t EdgeCount();

#else  // !COUCHKV_LOCKDEP — every hook is a no-op the optimizer deletes.

inline uint32_t RegisterInstance(const char*, unsigned) { return 0; }
inline void OnAcquire(const void*, uint32_t, bool) {}
inline void OnTryAcquired(const void*, uint32_t, bool) {}
inline void OnRelease(const void*) {}
inline void OnCondVarWait(const void*) {}
inline void OnBlockingCall(const char*) {}
inline uint64_t CondVarHoldReports() { return 0; }
inline uint64_t BlockingWhileHotReports() { return 0; }
inline std::string LastReport() { return {}; }
inline std::string DumpGraphJson() { return "{}"; }
inline uint64_t EdgeCount() { return 0; }

#endif  // COUCHKV_LOCKDEP

// Marks a region that may block on the outside world (disk I/O, a socket
// round-trip, a long sleep). Under lockdep, constructing one while holding
// any kHotPath lock class files a report. In non-lockdep builds this is a
// pure annotation with zero cost. Adopted at storage::Env I/O and
// net::SocketTransport round-trip sites; adopt it in any new code that can
// block outside the process.
class ScopedBlockingCall {
 public:
  explicit ScopedBlockingCall(const char* what) { OnBlockingCall(what); }
  ScopedBlockingCall(const ScopedBlockingCall&) = delete;
  ScopedBlockingCall& operator=(const ScopedBlockingCall&) = delete;
};

}  // namespace couchkv::lockdep

#endif  // COUCHKV_COMMON_LOCKDEP_H_
