// Clock abstraction: production code uses the steady clock; tests inject a
// ManualClock so TTL expiry and lock timeouts are deterministic.
#ifndef COUCHKV_COMMON_CLOCK_H_
#define COUCHKV_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace couchkv {

// Monotonic time source, nanosecond resolution.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowNanos() const = 0;

  uint64_t NowMillis() const { return NowNanos() / 1000000ULL; }
  uint64_t NowSeconds() const { return NowNanos() / 1000000000ULL; }

  // Process-wide default (steady_clock based).
  static Clock* Real();
};

// A clock tests can advance by hand.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 0) : now_(start_nanos) {}
  uint64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceNanos(uint64_t delta) { now_.fetch_add(delta); }
  void AdvanceSeconds(uint64_t s) { AdvanceNanos(s * 1000000000ULL); }
  void AdvanceMillis(uint64_t ms) { AdvanceNanos(ms * 1000000ULL); }

 private:
  std::atomic<uint64_t> now_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_CLOCK_H_
