#include "common/status.h"

namespace couchkv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kKeyExists: return "KeyExists";
    case StatusCode::kLocked: return "Locked";
    case StatusCode::kNotMyVBucket: return "NotMyVBucket";
    case StatusCode::kTempFail: return "TempFail";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kPlanError: return "PlanError";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace couchkv
