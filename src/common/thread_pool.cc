#include "common/thread_pool.h"

#include "common/affinity.h"

namespace couchkv {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] {
      affinity::ScopedDomain domain("thread_pool.worker");
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    LockGuard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Wait() {
  UniqueLock lock(mu_);
  while (!Idle()) idle_cv_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  COUCHKV_ASSERT_AFFINE();
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      LockGuard lock(mu_);
      --active_;
      if (Idle()) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace couchkv
