// Runtime lock-order detector. See lockdep.h for the model. The whole
// translation unit is empty unless -DCOUCHKV_LOCKDEP is set.
//
// Implementation notes:
//   * The detector's own state is protected by a raw std::mutex — it MUST
//     NOT use the instrumented couchkv::Mutex (the hooks would recurse).
//     scripts/lint.sh check 1 exempts this file for that reason.
//   * Report paths write to stderr with fprintf directly (not
//     common/logging.h) so a report can never deadlock on, or recurse
//     into, an instrumented logging mutex.
//   * Edges are recorded class->class (not instance->instance), so two
//     code paths that disagree about order are caught even when they touch
//     different objects of the same classes on different runs.
#include "common/lockdep.h"

#if defined(COUCHKV_LOCKDEP)

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace couchkv::lockdep {

namespace {

constexpr int kMaxFrames = 24;

struct Stack {
  void* pc[kMaxFrames];
  int depth = 0;

  void Capture() { depth = ::backtrace(pc, kMaxFrames); }
};

// Prints a captured backtrace to stderr, one indented frame per line.
// backtrace_symbols_fd writes straight to the fd, so this works even when
// the heap is in a bad state mid-abort.
void PrintStack(const Stack& s) {
  if (s.depth <= 0) {
    std::fprintf(stderr, "    <no stack captured>\n");
    return;
  }
  ::backtrace_symbols_fd(const_cast<void* const*>(s.pc),
                         s.depth, STDERR_FILENO);
}

struct LockClass {
  std::string name;
  unsigned flags = 0;
};

// One observed acquisition-order edge from -> to, with the stack of the
// acquisition that first created it (thread held a `from` lock and
// acquired a `to` lock).
struct EdgeInfo {
  Stack stack;
  uint64_t thread_hash = 0;
};

struct State {
  std::mutex mu;
  std::vector<LockClass> classes;                    // id -> class
  std::unordered_map<std::string, uint32_t> by_name;
  // Edge key: from << 32 | to.
  std::unordered_map<uint64_t, EdgeInfo> edges;
  std::vector<std::vector<uint32_t>> adj;            // from -> [to]
  std::atomic<uint64_t> condvar_hold_reports{0};
  std::atomic<uint64_t> blocking_hot_reports{0};
  std::string last_report;  // guarded by mu
};

State& S() {
  static State* s = new State();  // leaked: outlives all static dtors
  return *s;
}

struct Held {
  const void* instance;
  uint32_t class_id;
  bool shared;
  bool trylock;
};

thread_local std::vector<Held>* t_held = nullptr;

std::vector<Held>& HeldStack() {
  if (t_held == nullptr) t_held = new std::vector<Held>();  // leaked per thread
  return *t_held;
}

uint64_t ThreadHash() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// DFS reachability from -> to over the edge graph (S().mu held). Fills
// `path` with the class-id chain from -> ... -> to when reachable.
bool FindPath(State& s, uint32_t from, uint32_t to,
              std::vector<uint32_t>* path) {
  std::vector<uint32_t> stack = {from};
  std::unordered_map<uint32_t, uint32_t> parent;  // node -> predecessor
  parent.emplace(from, from);
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (n == to) {
      std::vector<uint32_t> rev = {to};
      for (uint32_t p = to; p != from;) {
        p = parent.at(p);
        rev.push_back(p);
      }
      path->assign(rev.rbegin(), rev.rend());
      return true;
    }
    if (n >= s.adj.size()) continue;
    for (uint32_t next : s.adj[n]) {
      if (parent.emplace(next, n).second) stack.push_back(next);
    }
  }
  return false;
}

[[noreturn]] void FatalCycle(State& s, uint32_t held_cls, uint32_t new_cls,
                             const std::vector<uint32_t>& path) {
  // path is new_cls -> ... -> held_cls: the previously-observed order that
  // the current acquisition (held_cls -> new_cls) contradicts.
  std::fprintf(stderr,
               "\n==== couchkv lockdep: POTENTIAL DEADLOCK "
               "(lock-order inversion) ====\n");
  std::fprintf(stderr,
               "thread %#llx acquiring lock class \"%s\" while holding "
               "\"%s\",\nbut the opposite order was already observed:\n",
               static_cast<unsigned long long>(ThreadHash()),
               s.classes[new_cls].name.c_str(),
               s.classes[held_cls].name.c_str());
  std::fprintf(stderr, "  existing order: ");
  for (size_t i = 0; i < path.size(); ++i) {
    std::fprintf(stderr, "%s\"%s\"", i ? " -> " : "",
                 s.classes[path[i]].name.c_str());
  }
  std::fprintf(stderr, "\n  new edge:       \"%s\" -> \"%s\"\n",
               s.classes[held_cls].name.c_str(),
               s.classes[new_cls].name.c_str());

  std::fprintf(stderr, "\n-- this acquisition (\"%s\" -> \"%s\") --\n",
               s.classes[held_cls].name.c_str(),
               s.classes[new_cls].name.c_str());
  Stack here;
  here.Capture();
  PrintStack(here);

  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = s.edges.find(EdgeKey(path[i], path[i + 1]));
    if (it == s.edges.end()) continue;
    std::fprintf(stderr,
                 "\n-- prior acquisition (\"%s\" -> \"%s\", thread %#llx) "
                 "--\n",
                 s.classes[path[i]].name.c_str(),
                 s.classes[path[i + 1]].name.c_str(),
                 static_cast<unsigned long long>(it->second.thread_hash));
    PrintStack(it->second.stack);
  }
  std::fprintf(stderr,
               "\n==== end lockdep report; aborting ====\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void FatalSelf(State& s, uint32_t cls, const char* what) {
  std::fprintf(stderr,
               "\n==== couchkv lockdep: %s on lock class \"%s\" ====\n",
               what, s.classes[cls].name.c_str());
  Stack here;
  here.Capture();
  PrintStack(here);
  std::fprintf(stderr, "==== end lockdep report; aborting ====\n");
  std::fflush(stderr);
  std::abort();
}

void Warn(State& s, std::atomic<uint64_t>& counter, const std::string& msg) {
  counter.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.last_report = msg;
  }
  std::fprintf(stderr, "[WARN] lockdep: %s\n", msg.c_str());
}

std::string HeldNames(State& s, const std::vector<Held>& held,
                      const void* skip_instance) {
  std::string out;
  std::lock_guard<std::mutex> lock(s.mu);
  for (const Held& h : held) {
    if (h.instance == skip_instance) continue;
    if (!out.empty()) out += ", ";
    out += "\"" + s.classes[h.class_id].name + "\"";
  }
  return out;
}

// Records the edge from -> to (caller does NOT hold S().mu). Aborts on a
// cycle. No-op when the edge already exists.
void AddEdgesFromHeld(State& s, uint32_t new_cls, unsigned new_flags) {
  const std::vector<Held>& held = HeldStack();
  for (const Held& h : held) {
    if (h.class_id == new_cls) {
      if (!(new_flags & kNestable)) {
        std::lock_guard<std::mutex> lock(s.mu);
        FatalSelf(s, new_cls,
                  "POTENTIAL DEADLOCK (same-class nested acquisition, "
                  "class not marked kNestable)");
      }
      continue;  // nestable: instances of one class carry no order
    }
    std::lock_guard<std::mutex> lock(s.mu);
    uint64_t key = EdgeKey(h.class_id, new_cls);
    if (s.edges.count(key)) continue;
    // New edge h.class_id -> new_cls. If new_cls already reaches
    // h.class_id, this closes a cycle.
    std::vector<uint32_t> path;
    if (FindPath(s, new_cls, h.class_id, &path)) {
      FatalCycle(s, h.class_id, new_cls, path);
    }
    EdgeInfo info;
    info.stack.Capture();
    info.thread_hash = ThreadHash();
    s.edges.emplace(key, info);
    if (s.adj.size() <= h.class_id) s.adj.resize(h.class_id + 1);
    s.adj[h.class_id].push_back(new_cls);
  }
}

void PushHeld(const void* instance, uint32_t class_id, bool shared,
              bool trylock) {
  HeldStack().push_back(Held{instance, class_id, shared, trylock});
}

std::string GraphJsonLocked(State& s) {
  std::string out = "{\n  \"classes\": [";
  for (size_t i = 0; i < s.classes.size(); ++i) {
    if (i) out += ",";
    out += "\n    {\"name\": \"" + s.classes[i].name +
           "\", \"flags\": " + std::to_string(s.classes[i].flags) + "}";
  }
  out += "\n  ],\n  \"edges\": [";
  bool first = true;
  for (const auto& [key, info] : s.edges) {
    uint32_t from = static_cast<uint32_t>(key >> 32);
    uint32_t to = static_cast<uint32_t>(key);
    if (!first) out += ",";
    first = false;
    out += "\n    {\"from\": \"" + s.classes[from].name + "\", \"to\": \"" +
           s.classes[to].name + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

// --- Graph dump at process exit --------------------------------------------

// Dump destination, resolved once: --dump-lock-graph=FILE on the command
// line (read from /proc/self/cmdline so gtest_main binaries need no flag
// plumbing), else $COUCHKV_LOCKDEP_DUMP, else
// $COUCHKV_LOCKDEP_DUMP_DIR/lock_graph.<pid>.json.
std::string DumpPath() {
  std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
  if (cmdline) {
    std::string all((std::istreambuf_iterator<char>(cmdline)),
                    std::istreambuf_iterator<char>());
    size_t pos = 0;
    const std::string flag = "--dump-lock-graph=";
    while (pos < all.size()) {
      size_t end = all.find('\0', pos);
      if (end == std::string::npos) end = all.size();
      std::string arg = all.substr(pos, end - pos);
      if (arg.rfind(flag, 0) == 0) return arg.substr(flag.size());
      pos = end + 1;
    }
  }
  if (const char* f = std::getenv("COUCHKV_LOCKDEP_DUMP")) return f;
  if (const char* d = std::getenv("COUCHKV_LOCKDEP_DUMP_DIR")) {
    return std::string(d) + "/lock_graph." + std::to_string(::getpid()) +
           ".json";
  }
  return {};
}

void WriteDumpAtExit() {
  std::string path = DumpPath();
  if (path.empty()) return;
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[WARN] lockdep: cannot write dump to %s\n",
                 path.c_str());
    return;
  }
  out << GraphJsonLocked(s);
}

struct DumpRegistrar {
  DumpRegistrar() { std::atexit(WriteDumpAtExit); }
};

}  // namespace

uint32_t RegisterInstance(const char* name, unsigned flags) {
  static DumpRegistrar dump_registrar;  // first mutex ctor arms the dump
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] =
      s.by_name.emplace(name, static_cast<uint32_t>(s.classes.size()));
  if (inserted) {
    s.classes.push_back(LockClass{name, flags});
  } else {
    s.classes[it->second].flags |= flags;
  }
  return it->second;
}

void OnAcquire(const void* instance, uint32_t class_id, bool shared) {
  State& s = S();
  for (const Held& h : HeldStack()) {
    if (h.instance == instance) {
      std::lock_guard<std::mutex> lock(s.mu);
      FatalSelf(s, class_id,
                "DEADLOCK (recursive acquisition of the same instance)");
    }
  }
  unsigned flags;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    flags = s.classes[class_id].flags;
  }
  AddEdgesFromHeld(s, class_id, flags);
  PushHeld(instance, class_id, shared, /*trylock=*/false);
}

void OnTryAcquired(const void* instance, uint32_t class_id, bool shared) {
  // A successful try-lock can never have blocked, so it contributes no
  // incoming edge (and no cycle check); it still joins the held stack so
  // later blocking acquisitions see it as a source.
  PushHeld(instance, class_id, shared, /*trylock=*/true);
}

void OnRelease(const void* instance) {
  std::vector<Held>& held = HeldStack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->instance == instance) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock lockdep never saw acquired: a wrapper bug.
  std::fprintf(stderr,
               "[WARN] lockdep: release of untracked lock instance %p\n",
               instance);
}

void OnCondVarWait(const void* waited_instance) {
  State& s = S();
  const std::vector<Held>& held = HeldStack();
  size_t others = 0;
  for (const Held& h : held) {
    if (h.instance != waited_instance) ++others;
  }
  if (others == 0) return;
  std::string waited_name = "<unknown>";
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Held& h : held) {
      if (h.instance == waited_instance) {
        waited_name = s.classes[h.class_id].name;
        break;
      }
    }
  }
  Warn(s, s.condvar_hold_reports,
       "condvar wait on \"" + waited_name + "\" while holding " +
           HeldNames(s, held, waited_instance) +
           " (held across an unbounded wait)");
}

void OnBlockingCall(const char* what) {
  State& s = S();
  const std::vector<Held>& held = HeldStack();
  for (const Held& h : held) {
    unsigned flags;
    std::string name;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      flags = s.classes[h.class_id].flags;
      name = s.classes[h.class_id].name;
    }
    if (flags & kHotPath) {
      Warn(s, s.blocking_hot_reports,
           std::string("blocking call (") + what +
               ") while holding hot-path lock class \"" + name + "\"");
    }
  }
}

uint64_t CondVarHoldReports() {
  return S().condvar_hold_reports.load(std::memory_order_relaxed);
}

uint64_t BlockingWhileHotReports() {
  return S().blocking_hot_reports.load(std::memory_order_relaxed);
}

std::string LastReport() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.last_report;
}

std::string DumpGraphJson() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return GraphJsonLocked(s);
}

uint64_t EdgeCount() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.edges.size();
}

}  // namespace couchkv::lockdep

#else  // !COUCHKV_LOCKDEP

// Keep the translation unit non-empty; everything lives in the header as
// zero-cost inline no-ops.
namespace couchkv::lockdep {
namespace {
[[maybe_unused]] constexpr bool kCompiledOut = true;
}  // namespace
}  // namespace couchkv::lockdep

#endif  // COUCHKV_LOCKDEP
