#include "common/histogram.h"

#include <cmath>
#include <cstdio>

#include "common/clock.h"

namespace couchkv {

namespace {
// 16 sub-buckets per power of two: bucket = 16*log2(v) + sub.
constexpr int kSubBucketBits = 4;
constexpr int kSubBuckets = 1 << kSubBucketBits;
}  // namespace

int Histogram::BucketFor(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  int log2 = 63 - __builtin_clzll(nanos);
  int sub = static_cast<int>((nanos >> (log2 - kSubBucketBits)) - kSubBuckets);
  int idx = ((log2 - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

uint64_t Histogram::BucketLow(int idx) {
  if (idx < kSubBuckets) return static_cast<uint64_t>(idx);
  int log2 = (idx >> kSubBucketBits) + kSubBucketBits - 1;
  int sub = idx & (kSubBuckets - 1);
  return (1ULL << log2) +
         (static_cast<uint64_t>(sub) << (log2 - kSubBucketBits));
}

void Histogram::Record(uint64_t nanos) {
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0);
  sum_.store(0);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  // Derive count from the bucket copy rather than reading count_: a writer
  // between the two reads would otherwise leave count out of sync with the
  // buckets and skew Percentile()'s target rank.
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::Mean() const {
  return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target >= count) target = count - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = buckets[i];
    if (seen + n > target) {
      uint64_t low = Histogram::BucketLow(i);
      uint64_t high =
          (i + 1 < kNumBuckets) ? Histogram::BucketLow(i + 1) : low * 2;
      // Single-bucket distributions: every sample shares this bucket, so
      // interpolating across the full bucket span would report a spread
      // that does not exist. Rank-interpolate only among this bucket's own
      // samples, which collapses to `low` when the bucket holds them all.
      double frac =
          static_cast<double>(target - seen) / static_cast<double>(n);
      if (n == count) frac = 0.0;
      return low +
             static_cast<uint64_t>(frac * static_cast<double>(high - low));
    }
    seen += n;
  }
  return Histogram::BucketLow(kNumBuckets - 1);
}

std::string HistogramSnapshot::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus",
                static_cast<unsigned long long>(count), Mean() / 1e3,
                static_cast<double>(Percentile(0.50)) / 1e3,
                static_cast<double>(Percentile(0.95)) / 1e3,
                static_cast<double>(Percentile(0.99)) / 1e3);
  return buf;
}

void HistogramSnapshot::Subtract(const HistogramSnapshot& earlier) {
  count = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets[i] >= earlier.buckets[i]
                     ? buckets[i] - earlier.buckets[i]
                     : 0;
    count += buckets[i];
  }
  sum = sum >= earlier.sum ? sum - earlier.sum : 0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

ScopedTimer::ScopedTimer(Histogram* h)
    : h_(h), start_(Clock::Real()->NowNanos()) {}

ScopedTimer::~ScopedTimer() { h_->Record(Clock::Real()->NowNanos() - start_); }

}  // namespace couchkv
