// Fixed-size worker pool used for parallel fetch in the query engine
// (paper §4.5.3: "operations, like fetch, join, and sort, are done in a
// local parallel (based on multicore) manner") and for view scatter/gather.
#ifndef COUCHKV_COMMON_THREAD_POOL_H_
#define COUCHKV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace couchkv {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  // Block until every task submitted so far has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes Wait()
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_THREAD_POOL_H_
