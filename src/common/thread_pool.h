// Fixed-size worker pool used for parallel fetch in the query engine
// (paper §4.5.3: "operations, like fetch, join, and sort, are done in a
// local parallel (based on multicore) manner") and for view scatter/gather.
#ifndef COUCHKV_COMMON_THREAD_POOL_H_
#define COUCHKV_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/affinity.h"
#include "common/synchronization.h"

namespace couchkv {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // Block until every task submitted so far has finished.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);
  bool Idle() const REQUIRES(mu_) { return queue_.empty() && active_ == 0; }

  // WorkerLoop bodies run only on pool workers; the queue itself is
  // multi-domain by design (any domain may Submit).
  COUCHKV_AFFINE_TO("thread_pool.worker_loop", "thread_pool.worker");
  Mutex mu_{"thread_pool.pool"};
  CondVar cv_;       // wakes workers
  CondVar idle_cv_;  // wakes Wait()
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_THREAD_POOL_H_
