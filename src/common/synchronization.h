// Annotated synchronization primitives: thin wrappers over the standard
// library types carrying Clang Thread Safety Analysis attributes, so the
// codebase's lock discipline — which capability guards which field, which
// helper requires which lock — is checked at compile time on Clang builds
// (-Werror=thread-safety in CI) instead of sampled at runtime by TSan.
//
// On non-Clang compilers every attribute macro expands to nothing and the
// wrappers compile to the std types with zero overhead.
//
// Usage conventions (see DESIGN.md "Lock hierarchy"):
//   * Every mutex-protected field is declared `T field_ GUARDED_BY(mu_);`.
//   * Private helpers that assume the lock is held are suffixed `_locked`
//     (or documented) and annotated `REQUIRES(mu_)`.
//   * `NO_THREAD_SAFETY_ANALYSIS` is an escape hatch of last resort; every
//     use must carry a comment justifying why the analysis cannot see the
//     invariant.
#ifndef COUCHKV_COMMON_SYNCHRONIZATION_H_
#define COUCHKV_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/affinity.h"
#include "common/lockdep.h"

// Either diagnostic layer (lock-order detection, execution-domain
// observation) needs the wrappers to carry per-instance class ids; both
// compile out of normal builds.
#if defined(COUCHKV_LOCKDEP) || defined(COUCHKV_AFFINITY)
#define COUCHKV_SYNC_INSTRUMENTED 1
#endif

// --- Attribute macros (the canonical set from the Clang TSA docs) ---

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define COUCHKV_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef COUCHKV_THREAD_ANNOTATION
#define COUCHKV_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) COUCHKV_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY COUCHKV_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) COUCHKV_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) COUCHKV_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  COUCHKV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  COUCHKV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  COUCHKV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  COUCHKV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) COUCHKV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  COUCHKV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) COUCHKV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  COUCHKV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  COUCHKV_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  COUCHKV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  COUCHKV_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) COUCHKV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) COUCHKV_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  COUCHKV_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) COUCHKV_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  COUCHKV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace couchkv {

class CondVar;

// Exclusive mutex. Prefer LockGuard/UniqueLock over manual Lock/Unlock.
//
// Every mutex in src/ declares its lockdep lock CLASS at the declaration
// site: `Mutex mu_{"cluster.node"};` (naming rules in DESIGN.md "Lock
// hierarchy"). Under -DCOUCHKV_LOCKDEP=ON the class feeds the runtime
// lock-order detector (common/lockdep.h); in normal builds the name
// argument costs nothing. The nameless constructor exists for tests and
// scratch code only — scripts/analysis/lock_order.py rejects unnamed
// mutexes in src/.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("unnamed") {}
  explicit Mutex(const char* lock_class, unsigned lockdep_flags = 0) {
#if defined(COUCHKV_LOCKDEP)
    class_id_ = lockdep::RegisterInstance(lock_class, lockdep_flags);
#endif
#if defined(COUCHKV_AFFINITY)
    aff_id_ = affinity::RegisterLockClass(lock_class);
#endif
    (void)lock_class;
    (void)lockdep_flags;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lockdep::OnAcquire(this, class_id(), /*shared=*/false);
    mu_.lock();
    affinity::OnLockAcquired(aff_id(), /*shared=*/false);
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lockdep::OnRelease(this);
  }
  bool TryLock() TRY_ACQUIRE(true) {
    bool ok = mu_.try_lock();
    if (ok) {
      lockdep::OnTryAcquired(this, class_id(), /*shared=*/false);
      affinity::OnLockAcquired(aff_id(), /*shared=*/false);
    }
    return ok;
  }

  // For code the analysis cannot follow (e.g. a lock handed across a
  // callback boundary): asserts at the annotation level that the calling
  // thread holds this mutex.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class UniqueLock;
#if defined(COUCHKV_LOCKDEP)
  uint32_t class_id() const { return class_id_; }
  uint32_t class_id_;
#else
  static constexpr uint32_t class_id() { return 0; }
#endif
#if defined(COUCHKV_AFFINITY)
  uint32_t aff_id() const { return aff_id_; }
  uint32_t aff_id_;
#else
  static constexpr uint32_t aff_id() { return 0; }
#endif
  std::mutex mu_;
};

// Reader/writer mutex. Shared (reader) acquisitions participate in lockdep
// ordering like exclusive ones: a reader can still deadlock against a
// queued writer, so reader edges are tracked conservatively.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : SharedMutex("unnamed") {}
  explicit SharedMutex(const char* lock_class, unsigned lockdep_flags = 0) {
#if defined(COUCHKV_LOCKDEP)
    class_id_ = lockdep::RegisterInstance(lock_class, lockdep_flags);
#endif
#if defined(COUCHKV_AFFINITY)
    aff_id_ = affinity::RegisterLockClass(lock_class);
#endif
    (void)lock_class;
    (void)lockdep_flags;
  }
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lockdep::OnAcquire(this, class_id(), /*shared=*/false);
    mu_.lock();
    affinity::OnLockAcquired(aff_id(), /*shared=*/false);
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lockdep::OnRelease(this);
  }
  void LockShared() ACQUIRE_SHARED() {
    lockdep::OnAcquire(this, class_id(), /*shared=*/true);
    mu_.lock_shared();
    affinity::OnLockAcquired(aff_id(), /*shared=*/true);
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lockdep::OnRelease(this);
  }

  void AssertHeld() ASSERT_CAPABILITY(this) {}
  void AssertSharedHeld() ASSERT_SHARED_CAPABILITY(this) {}

 private:
#if defined(COUCHKV_LOCKDEP)
  uint32_t class_id() const { return class_id_; }
  uint32_t class_id_;
#else
  static constexpr uint32_t class_id() { return 0; }
#endif
#if defined(COUCHKV_AFFINITY)
  uint32_t aff_id() const { return aff_id_; }
  uint32_t aff_id_;
#else
  static constexpr uint32_t aff_id() { return 0; }
#endif
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex (std::lock_guard equivalent).
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~LockGuard() RELEASE() { mu_.Unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock over SharedMutex (writer side).
class SCOPED_CAPABILITY WriterLockGuard {
 public:
  explicit WriterLockGuard(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLockGuard() RELEASE() { mu_.Unlock(); }

  WriterLockGuard(const WriterLockGuard&) = delete;
  WriterLockGuard& operator=(const WriterLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderLockGuard {
 public:
  explicit ReaderLockGuard(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLockGuard() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLockGuard(const ReaderLockGuard&) = delete;
  ReaderLockGuard& operator=(const ReaderLockGuard&) = delete;

 private:
  SharedMutex& mu_;
};

// Movable-state exclusive lock that supports manual Unlock/Lock cycles and
// condition-variable waits (std::unique_lock equivalent). The analysis
// tracks the held/released state across the manual calls.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu)
      : lock_(mu.mu_, std::defer_lock)
#if defined(COUCHKV_SYNC_INSTRUMENTED)
        ,
        mu_(&mu)
#endif
  {
    lockdep::OnAcquire(&mu, mu.class_id(), /*shared=*/false);
    lock_.lock();
    affinity::OnLockAcquired(mu.aff_id(), /*shared=*/false);
  }
  // Releases iff still held (std::unique_lock semantics).
  ~UniqueLock() RELEASE() {
    if (lock_.owns_lock()) {
      lock_.unlock();
#if defined(COUCHKV_LOCKDEP)
      lockdep::OnRelease(mu_);
#endif
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() ACQUIRE() {
#if defined(COUCHKV_LOCKDEP)
    lockdep::OnAcquire(mu_, mu_->class_id(), /*shared=*/false);
#endif
    lock_.lock();
#if defined(COUCHKV_AFFINITY)
    affinity::OnLockAcquired(mu_->aff_id(), /*shared=*/false);
#endif
  }
  void Unlock() RELEASE() {
    lock_.unlock();
#if defined(COUCHKV_LOCKDEP)
    lockdep::OnRelease(mu_);
#endif
  }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
#if defined(COUCHKV_SYNC_INSTRUMENTED)
  // The wrapped mutex, for release/condvar-hold/affinity hooks; compiled
  // out of normal builds so the wrapper stays the size of std::unique_lock.
  Mutex* mu_;
#endif
#if defined(COUCHKV_LOCKDEP)
  const void* lockdep_instance() const { return mu_; }
#else
  static constexpr const void* lockdep_instance() { return nullptr; }
#endif
};

// Condition variable operating on UniqueLock. The lock is held on entry and
// on return of every Wait* call (the internal release/re-acquire inside the
// wait is invisible to the analysis, matching its held-throughout contract).
// Callers write explicit `while (!predicate_locked()) cv.Wait(lock);` loops;
// predicate reads are then checked against the lock like any other access.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(UniqueLock& lock) {
    lockdep::OnCondVarWait(lock.lockdep_instance());
    cv_.wait(lock.lock_);
  }

  // Returns false on timeout, true when notified.
  template <typename Rep, typename Period>
  bool WaitFor(UniqueLock& lock,
               const std::chrono::duration<Rep, Period>& rel_time) {
    lockdep::OnCondVarWait(lock.lockdep_instance());
    return cv_.wait_for(lock.lock_, rel_time) == std::cv_status::no_timeout;
  }

  template <typename ClockT, typename DurationT>
  bool WaitUntil(UniqueLock& lock,
                 const std::chrono::time_point<ClockT, DurationT>& deadline) {
    lockdep::OnCondVarWait(lock.lockdep_instance());
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_SYNCHRONIZATION_H_
