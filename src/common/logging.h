// Minimal leveled logger. Off by default at DEBUG so benches are not skewed;
// thread-safe via a single mutex (logging is never on a hot path).
#ifndef COUCHKV_COMMON_LOGGING_H_
#define COUCHKV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace couchkv {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {
void Emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_log
}  // namespace couchkv

#define COUCHKV_LOG(level)                                  \
  if (::couchkv::GetLogLevel() <= ::couchkv::LogLevel::level) \
  ::couchkv::internal_log::LogLine(::couchkv::LogLevel::level)

#define LOG_DEBUG COUCHKV_LOG(kDebug)
#define LOG_INFO COUCHKV_LOG(kInfo)
#define LOG_WARN COUCHKV_LOG(kWarn)
#define LOG_ERROR COUCHKV_LOG(kError)

#endif  // COUCHKV_COMMON_LOGGING_H_
