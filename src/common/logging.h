// Minimal leveled logger. Off by default at DEBUG so benches are not skewed;
// thread-safe via a single mutex (logging is never on a hot path).
//
// Filtering happens at two levels:
//   * Compile time: define COUCHKV_MIN_LOG_LEVEL (0=DEBUG .. 4=OFF) to make
//     statements below the floor compile to nothing — the stream arguments
//     are never evaluated. The default floor is DEBUG (everything compiles).
//   * Run time: SetLogLevel() / GetLogLevel() gate emission of the
//     statements that survived the compile-time floor.
#ifndef COUCHKV_COMMON_LOGGING_H_
#define COUCHKV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

// Compile-time floor; statements below it are dead code with no runtime
// cost. 0=DEBUG, 1=INFO, 2=WARN, 3=ERROR, 4=OFF (drop everything).
#ifndef COUCHKV_MIN_LOG_LEVEL
#define COUCHKV_MIN_LOG_LEVEL 0
#endif

namespace couchkv {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {
void Emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows a LogLine so the conditional-expression form of COUCHKV_LOG has
// type void on both arms ("operator&" binds looser than "<<").
struct Voidify {
  void operator&(const LogLine&) const {}
};

}  // namespace internal_log
}  // namespace couchkv

// True iff `level` survives the compile-time floor AND the runtime
// threshold. The first operand is a constant expression, so below-floor log
// statements (including their stream arguments) are eliminated entirely.
#define COUCHKV_LOG_ENABLED(level)                                          \
  (static_cast<int>(::couchkv::LogLevel::level) >= COUCHKV_MIN_LOG_LEVEL && \
   ::couchkv::GetLogLevel() <= ::couchkv::LogLevel::level)

#define COUCHKV_LOG(level)                  \
  !COUCHKV_LOG_ENABLED(level)               \
      ? (void)0                             \
      : ::couchkv::internal_log::Voidify()& \
            ::couchkv::internal_log::LogLine(::couchkv::LogLevel::level)

#define LOG_DEBUG COUCHKV_LOG(kDebug)
#define LOG_INFO COUCHKV_LOG(kInfo)
#define LOG_WARN COUCHKV_LOG(kWarn)
#define LOG_ERROR COUCHKV_LOG(kError)

#endif  // COUCHKV_COMMON_LOGGING_H_
