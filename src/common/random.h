// Fast seedable RNG plus the distribution generators YCSB needs (uniform,
// zipfian, scrambled zipfian, latest). Implementations follow the original
// YCSB core package [Cooper et al., SoCC'10], which the paper's evaluation
// (§10.1) uses to drive load.
#ifndef COUCHKV_COMMON_RANDOM_H_
#define COUCHKV_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace couchkv {

// xorshift128+ — fast, decent quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 expansion of the seed into two non-zero words.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }
  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }
  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  uint64_t s_[2];
};

// Zipfian over [0, n) with parameter theta (default 0.99 as in YCSB).
// Low ranks are the hottest items.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);
  uint64_t item_count() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// Zipfian but with the hot items scattered over the keyspace via FNV hashing,
// as YCSB's ScrambledZipfianGenerator does.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), zipf_(n, theta) {}

  uint64_t Next(Rng& rng) {
    uint64_t v = zipf_.Next(rng);
    return Fnv64(v) % n_;
  }

  static uint64_t Fnv64(uint64_t v) {
    uint64_t hash = 0xCBF29CE484222325ULL;
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
    return hash;
  }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_RANDOM_H_
