// Execution-domain discipline ("affinity"), the third leg of the
// lock-discipline story: TSA (common/synchronization.h) proves WHICH lock
// guards each field, lockdep (common/lockdep.h) proves the ORDER locks are
// taken, and affinity proves WHO — which execution domain — is allowed to
// take them. The thread-per-core rework (ROADMAP item 2) consumes the
// result: a mutex whose guarded state is only ever touched from one domain
// can drop its lock outright; one with a single writing domain can become a
// seqlock/RCU; only genuinely multi-domain state needs message-passing to
// an owning shard.
//
// Model: every spawned thread declares a named EXECUTION DOMAIN at birth by
// constructing a ScopedDomain at the top of its thread function — lexically
// inside the spawn statement, so scripts/analysis/thread_affinity.py can
// verify statically that no std::thread in src/ runs undeclared. Threads
// that never declare (tests, the embedding application) implicitly run in
// the "client" domain. The domain inventory:
//
//   main               tool entry points (couchkv_server, loadgen)
//   client             implicit: tests, SmartClient callers, YCSB workers
//   thread_pool.worker ThreadPool workers (n1ql parallel fetch, views)
//   net.accept         TcpServer accept loop (one per listening node)
//   net.conn           TcpServer per-connection loops
//   storage.flusher    Bucket disk-write flusher (one per bucket)
//   dcp.producer       dcp::Dispatcher pump thread (one per node)
//   cluster.health     HealthMonitor heartbeat/failover ticker
//
// Two kinds of evidence are collected under -DCOUCHKV_AFFINITY=ON:
//
//   1. Chromium-style affinity CHECKS: a class whose state belongs to one
//      domain declares COUCHKV_AFFINE_TO("what.name", "domain") and calls
//      AssertAffine() in its accessors / at its loop tops. An access from
//      any other domain aborts, naming both the declared and the offending
//      domain plus a stack — unless observe mode is on (see below), in
//      which case the violation is recorded into the dump instead.
//   2. Lock-acquisition OBSERVATION, for free via the synchronization.h
//      wrappers: every Mutex/SharedMutex acquisition records (lock class,
//      acquiring domain, exclusive|shared). The resulting lock-class ->
//      {domains} map — dumped as JSON at exit — is the raw material for the
//      generated lock-removal inventory (thread_affinity.py --inventory,
//      committed table in DESIGN.md "Execution domains & thread model").
//
// Observe mode (COUCHKV_AFFINITY_OBSERVE=1 in the environment, or
// SetObserveMode(true) in tests) downgrades AssertAffine aborts to recorded
// violations so a whole test run can map the true access domains before any
// AFFINE_TO claim is tightened.
//
// Dump destinations mirror lockdep: --dump-affinity=FILE on the command
// line, else $COUCHKV_AFFINITY_DUMP, else
// $COUCHKV_AFFINITY_DUMP_DIR/affinity.<pid>.json.
//
// Everything compiles out to zero-cost no-ops unless the build sets
// -DCOUCHKV_AFFINITY (CMake: -DCOUCHKV_AFFINITY=ON). Composable with
// lockdep: both can be ON at once; they share no state.
#ifndef COUCHKV_COMMON_AFFINITY_H_
#define COUCHKV_COMMON_AFFINITY_H_

#include <cstdint>
#include <string>

namespace couchkv::affinity {

#if defined(COUCHKV_AFFINITY)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

#if defined(COUCHKV_AFFINITY)

// Registers (or finds) the execution domain `name`. At most 64 distinct
// domains (ids feed fixed-width bitmasks); exceeding that aborts loudly.
uint32_t RegisterDomain(const char* name);

// Registers (or finds) the lock class `name` for acquisition observation.
// Called by the Mutex/SharedMutex constructors in synchronization.h.
uint32_t RegisterLockClass(const char* name);

// Lock-acquisition hook, called by the synchronization.h wrappers after
// the underlying lock is held: records (class, current domain, shared).
void OnLockAcquired(uint32_t lock_class_id, bool shared);

// Registers (or finds) the affinity-checker record `what` declared affine
// to `domain`. Called by the Affine member constructor; instances sharing
// one `what` (e.g. per-Bucket flushers) share one record.
uint32_t RegisterAffine(const char* what, const char* domain);

// The check behind Affine::AssertAffine(). Aborts on a wrong-domain access
// (naming declared + offending domain, with a stack) unless observe mode
// is on, in which case the violation is recorded into the dump.
void AssertAffineImpl(uint32_t affine_id);

// --- Introspection (tests, tools) ---

// Name of the calling thread's current domain ("client" when undeclared).
const char* CurrentDomainName();

// Downgrade AssertAffine aborts to recorded violations (also settable via
// COUCHKV_AFFINITY_OBSERVE=1 in the environment, read at first use).
void SetObserveMode(bool on);
bool ObserveMode();

// Process-lifetime count of wrong-domain accesses recorded in observe
// mode, and the last such report line (empty when none).
uint64_t ViolationReports();
std::string LastReport();

// Current observation state as JSON:
//   {"domains":   [{"name":..., "threads":N}],
//    "locks":     [{"class":..., "domains":[
//                     {"domain":..., "exclusive":N, "shared":N}]}],
//    "affine":    [{"what":..., "declared":..., "asserts":N,
//                   "violations":N, "observed":[...]}]}
std::string DumpJson();

#else  // !COUCHKV_AFFINITY — every hook is a no-op the optimizer deletes.

inline uint32_t RegisterDomain(const char*) { return 0; }
inline uint32_t RegisterLockClass(const char*) { return 0; }
inline void OnLockAcquired(uint32_t, bool) {}
inline uint32_t RegisterAffine(const char*, const char*) { return 0; }
inline void AssertAffineImpl(uint32_t) {}
inline const char* CurrentDomainName() { return "client"; }
inline void SetObserveMode(bool) {}
inline bool ObserveMode() { return false; }
inline uint64_t ViolationReports() { return 0; }
inline std::string LastReport() { return {}; }
inline std::string DumpJson() { return "{}"; }

#endif  // COUCHKV_AFFINITY

// Declares the calling thread's execution domain for the lifetime of the
// scope (the previous domain is restored on destruction, so nested adoption
// — a tool's main thread temporarily acting as a client — works). Every
// std::thread spawn site in src/ constructs one as the first statement of
// its thread function; scripts/analysis/thread_affinity.py enforces this
// lexically. Zero-cost in non-affinity builds.
class ScopedDomain {
 public:
#if defined(COUCHKV_AFFINITY)
  explicit ScopedDomain(const char* domain);
  ~ScopedDomain();
#else
  explicit ScopedDomain(const char*) {}
#endif
  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

#if defined(COUCHKV_AFFINITY)
 private:
  uint32_t prev_;
#endif
};

// Member object behind COUCHKV_AFFINE_TO. Holds the registered checker
// record; AssertAffine() is the access-site check.
class Affine {
 public:
#if defined(COUCHKV_AFFINITY)
  Affine(const char* what, const char* domain)
      : id_(RegisterAffine(what, domain)) {}
  void AssertAffine() const { AssertAffineImpl(id_); }
#else
  Affine(const char*, const char*) {}
  void AssertAffine() const {}
#endif
  Affine(const Affine&) = delete;
  Affine& operator=(const Affine&) = delete;

#if defined(COUCHKV_AFFINITY)
 private:
  uint32_t id_;
#endif
};

// Declares a field/class affine to one execution domain: state named
// `what` (dotted, lock-class-style) may only be touched from `domain`.
// Expands to a checker member; accessors call
// `affine_checker_.AssertAffine();` (or COUCHKV_ASSERT_AFFINE()). The
// declaration is also consumed by scripts/analysis/thread_affinity.py,
// which cross-checks it against the runtime dump: a declared-but-never-
// exercised checker is a coverage gap, an access observed from any other
// domain is a failure.
#define COUCHKV_AFFINE_TO(what, domain) \
  ::couchkv::affinity::Affine affine_checker_ { what, domain }

// Access-site check for the enclosing class's COUCHKV_AFFINE_TO member.
#define COUCHKV_ASSERT_AFFINE() affine_checker_.AssertAffine()

}  // namespace couchkv::affinity

#endif  // COUCHKV_COMMON_AFFINITY_H_
