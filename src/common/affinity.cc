// Runtime execution-domain tracker. See affinity.h for the model. The whole
// translation unit is empty unless -DCOUCHKV_AFFINITY is set.
//
// Implementation notes (mirroring common/lockdep.cc):
//   * Registration state is protected by a raw std::mutex — it MUST NOT use
//     the instrumented couchkv::Mutex (the OnLockAcquired hook would recurse
//     into the tracker). scripts/lint.sh check 1 exempts this file.
//   * The per-acquisition hot path is lock-free: fixed 2D arrays of atomics
//     indexed by (lock class id, domain id), so observation mode can stay on
//     for a whole ctest run without perturbing timings much.
//   * Report paths write to stderr with fprintf directly (not
//     common/logging.h) so a report can never deadlock on, or recurse into,
//     an instrumented logging mutex.
#include "common/affinity.h"

#if defined(COUCHKV_AFFINITY)

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace couchkv::affinity {

namespace {

// Ids feed fixed-width bitmasks and static counter arrays; both caps abort
// loudly when exceeded (they are diagnostic-build limits, not data limits).
constexpr uint32_t kMaxDomains = 64;
constexpr uint32_t kMaxClasses = 256;
constexpr uint32_t kMaxAffine = 128;

void PrintStackHere() {
  void* pc[24];
  int depth = ::backtrace(pc, 24);
  if (depth <= 0) {
    std::fprintf(stderr, "    <no stack captured>\n");
    return;
  }
  ::backtrace_symbols_fd(pc, depth, STDERR_FILENO);
}

struct AffineRec {
  std::string what;
  uint32_t declared_domain = 0;
  std::atomic<uint64_t> asserts{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> observed_mask{0};  // bit per domain id
};

struct DomainRec {
  std::string name;
  std::atomic<uint64_t> threads{0};  // distinct threads seen in the domain
};

struct State {
  std::mutex mu;  // registration + last_report only; hot path is atomic
  // Domains and affine records live in fixed arrays of atomically-published
  // pointers (never a growing vector): the lock-free hot paths
  // (OnLockAcquired, AssertAffineImpl) index them by id concurrently with
  // registration, and a vector reallocation would race.
  std::atomic<DomainRec*> domains[kMaxDomains] = {};
  std::atomic<uint32_t> num_domains{0};
  std::unordered_map<std::string, uint32_t> domain_by_name;  // guarded by mu
  std::vector<std::string> classes;                          // guarded by mu
  std::unordered_map<std::string, uint32_t> class_by_name;   // guarded by mu
  std::atomic<AffineRec*> affine[kMaxAffine] = {};
  std::unordered_map<std::string, uint32_t> affine_by_what;  // guarded by mu
  std::atomic<uint64_t> violation_reports{0};
  std::string last_report;  // guarded by mu
  bool observe = false;     // latched from the env; SetObserveMode overrides

  // (class, domain) acquisition counters. Flat static-size arrays so the
  // per-acquisition path is two relaxed fetch_adds, no lock.
  std::atomic<uint64_t> excl[kMaxClasses][kMaxDomains] = {};
  std::atomic<uint64_t> shared[kMaxClasses][kMaxDomains] = {};

  DomainRec* domain(uint32_t id) const {
    return domains[id].load(std::memory_order_acquire);
  }
};

State& S() {
  static State* s = [] {
    State* st = new State();  // leaked: outlives all static dtors
    // "client" is id 0: the implicit domain of every thread that never
    // constructs a ScopedDomain (tests, the embedding application).
    DomainRec* client = new DomainRec();  // leaked
    client->name = "client";
    st->domains[0].store(client, std::memory_order_release);
    st->num_domains.store(1, std::memory_order_release);
    st->domain_by_name.emplace("client", 0);
    if (const char* o = std::getenv("COUCHKV_AFFINITY_OBSERVE")) {
      st->observe = (o[0] == '1');
    }
    return st;
  }();
  return *s;
}

thread_local uint32_t t_domain = 0;           // current domain id ("client")
thread_local uint64_t t_counted_mask = 0;     // domains this thread counted in

void CountThreadInDomain(State& s, uint32_t domain) {
  uint64_t bit = 1ull << domain;
  if (t_counted_mask & bit) return;
  t_counted_mask |= bit;
  s.domain(domain)->threads.fetch_add(1, std::memory_order_relaxed);
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string DumpJsonLocked(State& s) {
  uint32_t nd = s.num_domains.load(std::memory_order_acquire);
  std::string out = "{\n  \"domains\": [";
  for (uint32_t i = 0; i < nd; ++i) {
    if (i) out += ",";
    out += "\n    {\"name\": \"" + JsonEscape(s.domain(i)->name) +
           "\", \"threads\": " +
           std::to_string(s.domain(i)->threads.load()) + "}";
  }
  out += "\n  ],\n  \"locks\": [";
  for (size_t c = 0; c < s.classes.size(); ++c) {
    if (c) out += ",";
    out += "\n    {\"class\": \"" + JsonEscape(s.classes[c]) +
           "\", \"domains\": [";
    bool first = true;
    for (uint32_t d = 0; d < nd; ++d) {
      uint64_t e = s.excl[c][d].load(std::memory_order_relaxed);
      uint64_t sh = s.shared[c][d].load(std::memory_order_relaxed);
      if (e == 0 && sh == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "{\"domain\": \"" + JsonEscape(s.domain(d)->name) +
             "\", \"exclusive\": " + std::to_string(e) +
             ", \"shared\": " + std::to_string(sh) + "}";
    }
    out += "]}";
  }
  out += "\n  ],\n  \"affine\": [";
  bool first_rec = true;
  for (uint32_t a = 0; a < kMaxAffine; ++a) {
    AffineRec* rp = s.affine[a].load(std::memory_order_acquire);
    if (rp == nullptr) break;
    AffineRec& r = *rp;
    if (!first_rec) out += ",";
    first_rec = false;
    out += "\n    {\"what\": \"" + JsonEscape(r.what) + "\", \"declared\": \"" +
           JsonEscape(s.domain(r.declared_domain)->name) +
           "\", \"asserts\": " + std::to_string(r.asserts.load()) +
           ", \"violations\": " + std::to_string(r.violations.load()) +
           ", \"observed\": [";
    uint64_t mask = r.observed_mask.load(std::memory_order_relaxed);
    bool first = true;
    for (uint32_t d = 0; d < nd; ++d) {
      if (!(mask & (1ull << d))) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" + JsonEscape(s.domain(d)->name) + "\"";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

// Dump destination, resolved once: --dump-affinity=FILE on the command line
// (read from /proc/self/cmdline so gtest_main binaries need no flag
// plumbing), else $COUCHKV_AFFINITY_DUMP, else
// $COUCHKV_AFFINITY_DUMP_DIR/affinity.<pid>.json.
std::string DumpPath() {
  std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
  if (cmdline) {
    std::string all((std::istreambuf_iterator<char>(cmdline)),
                    std::istreambuf_iterator<char>());
    size_t pos = 0;
    const std::string flag = "--dump-affinity=";
    while (pos < all.size()) {
      size_t end = all.find('\0', pos);
      if (end == std::string::npos) end = all.size();
      std::string arg = all.substr(pos, end - pos);
      if (arg.rfind(flag, 0) == 0) return arg.substr(flag.size());
      pos = end + 1;
    }
  }
  if (const char* f = std::getenv("COUCHKV_AFFINITY_DUMP")) return f;
  if (const char* d = std::getenv("COUCHKV_AFFINITY_DUMP_DIR")) {
    return std::string(d) + "/affinity." + std::to_string(::getpid()) +
           ".json";
  }
  return {};
}

void WriteDumpAtExit() {
  std::string path = DumpPath();
  if (path.empty()) return;
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[WARN] affinity: cannot write dump to %s\n",
                 path.c_str());
    return;
  }
  out << DumpJsonLocked(s);
}

struct DumpRegistrar {
  DumpRegistrar() { std::atexit(WriteDumpAtExit); }
};

void ArmDump() { static DumpRegistrar registrar; }

[[noreturn]] void FatalCap(const char* kind, const char* name, uint32_t cap) {
  std::fprintf(stderr,
               "==== couchkv affinity: too many %s (\"%s\" would exceed the "
               "cap of %u) ====\n",
               kind, name, cap);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

uint32_t RegisterDomain(const char* name) {
  ArmDump();
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.domain_by_name.find(name);
  if (it != s.domain_by_name.end()) return it->second;
  uint32_t id = s.num_domains.load(std::memory_order_relaxed);
  if (id >= kMaxDomains) FatalCap("domains", name, kMaxDomains);
  DomainRec* rec = new DomainRec();  // leaked: outlives all static dtors
  rec->name = name;
  s.domains[id].store(rec, std::memory_order_release);
  s.num_domains.store(id + 1, std::memory_order_release);
  s.domain_by_name.emplace(name, id);
  return id;
}

uint32_t RegisterLockClass(const char* name) {
  ArmDump();
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.class_by_name.find(name);
  if (it != s.class_by_name.end()) return it->second;
  if (s.classes.size() >= kMaxClasses) {
    FatalCap("lock classes", name, kMaxClasses);
  }
  uint32_t id = static_cast<uint32_t>(s.classes.size());
  s.classes.push_back(name);
  s.class_by_name.emplace(name, id);
  return id;
}

void OnLockAcquired(uint32_t lock_class_id, bool shared) {
  State& s = S();
  CountThreadInDomain(s, t_domain);
  auto& cell =
      shared ? s.shared[lock_class_id][t_domain] : s.excl[lock_class_id][t_domain];
  cell.fetch_add(1, std::memory_order_relaxed);
}

uint32_t RegisterAffine(const char* what, const char* domain) {
  uint32_t domain_id = RegisterDomain(domain);
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.affine_by_what.find(what);
  if (it != s.affine_by_what.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(s.affine_by_what.size());
  if (id >= kMaxAffine) FatalCap("affine records", what, kMaxAffine);
  AffineRec* rec = new AffineRec();  // leaked: outlives all static dtors
  rec->what = what;
  rec->declared_domain = domain_id;
  s.affine[id].store(rec, std::memory_order_release);
  s.affine_by_what.emplace(what, id);
  return id;
}

void AssertAffineImpl(uint32_t affine_id) {
  State& s = S();
  AffineRec& r = *s.affine[affine_id].load(std::memory_order_acquire);
  r.observed_mask.fetch_or(1ull << t_domain, std::memory_order_relaxed);
  if (t_domain == r.declared_domain) {
    r.asserts.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  r.violations.fetch_add(1, std::memory_order_relaxed);
  s.violation_reports.fetch_add(1, std::memory_order_relaxed);
  std::string declared, current;
  bool observe;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    declared = s.domain(r.declared_domain)->name;
    current = s.domain(t_domain)->name;
    observe = s.observe;
    s.last_report = "wrong-domain access to \"" + r.what +
                    "\": declared affine to \"" + declared +
                    "\" but touched from \"" + current + "\"";
  }
  if (observe) {
    std::fprintf(stderr,
                 "[WARN] affinity: wrong-domain access to \"%s\" (declared "
                 "\"%s\", got \"%s\") — recorded (observe mode)\n",
                 r.what.c_str(), declared.c_str(), current.c_str());
    return;
  }
  std::fprintf(stderr,
               "\n==== couchkv affinity: WRONG-DOMAIN ACCESS ====\n"
               "\"%s\" is declared affine to execution domain \"%s\",\n"
               "but was accessed from a thread in domain \"%s\":\n",
               r.what.c_str(), declared.c_str(), current.c_str());
  PrintStackHere();
  std::fprintf(stderr, "==== end affinity report; aborting ====\n");
  std::fflush(stderr);
  std::abort();
}

const char* CurrentDomainName() {
  // Domain records are immutable once published, so the name pointer stays
  // valid for the process lifetime; no lock needed.
  return S().domain(t_domain)->name.c_str();
}

void SetObserveMode(bool on) {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  s.observe = on;
}

bool ObserveMode() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.observe;
}

uint64_t ViolationReports() {
  return S().violation_reports.load(std::memory_order_relaxed);
}

std::string LastReport() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.last_report;
}

std::string DumpJson() {
  State& s = S();
  std::lock_guard<std::mutex> lock(s.mu);
  return DumpJsonLocked(s);
}

ScopedDomain::ScopedDomain(const char* domain) : prev_(t_domain) {
  uint32_t id = RegisterDomain(domain);
  t_domain = id;
  CountThreadInDomain(S(), id);
}

ScopedDomain::~ScopedDomain() { t_domain = prev_; }

}  // namespace couchkv::affinity

#else  // !COUCHKV_AFFINITY

// Keep the translation unit non-empty; everything lives in the header as
// zero-cost inline no-ops.
namespace couchkv::affinity {
namespace {
[[maybe_unused]] constexpr bool kCompiledOut = true;
}  // namespace
}  // namespace couchkv::affinity

#endif  // COUCHKV_AFFINITY
