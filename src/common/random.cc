#include "common/random.h"

namespace couchkv {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n ? n : 1), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  // Algorithm from Gray et al., "Quickly Generating Billion-Record Synthetic
  // Databases" (the same source YCSB cites).
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(static_cast<double>(n_) *
                               std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace couchkv
