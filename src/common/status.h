// Status and StatusOr: error handling without exceptions, in the style of
// Abseil/LevelDB. Every fallible operation in couchkv returns one of these.
#ifndef COUCHKV_COMMON_STATUS_H_
#define COUCHKV_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace couchkv {

// Error taxonomy for the whole system. Codes mirror the conditions the paper
// surfaces to clients (e.g. CAS mismatch, temporary failure, not-my-vbucket).
enum class StatusCode {
  kOk = 0,
  kNotFound,        // key / index / bucket does not exist
  kKeyExists,       // CAS mismatch or insert of existing key
  kLocked,          // document is hard-locked (GETL)
  kNotMyVBucket,    // routed to a node not hosting the active vBucket
  kTempFail,        // transient failure (e.g. memory pressure, queue full)
  kTimeout,         // durability or consistency wait timed out
  kInvalidArgument, // malformed request / query
  kParseError,      // N1QL / JSON syntax error
  kPlanError,       // no viable access path (e.g. missing primary index)
  kIOError,         // storage engine failure
  kCorruption,      // on-disk data failed validation
  kUnsupported,     // feature intentionally restricted (paper §3.2.4)
  kAborted,         // operation cancelled (e.g. rebalance abort, shutdown)
  kInternal,        // invariant violation
};

// Human-readable name for a code ("NotFound", "KeyExists", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or (code, message).
//
// [[nodiscard]] makes dropping a returned Status a compile error under
// -Werror=unused-result (enforced on GCC and Clang, proven live by the
// configure-time negative-compile check in tests/negative_compile/). A
// deliberate discard must be spelled `(void)expr;` with an adjacent
// `// justified:` comment — scripts/lint.sh rejects unjustified casts.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "not found") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status KeyExists(std::string m = "key exists / CAS mismatch") {
    return Status(StatusCode::kKeyExists, std::move(m));
  }
  static Status Locked(std::string m = "document locked") {
    return Status(StatusCode::kLocked, std::move(m));
  }
  static Status NotMyVBucket(std::string m = "not my vbucket") {
    return Status(StatusCode::kNotMyVBucket, std::move(m));
  }
  static Status TempFail(std::string m = "temporary failure") {
    return Status(StatusCode::kTempFail, std::move(m));
  }
  static Status Timeout(std::string m = "timed out") {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(StatusCode::kPlanError, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Aborted(std::string m = "aborted") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsKeyExists() const { return code_ == StatusCode::kKeyExists; }
  bool IsLocked() const { return code_ == StatusCode::kLocked; }
  bool IsNotMyVBucket() const { return code_ == StatusCode::kNotMyVBucket; }
  bool IsTempFail() const { return code_ == StatusCode::kTempFail; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

// Holds either a value of T or an error Status. Never holds both.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT implicit
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value)  // NOLINT implicit
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  // Accessing the value of an errored StatusOr is a programming error;
  // fail loudly even in release builds (UB otherwise).
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace couchkv

// Propagate an error status from an expression, LevelDB-style.
#define COUCHKV_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::couchkv::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // COUCHKV_COMMON_STATUS_H_
