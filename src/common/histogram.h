// Log-bucketed latency histogram used by the YCSB harness and the benches to
// report mean / percentile latencies without per-sample storage.
#ifndef COUCHKV_COMMON_HISTOGRAM_H_
#define COUCHKV_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace couchkv {

// Thread-safe histogram of nanosecond values. Buckets grow geometrically
// (~4% relative error), covering 1ns .. ~18s.
class Histogram {
 public:
  static constexpr int kNumBuckets = 512;

  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t nanos);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Value at quantile q in [0,1]; linear interpolation within a bucket.
  uint64_t Percentile(double q) const;

  // "count=... mean=...us p50=...us p95=...us p99=...us"
  std::string Summary() const;

 private:
  static int BucketFor(uint64_t nanos);
  static uint64_t BucketLow(int idx);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// RAII timer recording elapsed wall time into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();

 private:
  Histogram* h_;
  uint64_t start_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_HISTOGRAM_H_
