// Log-bucketed latency histogram, promoted out of bench-only use: the stats
// registry records per-operation latencies into Histograms on hot paths
// (lock-free relaxed adds) and exposes them via Snapshot().
#ifndef COUCHKV_COMMON_HISTOGRAM_H_
#define COUCHKV_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace couchkv {

class Histogram;

// A plain, copyable point-in-time copy of a Histogram, safe to ship across
// threads and subtract for interval (delta) reporting. `count` is always the
// sum of `buckets`, so percentile math is internally consistent even when
// the snapshot was taken while writers were recording.
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 512;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;  // of recorded nanosecond values (approximate under load)

  double Mean() const;
  // Value at quantile q (clamped to [0,1]); linear interpolation within a
  // bucket. Returns 0 for an empty snapshot.
  uint64_t Percentile(double q) const;

  // "count=... mean=...us p50=...us p95=...us p99=...us"
  std::string Summary() const;

  // Subtracts an earlier snapshot of the same histogram, leaving the
  // interval between the two (bucket-wise, clamped at zero).
  void Subtract(const HistogramSnapshot& earlier);

  void Merge(const HistogramSnapshot& other);
};

// Thread-safe histogram of nanosecond values. Buckets grow geometrically
// (~4% relative error), covering 1ns .. ~18s. Record() is a handful of
// relaxed atomic adds — no locks, no allocation — so it is safe on hot paths.
class Histogram {
 public:
  static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t nanos);
  void Merge(const Histogram& other);
  void Reset();

  // Consistent copy for exposition; see HistogramSnapshot.
  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const { return Snapshot().Mean(); }
  uint64_t Percentile(double q) const { return Snapshot().Percentile(q); }
  std::string Summary() const { return Snapshot().Summary(); }

  // Bucket geometry, shared with HistogramSnapshot (exposed for tests).
  static int BucketFor(uint64_t nanos);
  static uint64_t BucketLow(int idx);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// RAII timer recording elapsed wall time into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();

 private:
  Histogram* h_;
  uint64_t start_;
};

}  // namespace couchkv

#endif  // COUCHKV_COMMON_HISTOGRAM_H_
