// The analytics service (paper §6.2 "Medium-term plans"): operational
// analytics over shadow copies of operational data, fed by DCP, "scaled
// either out or up independently with respect to other services, especially
// the data service (to provide performance isolation for the all-important
// front-end OLTP workloads)".
//
// Modeled on the planned AsterixDB-based service: each connected bucket
// gets a shadow dataset maintained from the in-memory change stream. The
// query engine runs the full N1QL dialect WITHOUT the OLTP restrictions —
// full scans need no primary index, and general join conditions
// (`JOIN b ON a.x = b.y`, forbidden in N1QL per §3.2.4) execute as hash
// joins. Analytics queries never touch the data service: reads are served
// entirely from the shadow dataset.
#ifndef COUCHKV_ANALYTICS_ANALYTICS_H_
#define COUCHKV_ANALYTICS_ANALYTICS_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "json/value.h"
#include "n1ql/expr_eval.h"

namespace couchkv::analytics {

struct AnalyticsResult {
  std::vector<json::Value> rows;
  uint64_t elapsed_ns = 0;
  size_t scanned_docs = 0;
};

// A shadow copy of one bucket, kept up to date through DCP.
class ShadowDataset {
 public:
  explicit ShadowDataset(std::string bucket) : bucket_(std::move(bucket)) {}

  const std::string& bucket() const { return bucket_; }

  void ApplyMutation(const kv::Mutation& m);

  // Runs `fn` over every document (id, parsed value). The shard layout
  // bounds lock hold times so ingestion continues during large scans.
  void ForEach(const std::function<void(const std::string&,
                                        const json::Value&)>& fn) const;

  uint64_t processed_seqno(uint16_t vb) const {
    return processed_[vb].load(std::memory_order_acquire);
  }
  size_t num_docs() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable SharedMutex mu{"analytics.dataset"};
    COUCHKV_LOCK_ORDER("dcp.stream_delivery", "analytics.dataset");
    std::map<std::string, json::Value> docs GUARDED_BY(mu);
  };
  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  std::string bucket_;
  std::array<Shard, kShards> shards_;
  std::array<std::atomic<uint64_t>, cluster::kNumVBuckets> processed_{};
};

class AnalyticsService : public cluster::ClusterService,
                         public std::enable_shared_from_this<AnalyticsService> {
 public:
  explicit AnalyticsService(cluster::Cluster* cluster) : cluster_(cluster) {}

  void Attach() { cluster_->RegisterService("analytics", shared_from_this()); }

  // Connects a bucket: creates the shadow dataset and starts ingesting its
  // change stream (initial load backfills via DCP from storage).
  Status ConnectBucket(const std::string& bucket);
  Status DisconnectBucket(const std::string& bucket);

  // Executes a SELECT over shadow datasets. The FROM keyspace names a
  // connected bucket. General joins, full scans, grouping and aggregation
  // are all allowed; DML and DDL are not (analytics is read-only).
  StatusOr<AnalyticsResult> Query(const std::string& text,
                                  const std::vector<json::Value>& params = {});

  // Blocks until the dataset covers every mutation present at call time
  // (test determinism; production analytics is eventually consistent).
  Status WaitCaughtUp(const std::string& bucket, uint64_t timeout_ms = 30000);

  void OnTopologyChange(const std::string& bucket) override;

  const ShadowDataset* dataset(const std::string& bucket) const;

 private:
  void WireDataset(const std::string& bucket,
                   std::shared_ptr<ShadowDataset> ds);
  std::string StreamName(const std::string& bucket) const {
    return "analytics:" + bucket;
  }

  cluster::Cluster* cluster_;
  mutable Mutex mu_{"analytics.service"};
  std::map<std::string, std::shared_ptr<ShadowDataset>> datasets_
      GUARDED_BY(mu_);
};

}  // namespace couchkv::analytics

#endif  // COUCHKV_ANALYTICS_ANALYTICS_H_
