#include "analytics/analytics.h"

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "common/logging.h"
#include "n1ql/exec_util.h"
#include "n1ql/parser.h"
#include "n1ql/planner.h"

namespace couchkv::analytics {

using json::Value;
using n1ql::BoundDoc;
using n1ql::EvalContext;
using n1ql::ExprPtr;
using n1ql::JoinClause;
using n1ql::Row;
using n1ql::SelectStatement;

// ---------------------------------------------------------------------------
// ShadowDataset
// ---------------------------------------------------------------------------

void ShadowDataset::ApplyMutation(const kv::Mutation& m) {
  Shard& shard = ShardFor(m.doc.key);
  {
    WriterLockGuard lock(shard.mu);
    if (m.doc.meta.deleted) {
      shard.docs.erase(m.doc.key);
    } else {
      auto parsed = json::Parse(m.doc.value);
      if (parsed.ok()) {
        shard.docs[m.doc.key] = std::move(parsed).value();
      } else {
        shard.docs.erase(m.doc.key);  // non-JSON values are not analyzable
      }
    }
  }
  processed_[m.vbucket].store(m.doc.meta.seqno, std::memory_order_release);
}

void ShadowDataset::ForEach(
    const std::function<void(const std::string&, const json::Value&)>& fn)
    const {
  for (const Shard& shard : shards_) {
    ReaderLockGuard lock(shard.mu);
    for (const auto& [id, doc] : shard.docs) {
      fn(id, doc);
    }
  }
}

size_t ShadowDataset::num_docs() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    ReaderLockGuard lock(shard.mu);
    n += shard.docs.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// AnalyticsService: dataset lifecycle
// ---------------------------------------------------------------------------

Status AnalyticsService::ConnectBucket(const std::string& bucket) {
  if (cluster_->map(bucket) == nullptr) {
    return Status::NotFound("no such bucket: " + bucket);
  }
  auto ds = std::make_shared<ShadowDataset>(bucket);
  {
    LockGuard lock(mu_);
    if (datasets_.count(bucket)) {
      return Status::KeyExists("bucket already connected: " + bucket);
    }
    datasets_[bucket] = ds;
  }
  WireDataset(bucket, ds);
  return Status::OK();
}

Status AnalyticsService::DisconnectBucket(const std::string& bucket) {
  {
    LockGuard lock(mu_);
    if (datasets_.erase(bucket) == 0) {
      return Status::NotFound("bucket not connected");
    }
  }
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    std::shared_ptr<cluster::Bucket> b = n ? n->bucket(bucket) : nullptr;
    if (b != nullptr) b->producer()->RemoveStreamsNamed(StreamName(bucket));
  }
  return Status::OK();
}

void AnalyticsService::WireDataset(const std::string& bucket,
                                   std::shared_ptr<ShadowDataset> ds) {
  auto map = cluster_->map(bucket);
  if (!map) return;
  const std::string stream = StreamName(bucket);
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n == nullptr || !n->HasService(cluster::kDataService)) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    b->producer()->RemoveStreamsNamed(stream);
    if (!n->healthy()) continue;
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != id) continue;
      std::shared_ptr<ShadowDataset> shadow = ds;
      auto st = b->producer()->AddStream(
          stream, vb, ds->processed_seqno(vb),
          [shadow](const kv::Mutation& m) {
            shadow->ApplyMutation(m);
            return Status::OK();
          });
      if (!st.ok()) {
        LOG_WARN << "analytics stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

void AnalyticsService::OnTopologyChange(const std::string& bucket) {
  std::shared_ptr<ShadowDataset> ds;
  {
    LockGuard lock(mu_);
    auto it = datasets_.find(bucket);
    if (it == datasets_.end()) return;
    ds = it->second;
  }
  WireDataset(bucket, ds);
}

Status AnalyticsService::WaitCaughtUp(const std::string& bucket,
                                      uint64_t timeout_ms) {
  std::shared_ptr<ShadowDataset> ds;
  {
    LockGuard lock(mu_);
    auto it = datasets_.find(bucket);
    if (it == datasets_.end()) return Status::NotFound("not connected");
    ds = it->second;
  }
  auto map = cluster_->map(bucket);
  if (!map) return Status::NotFound("no map");
  uint64_t deadline = cluster_->clock()->NowMillis() + timeout_ms;
  for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
    cluster::Node* n = cluster_->node(map->ActiveFor(vb));
    if (n == nullptr || !n->healthy()) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    uint64_t high = b->vbucket(vb)->high_seqno();
    while (ds->processed_seqno(vb) < high) {
      n->dispatcher()->Notify();
      if (cluster_->clock()->NowMillis() > deadline) {
        return Status::Timeout("analytics ingestion lag");
      }
      std::this_thread::yield();
    }
  }
  return Status::OK();
}

const ShadowDataset* AnalyticsService::dataset(
    const std::string& bucket) const {
  LockGuard lock(mu_);
  auto it = datasets_.find(bucket);
  return it == datasets_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Query execution: the "parallel database inspired" batch engine (§6.2) —
// full scans + hash joins over shadow data, never touching the data service.
// ---------------------------------------------------------------------------

namespace {

// Splits an equality join condition into (left_expr, right_expr) where the
// right side references only `right_alias`. Returns false when the
// condition is not a simple equality (falls back to nested-loop).
bool SplitEquiJoin(const n1ql::Expr& cond, const std::string& right_alias,
                   ExprPtr* left_key, ExprPtr* right_key) {
  if (cond.kind != n1ql::ExprKind::kBinary ||
      cond.binary_op != n1ql::BinaryOp::kEq) {
    return false;
  }
  auto references_only = [&](const n1ql::Expr& e, const std::string& alias,
                             auto&& self) -> bool {
    if (e.kind == n1ql::ExprKind::kPath) {
      return !e.path.empty() && !e.path[0].is_index() &&
             e.path[0].field == alias;
    }
    if (e.kind == n1ql::ExprKind::kMeta) return e.meta_alias == alias;
    for (const ExprPtr& c : e.children) {
      if (c != nullptr && !self(*c, alias, self)) return false;
    }
    return e.kind != n1ql::ExprKind::kLiteral || true;
  };
  const ExprPtr& a = cond.children[0];
  const ExprPtr& b = cond.children[1];
  if (references_only(*b, right_alias, references_only)) {
    *left_key = a;
    *right_key = b;
    return true;
  }
  if (references_only(*a, right_alias, references_only)) {
    *left_key = b;
    *right_key = a;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<AnalyticsResult> AnalyticsService::Query(
    const std::string& text, const std::vector<Value>& params) {
  uint64_t start = Clock::Real()->NowNanos();
  auto stmt_or = n1ql::ParseStatement(text);
  if (!stmt_or.ok()) return stmt_or.status();
  if (stmt_or->kind != n1ql::Statement::Kind::kSelect) {
    return Status::Unsupported("the analytics service is read-only");
  }
  const SelectStatement& stmt = stmt_or->select;
  AnalyticsResult result;

  auto find_dataset =
      [&](const std::string& name) -> StatusOr<std::shared_ptr<ShadowDataset>> {
    LockGuard lock(mu_);
    auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      return Status::NotFound("bucket not connected to analytics: " + name);
    }
    return it->second;
  };

  // Base rows: full scan of the shadow dataset (no index machinery — this
  // engine is built for "richer (and more expensive) queries").
  std::vector<Row> rows;
  std::string default_alias;
  if (stmt.from.has_value()) {
    default_alias = stmt.from->alias;
    auto ds = find_dataset(stmt.from->keyspace);
    if (!ds.ok()) return ds.status();
    if (stmt.from->use_keys != nullptr) {
      EvalContext ctx;
      ctx.params = &params;
      auto keys = Eval(*stmt.from->use_keys, ctx);
      if (!keys.ok()) return keys.status();
      std::set<std::string> wanted;
      if (keys->is_string()) {
        wanted.insert(keys->AsString());
      } else if (keys->is_array()) {
        for (const Value& k : keys->AsArray()) {
          if (k.is_string()) wanted.insert(k.AsString());
        }
      }
      (*ds)->ForEach([&](const std::string& id, const Value& doc) {
        if (!wanted.count(id)) return;
        Row row;
        row.bindings[default_alias] = BoundDoc{doc, id, 0};
        rows.push_back(std::move(row));
      });
    } else {
      (*ds)->ForEach([&](const std::string& id, const Value& doc) {
        Row row;
        row.bindings[default_alias] = BoundDoc{doc, id, 0};
        rows.push_back(std::move(row));
      });
    }
    result.scanned_docs += rows.size();
  } else {
    rows.emplace_back();
  }

  // Joins: hash join for equality conditions, key join for ON KEYS,
  // UNNEST flattening, nested-loop for everything else.
  for (const JoinClause& jc : stmt.joins) {
    std::vector<Row> next;
    if (jc.kind == JoinClause::Kind::kUnnest) {
      for (Row& row : rows) {
        EvalContext ctx;
        ctx.row = &row;
        ctx.default_alias = default_alias;
        ctx.params = &params;
        auto arr = Eval(*jc.unnest_expr, ctx);
        if (!arr.ok()) return arr.status();
        if (!arr->is_array()) continue;
        for (const Value& elem : arr->AsArray()) {
          Row out = row;
          out.bindings[jc.alias] = BoundDoc{elem, "", 0};
          next.push_back(std::move(out));
        }
      }
      rows = std::move(next);
      continue;
    }

    auto right_ds = find_dataset(jc.keyspace);
    if (!right_ds.ok()) return right_ds.status();

    if (jc.on_keys != nullptr) {
      // Key join: identical semantics to the N1QL nested-loop ON KEYS join,
      // resolved against the shadow copy. Build an id map once.
      std::unordered_map<std::string, Value> by_id;
      (*right_ds)->ForEach([&](const std::string& id, const Value& doc) {
        by_id.emplace(id, doc);
      });
      result.scanned_docs += by_id.size();
      for (Row& row : rows) {
        EvalContext ctx;
        ctx.row = &row;
        ctx.default_alias = default_alias;
        ctx.params = &params;
        auto keys = Eval(*jc.on_keys, ctx);
        if (!keys.ok()) return keys.status();
        std::vector<std::string> ids;
        if (keys->is_string()) {
          ids.push_back(keys->AsString());
        } else if (keys->is_array()) {
          for (const Value& k : keys->AsArray()) {
            if (k.is_string()) ids.push_back(k.AsString());
          }
        }
        std::vector<std::pair<std::string, const Value*>> matches;
        for (const std::string& id : ids) {
          auto hit = by_id.find(id);
          if (hit != by_id.end()) matches.emplace_back(id, &hit->second);
        }
        if (jc.kind == JoinClause::Kind::kNest) {
          if (matches.empty() && jc.join_kind == n1ql::JoinKind::kInner) {
            continue;
          }
          Value::Array collected;
          for (auto& [id, doc] : matches) collected.push_back(*doc);
          Row out = std::move(row);
          out.bindings[jc.alias] =
              BoundDoc{Value::MakeArray(std::move(collected)), "", 0};
          next.push_back(std::move(out));
        } else if (matches.empty()) {
          if (jc.join_kind == n1ql::JoinKind::kLeftOuter) {
            next.push_back(std::move(row));
          }
        } else {
          for (auto& [id, doc] : matches) {
            Row out = row;
            out.bindings[jc.alias] = BoundDoc{*doc, id, 0};
            next.push_back(std::move(out));
          }
        }
      }
      rows = std::move(next);
      continue;
    }

    if (jc.on_condition == nullptr) {
      return Status::InvalidArgument("JOIN requires ON KEYS or ON <cond>");
    }
    // General join — the capability N1QL's OLTP engine refuses (§3.2.4).
    ExprPtr left_key, right_key;
    bool equi = SplitEquiJoin(*jc.on_condition, jc.alias, &left_key,
                              &right_key);
    if (equi) {
      // Hash join: build on the right dataset, probe with each left row.
      std::unordered_multimap<std::string, std::pair<std::string, Value>>
          hash_table;
      size_t built = 0;
      Status build_error;
      (*right_ds)->ForEach([&](const std::string& id, const Value& doc) {
        Row probe;
        probe.bindings[jc.alias] = BoundDoc{doc, id, 0};
        EvalContext ctx;
        ctx.row = &probe;
        ctx.default_alias = jc.alias;
        ctx.params = &params;
        auto key = Eval(*right_key, ctx);
        if (!key.ok() || key->is_missing() || key->is_null()) return;
        hash_table.emplace(key->ToJson(), std::make_pair(id, doc));
        ++built;
      });
      result.scanned_docs += built;
      for (Row& row : rows) {
        EvalContext ctx;
        ctx.row = &row;
        ctx.default_alias = default_alias;
        ctx.params = &params;
        auto key = Eval(*left_key, ctx);
        if (!key.ok()) return key.status();
        size_t matched = 0;
        if (!key->is_missing() && !key->is_null()) {
          auto [lo, hi] = hash_table.equal_range(key->ToJson());
          for (auto it = lo; it != hi; ++it) {
            Row out = row;
            out.bindings[jc.alias] =
                BoundDoc{it->second.second, it->second.first, 0};
            next.push_back(std::move(out));
            ++matched;
          }
        }
        if (matched == 0 && jc.join_kind == n1ql::JoinKind::kLeftOuter) {
          next.push_back(std::move(row));
        }
      }
    } else {
      // Nested-loop join with an arbitrary condition.
      std::vector<std::pair<std::string, Value>> right_docs;
      (*right_ds)->ForEach([&](const std::string& id, const Value& doc) {
        right_docs.emplace_back(id, doc);
      });
      result.scanned_docs += right_docs.size();
      for (Row& row : rows) {
        size_t matched = 0;
        for (auto& [id, doc] : right_docs) {
          Row candidate = row;
          candidate.bindings[jc.alias] = BoundDoc{doc, id, 0};
          EvalContext ctx;
          ctx.row = &candidate;
          ctx.default_alias = default_alias;
          ctx.params = &params;
          auto cond = EvalCondition(*jc.on_condition, ctx);
          if (!cond.ok()) return cond.status();
          if (*cond) {
            next.push_back(std::move(candidate));
            ++matched;
          }
        }
        if (matched == 0 && jc.join_kind == n1ql::JoinKind::kLeftOuter) {
          next.push_back(std::move(row));
        }
      }
    }
    rows = std::move(next);
  }

  // Filter.
  if (stmt.where != nullptr) {
    std::vector<Row> kept;
    kept.reserve(rows.size());
    for (Row& row : rows) {
      EvalContext ctx;
      ctx.row = &row;
      ctx.default_alias = default_alias;
      ctx.params = &params;
      auto cond = EvalCondition(*stmt.where, ctx);
      if (!cond.ok()) return cond.status();
      if (*cond) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Group / aggregate / having.
  std::vector<ExprPtr> aggregates;
  n1ql::CollectAggregates(stmt, &aggregates);
  struct OutRow {
    Row row;
    std::map<std::string, Value> agg;
  };
  std::vector<OutRow> out_rows;
  if (!aggregates.empty() || !stmt.group_by.empty()) {
    std::map<std::string, std::vector<Row>> groups;
    std::map<std::string, Row> reps;
    for (Row& row : rows) {
      EvalContext ctx;
      ctx.row = &row;
      ctx.default_alias = default_alias;
      ctx.params = &params;
      std::string key;
      for (const ExprPtr& g : stmt.group_by) {
        auto v = Eval(*g, ctx);
        if (!v.ok()) return v.status();
        key += v->ToJson();
        key += '\x1f';
      }
      groups[key].push_back(row);
      reps.emplace(key, row);
    }
    if (groups.empty() && stmt.group_by.empty()) {
      groups[""] = {};
      reps.emplace("", Row{});
    }
    for (auto& [key, members] : groups) {
      OutRow out;
      out.row = reps.at(key);
      for (const ExprPtr& agg : aggregates) {
        auto v = n1ql::ComputeAggregate(*agg, members, default_alias, params);
        if (!v.ok()) return v.status();
        out.agg[agg->ToString()] = std::move(v).value();
      }
      out_rows.push_back(std::move(out));
    }
    if (stmt.having != nullptr) {
      std::vector<OutRow> kept;
      for (OutRow& out : out_rows) {
        EvalContext ctx;
        ctx.row = &out.row;
        ctx.default_alias = default_alias;
        ctx.params = &params;
        ctx.aggregates = &out.agg;
        auto cond = EvalCondition(*stmt.having, ctx);
        if (!cond.ok()) return cond.status();
        if (*cond) kept.push_back(std::move(out));
      }
      out_rows = std::move(kept);
    }
  } else {
    out_rows.reserve(rows.size());
    for (Row& row : rows) out_rows.push_back(OutRow{std::move(row), {}});
  }

  // Order.
  if (!stmt.order_by.empty()) {
    struct Keyed {
      std::vector<Value> keys;
      size_t index;
    };
    std::vector<Keyed> keyed(out_rows.size());
    for (size_t i = 0; i < out_rows.size(); ++i) {
      keyed[i].index = i;
      EvalContext ctx;
      ctx.row = &out_rows[i].row;
      ctx.default_alias = default_alias;
      ctx.params = &params;
      ctx.aggregates = &out_rows[i].agg;
      for (const n1ql::OrderKey& k : stmt.order_by) {
        auto v = Eval(*n1ql::ResolveOutputAlias(k.expr, stmt.items), ctx);
        if (!v.ok()) return v.status();
        keyed[i].keys.push_back(std::move(v).value());
      }
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int c = Value::Compare(a.keys[k], b.keys[k]);
                         if (c != 0) {
                           return stmt.order_by[k].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    std::vector<OutRow> sorted;
    sorted.reserve(out_rows.size());
    for (const Keyed& k : keyed) sorted.push_back(std::move(out_rows[k.index]));
    out_rows = std::move(sorted);
  }

  // Offset / limit.
  auto offset = n1ql::EvalCountExpr(stmt.offset, params, 0);
  if (!offset.ok()) return offset.status();
  auto limit = n1ql::EvalCountExpr(stmt.limit, params, SIZE_MAX);
  if (!limit.ok()) return limit.status();
  if (*offset > 0) {
    if (*offset >= out_rows.size()) {
      out_rows.clear();
    } else {
      out_rows.erase(out_rows.begin(),
                     out_rows.begin() + static_cast<long>(*offset));
    }
  }
  if (out_rows.size() > *limit) out_rows.resize(*limit);

  // Projection (+ DISTINCT).
  std::set<std::string> seen;
  for (const OutRow& out : out_rows) {
    EvalContext ctx;
    ctx.row = &out.row;
    ctx.default_alias = default_alias;
    ctx.params = &params;
    ctx.aggregates = &out.agg;
    auto projected = n1ql::ProjectSelectItems(stmt.items, ctx);
    if (!projected.ok()) return projected.status();
    if (stmt.distinct && !seen.insert(projected->ToJson()).second) continue;
    result.rows.push_back(std::move(projected).value());
  }
  result.elapsed_ns = Clock::Real()->NowNanos() - start;
  return result;
}

}  // namespace couchkv::analytics
