// Document and metadata types shared by the cache, storage engine, DCP and
// replication layers.
#ifndef COUCHKV_KV_DOC_H_
#define COUCHKV_KV_DOC_H_

#include <cstdint>
#include <string>

namespace couchkv::kv {

// Per-document metadata. This is what the paper calls "some document
// metadata" kept resident in the hash table even when the value is evicted,
// and what XDCR conflict resolution compares (§4.6.1).
struct DocMeta {
  uint64_t cas = 0;      // compare-and-swap token, changes on every mutation
  uint64_t revno = 0;    // revision count ("number of updates"), for XDCR
  uint64_t seqno = 0;    // per-vBucket mutation sequence number
  uint32_t flags = 0;    // opaque application flags (as in memcached)
  uint32_t expiry = 0;   // absolute expiry in seconds; 0 = never
  bool deleted = false;  // tombstone marker
};

// A full document: key, metadata, and the (JSON or binary) value bytes.
struct Document {
  std::string key;
  DocMeta meta;
  std::string value;

  size_t MemoryFootprint() const {
    return sizeof(Document) + key.capacity() + value.capacity();
  }
};

// A mutation event as carried by DCP: a document plus the vBucket it belongs
// to. Deletions travel as documents with meta.deleted = true and empty value.
struct Mutation {
  uint16_t vbucket = 0;
  Document doc;
};

}  // namespace couchkv::kv

#endif  // COUCHKV_KV_DOC_H_
