// The object-managed cache (paper §4.3.3): one HashTable per vBucket holding
// StoredValues. Provides the memcached-level semantics the paper describes —
// optimistic CAS, hard locks with timeout (GETL), TTL expiry, and value
// eviction with keys+metadata kept resident.
#ifndef COUCHKV_KV_HASH_TABLE_H_
#define COUCHKV_KV_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "kv/doc.h"
#include "stats/registry.h"

namespace couchkv::kv {

// Eviction policy for a bucket (paper §4.3.3 "Object Managed Cache").
enum class EvictionPolicy {
  kValueOnly,  // evict values; keys + metadata stay resident (default)
  kFull,       // evict keys and metadata too
};

// A resident entry in the cache.
struct StoredValue {
  DocMeta meta;
  std::string value;
  bool resident = true;   // false once the value has been evicted
  bool dirty = true;      // true until persisted by the flusher
  bool referenced = true; // NRU bit, set on access, cleared by the evictor
  uint64_t locked_until_ns = 0;  // GETL hard-lock deadline (0 = unlocked)
};

// Result of a cache lookup.
struct GetResult {
  Document doc;
  bool resident = true;  // false means value must be fetched from storage
};

// The cache-event counters a HashTable reports into. All tables in a bucket
// share the bucket's counters (one set per bucket scope); standalone tables
// resolve a private unregistered scope so the accounting code is identical.
struct CacheCounters {
  stats::Counter* hits = nullptr;
  stats::Counter* misses = nullptr;  // not-found, expired, or value evicted
  stats::Counter* evictions = nullptr;
  stats::Counter* expirations = nullptr;
  stats::Counter* cas_mismatches = nullptr;
  stats::Counter* lock_conflicts = nullptr;  // mutations rejected with Locked
  stats::Counter* lock_timeouts = nullptr;   // GETL locks that expired unused

  // Resolves the "kv.*" counters in `scope`.
  static CacheCounters In(stats::Scope* scope);
};

// Statistics exposed for monitoring and tests — a thin view assembled from
// the registry counters plus a walk of the table (single source of truth;
// the monitoring path and this accessor can never disagree).
struct HashTableStats {
  uint64_t num_items = 0;
  uint64_t num_non_resident = 0;
  uint64_t num_tombstones = 0;
  uint64_t mem_used = 0;
  uint64_t num_hits = 0;
  uint64_t num_misses = 0;
  uint64_t num_evictions = 0;
  uint64_t num_expired = 0;
  uint64_t num_cas_mismatch = 0;
  uint64_t num_lock_conflicts = 0;
  uint64_t num_lock_timeouts = 0;
};

// Thread-safe per-vBucket hash table.
//
// Sequence numbers: the table owns the vBucket's monotonically increasing
// seqno (paper §4.2: "When a document is written, a sequence number is
// generated ... The maximum sequence number per vBucket is also tracked").
class HashTable {
 public:
  // `counters`, when given, must outlive the table (the bucket's scope keeps
  // them alive). Without it the table resolves counters in a private,
  // unregistered scope — standalone tables (tests) need no registry setup.
  explicit HashTable(Clock* clock = Clock::Real(),
                     EvictionPolicy policy = EvictionPolicy::kValueOnly,
                     const CacheCounters* counters = nullptr);

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  // --- Front-end operations (memcached-style semantics) ---

  // Fetches a document. NotFound for absent/expired/tombstoned keys. If the
  // value has been evicted, result.resident is false and doc.value is empty;
  // the caller (VBucket) re-reads from storage.
  StatusOr<GetResult> Get(std::string_view key) EXCLUDES(mu_);

  // Unconditional upsert. cas==0 creates-or-replaces; cas!=0 requires match
  // (KeyExists on mismatch — the paper's optimistic-locking path, §3.1.1).
  // Returns the new metadata.
  StatusOr<DocMeta> Set(std::string_view key, std::string_view value,
                        uint32_t flags, uint32_t expiry, uint64_t cas)
      EXCLUDES(mu_);

  // Insert-only; KeyExists if the key is live.
  StatusOr<DocMeta> Add(std::string_view key, std::string_view value,
                        uint32_t flags, uint32_t expiry) EXCLUDES(mu_);

  // Replace-only; NotFound if the key is absent.
  StatusOr<DocMeta> Replace(std::string_view key, std::string_view value,
                            uint32_t flags, uint32_t expiry, uint64_t cas)
      EXCLUDES(mu_);

  // Deletes (writes a tombstone so the deletion flows through DCP).
  StatusOr<DocMeta> Remove(std::string_view key, uint64_t cas) EXCLUDES(mu_);

  // GETL: fetch and hard-lock for `lock_ms` (auto-released on timeout to
  // avoid deadlocks, §3.1.1). While locked, mutations without the lock CAS
  // fail with Locked.
  StatusOr<GetResult> GetAndLock(std::string_view key, uint64_t lock_ms)
      EXCLUDES(mu_);

  // Releases a GETL lock; requires the CAS returned by GetAndLock.
  Status Unlock(std::string_view key, uint64_t cas) EXCLUDES(mu_);

  // Updates expiry only.
  StatusOr<DocMeta> Touch(std::string_view key, uint32_t expiry) EXCLUDES(mu_);

  // --- Back-end operations ---

  // Loads a document from storage (warmup or non-resident read-through).
  // Never bumps seqno; keeps the entry clean.
  void Restore(const Document& doc) EXCLUDES(mu_);

  // Marks a key clean after the flusher persisted seqno `seqno`. No-op if
  // the entry was mutated again in the meantime.
  void MarkClean(std::string_view key, uint64_t seqno) EXCLUDES(mu_);

  // Applies a replicated/DCP mutation as-is (no new seqno generated); used
  // by replica vBuckets.
  void ApplyRemote(const Document& doc) EXCLUDES(mu_);

  // XDCR target apply with conflict resolution (paper §4.6.1): the incoming
  // document wins if it has more updates (higher revno), with the CAS as
  // the metadata tiebreaker. On a win the value and conflict metadata are
  // taken from the remote doc but a NEW local seqno is assigned. Returns
  // the new meta, or KeyExists when the local document wins.
  StatusOr<DocMeta> SetWithMeta(const Document& doc) EXCLUDES(mu_);

  // Evicts clean resident values until mem_used <= target_bytes or nothing
  // more can be evicted. Returns bytes reclaimed.
  uint64_t EvictTo(uint64_t target_bytes) EXCLUDES(mu_);

  // Removes expired entries and (policy permitting) tombstones older than
  // `purge_before_seqno`. Returns number purged.
  uint64_t Purge(uint64_t purge_before_seqno) EXCLUDES(mu_);

  // Iterates over all live (non-deleted, non-expired) documents. Values of
  // non-resident entries are delivered empty; `resident` tells the caller.
  void ForEach(const std::function<void(const Document&, bool resident)>& fn)
      const EXCLUDES(mu_);

  // --- Introspection ---
  HashTableStats stats() const EXCLUDES(mu_);
  uint64_t high_seqno() const { return high_seqno_.load(); }
  uint64_t mem_used() const { return mem_used_.load(); }

  // Highest seqno persisted so far (set via MarkClean); used by durability
  // waits (persist_to) and by the storage snapshot logic.
  uint64_t persisted_seqno() const { return persisted_seqno_.load(); }

 private:
  struct LockedEntry;
  using Map = std::unordered_map<std::string, StoredValue>;

  uint64_t NextCas();
  uint64_t NextSeqno() { return high_seqno_.fetch_add(1) + 1; }
  // The entry helpers receive references into map_, so they require mu_ even
  // though they never touch the map directly.
  bool IsExpired(const StoredValue& sv) const REQUIRES(mu_);
  bool IsLockedNow(const StoredValue& sv) const REQUIRES(mu_);
  void AccountAdd(const std::string& key, const StoredValue& sv)
      REQUIRES(mu_);
  void AccountRemove(const std::string& key, const StoredValue& sv)
      REQUIRES(mu_);
  static size_t EntryFootprint(const std::string& key, const StoredValue& sv);

  // Looks up `key` and returns map_.end() for absent, tombstoned, or
  // expired entries — the shared preamble of Get/GetAndLock/Touch.
  Map::iterator FindLive(std::string_view key) REQUIRES(mu_);

  // Fills a GetResult from a live entry and marks it referenced.
  GetResult MakeGetResult(Map::iterator it) REQUIRES(mu_);

  // Core mutation path shared by Set/Add/Replace/Remove.
  StatusOr<DocMeta> Mutate(std::string_view key, std::string_view value,
                           uint32_t flags, uint32_t expiry, uint64_t cas,
                           bool require_absent, bool require_present,
                           bool deletion) EXCLUDES(mu_);

  Clock* clock_;
  EvictionPolicy policy_;

  // Private scope backing a standalone table's counters; null when the
  // counters are shared (bucket-owned).
  std::shared_ptr<stats::Scope> own_scope_;
  CacheCounters c_;

  mutable Mutex mu_{"kv.hash_table", lockdep::kHotPath};
  COUCHKV_LOCK_ORDER("cluster.vbucket.op", "kv.hash_table");
  Map map_ GUARDED_BY(mu_);

  std::atomic<uint64_t> high_seqno_{0};
  std::atomic<uint64_t> persisted_seqno_{0};
  std::atomic<uint64_t> cas_counter_{0};
  std::atomic<uint64_t> mem_used_{0};
};

}  // namespace couchkv::kv

#endif  // COUCHKV_KV_HASH_TABLE_H_
