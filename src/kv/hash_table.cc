#include "kv/hash_table.h"

namespace couchkv::kv {

CacheCounters CacheCounters::In(stats::Scope* scope) {
  CacheCounters c;
  c.hits = scope->GetCounter("kv.hits");
  c.misses = scope->GetCounter("kv.misses");
  c.evictions = scope->GetCounter("kv.evictions");
  c.expirations = scope->GetCounter("kv.expirations");
  c.cas_mismatches = scope->GetCounter("kv.cas_mismatches");
  c.lock_conflicts = scope->GetCounter("kv.lock_conflicts");
  c.lock_timeouts = scope->GetCounter("kv.lock_timeouts");
  return c;
}

HashTable::HashTable(Clock* clock, EvictionPolicy policy,
                     const CacheCounters* counters)
    : clock_(clock), policy_(policy) {
  if (counters != nullptr) {
    c_ = *counters;
  } else {
    own_scope_ = std::make_shared<stats::Scope>("");
    c_ = CacheCounters::In(own_scope_.get());
  }
}

uint64_t HashTable::NextCas() {
  // CAS tokens must be unique and monotonically increasing per node; a
  // counter is sufficient (real Couchbase uses an HLC, which this mimics).
  return cas_counter_.fetch_add(1) + 1;
}

bool HashTable::IsExpired(const StoredValue& sv) const {
  return sv.meta.expiry != 0 && clock_->NowSeconds() >= sv.meta.expiry;
}

bool HashTable::IsLockedNow(const StoredValue& sv) const {
  return sv.locked_until_ns != 0 && clock_->NowNanos() < sv.locked_until_ns;
}

size_t HashTable::EntryFootprint(const std::string& key,
                                 const StoredValue& sv) {
  return key.capacity() + sv.value.capacity() + sizeof(StoredValue) + 64;
}

void HashTable::AccountAdd(const std::string& key, const StoredValue& sv) {
  mem_used_.fetch_add(EntryFootprint(key, sv));
}

void HashTable::AccountRemove(const std::string& key, const StoredValue& sv) {
  mem_used_.fetch_sub(EntryFootprint(key, sv));
}

HashTable::Map::iterator HashTable::FindLive(std::string_view key) {
  auto it = map_.find(std::string(key));
  if (it == map_.end() || it->second.meta.deleted || IsExpired(it->second)) {
    return map_.end();
  }
  return it;
}

GetResult HashTable::MakeGetResult(Map::iterator it) {
  StoredValue& sv = it->second;
  sv.referenced = true;
  GetResult r;
  r.doc.key = it->first;
  r.doc.meta = sv.meta;
  r.doc.value = sv.value;
  r.resident = sv.resident;
  return r;
}

StatusOr<GetResult> HashTable::Get(std::string_view key) {
  LockGuard lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) {
    c_.misses->Add();
    return Status::NotFound();
  }
  StoredValue& sv = it->second;
  if (sv.meta.deleted) {
    c_.misses->Add();
    return Status::NotFound();
  }
  if (IsExpired(sv)) {
    c_.expirations->Add();
    c_.misses->Add();
    return Status::NotFound();
  }
  // A non-resident entry is a cache miss in the paper's sense: metadata is
  // here but the value must be read back from disk.
  (sv.resident ? c_.hits : c_.misses)->Add();
  return MakeGetResult(it);
}

StatusOr<DocMeta> HashTable::Mutate(std::string_view key,
                                    std::string_view value, uint32_t flags,
                                    uint32_t expiry, uint64_t cas,
                                    bool require_absent, bool require_present,
                                    bool deletion) {
  LockGuard lock(mu_);
  std::string k(key);
  auto it = map_.find(k);
  bool live = it != map_.end() && !it->second.meta.deleted &&
              !IsExpired(it->second);

  if (require_absent && live) return Status::KeyExists("key already exists");
  if (require_present && !live) return Status::NotFound();
  if (deletion && !live) return Status::NotFound();

  if (live) {
    StoredValue& sv = it->second;
    if (IsLockedNow(sv)) {
      // A locked document can only be mutated by presenting the lock CAS.
      if (cas != sv.meta.cas) {
        c_.lock_conflicts->Add();
        return Status::Locked();
      }
    } else {
      if (sv.locked_until_ns != 0) {
        // The GETL lock expired before the holder came back (§3.1.1's
        // auto-release); this mutation proceeds past it.
        c_.lock_timeouts->Add();
      }
      if (cas != 0 && cas != sv.meta.cas) {
        c_.cas_mismatches->Add();
        return Status::KeyExists("CAS mismatch");
      }
    }
  } else if (cas != 0) {
    // CAS given for a non-existent document.
    return Status::NotFound();
  }

  DocMeta meta;
  if (it != map_.end()) meta = it->second.meta;
  meta.cas = NextCas();
  meta.revno += 1;
  meta.seqno = NextSeqno();
  meta.flags = flags;
  meta.expiry = expiry;
  meta.deleted = deletion;

  StoredValue sv;
  sv.meta = meta;
  sv.value = deletion ? std::string() : std::string(value);
  sv.resident = true;
  sv.dirty = true;
  sv.referenced = true;
  sv.locked_until_ns = 0;  // mutation releases any lock

  if (it != map_.end()) {
    AccountRemove(it->first, it->second);
    it->second = std::move(sv);
    AccountAdd(it->first, it->second);
  } else {
    auto [pos, inserted] = map_.emplace(std::move(k), std::move(sv));
    (void)inserted;
    AccountAdd(pos->first, pos->second);
  }
  return meta;
}

StatusOr<DocMeta> HashTable::Set(std::string_view key, std::string_view value,
                                 uint32_t flags, uint32_t expiry,
                                 uint64_t cas) {
  return Mutate(key, value, flags, expiry, cas, /*require_absent=*/false,
                /*require_present=*/false, /*deletion=*/false);
}

StatusOr<DocMeta> HashTable::Add(std::string_view key, std::string_view value,
                                 uint32_t flags, uint32_t expiry) {
  return Mutate(key, value, flags, expiry, /*cas=*/0, /*require_absent=*/true,
                /*require_present=*/false, /*deletion=*/false);
}

StatusOr<DocMeta> HashTable::Replace(std::string_view key,
                                     std::string_view value, uint32_t flags,
                                     uint32_t expiry, uint64_t cas) {
  return Mutate(key, value, flags, expiry, cas, /*require_absent=*/false,
                /*require_present=*/true, /*deletion=*/false);
}

StatusOr<DocMeta> HashTable::Remove(std::string_view key, uint64_t cas) {
  return Mutate(key, {}, 0, 0, cas, /*require_absent=*/false,
                /*require_present=*/false, /*deletion=*/true);
}

StatusOr<GetResult> HashTable::GetAndLock(std::string_view key,
                                          uint64_t lock_ms) {
  LockGuard lock(mu_);
  auto it = FindLive(key);
  if (it == map_.end()) return Status::NotFound();
  StoredValue& sv = it->second;
  if (IsLockedNow(sv)) {
    c_.lock_conflicts->Add();
    return Status::Locked();
  }
  // Locking changes the CAS so that pre-lock CAS holders cannot mutate.
  sv.meta.cas = NextCas();
  sv.locked_until_ns = clock_->NowNanos() + lock_ms * 1000000ULL;
  return MakeGetResult(it);
}

Status HashTable::Unlock(std::string_view key, uint64_t cas) {
  LockGuard lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end() || it->second.meta.deleted) return Status::NotFound();
  StoredValue& sv = it->second;
  if (!IsLockedNow(sv)) return Status::TempFail("not locked");
  if (cas != sv.meta.cas) return Status::Locked("wrong unlock CAS");
  sv.locked_until_ns = 0;
  return Status::OK();
}

StatusOr<DocMeta> HashTable::Touch(std::string_view key, uint32_t expiry) {
  LockGuard lock(mu_);
  auto it = FindLive(key);
  if (it == map_.end()) return Status::NotFound();
  StoredValue& sv = it->second;
  if (IsLockedNow(sv)) {
    c_.lock_conflicts->Add();
    return Status::Locked();
  }
  sv.meta.expiry = expiry;
  sv.meta.cas = NextCas();
  sv.dirty = true;
  return sv.meta;
}

void HashTable::Restore(const Document& doc) {
  LockGuard lock(mu_);
  auto it = map_.find(doc.key);
  if (it != map_.end()) {
    StoredValue& sv = it->second;
    // Only fill in a non-resident value; never clobber a newer mutation.
    if (!sv.resident && sv.meta.seqno == doc.meta.seqno) {
      AccountRemove(it->first, sv);
      sv.value = doc.value;
      sv.resident = true;
      AccountAdd(it->first, sv);
    }
    return;
  }
  StoredValue sv;
  sv.meta = doc.meta;
  sv.value = doc.value;
  sv.resident = true;
  sv.dirty = false;
  auto [pos, inserted] = map_.emplace(doc.key, std::move(sv));
  (void)inserted;
  AccountAdd(pos->first, pos->second);
  // Warmup must also restore the seqno high-water marks.
  uint64_t seqno = doc.meta.seqno;
  uint64_t cur = high_seqno_.load();
  while (seqno > cur && !high_seqno_.compare_exchange_weak(cur, seqno)) {
  }
  uint64_t pers = persisted_seqno_.load();
  while (seqno > pers && !persisted_seqno_.compare_exchange_weak(pers, seqno)) {
  }
}

void HashTable::MarkClean(std::string_view key, uint64_t seqno) {
  LockGuard lock(mu_);
  auto it = map_.find(std::string(key));
  if (it != map_.end() && it->second.meta.seqno == seqno) {
    it->second.dirty = false;
  }
  uint64_t cur = persisted_seqno_.load();
  while (seqno > cur && !persisted_seqno_.compare_exchange_weak(cur, seqno)) {
  }
}

StatusOr<DocMeta> HashTable::SetWithMeta(const Document& doc) {
  LockGuard lock(mu_);
  auto it = map_.find(doc.key);
  if (it != map_.end()) {
    const DocMeta& local = it->second.meta;
    // "the document with the most updates is considered the winner. If both
    // clusters have the same number of updates ... additional metadata
    // fields are used to pick the winner" (§4.6.1).
    bool remote_wins = doc.meta.revno > local.revno ||
                       (doc.meta.revno == local.revno &&
                        doc.meta.cas > local.cas);
    if (!remote_wins) {
      return Status::KeyExists("local document wins conflict resolution");
    }
  }
  StoredValue sv;
  sv.meta = doc.meta;
  sv.meta.seqno = NextSeqno();  // new local seqno; conflict meta preserved
  sv.value = doc.value;
  sv.dirty = true;
  if (it != map_.end()) {
    AccountRemove(it->first, it->second);
    it->second = std::move(sv);
    AccountAdd(it->first, it->second);
    return it->second.meta;
  }
  auto [pos, inserted] = map_.emplace(doc.key, std::move(sv));
  (void)inserted;
  AccountAdd(pos->first, pos->second);
  return pos->second.meta;
}

void HashTable::ApplyRemote(const Document& doc) {
  LockGuard lock(mu_);
  auto it = map_.find(doc.key);
  if (it != map_.end()) {
    AccountRemove(it->first, it->second);
    StoredValue& sv = it->second;
    sv.meta = doc.meta;
    sv.value = doc.value;
    sv.resident = true;
    sv.dirty = true;
    sv.locked_until_ns = 0;
    AccountAdd(it->first, sv);
  } else {
    StoredValue sv;
    sv.meta = doc.meta;
    sv.value = doc.value;
    sv.dirty = true;
    auto [pos, inserted] = map_.emplace(doc.key, std::move(sv));
    (void)inserted;
    AccountAdd(pos->first, pos->second);
  }
  uint64_t seqno = doc.meta.seqno;
  uint64_t cur = high_seqno_.load();
  while (seqno > cur && !high_seqno_.compare_exchange_weak(cur, seqno)) {
  }
}

uint64_t HashTable::EvictTo(uint64_t target_bytes) {
  LockGuard lock(mu_);
  uint64_t reclaimed = 0;
  // Two NRU passes: first evict unreferenced clean values, then clear
  // reference bits so a subsequent pass can make progress.
  for (int pass = 0; pass < 2 && mem_used_.load() > target_bytes; ++pass) {
    for (auto it = map_.begin();
         it != map_.end() && mem_used_.load() > target_bytes;) {
      StoredValue& sv = it->second;
      bool evictable = sv.resident && !sv.dirty && !sv.meta.deleted &&
                       !IsLockedNow(sv) && !sv.value.empty();
      if (evictable && (!sv.referenced || pass == 1)) {
        size_t before = EntryFootprint(it->first, sv);
        if (policy_ == EvictionPolicy::kFull) {
          mem_used_.fetch_sub(before);
          reclaimed += before;
          it = map_.erase(it);
          c_.evictions->Add();
          continue;
        }
        sv.value.clear();
        sv.value.shrink_to_fit();
        sv.resident = false;
        size_t after = EntryFootprint(it->first, sv);
        mem_used_.fetch_sub(before - after);
        reclaimed += before - after;
        c_.evictions->Add();
      } else {
        sv.referenced = false;
      }
      ++it;
    }
  }
  return reclaimed;
}

uint64_t HashTable::Purge(uint64_t purge_before_seqno) {
  LockGuard lock(mu_);
  uint64_t purged = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    StoredValue& sv = it->second;
    bool is_dead_tombstone = sv.meta.deleted && !sv.dirty &&
                             sv.meta.seqno < purge_before_seqno;
    bool expired = IsExpired(sv) && !sv.dirty;
    if (is_dead_tombstone || expired) {
      AccountRemove(it->first, sv);
      it = map_.erase(it);
      ++purged;
      if (expired) c_.expirations->Add();
    } else {
      ++it;
    }
  }
  return purged;
}

void HashTable::ForEach(
    const std::function<void(const Document&, bool resident)>& fn) const {
  LockGuard lock(mu_);
  for (const auto& [key, sv] : map_) {
    if (sv.meta.deleted || IsExpired(sv)) continue;
    Document doc;
    doc.key = key;
    doc.meta = sv.meta;
    doc.value = sv.value;
    fn(doc, sv.resident);
  }
}

HashTableStats HashTable::stats() const {
  LockGuard lock(mu_);
  HashTableStats s;
  for (const auto& [key, sv] : map_) {
    (void)key;
    if (sv.meta.deleted) {
      ++s.num_tombstones;
      continue;
    }
    ++s.num_items;
    if (!sv.resident) ++s.num_non_resident;
  }
  s.mem_used = mem_used_.load();
  s.num_hits = c_.hits->Value();
  s.num_misses = c_.misses->Value();
  s.num_evictions = c_.evictions->Value();
  s.num_expired = c_.expirations->Value();
  s.num_cas_mismatch = c_.cas_mismatches->Value();
  s.num_lock_conflicts = c_.lock_conflicts->Value();
  s.num_lock_timeouts = c_.lock_timeouts->Value();
  return s;
}

}  // namespace couchkv::kv
