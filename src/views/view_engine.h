// The distributed view engine (paper Figure 8): local indexes co-located
// with the data on every node, fed by DCP, queried with scatter/gather and
// per-query staleness control (stale=false / ok / update_after).
#ifndef COUCHKV_VIEWS_VIEW_ENGINE_H_
#define COUCHKV_VIEWS_VIEW_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "stats/registry.h"
#include "views/view_index.h"

namespace couchkv::views {

// The `stale` parameter of a view query (paper §3.1.2).
enum class Staleness {
  kOk,           // serve whatever is indexed right now
  kUpdateAfter,  // serve current entries, then trigger an index update
  kFalse,        // wait for the indexer to catch up to now, then serve
};

struct ViewResult {
  // For map-only (or reduce=false) queries: the matching rows.
  // For reduced queries: one row per group (key = group key, value =
  // aggregate); ungrouped reduces produce a single row with null key.
  std::vector<ViewRow> rows;
};

class ViewEngine : public cluster::ClusterService,
                   public std::enable_shared_from_this<ViewEngine> {
 public:
  explicit ViewEngine(cluster::Cluster* cluster) : cluster_(cluster) {
    stats_scope_ = stats::Registry::Global().GetScope("views");
    queries_ = stats_scope_->GetCounter("queries");
    query_ns_ = stats_scope_->GetHistogram("query_ns");
  }

  // Registers this engine with the cluster (topology notifications). Call
  // once after construction.
  void Attach() { cluster_->RegisterService("views", shared_from_this()); }

  // Defines a view on `bucket`; materialization begins immediately on every
  // data node via DCP (initial build backfills from storage).
  Status CreateView(const std::string& bucket, ViewDefinition def);
  Status DropView(const std::string& bucket, const std::string& view);

  // Scatter/gather query across all nodes (paper: "Queries are sent to a
  // randomly selected server ... sends the request to the other relevant
  // servers ... and then aggregates their results").
  StatusOr<ViewResult> Query(const std::string& bucket,
                             const std::string& view,
                             const ViewQueryOptions& opts,
                             Staleness stale = Staleness::kUpdateAfter);

  // ClusterService: re-register DCP streams after rebalance/failover.
  void OnTopologyChange(const std::string& bucket) override;

  // Total rows across a view's per-node indexes (introspection).
  size_t TotalRows(const std::string& bucket, const std::string& view) const;

 private:
  struct ViewState {
    ViewDefinition def;
    // One local index per data node.
    std::map<cluster::NodeId, std::shared_ptr<ViewIndex>> indexes;
  };

  // (Re)wires the DCP streams + active-vBucket sets for one view according
  // to the current cluster map.
  void WireView(const std::string& bucket, ViewState* state) EXCLUDES(mu_);

  // Blocks until every index covers the data high-seqnos captured at entry.
  Status WaitForIndexer(const std::string& bucket, ViewState* state,
                        uint64_t timeout_ms);

  std::string StreamName(const std::string& bucket,
                         const std::string& view) const {
    return "view:" + bucket + ":" + view;
  }

  cluster::Cluster* cluster_;

  // Scope "views": scatter/gather query volume and latency.
  std::shared_ptr<stats::Scope> stats_scope_;
  stats::Counter* queries_ = nullptr;
  Histogram* query_ns_ = nullptr;

  mutable Mutex mu_{"views.engine"};
  COUCHKV_LOCK_ORDER("views.engine", "dcp.stream_delivery");
  COUCHKV_LOCK_ORDER("dcp.stream_delivery", "views.index");
  // bucket -> view name -> state
  std::map<std::string, std::map<std::string, ViewState>> views_
      GUARDED_BY(mu_);
};

}  // namespace couchkv::views

#endif  // COUCHKV_VIEWS_VIEW_ENGINE_H_
