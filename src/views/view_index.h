// The per-node local view index (paper §3.3.1, §4.3.3 "View Engine"). Rows
// are kept ordered by (emitted key, doc id) under the N1QL collation, so key
// and range lookups are tree walks. Each row remembers its vBucket so parts
// of the index can be deactivated during rebalance/failover, exactly as the
// paper describes storing vBucket information in the view B-tree.
#ifndef COUCHKV_VIEWS_VIEW_INDEX_H_
#define COUCHKV_VIEWS_VIEW_INDEX_H_

#include <array>
#include <atomic>
#include <bitset>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/types.h"
#include "common/synchronization.h"
#include "kv/doc.h"
#include "views/view.h"

namespace couchkv::views {

// Query parameters for one view lookup (paper §3.1.2).
struct ViewQueryOptions {
  std::optional<json::Value> key;            // exact-match key
  std::vector<json::Value> keys;             // multi-key lookup
  std::optional<json::Value> start_key;      // range [start, end]
  std::optional<json::Value> end_key;
  bool inclusive_end = true;
  bool descending = false;
  size_t limit = SIZE_MAX;
  size_t skip = 0;
  bool reduce = true;   // apply the view's reduce fn (if it has one)
  bool group = false;   // group rows by key before reducing
};

class ViewIndex {
 public:
  explicit ViewIndex(ViewDefinition def) : def_(std::move(def)) {}

  const ViewDefinition& definition() const { return def_; }

  // Applies a DCP mutation: removes the doc's previous row (if any), runs
  // the map function, inserts the new row.
  void ApplyMutation(const kv::Mutation& m);

  // Activates / deactivates a vBucket's rows (rebalance support). Inactive
  // rows stay in the tree but are invisible to queries.
  void SetVBucketActive(uint16_t vb, bool active);
  bool IsVBucketActive(uint16_t vb) const;

  // Highest seqno processed per vBucket — drives stale=false waits.
  uint64_t processed_seqno(uint16_t vb) const {
    return processed_[vb].load(std::memory_order_acquire);
  }

  // Scans matching rows (active vBuckets only) in collation order.
  std::vector<ViewRow> Scan(const ViewQueryOptions& opts) const;

  size_t row_count() const;

 private:
  struct RowKey {
    json::Value key;
    std::string doc_id;
    bool operator<(const RowKey& other) const {
      int c = json::Value::Compare(key, other.key);
      if (c != 0) return c < 0;
      return doc_id < other.doc_id;
    }
  };
  struct RowValue {
    json::Value value;
    uint16_t vbucket;
  };

  void CollectRange(const json::Value* lo, const json::Value* hi,
                    bool inclusive_end, std::vector<ViewRow>* out) const
      REQUIRES_SHARED(mu_);

  ViewDefinition def_;
  mutable SharedMutex mu_{"views.index"};
  std::map<RowKey, RowValue> rows_ GUARDED_BY(mu_);
  // doc_id -> currently indexed key (to remove stale entries on update).
  std::unordered_map<std::string, json::Value> doc_keys_ GUARDED_BY(mu_);
  std::bitset<cluster::kNumVBuckets> active_vbs_ GUARDED_BY(mu_);
  std::array<std::atomic<uint64_t>, cluster::kNumVBuckets> processed_{};
};

}  // namespace couchkv::views

#endif  // COUCHKV_VIEWS_VIEW_INDEX_H_
