#include "views/view_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "stats/trace.h"

namespace couchkv::views {

Status ViewEngine::CreateView(const std::string& bucket, ViewDefinition def) {
  auto map = cluster_->map(bucket);
  if (!map) return Status::NotFound("no such bucket: " + bucket);
  ViewState* state = nullptr;
  {
    LockGuard lock(mu_);
    auto& per_bucket = views_[bucket];
    if (per_bucket.count(def.name)) {
      return Status::KeyExists("view exists: " + def.name);
    }
    ViewState st;
    st.def = def;
    for (cluster::NodeId id : cluster_->node_ids()) {
      cluster::Node* n = cluster_->node(id);
      if (n != nullptr && n->HasService(cluster::kDataService)) {
        st.indexes[id] = std::make_shared<ViewIndex>(def);
      }
    }
    state = &(per_bucket[def.name] = std::move(st));
  }
  WireView(bucket, state);
  return Status::OK();
}

Status ViewEngine::DropView(const std::string& bucket,
                            const std::string& view) {
  LockGuard lock(mu_);
  auto bit = views_.find(bucket);
  if (bit == views_.end() || !bit->second.count(view)) {
    return Status::NotFound("no such view");
  }
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    std::shared_ptr<cluster::Bucket> b = n ? n->bucket(bucket) : nullptr;
    if (b != nullptr) {
      b->producer()->RemoveStreamsNamed(StreamName(bucket, view));
    }
  }
  bit->second.erase(view);
  return Status::OK();
}

void ViewEngine::WireView(const std::string& bucket, ViewState* state) {
  auto map = cluster_->map(bucket);
  if (!map) return;
  // Nodes added after the view was defined (rebalance-in) need their own
  // local index: views are co-located with the data (paper §3.3.1).
  std::map<cluster::NodeId, std::shared_ptr<ViewIndex>> indexes;
  {
    LockGuard lock(mu_);
    for (cluster::NodeId id : cluster_->node_ids()) {
      cluster::Node* n = cluster_->node(id);
      if (n != nullptr && n->HasService(cluster::kDataService) &&
          !state->indexes.count(id)) {
        state->indexes[id] = std::make_shared<ViewIndex>(state->def);
      }
    }
    indexes = state->indexes;
  }
  const std::string stream = StreamName(bucket, state->def.name);
  for (auto& [node_id, index] : indexes) {
    cluster::Node* n = cluster_->node(node_id);
    if (n == nullptr) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    // Tear down and re-add streams for the vBuckets this node now owns.
    b->producer()->RemoveStreamsNamed(stream);
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      bool owns = map->ActiveFor(vb) == node_id && n->healthy();
      index->SetVBucketActive(vb, owns);
      if (!owns) continue;
      std::shared_ptr<ViewIndex> idx = index;
      auto st = b->producer()->AddStream(
          stream, vb, index->processed_seqno(vb),
          [idx](const kv::Mutation& m) {
            // Views are maintained node-locally (no network hop).
            idx->ApplyMutation(m);
            return Status::OK();
          });
      if (!st.ok()) {
        LOG_WARN << "view stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

void ViewEngine::OnTopologyChange(const std::string& bucket) {
  std::vector<ViewState*> states;
  {
    LockGuard lock(mu_);
    auto bit = views_.find(bucket);
    if (bit == views_.end()) return;
    for (auto& [name, st] : bit->second) states.push_back(&st);
  }
  for (ViewState* st : states) WireView(bucket, st);
}

Status ViewEngine::WaitForIndexer(const std::string& bucket, ViewState* state,
                                  uint64_t timeout_ms) {
  // Snapshot "now": the high seqno of each active vBucket per node.
  auto map = cluster_->map(bucket);
  if (!map) return Status::NotFound("no map");
  struct Target {
    std::shared_ptr<ViewIndex> index;
    uint16_t vb;
    uint64_t seqno;
    cluster::Node* node;
  };
  std::map<cluster::NodeId, std::shared_ptr<ViewIndex>> indexes;
  {
    LockGuard lock(mu_);
    indexes = state->indexes;
  }
  std::vector<Target> targets;
  for (auto& [node_id, index] : indexes) {
    cluster::Node* n = cluster_->node(node_id);
    if (n == nullptr || !n->healthy()) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != node_id) continue;
      uint64_t high = b->vbucket(vb)->high_seqno();
      if (high > index->processed_seqno(vb)) {
        targets.push_back({index, vb, high, n});
      }
    }
  }
  uint64_t deadline = cluster_->clock()->NowMillis() + timeout_ms;
  for (const Target& t : targets) {
    while (t.index->processed_seqno(t.vb) < t.seqno) {
      t.node->dispatcher()->Notify();
      if (cluster_->clock()->NowMillis() > deadline) {
        return Status::Timeout("stale=false wait exceeded timeout");
      }
      std::this_thread::yield();
    }
  }
  return Status::OK();
}

StatusOr<ViewResult> ViewEngine::Query(const std::string& bucket,
                                       const std::string& view,
                                       const ViewQueryOptions& opts,
                                       Staleness stale) {
  queries_->Add();
  trace::Span span("views.query", query_ns_);
  ViewState* state = nullptr;
  {
    LockGuard lock(mu_);
    auto bit = views_.find(bucket);
    if (bit == views_.end()) return Status::NotFound("no such bucket");
    auto vit = bit->second.find(view);
    if (vit == bit->second.end()) return Status::NotFound("no such view");
    state = &vit->second;
  }

  if (stale == Staleness::kFalse) {
    COUCHKV_RETURN_IF_ERROR(WaitForIndexer(bucket, state, /*timeout_ms=*/30000));
  }

  // Scatter: scan each node's local index. Gather: merge in collation order.
  std::map<cluster::NodeId, std::shared_ptr<ViewIndex>> indexes;
  {
    LockGuard lock(mu_);
    indexes = state->indexes;
  }
  std::vector<ViewRow> merged;
  for (auto& [node_id, index] : indexes) {
    cluster::Node* n = cluster_->node(node_id);
    if (n == nullptr || !n->healthy()) continue;
    std::vector<ViewRow> part = index->Scan(opts);
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [&](const ViewRow& a, const ViewRow& b) {
              int c = json::Value::Compare(a.key, b.key);
              if (c != 0) return opts.descending ? c > 0 : c < 0;
              return opts.descending ? a.doc_id > b.doc_id
                                     : a.doc_id < b.doc_id;
            });

  ViewResult result;
  bool do_reduce = opts.reduce && state->def.reduce != ReduceFn::kNone;
  if (do_reduce) {
    if (opts.group) {
      // Group rows by key and reduce each group.
      size_t i = 0;
      while (i < merged.size()) {
        size_t j = i;
        std::vector<json::Value> values;
        while (j < merged.size() &&
               json::Value::Compare(merged[j].key, merged[i].key) == 0) {
          values.push_back(merged[j].value);
          ++j;
        }
        ViewRow row;
        row.key = merged[i].key;
        row.value = RunReduce(state->def.reduce, values);
        result.rows.push_back(std::move(row));
        i = j;
      }
    } else {
      std::vector<json::Value> values;
      values.reserve(merged.size());
      for (auto& r : merged) values.push_back(r.value);
      ViewRow row;
      row.key = json::Value::Null();
      row.value = RunReduce(state->def.reduce, values);
      result.rows.push_back(std::move(row));
    }
  } else {
    result.rows = std::move(merged);
  }

  // skip / limit apply to the final row stream.
  if (opts.skip > 0) {
    if (opts.skip >= result.rows.size()) {
      result.rows.clear();
    } else {
      result.rows.erase(result.rows.begin(),
                        result.rows.begin() + static_cast<long>(opts.skip));
    }
  }
  if (result.rows.size() > opts.limit) {
    result.rows.resize(opts.limit);
  }

  if (stale == Staleness::kUpdateAfter) {
    // Kick the indexers after serving (the paper's default behaviour).
    for (cluster::NodeId id : cluster_->node_ids()) {
      cluster::Node* n = cluster_->node(id);
      if (n != nullptr) n->dispatcher()->Notify();
    }
  }
  return result;
}

size_t ViewEngine::TotalRows(const std::string& bucket,
                             const std::string& view) const {
  LockGuard lock(mu_);
  auto bit = views_.find(bucket);
  if (bit == views_.end()) return 0;
  auto vit = bit->second.find(view);
  if (vit == bit->second.end()) return 0;
  size_t total = 0;
  for (const auto& [id, index] : vit->second.indexes) {
    total += index->row_count();
  }
  return total;
}

}  // namespace couchkv::views
