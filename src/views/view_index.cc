#include "views/view_index.h"

#include "json/value.h"

namespace couchkv::views {

void ViewIndex::ApplyMutation(const kv::Mutation& m) {
  WriterLockGuard lock(mu_);
  // Drop the document's previous row.
  auto prev = doc_keys_.find(m.doc.key);
  if (prev != doc_keys_.end()) {
    rows_.erase(RowKey{prev->second, m.doc.key});
    doc_keys_.erase(prev);
  }
  if (!m.doc.meta.deleted) {
    auto parsed = json::Parse(m.doc.value);
    if (parsed.ok()) {
      auto row = RunMap(def_.map, m.doc.key, parsed.value());
      if (row.has_value()) {
        rows_[RowKey{row->key, m.doc.key}] = RowValue{row->value, m.vbucket};
        doc_keys_[m.doc.key] = std::move(row->key);
      }
    }
  }
  processed_[m.vbucket].store(m.doc.meta.seqno, std::memory_order_release);
}

void ViewIndex::SetVBucketActive(uint16_t vb, bool active) {
  WriterLockGuard lock(mu_);
  active_vbs_[vb] = active;
}

bool ViewIndex::IsVBucketActive(uint16_t vb) const {
  ReaderLockGuard lock(mu_);
  return active_vbs_[vb];
}

size_t ViewIndex::row_count() const {
  ReaderLockGuard lock(mu_);
  return rows_.size();
}

void ViewIndex::CollectRange(const json::Value* lo, const json::Value* hi,
                             bool inclusive_end,
                             std::vector<ViewRow>* out) const {
  // Caller holds mu_ (shared).
  auto it = rows_.begin();
  if (lo != nullptr) {
    it = rows_.lower_bound(RowKey{*lo, ""});
  }
  for (; it != rows_.end(); ++it) {
    if (hi != nullptr) {
      int c = json::Value::Compare(it->first.key, *hi);
      if (c > 0 || (c == 0 && !inclusive_end)) break;
    }
    if (!active_vbs_[it->second.vbucket]) continue;  // deactivated partition
    out->push_back(ViewRow{it->first.key, it->second.value, it->first.doc_id});
  }
}

std::vector<ViewRow> ViewIndex::Scan(const ViewQueryOptions& opts) const {
  ReaderLockGuard lock(mu_);
  std::vector<ViewRow> out;
  if (opts.key.has_value()) {
    CollectRange(&*opts.key, &*opts.key, /*inclusive_end=*/true, &out);
  } else if (!opts.keys.empty()) {
    for (const json::Value& k : opts.keys) {
      CollectRange(&k, &k, /*inclusive_end=*/true, &out);
    }
  } else {
    const json::Value* lo =
        opts.start_key.has_value() ? &*opts.start_key : nullptr;
    const json::Value* hi = opts.end_key.has_value() ? &*opts.end_key : nullptr;
    CollectRange(lo, hi, opts.inclusive_end, &out);
  }
  return out;
}

}  // namespace couchkv::views
