// View definitions (paper §3.1.2): a map function that extracts data from
// documents and an optional reduce that aggregates it.
//
// Substitution note: Couchbase defines map functions in JavaScript. We use a
// declarative map DSL with the same shape — an optional existence/equality
// filter (the `if (doc.name)` guard in the paper's example), the paths
// emitted as the index key, and the path emitted as the value — which drives
// the identical indexing machinery without embedding a JS engine.
#ifndef COUCHKV_VIEWS_VIEW_H_
#define COUCHKV_VIEWS_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "json/value.h"
#include "kv/doc.h"

namespace couchkv::views {

// Declarative map function.
struct MapFn {
  // Emit only when this path exists (missing → skip), e.g. "name".
  // Empty = no filter.
  std::string filter_exists_path;
  // Optional equality filter, e.g. doc_type == "order".
  std::string filter_eq_path;
  json::Value filter_eq_value;
  // Paths forming the emitted key. One path → scalar key; several → array
  // key (composite keys as in Couchbase).
  std::vector<std::string> key_paths;
  // Path for the emitted value; empty emits null.
  std::string value_path;
};

// Built-in reduce functions, mirroring Couchbase's _count/_sum/_stats.
enum class ReduceFn { kNone, kCount, kSum, kStats };

struct ViewDefinition {
  std::string name;
  MapFn map;
  ReduceFn reduce = ReduceFn::kNone;
};

// One emitted row.
struct ViewRow {
  json::Value key;
  json::Value value;
  std::string doc_id;
};

// Applies the map function to a document; returns the emitted row, if any.
// (Couchbase allows multiple emits per doc; our DSL emits at most one row
// per document, plus one row per array element when `unnest_path` querying
// is needed — handled by array indexes in the GSI module.)
std::optional<ViewRow> RunMap(const MapFn& map, const std::string& doc_id,
                              const json::Value& doc);

// Runs the reduce function over `values` (the emitted values of the rows
// being aggregated). kStats returns {"sum","count","min","max","sumsqr"}.
json::Value RunReduce(ReduceFn fn, const std::vector<json::Value>& values);

}  // namespace couchkv::views

#endif  // COUCHKV_VIEWS_VIEW_H_
