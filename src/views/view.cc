#include "views/view.h"

#include <algorithm>

namespace couchkv::views {

std::optional<ViewRow> RunMap(const MapFn& map, const std::string& doc_id,
                              const json::Value& doc) {
  if (!map.filter_exists_path.empty() &&
      doc.GetPath(map.filter_exists_path).is_missing()) {
    return std::nullopt;
  }
  if (!map.filter_eq_path.empty() &&
      json::Value::Compare(doc.GetPath(map.filter_eq_path),
                           map.filter_eq_value) != 0) {
    return std::nullopt;
  }
  ViewRow row;
  row.doc_id = doc_id;
  if (map.key_paths.size() == 1) {
    row.key = doc.GetPath(map.key_paths[0]);
  } else {
    json::Value::Array parts;
    parts.reserve(map.key_paths.size());
    for (const std::string& p : map.key_paths) {
      parts.push_back(doc.GetPath(p));
    }
    row.key = json::Value::MakeArray(std::move(parts));
  }
  row.value = map.value_path.empty() ? json::Value::Null()
                                     : doc.GetPath(map.value_path);
  return row;
}

json::Value RunReduce(ReduceFn fn, const std::vector<json::Value>& values) {
  switch (fn) {
    case ReduceFn::kNone:
      return json::Value::Null();
    case ReduceFn::kCount:
      return json::Value::Int(static_cast<int64_t>(values.size()));
    case ReduceFn::kSum: {
      double sum = 0;
      for (const auto& v : values) {
        if (v.is_number()) sum += v.AsNumber();
      }
      return json::Value::Number(sum);
    }
    case ReduceFn::kStats: {
      double sum = 0, sumsqr = 0;
      double min = 0, max = 0;
      int64_t count = 0;
      for (const auto& v : values) {
        if (!v.is_number()) continue;
        double d = v.AsNumber();
        if (count == 0) {
          min = max = d;
        } else {
          min = std::min(min, d);
          max = std::max(max, d);
        }
        sum += d;
        sumsqr += d * d;
        ++count;
      }
      json::Value out = json::Value::MakeObject();
      out["sum"] = json::Value::Number(sum);
      out["count"] = json::Value::Int(count);
      out["min"] = json::Value::Number(min);
      out["max"] = json::Value::Number(max);
      out["sumsqr"] = json::Value::Number(sumsqr);
      return out;
    }
  }
  return json::Value::Null();
}

}  // namespace couchkv::views
