// Little-endian fixed-width encode/decode helpers for on-disk records.
#ifndef COUCHKV_STORAGE_CODING_H_
#define COUCHKV_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace couchkv::storage {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}
inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Cursor-style decoder; all Get* return false on underflow. The results are
// [[nodiscard]]: a skipped underflow check reads garbage from the previous
// field, so ignoring one is a compile error.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  [[nodiscard]] bool GetU8(uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }
  [[nodiscard]] bool GetU16(uint16_t* v) { return GetFixed(v); }
  [[nodiscard]] bool GetU32(uint32_t* v) { return GetFixed(v); }
  [[nodiscard]] bool GetU64(uint64_t* v) { return GetFixed(v); }
  [[nodiscard]] bool GetLengthPrefixed(std::string* out) {
    uint32_t n;
    if (!GetU32(&n) || data_.size() < n) return false;
    out->assign(data_.data(), n);
    data_.remove_prefix(n);
    return true;
  }
  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  template <typename T>
  bool GetFixed(T* v) {
    if (data_.size() < sizeof(T)) return false;
    std::memcpy(v, data_.data(), sizeof(T));
    data_.remove_prefix(sizeof(T));
    return true;
  }
  std::string_view data_;
};

}  // namespace couchkv::storage

#endif  // COUCHKV_STORAGE_CODING_H_
