#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>

#include "common/lockdep.h"
#include "common/synchronization.h"

namespace couchkv::storage {

namespace {

// ---------------------------------------------------------------------------
// Posix backend
// ---------------------------------------------------------------------------

class PosixFile : public File {
 public:
  PosixFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  StatusOr<uint64_t> Append(std::string_view data) override {
    lockdep::ScopedBlockingCall blocking("PosixFile::Append");
    LockGuard lock(mu_);
    uint64_t off = size_;
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::pwrite(fd_, p, left, static_cast<off_t>(size_));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return off;
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    lockdep::ScopedBlockingCall blocking("PosixFile::Read");
    out->resize(n);
    char* p = out->data();
    size_t left = n;
    uint64_t off = offset;
    while (left > 0) {
      ssize_t r = ::pread(fd_, p, left, static_cast<off_t>(off));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pread: ") + std::strerror(errno));
      }
      if (r == 0) return Status::IOError("short read");
      p += r;
      left -= static_cast<size_t>(r);
      off += static_cast<uint64_t>(r);
    }
    return Status::OK();
  }

  uint64_t Size() const override {
    LockGuard lock(mu_);
    return size_;
  }

  Status Sync() override {
    lockdep::ScopedBlockingCall blocking("PosixFile::Sync");
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(std::string("fdatasync: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    LockGuard lock(mu_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError(std::string("ftruncate: ") +
                             std::strerror(errno));
    }
    size_ = size;
    return Status::OK();
  }

 private:
  int fd_;
  mutable couchkv::Mutex mu_{"storage.posix_file"};
  uint64_t size_ GUARDED_BY(mu_);
};

class PosixEnvImpl : public Env {
 public:
  StatusOr<std::unique_ptr<File>> Open(const std::string& path) override {
    lockdep::ScopedBlockingCall blocking("PosixEnv::Open");
    int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
    if (fd < 0) {
      return Status::IOError("open " + path + ": " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("fstat " + path + ": " + std::strerror(errno));
    }
    return std::unique_ptr<File>(
        new PosixFile(fd, static_cast<uint64_t>(st.st_size)));
  }

  bool Exists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("unlink " + path + ": " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("rename " + from + " -> " + to + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

struct MemFileData {
  couchkv::Mutex mu{"storage.mem_file"};
  std::string contents GUARDED_BY(mu);
  uint64_t sync_delay_us = 0;  // immutable after construction
};

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  StatusOr<uint64_t> Append(std::string_view data) override {
    LockGuard lock(data_->mu);
    uint64_t off = data_->contents.size();
    data_->contents.append(data);
    return off;
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    LockGuard lock(data_->mu);
    if (offset + n > data_->contents.size()) {
      return Status::IOError("read past EOF");
    }
    out->assign(data_->contents, offset, n);
    return Status::OK();
  }

  uint64_t Size() const override {
    LockGuard lock(data_->mu);
    return data_->contents.size();
  }

  Status Sync() override {
    // The simulated fsync latency is a blocking call like the real one.
    lockdep::ScopedBlockingCall blocking("MemFile::Sync");
    if (data_->sync_delay_us > 0) {
      // justified: simulated fsync latency, configured by the test; the
      // delay models real-disk blocking and is deterministic per config.
      std::this_thread::sleep_for(
          std::chrono::microseconds(data_->sync_delay_us));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    LockGuard lock(data_->mu);
    if (size < data_->contents.size()) data_->contents.resize(size);
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnvImpl : public Env {
 public:
  explicit MemEnvImpl(uint64_t sync_delay_us)
      : sync_delay_us_(sync_delay_us) {}

  StatusOr<std::unique_ptr<File>> Open(const std::string& path) override {
    LockGuard lock(mu_);
    auto& slot = files_[path];
    if (!slot) {
      slot = std::make_shared<MemFileData>();
      slot->sync_delay_us = sync_delay_us_;
    }
    return std::unique_ptr<File>(new MemFile(slot));
  }

  bool Exists(const std::string& path) const override {
    LockGuard lock(mu_);
    return files_.count(path) > 0;
  }

  Status Remove(const std::string& path) override {
    LockGuard lock(mu_);
    files_.erase(path);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    LockGuard lock(mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound("rename source " + from);
    files_[to] = it->second;
    files_.erase(it);
    return Status::OK();
  }

 private:
  uint64_t sync_delay_us_;
  mutable couchkv::Mutex mu_{"storage.mem_env"};
  std::map<std::string, std::shared_ptr<MemFileData>> files_ GUARDED_BY(mu_);
};

}  // namespace

Env* Env::Posix() {
  static PosixEnvImpl* env = new PosixEnvImpl();
  return env;
}

std::unique_ptr<Env> Env::NewMemEnv(uint64_t sync_delay_us) {
  return std::make_unique<MemEnvImpl>(sync_delay_us);
}

}  // namespace couchkv::storage
