// FaultyEnv: a deterministic, seeded, fault-injecting Env wrapper — the
// storage-layer sibling of net::FaultyTransport. It proves the error paths
// the [[nodiscard]] discipline surfaces actually work: tests drive
// SaveDocs/Commit/Compact/Warmup through injected Append/Sync failures, torn
// commit footers, and disk-full, then assert no acknowledged write is lost
// and no committed state regresses.
//
// Fault injection is of two kinds, freely combinable:
//   * Probabilistic: a seeded xorshift RNG fires faults at configured rates,
//     deterministically for a given seed and operation sequence (torture
//     runs are replayable from their seed alone).
//   * Scheduled: one-shot "fail the next N Appends/Syncs" / "tear the next
//     Append" triggers for precise unit tests.
//
// Injected Append failures can be TORN: a prefix of the data reaches the
// underlying file before the error returns, exactly like a crash mid-write.
// Recovery must discard the torn tail — tests assert it does.
#ifndef COUCHKV_STORAGE_FAULTY_ENV_H_
#define COUCHKV_STORAGE_FAULTY_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "storage/env.h"

namespace couchkv::storage {

struct FaultyEnvOptions {
  uint64_t seed = 1;

  // Probabilistic faults, evaluated per operation in [0, 1).
  double append_fail_prob = 0.0;  // Append returns IOError, nothing written
  double append_torn_prob = 0.0;  // Append writes a random prefix, then fails
  double sync_fail_prob = 0.0;    // Sync returns IOError (no barrier)

  // Disk-full: once total bytes appended across ALL files reaches this
  // budget, every further Append fails with IOError("no space") after
  // writing the bytes that still fit (short write, as a real ENOSPC does).
  // 0 = unlimited.
  uint64_t enospc_after_bytes = 0;
};

// Counters of what was actually injected (readable while tests run).
struct FaultyEnvStats {
  uint64_t appends_failed = 0;
  uint64_t appends_torn = 0;  // subset of appends_failed with a prefix written
  uint64_t syncs_failed = 0;
  uint64_t reads_failed = 0;
};

class FaultyEnv : public Env {
 public:
  // `base` must outlive this Env. Files opened before construction are not
  // wrapped; open everything through the FaultyEnv.
  FaultyEnv(Env* base, FaultyEnvOptions opts);
  // Owning variant, for injection points that hand the base env over (e.g.
  // ClusterOptions::wrap_node_env — the node's disk becomes the faulty one).
  FaultyEnv(std::unique_ptr<Env> base, FaultyEnvOptions opts);
  ~FaultyEnv() override;

  StatusOr<std::unique_ptr<File>> Open(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;

  // --- Scheduled one-shot faults (consumed in operation order) ---

  // The next `n` Appends (across all wrapped files) fail cleanly: no bytes
  // reach the underlying file.
  void FailNextAppends(uint64_t n);
  // The next Append is torn: exactly `prefix_bytes` of the data (clamped to
  // the data size) reach the underlying file before IOError returns. Tearing
  // a CouchFile commit record this way forges a torn commit footer.
  void TearNextAppend(uint64_t prefix_bytes);
  // The next `n` Syncs fail. The data may well be in the page cache — the
  // wrapper intentionally leaves the underlying bytes in place — but no
  // durability barrier happened.
  void FailNextSyncs(uint64_t n);
  // The next `n` Reads fail (bad sector / transient medium error). Recovery
  // and warmup must PROPAGATE these — an unreadable region is not a torn
  // tail, and truncating at it would discard committed data.
  void FailNextReads(uint64_t n);

  // Stops/starts probabilistic injection (scheduled faults still fire);
  // lets a test heal the disk and watch the system converge.
  void set_faults_enabled(bool enabled);

  FaultyEnvStats stats() const;
  uint64_t bytes_appended() const;

 private:
  class FaultyFile;
  struct Shared;  // fault state shared with wrapped files (they may outlive
                  // neither the env nor each other in a fixed order)

  Env* base_;
  std::unique_ptr<Env> owned_base_;  // set only by the owning constructor
  std::shared_ptr<Shared> shared_;
};

}  // namespace couchkv::storage

#endif  // COUCHKV_STORAGE_FAULTY_ENV_H_
