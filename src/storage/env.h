// Filesystem abstraction for the storage engine. PosixEnv does real file
// I/O; MemEnv keeps files in memory so tests and benches can run without
// touching disk (and so a "4-node cluster" bench is not bottlenecked by one
// laptop disk shared by all simulated nodes).
#ifndef COUCHKV_STORAGE_ENV_H_
#define COUCHKV_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace couchkv::storage {

// Random-access read / append-only write file handle.
class File {
 public:
  virtual ~File() = default;

  // Appends `data` at the end of the file; returns the offset it was
  // written at.
  virtual StatusOr<uint64_t> Append(std::string_view data) = 0;

  // Reads exactly `n` bytes at `offset` into `out`.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual uint64_t Size() const = 0;

  // Durability barrier (fsync). MemEnv treats this as a no-op but counts it.
  virtual Status Sync() = 0;

  // Truncates to `size` (used to drop a torn tail during recovery).
  virtual Status Truncate(uint64_t size) = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Opens (creating if needed) a file for read/append.
  virtual StatusOr<std::unique_ptr<File>> Open(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // Process-wide singletons.
  static Env* Posix();

  // Creates a fresh private in-memory filesystem. `sync_delay_us` simulates
  // the cost of an fsync (0 = free): the substitution knob that stands in
  // for real disk latency when benchmarking durability trade-offs.
  static std::unique_ptr<Env> NewMemEnv(uint64_t sync_delay_us = 0);
};

}  // namespace couchkv::storage

#endif  // COUCHKV_STORAGE_ENV_H_
