// Append-only per-vBucket store, modeled on couchstore (paper §4.3.3
// "Storage Engine"): every mutation — insert, update, or delete — is
// appended at the end of the file, so disk writes are purely sequential.
// Commits append a commit record and fsync; on open the file is scanned
// forward and anything after the last valid commit is discarded, giving
// crash consistency.
//
// Simplification vs couchstore: couchstore persists by-id/by-seqno B-trees
// so open() need not scan; we rebuild the in-memory index by a forward scan
// (bitcask-style). The write path — the part the paper's performance story
// depends on — is identical: sequential appends + periodic compaction
// triggered by a fragmentation threshold.
#ifndef COUCHKV_STORAGE_COUCH_FILE_H_
#define COUCHKV_STORAGE_COUCH_FILE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "kv/doc.h"
#include "stats/registry.h"
#include "storage/env.h"

namespace couchkv::storage {

// Registry-backed counters shared by all CouchFiles of a bucket. Optional:
// files opened without them (tests, tools) skip the reporting.
struct StorageCounters {
  stats::Counter* appends = nullptr;         // doc records written
  stats::Counter* bytes_appended = nullptr;  // incl. commit records
  stats::Counter* commits = nullptr;         // fsync'd commit records
  stats::Counter* compactions = nullptr;
  stats::Counter* compaction_failures = nullptr;
  stats::Counter* compaction_bytes_reclaimed = nullptr;
  Histogram* commit_ns = nullptr;  // SaveDocs batch append + fsync latency

  // Resolves the "storage.*" metrics in `scope`.
  static StorageCounters In(stats::Scope* scope);
};

struct CouchFileStats {
  uint64_t file_size = 0;
  uint64_t live_bytes = 0;   // bytes occupied by the latest version of docs
  uint64_t num_live_docs = 0;
  uint64_t num_tombstones = 0;
  uint64_t num_commits = 0;
  uint64_t num_compactions = 0;
};

class CouchFile {
 public:
  // Opens (creating or recovering) the store at `path`. `counters`, when
  // given, must outlive the file (the bucket's stats scope keeps it alive).
  static StatusOr<std::unique_ptr<CouchFile>> Open(
      Env* env, const std::string& path,
      const StorageCounters* counters = nullptr);

  // Appends a batch of documents (deletes travel as meta.deleted). Not
  // durable until Commit().
  Status SaveDocs(const std::vector<kv::Document>& docs) EXCLUDES(mu_);

  // Appends a commit record and syncs. Everything saved so far becomes
  // recoverable.
  Status Commit() EXCLUDES(mu_);

  // Point lookup of the latest committed-or-pending version.
  StatusOr<kv::Document> Get(std::string_view key) const EXCLUDES(mu_);

  // Streams documents with seqno > since, in seqno order (DCP backfill).
  // Only the latest version of each key is retained, matching DCP's
  // key-deduplicated snapshot semantics. A non-OK status from `fn` (e.g. a
  // failed downstream delivery) stops the scan and propagates, so consumer
  // errors are never swallowed mid-stream.
  Status ChangesSince(
      uint64_t since_seqno,
      const std::function<Status(const kv::Document&)>& fn) const
      EXCLUDES(mu_);

  // Iterates all live (non-deleted) documents, arbitrary order. Stops and
  // propagates on the first non-OK status from `fn`.
  Status ForEachLive(const std::function<Status(const kv::Document&)>& fn)
      const EXCLUDES(mu_);

  // Rewrites live documents into a fresh file and atomically swaps it in,
  // dropping stale versions and (optionally) tombstones below
  // `purge_before_seqno`. Failure is safe: the original file, index, and
  // fragmentation stats are untouched (so the compaction trigger re-fires on
  // the next sweep) and the temp file is cleaned up best-effort.
  Status Compact(uint64_t purge_before_seqno = 0) EXCLUDES(mu_);

  // Fraction of the file occupied by stale data, 0..1. The compactor daemon
  // fires when this exceeds the configured threshold.
  double Fragmentation() const EXCLUDES(mu_);

  uint64_t high_seqno() const EXCLUDES(mu_);
  CouchFileStats stats() const EXCLUDES(mu_);
  const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    uint64_t offset = 0;  // offset of the record header
    uint32_t record_size = 0;
    uint64_t seqno = 0;
    bool deleted = false;
  };

  CouchFile(Env* env, std::string path, std::shared_ptr<File> file,
            const StorageCounters* counters)
      : env_(env),
        path_(std::move(path)),
        counters_(counters != nullptr ? *counters : StorageCounters{}),
        file_(std::move(file)) {}

  Status Recover() EXCLUDES(mu_);
  // Compact() body; on error the caller removes the temp file and counts
  // the failure. Mutates members only after every write has succeeded.
  Status CompactLocked(uint64_t purge_before_seqno, const std::string& tmp_path)
      REQUIRES(mu_);
  Status AppendDoc(const kv::Document& doc, uint64_t* offset, uint32_t* size)
      REQUIRES(mu_);
  // Reads and decodes one doc record from `file` — which must be a pin
  // obtained from file_ under mu_ (or a compaction temp file), so the read
  // itself can run lock-free against the immutable pinned contents.
  static StatusOr<kv::Document> ReadDocAt(const File& file, uint64_t offset,
                                          uint32_t size);
  void IndexDoc(const std::string& key, const IndexEntry& e) REQUIRES(mu_);

  Env* env_;
  std::string path_;
  StorageCounters counters_;  // null members = reporting disabled

  mutable Mutex mu_{"storage.couch_file"};
  COUCHKV_LOCK_ORDER("storage.couch_file", "storage.posix_file");
  COUCHKV_LOCK_ORDER("storage.couch_file", "storage.mem_file");
  COUCHKV_LOCK_ORDER("cluster.bucket.storage", "storage.couch_file");
  // Readers pin the current file under mu_ and read outside it; Compact()
  // swaps in the rewritten file under mu_, and the pin keeps the old
  // (immutable, already-indexed) contents alive for in-flight readers.
  std::shared_ptr<File> file_ GUARDED_BY(mu_);
  std::unordered_map<std::string, IndexEntry> by_id_ GUARDED_BY(mu_);
  std::map<uint64_t, std::string> by_seqno_ GUARDED_BY(mu_);  // seqno -> key
  uint64_t high_seqno_ GUARDED_BY(mu_) = 0;
  // File size at last commit (recovery point).
  uint64_t committed_size_ GUARDED_BY(mu_) = 0;
  uint64_t live_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t num_commits_ GUARDED_BY(mu_) = 0;
  uint64_t num_compactions_ GUARDED_BY(mu_) = 0;
};

}  // namespace couchkv::storage

#endif  // COUCHKV_STORAGE_COUCH_FILE_H_
