#include "storage/couch_file.h"

#include "common/clock.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "storage/coding.h"

namespace couchkv::storage {

namespace {

constexpr uint8_t kRecordDoc = 1;
constexpr uint8_t kRecordCommit = 2;
constexpr size_t kHeaderSize = 1 + 4 + 4;  // type + payload_len + crc

void EncodeDocPayload(const kv::Document& doc, std::string* out) {
  PutLengthPrefixed(out, doc.key);
  PutU64(out, doc.meta.cas);
  PutU64(out, doc.meta.revno);
  PutU64(out, doc.meta.seqno);
  PutU32(out, doc.meta.flags);
  PutU32(out, doc.meta.expiry);
  PutU8(out, doc.meta.deleted ? 1 : 0);
  PutLengthPrefixed(out, doc.value);
}

bool DecodeDocPayload(std::string_view payload, kv::Document* doc) {
  Decoder dec(payload);
  uint8_t deleted;
  if (!dec.GetLengthPrefixed(&doc->key)) return false;
  if (!dec.GetU64(&doc->meta.cas)) return false;
  if (!dec.GetU64(&doc->meta.revno)) return false;
  if (!dec.GetU64(&doc->meta.seqno)) return false;
  if (!dec.GetU32(&doc->meta.flags)) return false;
  if (!dec.GetU32(&doc->meta.expiry)) return false;
  if (!dec.GetU8(&deleted)) return false;
  doc->meta.deleted = deleted != 0;
  if (!dec.GetLengthPrefixed(&doc->value)) return false;
  return true;
}

void FrameRecord(uint8_t type, std::string_view payload, std::string* out) {
  PutU8(out, type);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload);
}

}  // namespace

StorageCounters StorageCounters::In(stats::Scope* scope) {
  StorageCounters c;
  c.appends = scope->GetCounter("storage.appends");
  c.bytes_appended = scope->GetCounter("storage.bytes_appended");
  c.commits = scope->GetCounter("storage.commits");
  c.compactions = scope->GetCounter("storage.compactions");
  c.compaction_failures = scope->GetCounter("storage.compaction_failures");
  c.compaction_bytes_reclaimed =
      scope->GetCounter("storage.compaction_bytes_reclaimed");
  c.commit_ns = scope->GetHistogram("storage.commit_ns");
  return c;
}

StatusOr<std::unique_ptr<CouchFile>> CouchFile::Open(
    Env* env, const std::string& path, const StorageCounters* counters) {
  auto file_or = env->Open(path);
  if (!file_or.ok()) return file_or.status();
  std::unique_ptr<CouchFile> cf(
      new CouchFile(env, path, std::move(file_or).value(), counters));
  COUCHKV_RETURN_IF_ERROR(cf->Recover());
  return cf;
}

Status CouchFile::Recover() {
  LockGuard lock(mu_);
  uint64_t size = file_->Size();
  uint64_t pos = 0;
  uint64_t last_commit_end = 0;

  // Staging state: records seen since the previous commit record. They only
  // become visible when a commit record is reached.
  std::unordered_map<std::string, IndexEntry> staged_by_id;
  std::map<uint64_t, std::string> staged_by_seqno;
  uint64_t staged_high_seqno = 0;

  while (pos + kHeaderSize <= size) {
    // Every read below is bounds-checked first, so a read that FAILS is a
    // real I/O error (bad sector, injected fault) — not a torn tail — and
    // must propagate. Truncating at an unreadable region would silently
    // discard the committed data behind it.
    std::string header;
    COUCHKV_RETURN_IF_ERROR(file_->Read(pos, kHeaderSize, &header));
    Decoder dec(header);
    uint8_t type = 0;
    uint32_t payload_len = 0, crc = 0;
    if (!dec.GetU8(&type) || !dec.GetU32(&payload_len) || !dec.GetU32(&crc)) {
      break;
    }
    if (pos + kHeaderSize + payload_len > size) break;  // torn tail
    std::string payload;
    COUCHKV_RETURN_IF_ERROR(file_->Read(pos + kHeaderSize, payload_len,
                                        &payload));
    if (Crc32(payload) != crc) break;  // torn/corrupt record: stop here

    if (type == kRecordDoc) {
      kv::Document doc;
      if (!DecodeDocPayload(payload, &doc)) break;
      IndexEntry e;
      e.offset = pos;
      e.record_size = static_cast<uint32_t>(kHeaderSize + payload_len);
      e.seqno = doc.meta.seqno;
      e.deleted = doc.meta.deleted;
      // Deduplicate within the staged window.
      auto prev = staged_by_id.find(doc.key);
      if (prev != staged_by_id.end()) {
        staged_by_seqno.erase(prev->second.seqno);
      }
      staged_by_id[doc.key] = e;
      staged_by_seqno[e.seqno] = doc.key;
      if (e.seqno > staged_high_seqno) staged_high_seqno = e.seqno;
    } else if (type == kRecordCommit) {
      // Fold staged records into the committed index.
      for (auto& [key, e] : staged_by_id) {
        IndexDoc(key, e);
      }
      for (auto& [seq, key] : staged_by_seqno) {
        by_seqno_[seq] = key;
      }
      staged_by_id.clear();
      staged_by_seqno.clear();
      if (staged_high_seqno > high_seqno_) high_seqno_ = staged_high_seqno;
      last_commit_end = pos + kHeaderSize + payload_len;
    } else {
      break;  // unknown record type: treat as corruption
    }
    pos += kHeaderSize + payload_len;
  }

  // Anything past the last commit is an uncommitted tail; drop it so the
  // file matches what a crash-restart of couchstore would see.
  if (last_commit_end < size) {
    COUCHKV_RETURN_IF_ERROR(file_->Truncate(last_commit_end));
  }
  committed_size_ = last_commit_end;
  return Status::OK();
}

void CouchFile::IndexDoc(const std::string& key, const IndexEntry& e) {
  auto it = by_id_.find(key);
  if (it != by_id_.end()) {
    live_bytes_ -= it->second.record_size;
    by_seqno_.erase(it->second.seqno);
    it->second = e;
  } else {
    by_id_[key] = e;
  }
  live_bytes_ += e.record_size;
  if (e.seqno > high_seqno_) high_seqno_ = e.seqno;
}

Status CouchFile::AppendDoc(const kv::Document& doc, uint64_t* offset,
                            uint32_t* size) {
  std::string payload;
  EncodeDocPayload(doc, &payload);
  std::string record;
  FrameRecord(kRecordDoc, payload, &record);
  auto off_or = file_->Append(record);
  if (!off_or.ok()) return off_or.status();
  *offset = off_or.value();
  *size = static_cast<uint32_t>(record.size());
  if (counters_.appends != nullptr) {
    counters_.appends->Add();
    counters_.bytes_appended->Add(record.size());
  }
  return Status::OK();
}

Status CouchFile::SaveDocs(const std::vector<kv::Document>& docs) {
  LockGuard lock(mu_);
  for (const kv::Document& doc : docs) {
    uint64_t offset;
    uint32_t size;
    COUCHKV_RETURN_IF_ERROR(AppendDoc(doc, &offset, &size));
    IndexEntry e;
    e.offset = offset;
    e.record_size = size;
    e.seqno = doc.meta.seqno;
    e.deleted = doc.meta.deleted;
    IndexDoc(doc.key, e);
    by_seqno_[e.seqno] = doc.key;
  }
  return Status::OK();
}

Status CouchFile::Commit() {
  LockGuard lock(mu_);
  uint64_t start_ns = Clock::Real()->NowNanos();
  std::string payload;
  PutU64(&payload, high_seqno_);
  PutU64(&payload, live_bytes_);
  std::string record;
  FrameRecord(kRecordCommit, payload, &record);
  auto off_or = file_->Append(record);
  if (!off_or.ok()) return off_or.status();
  COUCHKV_RETURN_IF_ERROR(file_->Sync());
  committed_size_ = file_->Size();
  ++num_commits_;
  if (counters_.commits != nullptr) {
    counters_.commits->Add();
    counters_.bytes_appended->Add(record.size());
    counters_.commit_ns->Record(Clock::Real()->NowNanos() - start_ns);
  }
  return Status::OK();
}

StatusOr<kv::Document> CouchFile::ReadDocAt(const File& file, uint64_t offset,
                                            uint32_t size) {
  std::string record;
  COUCHKV_RETURN_IF_ERROR(file.Read(offset, size, &record));
  Decoder dec(record);
  uint8_t type;
  uint32_t payload_len, crc;
  if (!dec.GetU8(&type) || !dec.GetU32(&payload_len) || !dec.GetU32(&crc) ||
      type != kRecordDoc || payload_len + kHeaderSize != size) {
    return Status::Corruption("bad doc record at offset " +
                              std::to_string(offset));
  }
  std::string_view payload(record.data() + kHeaderSize, payload_len);
  if (Crc32(payload) != crc) {
    return Status::Corruption("doc checksum mismatch at offset " +
                              std::to_string(offset));
  }
  kv::Document doc;
  if (!DecodeDocPayload(payload, &doc)) {
    return Status::Corruption("undecodable doc at offset " +
                              std::to_string(offset));
  }
  return doc;
}

StatusOr<kv::Document> CouchFile::Get(std::string_view key) const {
  IndexEntry e;
  std::shared_ptr<File> pin;
  {
    LockGuard lock(mu_);
    auto it = by_id_.find(std::string(key));
    if (it == by_id_.end() || it->second.deleted) return Status::NotFound();
    e = it->second;
    pin = file_;
  }
  return ReadDocAt(*pin, e.offset, e.record_size);
}

Status CouchFile::ChangesSince(
    uint64_t since_seqno,
    const std::function<Status(const kv::Document&)>& fn) const {
  // Snapshot the (seqno, offset) list and pin the file under the lock, then
  // read outside it (the pin keeps the snapshot valid across a concurrent
  // Compact() swap).
  std::vector<std::pair<uint64_t, uint32_t>> locations;  // offset, size
  std::shared_ptr<File> pin;
  {
    LockGuard lock(mu_);
    pin = file_;
    for (auto it = by_seqno_.upper_bound(since_seqno); it != by_seqno_.end();
         ++it) {
      auto id_it = by_id_.find(it->second);
      if (id_it == by_id_.end()) continue;
      locations.emplace_back(id_it->second.offset, id_it->second.record_size);
    }
  }
  for (auto [offset, size] : locations) {
    auto doc_or = ReadDocAt(*pin, offset, size);
    if (!doc_or.ok()) return doc_or.status();
    COUCHKV_RETURN_IF_ERROR(fn(doc_or.value()));
  }
  return Status::OK();
}

Status CouchFile::ForEachLive(
    const std::function<Status(const kv::Document&)>& fn) const {
  std::vector<std::pair<uint64_t, uint32_t>> locations;
  std::shared_ptr<File> pin;
  {
    LockGuard lock(mu_);
    pin = file_;
    locations.reserve(by_id_.size());
    for (const auto& [key, e] : by_id_) {
      (void)key;
      if (!e.deleted) locations.emplace_back(e.offset, e.record_size);
    }
  }
  for (auto [offset, size] : locations) {
    auto doc_or = ReadDocAt(*pin, offset, size);
    if (!doc_or.ok()) return doc_or.status();
    COUCHKV_RETURN_IF_ERROR(fn(doc_or.value()));
  }
  return Status::OK();
}

Status CouchFile::Compact(uint64_t purge_before_seqno) {
  // Online in couchstore; here compaction holds the file lock, which is the
  // same observable behaviour at our timescales (writes stall briefly).
  LockGuard lock(mu_);
  std::string tmp_path = path_ + ".compact";
  Status st = CompactLocked(purge_before_seqno, tmp_path);
  if (!st.ok()) {
    // The original file and in-memory index are untouched: CompactLocked
    // mutates state only after every write into the temp file succeeded.
    // Fragmentation() therefore still exceeds the trigger threshold and the
    // next compactor sweep retries.
    // justified: cleanup on an already-failing path; the compaction error
    // is what the caller must see, and a leftover temp file is re-removed
    // by the next attempt.
    (void)env_->Remove(tmp_path);
    if (counters_.compaction_failures != nullptr) {
      counters_.compaction_failures->Add();
    }
  }
  return st;
}

Status CouchFile::CompactLocked(uint64_t purge_before_seqno,
                                const std::string& tmp_path) {
  COUCHKV_RETURN_IF_ERROR(env_->Remove(tmp_path));
  auto tmp_or = env_->Open(tmp_path);
  if (!tmp_or.ok()) return tmp_or.status();
  std::shared_ptr<File> tmp = std::move(tmp_or).value();

  std::unordered_map<std::string, IndexEntry> new_by_id;
  std::map<uint64_t, std::string> new_by_seqno;
  uint64_t new_live = 0;

  for (const auto& [key, e] : by_id_) {
    // Tombstones older than the purge seqno are dropped for good.
    if (e.deleted && e.seqno < purge_before_seqno) continue;
    auto doc_or = ReadDocAt(*file_, e.offset, e.record_size);
    if (!doc_or.ok()) return doc_or.status();
    std::string payload;
    EncodeDocPayload(doc_or.value(), &payload);
    std::string record;
    FrameRecord(kRecordDoc, payload, &record);
    auto off_or = tmp->Append(record);
    if (!off_or.ok()) return off_or.status();
    IndexEntry ne = e;
    ne.offset = off_or.value();
    ne.record_size = static_cast<uint32_t>(record.size());
    new_by_id[key] = ne;
    new_by_seqno[ne.seqno] = key;
    if (!ne.deleted) new_live += ne.record_size;
  }

  // Commit record in the new file.
  std::string payload;
  PutU64(&payload, high_seqno_);
  PutU64(&payload, new_live);
  std::string record;
  FrameRecord(kRecordCommit, payload, &record);
  auto off_or = tmp->Append(record);
  if (!off_or.ok()) return off_or.status();
  COUCHKV_RETURN_IF_ERROR(tmp->Sync());

  uint64_t old_size = file_->Size();
  COUCHKV_RETURN_IF_ERROR(env_->Rename(tmp_path, path_));
  file_ = std::move(tmp);
  by_id_ = std::move(new_by_id);
  by_seqno_ = std::move(new_by_seqno);
  live_bytes_ = new_live;
  committed_size_ = file_->Size();
  ++num_compactions_;
  if (counters_.compactions != nullptr) {
    counters_.compactions->Add();
    uint64_t new_size = file_->Size();
    if (old_size > new_size) {
      counters_.compaction_bytes_reclaimed->Add(old_size - new_size);
    }
  }
  return Status::OK();
}

double CouchFile::Fragmentation() const {
  LockGuard lock(mu_);
  uint64_t size = file_->Size();
  if (size == 0) return 0.0;
  uint64_t live = live_bytes_;
  if (live >= size) return 0.0;
  return static_cast<double>(size - live) / static_cast<double>(size);
}

uint64_t CouchFile::high_seqno() const {
  LockGuard lock(mu_);
  return high_seqno_;
}

CouchFileStats CouchFile::stats() const {
  LockGuard lock(mu_);
  CouchFileStats s;
  s.file_size = file_->Size();
  s.live_bytes = live_bytes_;
  for (const auto& [key, e] : by_id_) {
    (void)key;
    if (e.deleted) {
      ++s.num_tombstones;
    } else {
      ++s.num_live_docs;
    }
  }
  s.num_commits = num_commits_;
  s.num_compactions = num_compactions_;
  return s;
}

}  // namespace couchkv::storage
