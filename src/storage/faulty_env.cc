#include "storage/faulty_env.h"

#include <algorithm>

namespace couchkv::storage {

// Fault state shared by the env and every file it opened. All decisions are
// made under one mutex with one RNG, so a given seed yields one injection
// schedule per operation sequence regardless of which file the op hits.
struct FaultyEnv::Shared {
  explicit Shared(const FaultyEnvOptions& o) : opts(o), rng(o.seed) {}

  FaultyEnvOptions opts;

  mutable Mutex mu{"storage.faulty_env"};
  Rng rng GUARDED_BY(mu);
  uint64_t fail_appends GUARDED_BY(mu) = 0;  // scheduled clean failures
  bool tear_next GUARDED_BY(mu) = false;     // scheduled torn append
  uint64_t tear_prefix GUARDED_BY(mu) = 0;
  uint64_t fail_syncs GUARDED_BY(mu) = 0;
  uint64_t fail_reads GUARDED_BY(mu) = 0;
  FaultyEnvStats stats GUARDED_BY(mu);

  std::atomic<bool> enabled{true};
  std::atomic<uint64_t> bytes_appended{0};

  // What an Append should do, decided before any bytes move.
  struct AppendPlan {
    bool fail = false;
    // Valid when fail: bytes of the payload to write before erroring
    // (0 = clean failure, >0 = torn write).
    uint64_t prefix = 0;
    const char* reason = "";
  };

  AppendPlan PlanAppend(size_t len) EXCLUDES(mu) {
    LockGuard lock(mu);
    AppendPlan plan;
    if (fail_appends > 0) {
      --fail_appends;
      plan.fail = true;
      plan.reason = "injected append failure (scheduled)";
    } else if (tear_next) {
      tear_next = false;
      plan.fail = true;
      plan.prefix = std::min<uint64_t>(tear_prefix, len);
      plan.reason = "injected torn append (scheduled)";
    } else if (enabled.load(std::memory_order_acquire)) {
      if (opts.append_fail_prob > 0 &&
          rng.NextDouble() < opts.append_fail_prob) {
        plan.fail = true;
        plan.reason = "injected append failure";
      } else if (opts.append_torn_prob > 0 &&
                 rng.NextDouble() < opts.append_torn_prob) {
        plan.fail = true;
        plan.prefix = len > 0 ? rng.Uniform(len) : 0;
        plan.reason = "injected torn append";
      }
    }
    // Disk-full applies even to ops the RNG spared: a short write of
    // whatever still fits, like a real ENOSPC.
    if (!plan.fail && opts.enospc_after_bytes > 0) {
      uint64_t used = bytes_appended.load(std::memory_order_acquire);
      if (used + len > opts.enospc_after_bytes) {
        plan.fail = true;
        plan.prefix =
            opts.enospc_after_bytes > used ? opts.enospc_after_bytes - used : 0;
        plan.reason = "injected disk full (no space)";
      }
    }
    if (plan.fail) {
      ++stats.appends_failed;
      if (plan.prefix > 0) ++stats.appends_torn;
    }
    return plan;
  }

  bool PlanSyncFailure() EXCLUDES(mu) {
    LockGuard lock(mu);
    bool fail = false;
    if (fail_syncs > 0) {
      --fail_syncs;
      fail = true;
    } else if (enabled.load(std::memory_order_acquire) &&
               opts.sync_fail_prob > 0 &&
               rng.NextDouble() < opts.sync_fail_prob) {
      fail = true;
    }
    if (fail) ++stats.syncs_failed;
    return fail;
  }

  bool PlanReadFailure() EXCLUDES(mu) {
    LockGuard lock(mu);
    if (fail_reads == 0) return false;
    --fail_reads;
    ++stats.reads_failed;
    return true;
  }
};

class FaultyEnv::FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base, std::shared_ptr<Shared> shared)
      : base_(std::move(base)), shared_(std::move(shared)) {}

  StatusOr<uint64_t> Append(std::string_view data) override {
    Shared::AppendPlan plan = shared_->PlanAppend(data.size());
    if (plan.fail) {
      if (plan.prefix > 0) {
        // Torn write: a prefix reaches the file, then the error. If even
        // the prefix write fails, the real error wins.
        auto off = base_->Append(data.substr(0, plan.prefix));
        if (!off.ok()) return off.status();
        shared_->bytes_appended.fetch_add(plan.prefix,
                                          std::memory_order_acq_rel);
      }
      return Status::IOError(plan.reason);
    }
    auto off = base_->Append(data);
    if (off.ok()) {
      shared_->bytes_appended.fetch_add(data.size(),
                                        std::memory_order_acq_rel);
    }
    return off;
  }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    if (shared_->PlanReadFailure()) {
      return Status::IOError("injected read failure (bad sector)");
    }
    return base_->Read(offset, n, out);
  }

  uint64_t Size() const override { return base_->Size(); }

  Status Sync() override {
    if (shared_->PlanSyncFailure()) {
      // The underlying bytes stay put (they may well be in the page cache)
      // but no durability barrier happened — callers must not treat the
      // data as committed.
      return Status::IOError("injected sync failure");
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<Shared> shared_;
};

FaultyEnv::FaultyEnv(Env* base, FaultyEnvOptions opts)
    : base_(base), shared_(std::make_shared<Shared>(opts)) {}

FaultyEnv::FaultyEnv(std::unique_ptr<Env> base, FaultyEnvOptions opts)
    : base_(base.get()),
      owned_base_(std::move(base)),
      shared_(std::make_shared<Shared>(opts)) {}

FaultyEnv::~FaultyEnv() = default;

StatusOr<std::unique_ptr<File>> FaultyEnv::Open(const std::string& path) {
  auto base_or = base_->Open(path);
  if (!base_or.ok()) return base_or.status();
  return std::unique_ptr<File>(
      new FaultyFile(std::move(base_or).value(), shared_));
}

bool FaultyEnv::Exists(const std::string& path) const {
  return base_->Exists(path);
}

Status FaultyEnv::Remove(const std::string& path) {
  return base_->Remove(path);
}

Status FaultyEnv::Rename(const std::string& from, const std::string& to) {
  return base_->Rename(from, to);
}

void FaultyEnv::FailNextAppends(uint64_t n) {
  LockGuard lock(shared_->mu);
  shared_->fail_appends = n;
}

void FaultyEnv::TearNextAppend(uint64_t prefix_bytes) {
  LockGuard lock(shared_->mu);
  shared_->tear_next = true;
  shared_->tear_prefix = prefix_bytes;
}

void FaultyEnv::FailNextSyncs(uint64_t n) {
  LockGuard lock(shared_->mu);
  shared_->fail_syncs = n;
}

void FaultyEnv::FailNextReads(uint64_t n) {
  LockGuard lock(shared_->mu);
  shared_->fail_reads = n;
}

void FaultyEnv::set_faults_enabled(bool enabled) {
  shared_->enabled.store(enabled, std::memory_order_release);
}

FaultyEnvStats FaultyEnv::stats() const {
  LockGuard lock(shared_->mu);
  return shared_->stats;
}

uint64_t FaultyEnv::bytes_appended() const {
  return shared_->bytes_appended.load(std::memory_order_acquire);
}

}  // namespace couchkv::storage
