// A smart client that speaks the binary wire protocol over real TCP
// sockets: full KV payloads are serialized into frames, shipped to the
// active node's listener, and executed there — no in-process shortcut
// anywhere on the path. This is what the external load generator and the
// socket conformance tests drive.
//
// Routing mirrors SmartClient: the client bootstraps a cluster-map document
// (GET_CLUSTER_MAP) from any reachable node, hashes keys to vBuckets with
// the same CRC32 rule, and sends each op to the vBucket's active node. On
// NotMyVBucket or a transport-level failure it refreshes the map (nodes
// reboot onto fresh ephemeral ports, so ports are re-learned too) and
// retries with the shared backoff policy; semantic errors (NotFound, CAS
// mismatch, Locked, ...) are returned immediately.
#ifndef COUCHKV_CLIENT_WIRE_CLIENT_H_
#define COUCHKV_CLIENT_WIRE_CLIENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/smart_client.h"
#include "common/random.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "net/wire/wire.h"

namespace couchkv::client {

// One blocking request/response exchange against 127.0.0.1:`port` on a
// fresh connection (connect, send, read one frame, close). The raw building
// block conformance tests use to aim frames at a specific node —
// deliberately bypassing routing, e.g. to provoke NotMyVBucket.
StatusOr<net::wire::Message> RawRoundTrip(uint16_t port,
                                          const net::wire::Message& req,
                                          uint64_t timeout_ms = 5000);

// Pipelining primitive: writes ALL request frames back-to-back in one burst,
// then reads exactly reqs.size() response frames. Responses come back in
// request order (the server serves one connection in order).
StatusOr<std::vector<net::wire::Message>> RawPipeline(
    uint16_t port, const std::vector<net::wire::Message>& reqs,
    uint64_t timeout_ms = 5000);

class WireClient {
 public:
  // `bootstrap_ports` are listener ports to try (in order) for the first
  // cluster-map fetch; one live node is enough — the map names the rest.
  // `trace_seed` seeds the client's trace-id sequence; 0 picks a random
  // per-client base. Every dispatched op carries a trace-context framed
  // extra (one trace id per op, stable across its retries — an NMVB
  // redirect joins the same trace), so pass an explicit seed when a test
  // needs bit-identical flight-recorder dumps run after run.
  WireClient(std::vector<uint16_t> bootstrap_ports, std::string bucket,
             RetryPolicy retry = {}, uint64_t trace_seed = 0);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // KV API over the wire. WriteOptions::durability rides a durability
  // framed extra: the server blocks the response until the requirement
  // holds (or times out), and the reply's `server` timing attributes the
  // wait to its replicate/persist phases.
  StatusOr<GetReply> Get(std::string_view key);
  StatusOr<MutateReply> Upsert(std::string_view key, std::string_view value,
                               const WriteOptions& opts = {});
  StatusOr<MutateReply> Insert(std::string_view key, std::string_view value,
                               const WriteOptions& opts = {});
  StatusOr<MutateReply> Replace(std::string_view key, std::string_view value,
                                const WriteOptions& opts = {});
  StatusOr<MutateReply> Remove(std::string_view key, uint64_t cas = 0,
                               const cluster::Durability& dur = {});
  StatusOr<GetReply> GetAndLock(std::string_view key, uint64_t lock_ms);
  Status Unlock(std::string_view key, uint64_t cas);
  Status Touch(std::string_view key, uint32_t expiry);
  // STATS [group] against the node hosting `key`'s vBucket; returns the
  // JSON snapshot text.
  StatusOr<std::string> StatsFor(std::string_view key,
                                 const std::string& group = "");
  // OBSERVE_TRACE against the node hosting `key`'s vBucket: that node's
  // flight-recorder dump as JSON, optionally filtered to one trace id.
  StatusOr<std::string> ObserveTraceFor(std::string_view key,
                                        uint64_t trace_id = 0);

  // Fetches a fresh cluster map immediately (ops do this lazily on demand).
  Status RefreshMap();

  // Drops every pooled connection; they re-establish on the next op.
  void DropConnections();

  const std::string& bucket() const { return bucket_; }
  // vBucket count learned from the map (0 before the first fetch).
  uint16_t num_vbuckets() const;
  // The port this client currently believes `node_id` listens on.
  uint16_t port_of(uint32_t node_id) const;

 private:
  struct Routing {
    uint64_t map_version = 0;
    uint16_t num_vbuckets = 0;
    // vbucket -> node id; UINT32_MAX = no active copy.
    std::vector<uint32_t> active;
    std::map<uint32_t, uint16_t> ports;  // node id -> wire port
  };

  // Sends `req` to node `node_id` over the pooled connection, reconnecting
  // once on a dead socket. Fills `resp` on any protocol-level answer
  // (including error statuses); returns non-OK only for transport failures.
  Status Exchange(uint32_t node_id, const net::wire::Message& req,
                  net::wire::Message* resp);
  // Routes one request by key: resolves the vBucket's active node, runs
  // Exchange, and handles refresh/retry per the policy. On success the
  // response (any wire status) lands in `resp` with the vbucket used in
  // `vb_out` and the trace id the op ran under in `trace_out` (optional).
  Status Dispatch(std::string_view key, net::wire::Message req,
                  net::wire::Message* resp, uint16_t* vb_out,
                  uint64_t* trace_out = nullptr);
  StatusOr<MutateReply> Mutate(net::wire::Opcode op, std::string_view key,
                               std::string_view value,
                               const WriteOptions& opts);

  const std::string bucket_;
  const RetryPolicy retry_;
  const std::vector<uint16_t> bootstrap_ports_;
  Rng backoff_rng_;
  std::atomic<uint64_t> next_trace_id_;

  mutable Mutex mu_{"client.wire_client"};
  Routing routing_ GUARDED_BY(mu_);
  std::map<uint32_t, int> conns_ GUARDED_BY(mu_);  // node id -> fd
};

}  // namespace couchkv::client

#endif  // COUCHKV_CLIENT_WIRE_CLIENT_H_
