#include "client/smart_client.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "stats/trace.h"

namespace couchkv::client {

namespace {
// Process-wide id allocator for clients that don't pass an explicit id.
std::atomic<uint32_t> next_client_id{1};
}  // namespace

uint64_t NextBackoffUs(const RetryPolicy& policy, uint64_t prev_us, Rng& rng) {
  if (!policy.jitter) {
    return std::min(prev_us * 2, policy.max_backoff_us);
  }
  // Decorrelated jitter: sleep = min(cap, uniform[base, prev * 3]). Spreads
  // retry storms while still growing toward the cap on persistent failure.
  uint64_t lo = policy.initial_backoff_us;
  uint64_t hi = std::max(lo, prev_us * 3);
  return std::min(rng.UniformRange(lo, hi), policy.max_backoff_us);
}

SmartClient::SmartClient(cluster::Cluster* cluster, std::string bucket,
                         RetryPolicy retry, uint32_t client_id)
    : cluster_(cluster),
      bucket_(std::move(bucket)),
      retry_(retry),
      endpoint_(net::Endpoint::Client(
          client_id != 0 ? client_id : next_client_id.fetch_add(1))),
      backoff_rng_(0x9e3779b97f4a7c15ULL ^
                   (static_cast<uint64_t>(endpoint_.id) + 1) *
                       0x2545f4914f6cdd1dULL) {
  stats_scope_ = stats::Registry::Global().GetScope("client");
  get_ns_ = stats_scope_->GetHistogram("get_ns");
  mutate_ns_ = stats_scope_->GetHistogram("mutate_ns");
  retries_ = stats_scope_->GetCounter("retries");
  op_errors_ = stats_scope_->GetCounter("op_errors");
  map_refreshes_ = stats_scope_->GetCounter("map_refreshes");
  no_active_ = stats_scope_->GetCounter("no_active_fail_fast");
  RefreshMap();
}

void SmartClient::RefreshMap() {
  if (map_refreshes_ != nullptr) map_refreshes_->Add();
  map_ = cluster_->map(bucket_);
}

template <typename Fn>
auto SmartClient::WithRouting(std::string_view key, Fn&& op)
    -> decltype(op(nullptr, uint16_t{0})) {
  uint16_t vb = cluster::KeyToVBucket(key);
  Status last = Status::TempFail("no attempts made");
  uint64_t backoff_us = retry_.initial_backoff_us;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_->Add();
      if (backoff_us > 0) {
        // justified: client retry backoff must really wait — spinning on
        // the clock would hammer a recovering node.
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      backoff_us = NextBackoffUs(retry_, backoff_us, backoff_rng_);
    }
    if (!map_) RefreshMap();
    if (!map_) return Status::NotFound("bucket has no cluster map");
    cluster::NodeId target = map_->ActiveFor(vb);
    if (target == cluster::kNoNode) {
      // Every copy of this vBucket was lost at failover. Refresh once in
      // case a recovery just republished the map, then fail fast: no
      // amount of retrying materializes an active, so burning the backoff
      // budget only delays the caller's error handling.
      RefreshMap();
      if (map_) target = map_->ActiveFor(vb);
      if (target == cluster::kNoNode) {
        no_active_->Add();
        op_errors_->Add();
        return Status::TempFail("no active node for vbucket " +
                                std::to_string(vb) +
                                " (all copies failed over)");
      }
    }
    cluster::Node* n = cluster_->node(target);
    if (n == nullptr) {
      RefreshMap();
      continue;
    }
    // Both legs of the op cross the network: a lost request means it never
    // ran; a lost reply means it ran but we can't know (ambiguous outcome —
    // the retry may then see e.g. KeyExists from its own first attempt).
    auto result =
        net::Call(cluster_->transport(), endpoint_,
                  net::Endpoint::Node(target), [&] { return op(n, vb); });
    if (result.ok()) return result;
    last = result.status();
    if (last.IsNotMyVBucket() || last.IsTempFail()) {
      // Topology moved under us (rebalance/failover), the node is
      // overloaded/down, or the transport dropped a message: refresh the
      // cached map and retry with backoff, as SDKs do.
      RefreshMap();
      continue;
    }
    return result;  // semantic error (NotFound, CAS mismatch, ...): surface
  }
  op_errors_->Add();
  return last;
}

StatusOr<GetReply> SmartClient::Get(std::string_view key) {
  trace::Span span("client.get", get_ns_);
  return WithRouting(key,
                     [&](cluster::Node* n, uint16_t vb) -> StatusOr<GetReply> {
                       auto r = n->Get(bucket_, vb, key);
                       if (!r.ok()) return r.status();
                       GetReply reply;
                       reply.key = std::string(key);
                       reply.value = std::move(r->doc.value);
                       reply.cas = r->doc.meta.cas;
                       reply.flags = r->doc.meta.flags;
                       return reply;
                     });
}

StatusOr<json::Value> SmartClient::GetJson(std::string_view key) {
  auto r = Get(key);
  if (!r.ok()) return r.status();
  return json::Parse(r->value);
}

namespace {
StatusOr<MutateReply> FinishMutation(cluster::Cluster* cluster,
                                     const std::string& bucket, uint16_t vb,
                                     const StatusOr<kv::DocMeta>& meta,
                                     const cluster::Durability& dur) {
  if (!meta.ok()) return meta.status();
  Status st = cluster->WaitForDurability(bucket, vb, meta->seqno, dur);
  if (!st.ok()) return st;
  MutateReply reply;
  reply.cas = meta->cas;
  reply.seqno = meta->seqno;
  reply.vbucket = vb;
  return reply;
}
}  // namespace

StatusOr<MutateReply> SmartClient::Upsert(std::string_view key,
                                          std::string_view value,
                                          const WriteOptions& opts) {
  trace::Span span("client.upsert", mutate_ns_);
  return WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<MutateReply> {
        auto meta =
            n->Set(bucket_, vb, key, value, opts.flags, opts.expiry, opts.cas);
        return FinishMutation(cluster_, bucket_, vb, meta, opts.durability);
      });
}

StatusOr<MutateReply> SmartClient::Insert(std::string_view key,
                                          std::string_view value,
                                          const WriteOptions& opts) {
  trace::Span span("client.insert", mutate_ns_);
  return WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<MutateReply> {
        auto meta = n->Add(bucket_, vb, key, value, opts.flags, opts.expiry);
        return FinishMutation(cluster_, bucket_, vb, meta, opts.durability);
      });
}

StatusOr<MutateReply> SmartClient::Replace(std::string_view key,
                                           std::string_view value,
                                           const WriteOptions& opts) {
  trace::Span span("client.replace", mutate_ns_);
  return WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<MutateReply> {
        auto meta = n->Replace(bucket_, vb, key, value, opts.flags,
                               opts.expiry, opts.cas);
        return FinishMutation(cluster_, bucket_, vb, meta, opts.durability);
      });
}

StatusOr<MutateReply> SmartClient::Remove(std::string_view key, uint64_t cas,
                                          const cluster::Durability& dur) {
  trace::Span span("client.remove", mutate_ns_);
  return WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<MutateReply> {
        auto meta = n->Remove(bucket_, vb, key, cas);
        return FinishMutation(cluster_, bucket_, vb, meta, dur);
      });
}

StatusOr<MutateReply> SmartClient::UpsertJson(std::string_view key,
                                              const json::Value& value,
                                              const WriteOptions& opts) {
  return Upsert(key, value.ToJson(), opts);
}

StatusOr<GetReply> SmartClient::GetAndLock(std::string_view key,
                                           uint64_t lock_ms) {
  trace::Span span("client.getl", get_ns_);
  return WithRouting(key,
                     [&](cluster::Node* n, uint16_t vb) -> StatusOr<GetReply> {
                       auto r = n->GetAndLock(bucket_, vb, key, lock_ms);
                       if (!r.ok()) return r.status();
                       GetReply reply;
                       reply.key = std::string(key);
                       reply.value = std::move(r->doc.value);
                       reply.cas = r->doc.meta.cas;
                       reply.flags = r->doc.meta.flags;
                       return reply;
                     });
}

Status SmartClient::Unlock(std::string_view key, uint64_t cas) {
  auto r = WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<bool> {
        Status st = n->Unlock(bucket_, vb, key, cas);
        if (!st.ok()) return st;
        return true;
      });
  return r.ok() ? Status::OK() : r.status();
}

StatusOr<json::Value> SmartClient::LookupIn(std::string_view key,
                                            std::string_view path) {
  auto doc = GetJson(key);
  if (!doc.ok()) return doc.status();
  return doc->GetPath(path);
}

namespace {
constexpr int kSubdocRetries = 32;
}

StatusOr<MutateReply> SmartClient::MutateIn(std::string_view key,
                                            std::string_view path,
                                            const json::Value& value) {
  for (int attempt = 0; attempt < kSubdocRetries; ++attempt) {
    auto reply = Get(key);
    if (!reply.ok()) return reply.status();
    auto doc = json::Parse(reply->value);
    if (!doc.ok()) return doc.status();
    if (!doc->SetPath(path, value)) {
      return Status::InvalidArgument("cannot set path " + std::string(path));
    }
    WriteOptions opts;
    opts.cas = reply->cas;
    auto result = Replace(key, doc->ToJson(), opts);
    if (result.ok()) return result;
    if (!result.status().IsKeyExists() && !result.status().IsLocked()) {
      return result.status();
    }
    // CAS conflict: re-read and retry.
  }
  return Status::TempFail("sub-document CAS retries exhausted");
}

StatusOr<MutateReply> SmartClient::RemoveIn(std::string_view key,
                                            std::string_view path) {
  for (int attempt = 0; attempt < kSubdocRetries; ++attempt) {
    auto reply = Get(key);
    if (!reply.ok()) return reply.status();
    auto doc = json::Parse(reply->value);
    if (!doc.ok()) return doc.status();
    if (!doc->RemovePath(path)) {
      return Status::NotFound("path missing: " + std::string(path));
    }
    WriteOptions opts;
    opts.cas = reply->cas;
    auto result = Replace(key, doc->ToJson(), opts);
    if (result.ok()) return result;
    if (!result.status().IsKeyExists() && !result.status().IsLocked()) {
      return result.status();
    }
  }
  return Status::TempFail("sub-document CAS retries exhausted");
}

StatusOr<int64_t> SmartClient::Increment(std::string_view key, int64_t delta,
                                         int64_t initial) {
  for (int attempt = 0; attempt < kSubdocRetries * 4; ++attempt) {
    auto reply = Get(key);
    if (reply.status().IsNotFound()) {
      auto created =
          Insert(key, json::Value::Int(initial + delta).ToJson());
      if (created.ok()) return initial + delta;
      if (!created.status().IsKeyExists()) return created.status();
      continue;  // someone else created it: retry the read
    }
    if (!reply.ok()) return reply.status();
    auto doc = json::Parse(reply->value);
    if (!doc.ok() || !doc->is_number()) {
      return Status::InvalidArgument("counter document is not a number");
    }
    int64_t next = doc->AsInt() + delta;
    WriteOptions opts;
    opts.cas = reply->cas;
    auto result = Replace(key, json::Value::Int(next).ToJson(), opts);
    if (result.ok()) return next;
    if (!result.status().IsKeyExists() && !result.status().IsLocked()) {
      return result.status();
    }
  }
  return Status::TempFail("counter CAS retries exhausted");
}

ClusterStatsResult SmartClient::ClusterStats(const std::string& group) {
  ClusterStatsResult result;
  for (cluster::NodeId id : cluster_->node_ids()) {
    NodeStatsResult entry;
    entry.node = id;
    cluster::Node* n = cluster_->node(id);
    if (n == nullptr) {
      entry.error = "node removed";
      result.nodes.push_back(std::move(entry));
      continue;
    }
    auto snap = net::Call(cluster_->transport(), endpoint_,
                          net::Endpoint::Node(id),
                          [&] { return n->Stats(group); });
    if (snap.ok()) {
      entry.reachable = true;
      entry.stats = std::move(*snap);
    } else {
      entry.error = snap.status().ToString();
    }
    result.nodes.push_back(std::move(entry));
  }
  return result;
}

Status SmartClient::Touch(std::string_view key, uint32_t expiry) {
  trace::Span span("client.touch", mutate_ns_);
  auto r = WithRouting(
      key, [&](cluster::Node* n, uint16_t vb) -> StatusOr<bool> {
        auto meta = n->Touch(bucket_, vb, key, expiry);
        if (!meta.ok()) return meta.status();
        return true;
      });
  return r.ok() ? Status::OK() : r.status();
}

}  // namespace couchkv::client
