// The "smart client" (paper §4.1): caches the cluster map, hashes each key
// with CRC32 to its vBucket, and talks directly to the node hosting the
// active copy. On NotMyVBucket (topology changed under it) it refreshes the
// map and retries — exactly the protocol Couchbase SDKs implement.
#ifndef COUCHKV_CLIENT_SMART_CLIENT_H_
#define COUCHKV_CLIENT_SMART_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "json/value.h"
#include "net/transport.h"
#include "stats/registry.h"

namespace couchkv::client {

// How the client retries operations that fail transiently — NotMyVBucket
// after a topology change, TempFail from an overloaded/partitioned/down
// node, or a message lost by a faulty transport. Timeouts and semantic
// errors (NotFound, CAS mismatch, ...) are never retried.
struct RetryPolicy {
  int max_attempts = 64;
  // Exponential backoff between attempts: initial, doubling, capped.
  uint64_t initial_backoff_us = 50;
  uint64_t max_backoff_us = 2000;
  // Decorrelate the backoff (next = uniform[initial, prev*3], capped):
  // deterministic doubling synchronizes every client's retry storm at the
  // exact moment of a failover — all of them re-hit the cluster in phase.
  bool jitter = true;
};

// The next sleep after one of `prev_us`: capped doubling when
// `policy.jitter` is off, decorrelated jitter (AWS-style) when on. Exposed
// for tests.
uint64_t NextBackoffUs(const RetryPolicy& policy, uint64_t prev_us, Rng& rng);

// Options for a single write.
struct WriteOptions {
  uint32_t flags = 0;
  uint32_t expiry = 0;  // absolute seconds, 0 = never
  uint64_t cas = 0;     // 0 = unconditional
  cluster::Durability durability;  // default: memory-ack only
};

// Server-reported timing for one op, parsed from the response's
// server-duration framed extra. All zeros when the server did not report
// (classic frames, or the in-process SmartClient which has no wire).
struct ServerTiming {
  uint64_t trace_id = 0;  // trace this op ran under (0 = untraced)
  uint32_t total_us = 0;
  uint32_t dispatch_us = 0;
  uint32_t engine_us = 0;
  uint32_t replicate_us = 0;
  uint32_t persist_us = 0;
};

// A fetched document plus its metadata.
struct GetReply {
  std::string key;
  std::string value;  // raw JSON text
  uint64_t cas = 0;
  uint32_t flags = 0;
  ServerTiming server;
};

// Result of a successful mutation.
struct MutateReply {
  uint64_t cas = 0;
  uint64_t seqno = 0;
  uint16_t vbucket = 0;
  ServerTiming server;
};

// One node's contribution to a cluster-wide STATS scatter/gather. A node
// that could not be reached (partitioned, crashed, message lost) is labeled
// unreachable with the error — never silently merged or dropped.
struct NodeStatsResult {
  cluster::NodeId node = 0;
  bool reachable = false;
  std::string error;
  stats::Snapshot stats;
};

struct ClusterStatsResult {
  std::vector<NodeStatsResult> nodes;
};

class SmartClient {
 public:
  // `client_id` names this client on the transport (its Endpoint); 0 means
  // auto-assign. Pass explicit ids when fault schedules must be
  // reproducible across runs — auto-assignment is a process-wide counter.
  SmartClient(cluster::Cluster* cluster, std::string bucket,
              RetryPolicy retry = {}, uint32_t client_id = 0);

  // --- KV API (access path 1 in §3.1) ---
  StatusOr<GetReply> Get(std::string_view key);
  StatusOr<MutateReply> Upsert(std::string_view key, std::string_view value,
                               const WriteOptions& opts = {});
  StatusOr<MutateReply> Insert(std::string_view key, std::string_view value,
                               const WriteOptions& opts = {});
  StatusOr<MutateReply> Replace(std::string_view key, std::string_view value,
                                const WriteOptions& opts = {});
  StatusOr<MutateReply> Remove(std::string_view key, uint64_t cas = 0,
                               const cluster::Durability& dur = {});
  // Convenience: store a JSON value.
  StatusOr<MutateReply> UpsertJson(std::string_view key,
                                   const json::Value& value,
                                   const WriteOptions& opts = {});
  // Convenience: fetch and parse.
  StatusOr<json::Value> GetJson(std::string_view key);

  // Pessimistic locking (paper §3.1.1 "stricter locking mechanism").
  StatusOr<GetReply> GetAndLock(std::string_view key, uint64_t lock_ms);
  Status Unlock(std::string_view key, uint64_t cas);
  Status Touch(std::string_view key, uint32_t expiry);

  // --- Sub-document operations (paper §3.2.2: "sub-document level lookups
  // and updates") ---
  // Reads a single path out of a document without shipping the whole value
  // to the application.
  StatusOr<json::Value> LookupIn(std::string_view key, std::string_view path);
  // Sets one path inside a document, retrying on concurrent modification
  // (CAS loop). Creates intermediate objects. NotFound if the doc is absent.
  StatusOr<MutateReply> MutateIn(std::string_view key, std::string_view path,
                                 const json::Value& value);
  // Removes one path inside a document (CAS loop).
  StatusOr<MutateReply> RemoveIn(std::string_view key, std::string_view path);

  // Atomic counter (memcached heritage): adds `delta` to a numeric
  // document, creating it at `initial` when absent. Returns the new value.
  StatusOr<int64_t> Increment(std::string_view key, int64_t delta,
                              int64_t initial = 0);

  // Memcached-style `STATS [group]` fanned out to every node in the
  // cluster. Each node's Stats() runs over the transport, so partitions and
  // crashes surface as unreachable entries with their error labeled —
  // partial results are never silently merged into a cluster total.
  ClusterStatsResult ClusterStats(const std::string& group = "");

  const std::string& bucket() const { return bucket_; }
  cluster::Cluster* cluster() { return cluster_; }
  const net::Endpoint& endpoint() const { return endpoint_; }

  // The vBucket a key routes to (exposed for tests / diagnostics).
  uint16_t VBucketFor(std::string_view key) const {
    return cluster::KeyToVBucket(key);
  }

 private:
  // Runs `op` against the active node for `key`'s vBucket, refreshing the
  // cached map and retrying on NotMyVBucket / transient failures.
  template <typename Fn>
  auto WithRouting(std::string_view key, Fn&& op)
      -> decltype(op(nullptr, uint16_t{0}));

  void RefreshMap();

  cluster::Cluster* cluster_;
  std::string bucket_;
  RetryPolicy retry_;
  net::Endpoint endpoint_;
  // Seeded from the endpoint id so two clients never share a jitter stream
  // (and a given client's schedule is reproducible).
  Rng backoff_rng_;
  std::shared_ptr<const cluster::ClusterMap> map_;

  // Client-side observability (scope "client", shared by all clients in the
  // process): end-to-end op latency including routing retries and backoff.
  std::shared_ptr<stats::Scope> stats_scope_;
  Histogram* get_ns_ = nullptr;
  Histogram* mutate_ns_ = nullptr;
  stats::Counter* retries_ = nullptr;
  stats::Counter* op_errors_ = nullptr;
  stats::Counter* map_refreshes_ = nullptr;
  stats::Counter* no_active_ = nullptr;
};

}  // namespace couchkv::client

#endif  // COUCHKV_CLIENT_SMART_CLIENT_H_
