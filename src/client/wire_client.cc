#include "client/wire_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "cluster/vbucket_map.h"
#include "json/value.h"

namespace couchkv::client {

namespace wire = net::wire;

namespace {

// Client-side opaque source, process-wide: responses are correlated per
// connection, the counter only needs to not repeat quickly.
std::atomic<uint32_t> g_next_opaque{1};

bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<size_t>(w);
  }
  return true;
}

int ConnectPort(uint16_t port, uint64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Parses the server-duration framed extra (if any) out of a response; the
// trace id is the one the client itself attached (the frame does not echo
// it back).
ServerTiming TimingFromResp(const wire::Message& resp, uint64_t trace_id) {
  ServerTiming out;
  out.trace_id = trace_id;
  wire::ServerDuration sd;
  if (wire::GetServerDurationFrame(resp.framing, &sd)) {
    out.total_us = sd.total_us;
    out.dispatch_us = sd.dispatch_us;
    out.engine_us = sd.engine_us;
    out.replicate_us = sd.replicate_us;
    out.persist_us = sd.persist_us;
  }
  return out;
}

// Reads exactly one response frame from `fd` into `out` through `decoder`.
Status ReadFrame(int fd, wire::FrameDecoder* decoder, wire::Message* out) {
  char buf[4096];
  for (;;) {
    Status err = Status::OK();
    auto r = decoder->Next(out, &err);
    if (r == wire::FrameDecoder::Result::kFrame) return Status::OK();
    if (r == wire::FrameDecoder::Result::kError) return err;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::TempFail("wire client: read timed out");
    }
    if (n <= 0) return Status::TempFail("wire client: connection closed");
    decoder->Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

}  // namespace

StatusOr<wire::Message> RawRoundTrip(uint16_t port, const wire::Message& req,
                                     uint64_t timeout_ms) {
  auto resps = RawPipeline(port, {req}, timeout_ms);
  if (!resps.ok()) return resps.status();
  return std::move((*resps)[0]);
}

StatusOr<std::vector<wire::Message>> RawPipeline(
    uint16_t port, const std::vector<wire::Message>& reqs,
    uint64_t timeout_ms) {
  if (port == 0) return Status::TempFail("wire client: no listener");
  std::string bytes;
  for (const wire::Message& req : reqs) {
    COUCHKV_RETURN_IF_ERROR(wire::Encode(req, &bytes));
  }
  int fd = ConnectPort(port, timeout_ms);
  if (fd < 0) {
    return Status::TempFail(std::string("wire client: connect 127.0.0.1:") +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  Status st = Status::OK();
  std::vector<wire::Message> resps;
  if (!SendAll(fd, bytes.data(), bytes.size())) {
    st = Status::TempFail("wire client: send failed");
  } else {
    wire::FrameDecoder decoder(wire::kMagicResponse);
    resps.resize(reqs.size());
    for (wire::Message& resp : resps) {
      st = ReadFrame(fd, &decoder, &resp);
      if (!st.ok()) break;
    }
  }
  ::close(fd);
  if (!st.ok()) return st;
  return resps;
}

WireClient::WireClient(std::vector<uint16_t> bootstrap_ports,
                       std::string bucket, RetryPolicy retry,
                       uint64_t trace_seed)
    : bucket_(std::move(bucket)),
      retry_(retry),
      bootstrap_ports_(std::move(bootstrap_ports)),
      // Seed from the opaque counter so concurrent clients never share a
      // jitter stream.
      backoff_rng_(0x5bd1e995u + g_next_opaque.fetch_add(1)),
      // Trace ids count up from the seed; an auto seed spreads clients far
      // apart (golden-ratio mix of the process-wide counter) so their
      // sequences cannot collide in practice.
      next_trace_id_(trace_seed != 0
                         ? trace_seed
                         : 0x9e3779b97f4a7c15ull *
                               (g_next_opaque.fetch_add(1) + 0x100)) {}

WireClient::~WireClient() { DropConnections(); }

void WireClient::DropConnections() {
  LockGuard lock(mu_);
  for (auto& [id, fd] : conns_) {
    if (fd >= 0) ::close(fd);
  }
  conns_.clear();
}

uint16_t WireClient::num_vbuckets() const {
  LockGuard lock(mu_);
  return routing_.num_vbuckets;
}

uint16_t WireClient::port_of(uint32_t node_id) const {
  LockGuard lock(mu_);
  auto it = routing_.ports.find(node_id);
  return it == routing_.ports.end() ? 0 : it->second;
}

Status WireClient::RefreshMap() {
  // Candidate ports: everything the current map names, then the bootstrap
  // list. Any one live node can serve the map.
  std::vector<uint16_t> candidates;
  {
    LockGuard lock(mu_);
    for (auto& [id, port] : routing_.ports) {
      if (port != 0) candidates.push_back(port);
    }
  }
  candidates.insert(candidates.end(), bootstrap_ports_.begin(),
                    bootstrap_ports_.end());
  Status last = Status::TempFail("wire client: no bootstrap ports");
  for (uint16_t port : candidates) {
    wire::Message req = wire::Message::Req(wire::Opcode::kGetClusterMap);
    req.key = bucket_;
    auto resp = RawRoundTrip(port, req);
    if (!resp.ok()) {
      last = resp.status();
      continue;
    }
    if (resp->status != wire::kSuccess) {
      last = wire::StatusFromWire(resp->status, resp->value);
      continue;
    }
    auto doc = json::Parse(resp->value);
    if (!doc.ok()) {
      last = doc.status();
      continue;
    }
    if (!doc->Field("num_vbuckets").is_number() ||
        !doc->Field("nodes").is_array() || !doc->Field("active").is_array()) {
      last = Status::ParseError("wire client: malformed cluster map");
      continue;
    }
    Routing fresh;
    if (doc->Field("map_version").is_number()) {
      fresh.map_version =
          static_cast<uint64_t>(doc->Field("map_version").AsInt());
    }
    fresh.num_vbuckets =
        static_cast<uint16_t>(doc->Field("num_vbuckets").AsInt());
    if (fresh.num_vbuckets == 0) {
      last = Status::ParseError("wire client: map with zero vbuckets");
      continue;
    }
    for (const json::Value& n : doc->Field("nodes").AsArray()) {
      if (!n.Field("id").is_number() || !n.Field("port").is_number()) continue;
      fresh.ports[static_cast<uint32_t>(n.Field("id").AsInt())] =
          static_cast<uint16_t>(n.Field("port").AsInt());
    }
    const json::Value::Array& active = doc->Field("active").AsArray();
    fresh.active.reserve(active.size());
    for (const json::Value& a : active) {
      int64_t id = a.is_number() ? a.AsInt() : -1;
      fresh.active.push_back(id < 0 ? UINT32_MAX
                                    : static_cast<uint32_t>(id));
    }
    if (fresh.active.size() != fresh.num_vbuckets) {
      last = Status::ParseError("wire client: truncated active list");
      continue;
    }
    LockGuard lock(mu_);
    // Connections to nodes whose port moved are stale; drop them so the
    // next op reconnects to the new listener.
    for (auto it = conns_.begin(); it != conns_.end();) {
      auto p = fresh.ports.find(it->first);
      auto old = routing_.ports.find(it->first);
      bool moved = p == fresh.ports.end() || old == routing_.ports.end() ||
                   p->second != old->second;
      if (moved) {
        if (it->second >= 0) ::close(it->second);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    routing_ = std::move(fresh);
    return Status::OK();
  }
  return last;
}

Status WireClient::Exchange(uint32_t node_id, const wire::Message& req,
                            wire::Message* resp) {
  std::string bytes;
  COUCHKV_RETURN_IF_ERROR(wire::Encode(req, &bytes));
  LockGuard lock(mu_);
  auto pit = routing_.ports.find(node_id);
  if (pit == routing_.ports.end() || pit->second == 0) {
    return Status::TempFail("wire client: node " + std::to_string(node_id) +
                            " has no known listener");
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto cit = conns_.find(node_id);
    bool fresh_conn = false;
    if (cit == conns_.end()) {
      int fd = ConnectPort(pit->second, 5000);
      if (fd < 0) {
        return Status::TempFail(
            std::string("wire client: connect 127.0.0.1:") +
            std::to_string(pit->second) + ": " + std::strerror(errno));
      }
      cit = conns_.emplace(node_id, fd).first;
      fresh_conn = true;
    }
    Status st = Status::OK();
    if (!SendAll(cit->second, bytes.data(), bytes.size())) {
      st = Status::TempFail("wire client: send failed");
    } else {
      wire::FrameDecoder decoder(wire::kMagicResponse);
      st = ReadFrame(cit->second, &decoder, resp);
      if (st.ok() && resp->opaque != req.opaque) {
        st = Status::TempFail("wire client: opaque mismatch");
      }
    }
    if (st.ok()) return Status::OK();
    ::close(cit->second);
    conns_.erase(cit);
    // A pooled connection may have died while idle (its node restarted);
    // one retry on a fresh connection. A fresh connection's failure is
    // real.
    if (fresh_conn) return st;
  }
  return Status::Internal("unreachable");
}

Status WireClient::Dispatch(std::string_view key, wire::Message req,
                            wire::Message* resp, uint16_t* vb_out,
                            uint64_t* trace_out) {
  req.opaque = g_next_opaque.fetch_add(1, std::memory_order_relaxed);
  // One trace id for the whole dispatch: every retry (NMVB redirect, port
  // re-learn) is a leg of the same logical op and lands in the flight
  // recorder under the same id. Attaching the frame makes the request a
  // flex frame, which is also what asks the server for a duration report.
  uint64_t trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  if (trace_id == 0) {
    trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  wire::TraceFrame tf;
  tf.trace_id = trace_id;
  wire::PutTraceFrame(&req.framing, tf);
  if (trace_out != nullptr) *trace_out = trace_id;
  uint64_t backoff_us = 0;
  Status last = Status::OK();
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      backoff_us = NextBackoffUs(retry_, backoff_us, backoff_rng_);
      // justified: client retry backoff must really wait — spinning on
      // the clock would hammer a recovering node.
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    uint32_t node_id = UINT32_MAX;
    uint16_t vb = 0;
    {
      LockGuard lock(mu_);
      if (routing_.num_vbuckets != 0) {
        vb = cluster::KeyToVBucket(key, routing_.num_vbuckets);
        node_id = routing_.active[vb];
      }
    }
    if (node_id == UINT32_MAX) {
      // No map yet, or the vBucket has no active copy. Refresh; if the map
      // still names no active, fail fast — a dead partition does not heal
      // within a retry loop (mirrors SmartClient).
      Status st = RefreshMap();
      if (!st.ok()) {
        last = st;
        continue;
      }
      LockGuard lock(mu_);
      vb = cluster::KeyToVBucket(key, routing_.num_vbuckets);
      if (routing_.active[vb] == UINT32_MAX) {
        return Status::TempFail("wire client: vbucket " + std::to_string(vb) +
                                " has no active node");
      }
      node_id = routing_.active[vb];
    }
    req.vbucket = vb;
    *vb_out = vb;
    Status st = Exchange(node_id, req, resp);
    if (!st.ok()) {
      // Transport-level failure: the node may be down or rebooted onto a
      // new port. Re-learn and retry.
      last = st;
      // justified: refresh is best-effort inside the retry loop; the next
      // iteration surfaces persistent failure through `last`.
      (void)RefreshMap();
      continue;
    }
    if (resp->status == wire::kNotMyVBucketErr ||
        resp->status == wire::kTempFailErr) {
      last = wire::StatusFromWire(resp->status, resp->value);
      // justified: same best-effort refresh as above.
      (void)RefreshMap();
      continue;
    }
    return Status::OK();
  }
  return last.ok() ? Status::TempFail("wire client: retries exhausted") : last;
}

StatusOr<GetReply> WireClient::Get(std::string_view key) {
  wire::Message req = wire::Message::Req(wire::Opcode::kGet);
  req.key = key;
  wire::Message resp;
  uint16_t vb = 0;
  uint64_t trace = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb, &trace));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  GetReply out;
  out.key = key;
  out.value = std::move(resp.value);
  out.cas = resp.cas;
  out.server = TimingFromResp(resp, trace);
  // justified: a success GET always carries flags extras; tolerate their
  // absence (flags stay 0) rather than failing a fetched value.
  (void)wire::GetU32BE(resp.extras, 0, &out.flags);
  return out;
}

StatusOr<MutateReply> WireClient::Mutate(wire::Opcode op, std::string_view key,
                                         std::string_view value,
                                         const WriteOptions& opts) {
  wire::Message req = wire::Message::Req(op);
  req.key = key;
  req.value = value;
  req.cas = opts.cas;
  wire::PutMutationExtras(&req.extras, opts.flags, opts.expiry);
  const cluster::Durability& dur = opts.durability;
  if (dur.replicate_to > 0 || dur.persist_to > 0) {
    wire::DurabilityFrame df;
    df.replicate_to = static_cast<uint8_t>(
        dur.replicate_to > UINT8_MAX ? UINT8_MAX : dur.replicate_to);
    df.persist_to = static_cast<uint8_t>(
        dur.persist_to > UINT8_MAX ? UINT8_MAX : dur.persist_to);
    df.timeout_ms = static_cast<uint32_t>(
        dur.timeout_ms > UINT32_MAX ? UINT32_MAX : dur.timeout_ms);
    wire::PutDurabilityFrame(&req.framing, df);
  }
  wire::Message resp;
  uint16_t vb = 0;
  uint64_t trace = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb, &trace));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  MutateReply out;
  out.cas = resp.cas;
  out.vbucket = vb;
  out.server = TimingFromResp(resp, trace);
  // justified: mutation responses without seqno extras leave seqno 0.
  (void)wire::GetU64BE(resp.extras, 0, &out.seqno);
  return out;
}

StatusOr<MutateReply> WireClient::Upsert(std::string_view key,
                                         std::string_view value,
                                         const WriteOptions& opts) {
  return Mutate(wire::Opcode::kSet, key, value, opts);
}

StatusOr<MutateReply> WireClient::Insert(std::string_view key,
                                         std::string_view value,
                                         const WriteOptions& opts) {
  return Mutate(wire::Opcode::kAdd, key, value, opts);
}

StatusOr<MutateReply> WireClient::Replace(std::string_view key,
                                          std::string_view value,
                                          const WriteOptions& opts) {
  return Mutate(wire::Opcode::kReplace, key, value, opts);
}

StatusOr<MutateReply> WireClient::Remove(std::string_view key, uint64_t cas,
                                         const cluster::Durability& dur) {
  wire::Message req = wire::Message::Req(wire::Opcode::kDelete);
  req.key = key;
  req.cas = cas;
  if (dur.replicate_to > 0 || dur.persist_to > 0) {
    wire::DurabilityFrame df;
    df.replicate_to = static_cast<uint8_t>(
        dur.replicate_to > UINT8_MAX ? UINT8_MAX : dur.replicate_to);
    df.persist_to = static_cast<uint8_t>(
        dur.persist_to > UINT8_MAX ? UINT8_MAX : dur.persist_to);
    df.timeout_ms = static_cast<uint32_t>(
        dur.timeout_ms > UINT32_MAX ? UINT32_MAX : dur.timeout_ms);
    wire::PutDurabilityFrame(&req.framing, df);
  }
  wire::Message resp;
  uint16_t vb = 0;
  uint64_t trace = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb, &trace));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  MutateReply out;
  out.cas = resp.cas;
  out.vbucket = vb;
  out.server = TimingFromResp(resp, trace);
  // justified: see Mutate.
  (void)wire::GetU64BE(resp.extras, 0, &out.seqno);
  return out;
}

StatusOr<GetReply> WireClient::GetAndLock(std::string_view key,
                                          uint64_t lock_ms) {
  wire::Message req = wire::Message::Req(wire::Opcode::kGetLocked);
  req.key = key;
  wire::PutU32BE(&req.extras, static_cast<uint32_t>(lock_ms));
  wire::Message resp;
  uint16_t vb = 0;
  uint64_t trace = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb, &trace));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  GetReply out;
  out.key = key;
  out.value = std::move(resp.value);
  out.cas = resp.cas;
  out.server = TimingFromResp(resp, trace);
  // justified: see Get.
  (void)wire::GetU32BE(resp.extras, 0, &out.flags);
  return out;
}

Status WireClient::Unlock(std::string_view key, uint64_t cas) {
  wire::Message req = wire::Message::Req(wire::Opcode::kUnlockKey);
  req.key = key;
  req.cas = cas;
  wire::Message resp;
  uint16_t vb = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb));
  return wire::StatusFromWire(resp.status, resp.value);
}

Status WireClient::Touch(std::string_view key, uint32_t expiry) {
  wire::Message req = wire::Message::Req(wire::Opcode::kTouch);
  req.key = key;
  wire::PutU32BE(&req.extras, expiry);
  wire::Message resp;
  uint16_t vb = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb));
  return wire::StatusFromWire(resp.status, resp.value);
}

StatusOr<std::string> WireClient::StatsFor(std::string_view key,
                                           const std::string& group) {
  wire::Message req = wire::Message::Req(wire::Opcode::kStat);
  req.key = group;
  wire::Message resp;
  uint16_t vb = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  return std::move(resp.value);
}

StatusOr<std::string> WireClient::ObserveTraceFor(std::string_view key,
                                                  uint64_t trace_id) {
  wire::Message req = wire::Message::Req(wire::Opcode::kObserveTrace);
  if (trace_id != 0) req.key = std::to_string(trace_id);
  wire::Message resp;
  uint16_t vb = 0;
  COUCHKV_RETURN_IF_ERROR(Dispatch(key, std::move(req), &resp, &vb));
  if (resp.status != wire::kSuccess) {
    return wire::StatusFromWire(resp.status, resp.value);
  }
  return std::move(resp.value);
}

}  // namespace couchkv::client
