#include "gsi/indexer.h"

#include "common/crc32.h"
#include "common/logging.h"

namespace couchkv::gsi {

bool IndexPartition::OwnsKey(const json::Value& key) const {
  if (def_.num_partitions <= 1) return true;
  std::string serialized = key.ToJson();
  return Crc32(serialized) % def_.num_partitions == partition_id_;
}

void IndexPartition::LogApply(const KeyVersion& kv) {
  if (log_ == nullptr) return;  // memory-optimized: no disk write
  // A compact log record: enough to measure realistic write volume.
  std::string record;
  record.reserve(64 + kv.doc_id.size());
  record += kv.doc_id;
  record += '\x1f';
  for (const auto& k : kv.keys) {
    k.AppendJson(&record);
    record += '\x1e';
  }
  record += '\n';
  auto off = log_->Append(record);
  if (off.ok()) {
    disk_bytes_.fetch_add(record.size(), std::memory_order_relaxed);
  } else {
    log_append_failures_->Add();
    LOG_WARN << "gsi partition " << partition_id_ << " log append failed: "
             << off.status().ToString();
  }
  if (++applies_since_sync_ >= 64) {
    Status st = log_->Sync();
    if (st.ok()) {
      applies_since_sync_ = 0;
    } else {
      // Keep applies_since_sync_ saturated so the very next apply retries
      // the sync instead of silently skipping another 64 applies' worth of
      // durability.
      applies_since_sync_ = 64;
      sync_failures_.fetch_add(1, std::memory_order_relaxed);
      log_sync_failures_->Add();
      LOG_WARN << "gsi partition " << partition_id_ << " log sync failed: "
               << st.ToString() << "; will retry on next apply";
    }
  }
}

void IndexPartition::Apply(const KeyVersion& kv) {
  WriterLockGuard lock(mu_);
  // Remove whatever this partition currently holds for the document.
  auto prev = back_.find(kv.doc_id);
  if (prev != back_.end()) {
    for (const json::Value& old_key : prev->second) {
      tree_.erase(TreeKey{old_key, kv.doc_id});
    }
    back_.erase(prev);
  }
  // Insert the new keys that belong to this partition.
  std::vector<json::Value> owned;
  for (const json::Value& key : kv.keys) {
    if (!OwnsKey(key)) continue;
    tree_[TreeKey{key, kv.doc_id}] = kv.vbucket;
    owned.push_back(key);
  }
  if (!owned.empty()) back_[kv.doc_id] = std::move(owned);
  LogApply(kv);
  // seqnos from one vBucket arrive in order, so a plain store suffices.
  processed_[kv.vbucket].store(kv.seqno, std::memory_order_release);
}

std::vector<IndexEntry> IndexPartition::Scan(const ScanRange& range,
                                             size_t limit) const {
  ReaderLockGuard lock(mu_);
  std::vector<IndexEntry> out;
  auto it = tree_.begin();
  if (range.lo.has_value()) {
    it = tree_.lower_bound(TreeKey{*range.lo, ""});
    if (!range.lo_inclusive) {
      while (it != tree_.end() &&
             json::Value::Compare(it->first.key, *range.lo) == 0) {
        ++it;
      }
    }
  }
  for (; it != tree_.end() && out.size() < limit; ++it) {
    if (range.hi.has_value()) {
      int c = json::Value::Compare(it->first.key, *range.hi);
      if (c > 0 || (c == 0 && !range.hi_inclusive)) break;
    }
    out.push_back(IndexEntry{it->first.key, it->first.doc_id});
  }
  return out;
}

size_t IndexPartition::num_entries() const {
  ReaderLockGuard lock(mu_);
  return tree_.size();
}

}  // namespace couchkv::gsi
