// The index service (paper §4.3.4): manages global secondary indexes.
// The Projector (on each data node) evaluates DCP mutations against index
// definitions; the Router forwards the resulting key versions to the
// Indexer partitions hosted on index-service nodes; the Index Manager
// handles DDL (create/drop/list) and scans with configurable consistency.
#ifndef COUCHKV_GSI_INDEX_SERVICE_H_
#define COUCHKV_GSI_INDEX_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "gsi/index_defs.h"
#include "gsi/indexer.h"
#include "stats/registry.h"

namespace couchkv::gsi {

// Evaluates the map from a document version to its secondary keys.
// Exposed for unit testing; the projector calls this per mutation.
std::vector<json::Value> ProjectKeys(const IndexDefinition& def,
                                     const std::string& doc_id,
                                     const json::Value* doc /*null=deleted*/);

struct IndexStats {
  std::string name;
  size_t num_entries = 0;
  uint32_t num_partitions = 1;
  uint64_t disk_bytes_written = 0;
};

class IndexService : public cluster::ClusterService,
                     public std::enable_shared_from_this<IndexService> {
 public:
  explicit IndexService(cluster::Cluster* cluster) : cluster_(cluster) {
    stats_scope_ = stats::Registry::Global().GetScope("gsi");
    keys_projected_ = stats_scope_->GetCounter("keys_projected");
    routed_keys_ = stats_scope_->GetCounter("routed_keys");
    scans_ = stats_scope_->GetCounter("scans");
    scan_retries_ = stats_scope_->GetCounter("scan_retries");
    scan_ns_ = stats_scope_->GetHistogram("scan_ns");
  }

  void Attach() { cluster_->RegisterService("gsi", shared_from_this()); }

  // --- Index Manager: DDL ---
  Status CreateIndex(IndexDefinition def);
  Status DropIndex(const std::string& bucket, const std::string& name);
  std::vector<IndexDefinition> ListIndexes(const std::string& bucket) const;
  // Returns the definition, or error if the index does not exist.
  StatusOr<IndexDefinition> GetIndex(const std::string& bucket,
                                     const std::string& name) const;

  // --- Scans ---
  // Range scan with the requested consistency. The result merges all
  // partitions in key order (scatter/gather for partitioned GSI).
  StatusOr<std::vector<IndexEntry>> Scan(const std::string& bucket,
                                         const std::string& name,
                                         const ScanRange& range, size_t limit,
                                         ScanConsistency consistency);

  // Blocks until the index covers every mutation present at call time.
  Status WaitUntilCaughtUp(const std::string& bucket, const std::string& name,
                           uint64_t timeout_ms = 30000);

  IndexStats Stats(const std::string& bucket, const std::string& name) const;

  // ClusterService: re-wire projector streams after topology changes.
  void OnTopologyChange(const std::string& bucket) override;

 private:
  struct IndexState {
    IndexDefinition def;
    std::vector<std::shared_ptr<IndexPartition>> partitions;
    // Index nodes hosting each partition (for MDS bookkeeping).
    std::vector<cluster::NodeId> placement;
  };

  void WireIndex(const std::string& bucket,
                 std::shared_ptr<IndexState> state);
  // The router: broadcast a key version to every partition (each partition
  // keeps only the keys it owns; see IndexPartition::Apply). Each forward
  // is a message from the projector's data node to the partition's index
  // node through `t`; a lost forward returns non-OK, stalling the DCP
  // stream so the key version is re-delivered (Apply is idempotent).
  static Status Route(net::Transport* t, cluster::NodeId src_node,
                      IndexState* state, const KeyVersion& kv);
  // Min processed seqno across partitions for one vBucket.
  static uint64_t ProcessedSeqno(const IndexState& state, uint16_t vb);

  std::string StreamName(const IndexDefinition& def) const {
    return "gsi:" + def.bucket + ":" + def.name;
  }

  cluster::Cluster* cluster_;

  // Service-wide observability (scope "gsi"): projector output volume,
  // router traffic, and scatter/gather scan latency across partitions.
  std::shared_ptr<stats::Scope> stats_scope_;
  stats::Counter* keys_projected_ = nullptr;
  stats::Counter* routed_keys_ = nullptr;
  stats::Counter* scans_ = nullptr;
  stats::Counter* scan_retries_ = nullptr;
  Histogram* scan_ns_ = nullptr;

  mutable Mutex mu_{"gsi.index_service"};
  // bucket -> index name -> state. Values are shared_ptr so scans can run
  // without holding mu_.
  std::map<std::string, std::map<std::string, std::shared_ptr<IndexState>>>
      indexes_ GUARDED_BY(mu_);
};

}  // namespace couchkv::gsi

#endif  // COUCHKV_GSI_INDEX_SERVICE_H_
