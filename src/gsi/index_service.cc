#include "gsi/index_service.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "stats/trace.h"

namespace couchkv::gsi {

std::vector<json::Value> ProjectKeys(const IndexDefinition& def,
                                     const std::string& doc_id,
                                     const json::Value* doc) {
  if (doc == nullptr) return {};  // deletion: drop all entries
  if (def.where_fn && !def.where_fn(*doc)) return {};  // partial index filter
  if (def.is_primary) {
    return {json::Value::Str(doc_id)};
  }
  if (def.key_paths.empty()) return {};

  const json::Value& leading = doc->GetPath(def.key_paths[0]);
  // Couchbase does not index documents whose leading key is MISSING.
  if (leading.is_missing()) return {};

  auto make_key = [&](const json::Value& lead) -> json::Value {
    if (def.key_paths.size() == 1) return lead;
    json::Value::Array parts;
    parts.push_back(lead);
    for (size_t i = 1; i < def.key_paths.size(); ++i) {
      parts.push_back(doc->GetPath(def.key_paths[i]));
    }
    return json::Value::MakeArray(std::move(parts));
  };

  if (def.array_index) {
    // Array index (paper §6.1.2): one entry per element of the leading
    // array, so predicates over array contents become index scans.
    if (!leading.is_array()) return {};
    std::vector<json::Value> keys;
    keys.reserve(leading.AsArray().size());
    for (const json::Value& elem : leading.AsArray()) {
      keys.push_back(make_key(elem));
    }
    return keys;
  }
  return {make_key(leading)};
}

Status IndexService::CreateIndex(IndexDefinition def) {
  if (def.name.empty() || def.bucket.empty()) {
    return Status::InvalidArgument("index needs name and bucket");
  }
  if (!def.is_primary && def.key_paths.empty()) {
    return Status::InvalidArgument("secondary index needs key paths");
  }
  if (def.num_partitions == 0) def.num_partitions = 1;
  auto map = cluster_->map(def.bucket);
  if (!map) return Status::NotFound("no such bucket: " + def.bucket);

  // Place partitions round-robin across healthy index-service nodes.
  std::vector<cluster::NodeId> index_nodes;
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n != nullptr && n->healthy() && n->HasService(cluster::kIndexService)) {
      index_nodes.push_back(id);
    }
  }
  if (index_nodes.empty()) return Status::Unsupported("no index nodes");

  auto state = std::make_shared<IndexState>();
  state->def = def;
  for (uint32_t p = 0; p < def.num_partitions; ++p) {
    cluster::NodeId host = index_nodes[p % index_nodes.size()];
    std::unique_ptr<storage::File> log;
    if (def.mode == IndexStorageMode::kStandard) {
      std::string path = "gsi." + def.bucket + "." + def.name + ".p" +
                         std::to_string(p) + ".log";
      auto file_or = cluster_->node(host)->env()->Open(path);
      if (!file_or.ok()) return file_or.status();
      log = std::move(file_or).value();
    }
    state->partitions.push_back(
        std::make_shared<IndexPartition>(def, p, std::move(log)));
    state->placement.push_back(host);
  }

  {
    LockGuard lock(mu_);
    auto& per_bucket = indexes_[def.bucket];
    if (per_bucket.count(def.name)) {
      return Status::KeyExists("index exists: " + def.name);
    }
    per_bucket[def.name] = state;
  }
  WireIndex(def.bucket, state);
  return Status::OK();
}

Status IndexService::DropIndex(const std::string& bucket,
                               const std::string& name) {
  std::shared_ptr<IndexState> state;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return Status::NotFound("no such index");
    auto it = bit->second.find(name);
    if (it == bit->second.end()) return Status::NotFound("no such index");
    state = it->second;
    bit->second.erase(it);
  }
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    std::shared_ptr<cluster::Bucket> b = n ? n->bucket(bucket) : nullptr;
    if (b != nullptr) b->producer()->RemoveStreamsNamed(StreamName(state->def));
  }
  return Status::OK();
}

std::vector<IndexDefinition> IndexService::ListIndexes(
    const std::string& bucket) const {
  LockGuard lock(mu_);
  std::vector<IndexDefinition> out;
  auto bit = indexes_.find(bucket);
  if (bit == indexes_.end()) return out;
  for (const auto& [name, state] : bit->second) out.push_back(state->def);
  return out;
}

StatusOr<IndexDefinition> IndexService::GetIndex(
    const std::string& bucket, const std::string& name) const {
  LockGuard lock(mu_);
  auto bit = indexes_.find(bucket);
  if (bit != indexes_.end()) {
    auto it = bit->second.find(name);
    if (it != bit->second.end()) return it->second->def;
  }
  return Status::NotFound("no such index: " + name);
}

Status IndexService::Route(net::Transport* t, cluster::NodeId src_node,
                           IndexState* state, const KeyVersion& kv) {
  // The router decides which indexer receives the key version. With a
  // broadcast scheme, an insert lands on the partition owning the new key
  // while deletes land wherever old entries live (paper §4.3.4: "An insert
  // message may be sent to one indexer with a delete message being sent to
  // another ... if the partition key itself has changed").
  for (size_t i = 0; i < state->partitions.size(); ++i) {
    IndexPartition* p = state->partitions[i].get();
    Status st =
        net::Call(t, net::Endpoint::Node(src_node),
                  net::Endpoint::Node(state->placement[i]), [&] {
                    p->Apply(kv);
                    return Status::OK();
                  });
    // Partial broadcast is fine: the re-delivery re-applies to every
    // partition, and Apply replaces a document's entries wholesale, so
    // applying the same key version twice is a no-op.
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void IndexService::WireIndex(const std::string& bucket,
                             std::shared_ptr<IndexState> state) {
  auto map = cluster_->map(bucket);
  if (!map) return;
  const std::string stream = StreamName(state->def);
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n == nullptr || !n->HasService(cluster::kDataService)) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    b->producer()->RemoveStreamsNamed(stream);
    if (!n->healthy()) continue;
    IndexDefinition def = state->def;
    cluster::Cluster* cluster = cluster_;
    stats::Counter* projected = keys_projected_;
    stats::Counter* routed = routed_keys_;
    for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
      if (map->ActiveFor(vb) != id) continue;
      uint64_t from = ProcessedSeqno(*state, vb);
      std::shared_ptr<IndexState> sp = state;
      auto st = b->producer()->AddStream(
          stream, vb, from,
          [sp, def, cluster, id, projected, routed](const kv::Mutation& m) {
            // Projector: evaluate the secondary keys for this mutation.
            KeyVersion kv;
            kv.index_name = def.name;
            kv.doc_id = m.doc.key;
            kv.vbucket = m.vbucket;
            kv.seqno = m.doc.meta.seqno;
            if (!m.doc.meta.deleted) {
              auto parsed = json::Parse(m.doc.value);
              if (parsed.ok()) {
                kv.keys = ProjectKeys(def, m.doc.key, &parsed.value());
              }
            }
            projected->Add(kv.keys.size());
            Status routed_st = Route(cluster->transport(), id, sp.get(), kv);
            if (routed_st.ok()) routed->Add();
            return routed_st;
          });
      if (!st.ok()) {
        LOG_WARN << "gsi stream failed: " << st.status().ToString();
      }
    }
    n->dispatcher()->Notify();
  }
}

void IndexService::OnTopologyChange(const std::string& bucket) {
  std::vector<std::shared_ptr<IndexState>> states;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return;
    for (auto& [name, st] : bit->second) states.push_back(st);
  }
  for (auto& st : states) WireIndex(bucket, st);
}

uint64_t IndexService::ProcessedSeqno(const IndexState& state, uint16_t vb) {
  uint64_t min_seqno = UINT64_MAX;
  for (const auto& p : state.partitions) {
    min_seqno = std::min(min_seqno, p->processed_seqno(vb));
  }
  return min_seqno == UINT64_MAX ? 0 : min_seqno;
}

Status IndexService::WaitUntilCaughtUp(const std::string& bucket,
                                       const std::string& name,
                                       uint64_t timeout_ms) {
  std::shared_ptr<IndexState> state;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return Status::NotFound("no such index");
    auto it = bit->second.find(name);
    if (it == bit->second.end()) return Status::NotFound("no such index");
    state = it->second;
  }
  auto map = cluster_->map(bucket);
  if (!map) return Status::NotFound("no map");

  // Capture the per-vBucket high seqnos at request time (this is exactly
  // the request_plus barrier of §3.2.3 / §4.2).
  struct Target {
    uint16_t vb;
    uint64_t seqno;
    cluster::Node* node;
  };
  std::vector<Target> targets;
  for (uint16_t vb = 0; vb < cluster::kNumVBuckets; ++vb) {
    cluster::NodeId active = map->ActiveFor(vb);
    cluster::Node* n = cluster_->node(active);
    if (n == nullptr || !n->healthy()) continue;
    std::shared_ptr<cluster::Bucket> b = n->bucket(bucket);
    if (b == nullptr) continue;
    uint64_t high = b->vbucket(vb)->high_seqno();
    if (high > ProcessedSeqno(*state, vb)) targets.push_back({vb, high, n});
  }
  uint64_t deadline = cluster_->clock()->NowMillis() + timeout_ms;
  for (const Target& t : targets) {
    while (ProcessedSeqno(*state, t.vb) < t.seqno) {
      t.node->dispatcher()->Notify();
      if (cluster_->clock()->NowMillis() > deadline) {
        return Status::Timeout("request_plus wait exceeded timeout");
      }
      std::this_thread::yield();
    }
  }
  return Status::OK();
}

StatusOr<std::vector<IndexEntry>> IndexService::Scan(
    const std::string& bucket, const std::string& name, const ScanRange& range,
    size_t limit, ScanConsistency consistency) {
  std::shared_ptr<IndexState> state;
  {
    LockGuard lock(mu_);
    auto bit = indexes_.find(bucket);
    if (bit == indexes_.end()) return Status::NotFound("no such index");
    auto it = bit->second.find(name);
    if (it == bit->second.end()) return Status::NotFound("no such index");
    state = it->second;
  }
  scans_->Add();
  trace::Span span("gsi.scan", scan_ns_);
  if (consistency == ScanConsistency::kRequestPlus) {
    COUCHKV_RETURN_IF_ERROR(WaitUntilCaughtUp(bucket, name));
  }
  span.Phase("barrier");
  // Scatter: scan each partition on its index node; gather: merge in key
  // order. Each partition scan is one round trip on the query-service ->
  // index-node link, retried a few times under transient faults.
  net::Transport* t = cluster_->transport();
  std::vector<IndexEntry> merged;
  for (size_t i = 0; i < state->partitions.size(); ++i) {
    IndexPartition* p = state->partitions[i].get();
    std::vector<IndexEntry> part;
    Status st = Status::OK();
    for (int attempt = 0; attempt < 16; ++attempt) {
      if (attempt > 0) scan_retries_->Add();
      part.clear();
      st = net::Call(t, net::Endpoint::Service(net::kServiceQuery),
                     net::Endpoint::Node(state->placement[i]), [&] {
                       part = p->Scan(range, limit);
                       return Status::OK();
                     });
      if (st.ok()) break;
      std::this_thread::yield();
    }
    if (!st.ok()) return st;  // partition unreachable: the scan fails whole
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              int c = json::Value::Compare(a.key, b.key);
              if (c != 0) return c < 0;
              return a.doc_id < b.doc_id;
            });
  if (merged.size() > limit) merged.resize(limit);
  return merged;
}

IndexStats IndexService::Stats(const std::string& bucket,
                               const std::string& name) const {
  IndexStats stats;
  LockGuard lock(mu_);
  auto bit = indexes_.find(bucket);
  if (bit == indexes_.end()) return stats;
  auto it = bit->second.find(name);
  if (it == bit->second.end()) return stats;
  stats.name = name;
  stats.num_partitions = it->second->def.num_partitions;
  for (const auto& p : it->second->partitions) {
    stats.num_entries += p->num_entries();
    stats.disk_bytes_written += p->disk_bytes_written();
  }
  return stats;
}

}  // namespace couchkv::gsi
