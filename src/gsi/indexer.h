// The local indexer (paper §4.3.4): stores one partition of a global
// secondary index as an ordered tree of (secondary key, doc id) pairs,
// applies key versions arriving from the router, and serves range scans.
//
// The standard storage mode writes every applied key version through to an
// append-only log on the index node's disk (what makes high mutation rates
// expensive); the memory-optimized mode (paper §6.1.1) skips the disk
// entirely.
#ifndef COUCHKV_GSI_INDEXER_H_
#define COUCHKV_GSI_INDEXER_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "gsi/index_defs.h"
#include "stats/registry.h"
#include "storage/env.h"

namespace couchkv::gsi {

class IndexPartition {
 public:
  // `log_file` is null in memory-optimized mode.
  IndexPartition(IndexDefinition def, uint32_t partition_id,
                 std::unique_ptr<storage::File> log_file)
      : def_(std::move(def)),
        partition_id_(partition_id),
        log_(std::move(log_file)) {
    stats_scope_ = stats::Registry::Global().GetScope("gsi");
    log_append_failures_ = stats_scope_->GetCounter("log_append_failures");
    log_sync_failures_ = stats_scope_->GetCounter("log_sync_failures");
  }

  const IndexDefinition& definition() const { return def_; }
  uint32_t partition_id() const { return partition_id_; }

  // True if `key` hashes to this partition.
  bool OwnsKey(const json::Value& key) const;

  // Applies one key version. The router broadcasts key versions to every
  // partition: each one drops the doc's stale entries it holds and inserts
  // the new keys it owns (this is how an insert can go to one indexer and a
  // delete to another when the partition key changes, §4.3.4).
  void Apply(const KeyVersion& kv);

  // Ordered range scan over this partition.
  std::vector<IndexEntry> Scan(const ScanRange& range, size_t limit) const;

  uint64_t processed_seqno(uint16_t vb) const {
    return processed_[vb].load(std::memory_order_acquire);
  }

  size_t num_entries() const;
  uint64_t disk_bytes_written() const { return disk_bytes_.load(); }
  uint64_t log_sync_failures() const { return sync_failures_.load(); }

 private:
  struct TreeKey {
    json::Value key;
    std::string doc_id;
    bool operator<(const TreeKey& other) const {
      int c = json::Value::Compare(key, other.key);
      if (c != 0) return c < 0;
      return doc_id < other.doc_id;
    }
  };

  void LogApply(const KeyVersion& kv) REQUIRES(mu_);

  IndexDefinition def_;
  uint32_t partition_id_;
  std::unique_ptr<storage::File> log_;  // written only by LogApply

  // Durability-path failure accounting (scope "gsi"): a dropped log write
  // or fsync is never silent — it is counted, logged, and the sync retried
  // on the next apply.
  std::shared_ptr<stats::Scope> stats_scope_;
  stats::Counter* log_append_failures_ = nullptr;
  stats::Counter* log_sync_failures_ = nullptr;
  std::atomic<uint64_t> sync_failures_{0};

  mutable SharedMutex mu_{"gsi.indexer"};
  COUCHKV_LOCK_ORDER("gsi.index_service", "gsi.indexer");
  COUCHKV_LOCK_ORDER("gsi.indexer", "storage.mem_file");
  std::map<TreeKey, uint16_t> tree_ GUARDED_BY(mu_);  // value: owning vbucket
  // Back-index: doc_id -> keys currently indexed here (for removal).
  std::unordered_map<std::string, std::vector<json::Value>> back_
      GUARDED_BY(mu_);
  std::array<std::atomic<uint64_t>, cluster::kNumVBuckets> processed_{};
  std::atomic<uint64_t> disk_bytes_{0};
  uint64_t applies_since_sync_ GUARDED_BY(mu_) = 0;
};

}  // namespace couchkv::gsi

#endif  // COUCHKV_GSI_INDEXER_H_
