// Definitions shared by the GSI components (paper §3.3.2, §4.3.4): index
// metadata, key versions flowing projector → router → indexer, and scan
// parameters.
#ifndef COUCHKV_GSI_INDEX_DEFS_H_
#define COUCHKV_GSI_INDEX_DEFS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "json/value.h"

namespace couchkv::gsi {

// How an index stores its data (paper §6.1.1): the standard indexer writes
// through to disk; the memory-optimized indexer keeps everything resident.
enum class IndexStorageMode { kStandard, kMemoryOptimized };

// Scan consistency for index reads (paper §3.2.3).
enum class ScanConsistency {
  kNotBounded,   // lowest latency; may miss recent mutations
  kRequestPlus,  // wait until the index covers all mutations at request time
};

// A secondary-index definition.
struct IndexDefinition {
  std::string name;
  std::string bucket;
  // Indexed paths; several paths form a composite (array-valued) key.
  std::vector<std::string> key_paths;
  // Array index (paper §6.1.2): when set, the leading key path must resolve
  // to an array and one entry is created per element.
  bool array_index = false;
  // Partial index (paper §3.3.4): entries exist only for docs satisfying
  // this predicate. `where_text` is the normalized predicate text used by
  // the planner for implication checks; `where_fn` evaluates it.
  std::string where_text;
  std::function<bool(const json::Value&)> where_fn;
  // PRIMARY INDEX (paper §3.3.3): indexes META().id itself.
  bool is_primary = false;
  // Number of partitions; >1 gives a partitioned GSI with scatter/gather
  // scans (paper §4.3.4 "Indexer").
  uint32_t num_partitions = 1;
  IndexStorageMode mode = IndexStorageMode::kStandard;
};

// A mutation projected onto one index: what the Projector sends through the
// Router to the Indexers (paper §4.3.3 "Index Projector" / "Index Router").
struct KeyVersion {
  std::string index_name;
  std::string doc_id;
  uint16_t vbucket = 0;
  uint64_t seqno = 0;
  // Secondary keys this version of the document produces. Empty = the doc
  // no longer qualifies (deleted, filtered out, or missing leading key), so
  // indexers must drop any previous entries.
  std::vector<json::Value> keys;
};

// One scan result row. For covering scans the secondary key values ride
// along so the query service need not fetch the document.
struct IndexEntry {
  json::Value key;
  std::string doc_id;
};

// Range bounds for a scan; unset bounds are unbounded.
struct ScanRange {
  std::optional<json::Value> lo;
  std::optional<json::Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  static ScanRange All() { return {}; }
  static ScanRange Point(json::Value v) {
    ScanRange r;
    r.lo = v;
    r.hi = std::move(v);
    return r;
  }
};

}  // namespace couchkv::gsi

#endif  // COUCHKV_GSI_INDEX_DEFS_H_
