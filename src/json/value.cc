#include "json/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace couchkv::json {

namespace {
const Value kMissingValue;
}  // namespace

const char* TypeName(Type t) {
  switch (t) {
    case Type::kMissing: return "missing";
    case Type::kNull: return "null";
    case Type::kBool: return "boolean";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

const Value& Value::Field(std::string_view name) const {
  if (!is_object()) return kMissingValue;
  const Object& obj = AsObject();
  auto it = obj.find(std::string(name));
  return it == obj.end() ? kMissingValue : it->second;
}

const Value& Value::At(size_t index) const {
  if (!is_array()) return kMissingValue;
  const Array& arr = AsArray();
  return index < arr.size() ? arr[index] : kMissingValue;
}

namespace {

// Splits the next path segment off `path`: a field name and zero or more
// trailing [idx] subscripts. Returns false on malformed syntax.
struct PathSegment {
  std::string_view field;          // may be empty for a pure subscript
  std::vector<size_t> subscripts;  // applied after the field lookup
};

bool NextSegment(std::string_view* path, PathSegment* seg) {
  seg->field = {};
  seg->subscripts.clear();
  if (path->empty()) return false;
  size_t i = 0;
  // Field name part (up to '.' or '[').
  while (i < path->size() && (*path)[i] != '.' && (*path)[i] != '[') ++i;
  seg->field = path->substr(0, i);
  // Subscripts.
  while (i < path->size() && (*path)[i] == '[') {
    size_t close = path->find(']', i);
    if (close == std::string_view::npos) return false;
    size_t idx = 0;
    for (size_t j = i + 1; j < close; ++j) {
      char c = (*path)[j];
      if (c < '0' || c > '9') return false;
      idx = idx * 10 + static_cast<size_t>(c - '0');
    }
    seg->subscripts.push_back(idx);
    i = close + 1;
  }
  if (i < path->size()) {
    if ((*path)[i] != '.') return false;
    ++i;  // skip '.'
  }
  *path = path->substr(i);
  return true;
}

}  // namespace

const Value& Value::GetPath(std::string_view path) const {
  const Value* cur = this;
  PathSegment seg;
  while (!path.empty()) {
    if (!NextSegment(&path, &seg)) return kMissingValue;
    if (!seg.field.empty()) cur = &cur->Field(seg.field);
    for (size_t idx : seg.subscripts) cur = &cur->At(idx);
    if (cur->is_missing()) return kMissingValue;
  }
  return *cur;
}

bool Value::SetPath(std::string_view path, Value v) {
  Value* cur = this;
  PathSegment seg;
  for (;;) {
    std::string_view rest = path;
    if (!NextSegment(&rest, &seg)) return false;
    bool last = rest.empty();
    if (!seg.field.empty()) {
      if (cur->is_missing() || cur->is_null()) *cur = Value::MakeObject();
      if (!cur->is_object()) return false;
      Value& slot = cur->AsObject()[std::string(seg.field)];
      cur = &slot;
    }
    for (size_t k = 0; k < seg.subscripts.size(); ++k) {
      if (!cur->is_array()) return false;
      Array& arr = cur->AsArray();
      size_t idx = seg.subscripts[k];
      if (idx >= arr.size()) return false;
      cur = &arr[idx];
    }
    if (last) {
      *cur = std::move(v);
      return true;
    }
    path = rest;
  }
}

bool Value::RemovePath(std::string_view path) {
  // Navigate to the parent of the final segment.
  size_t last_dot = path.rfind('.');
  std::string_view parent_path =
      last_dot == std::string_view::npos ? std::string_view()
                                         : path.substr(0, last_dot);
  std::string_view leaf =
      last_dot == std::string_view::npos ? path : path.substr(last_dot + 1);
  if (leaf.empty() || leaf.find('[') != std::string_view::npos) return false;

  Value* parent = this;
  if (!parent_path.empty()) {
    // const_cast is safe: GetPath returns a reference into *this.
    const Value& p = GetPath(parent_path);
    if (&p == &kMissingValue) return false;
    parent = const_cast<Value*>(&p);
  }
  if (!parent->is_object()) return false;
  return parent->AsObject().erase(std::string(leaf)) > 0;
}

Value& Value::operator[](const std::string& key) {
  if (is_missing() || is_null()) *this = MakeObject();
  return AsObject()[key];
}

bool Value::Truthy() const {
  switch (type()) {
    case Type::kMissing:
    case Type::kNull:
      return false;
    case Type::kBool:
      return AsBool();
    case Type::kNumber:
      return AsNumber() != 0.0;
    case Type::kString:
      return !AsString().empty();
    case Type::kArray:
      return !AsArray().empty();
    case Type::kObject:
      return !AsObject().empty();
  }
  return false;
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return static_cast<int>(a.type()) < static_cast<int>(b.type()) ? -1 : 1;
  }
  switch (a.type()) {
    case Type::kMissing:
    case Type::kNull:
      return 0;
    case Type::kBool:
      return static_cast<int>(a.AsBool()) - static_cast<int>(b.AsBool());
    case Type::kNumber: {
      double x = a.AsNumber(), y = b.AsNumber();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Type::kString:
      return a.AsString().compare(b.AsString());
    case Type::kArray: {
      const Array& x = a.AsArray();
      const Array& y = b.AsArray();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      return x.size() < y.size() ? -1 : (x.size() > y.size() ? 1 : 0);
    }
    case Type::kObject: {
      const Object& x = a.AsObject();
      const Object& y = b.AsObject();
      auto ix = x.begin();
      auto iy = y.begin();
      for (; ix != x.end() && iy != y.end(); ++ix, ++iy) {
        int c = ix->first.compare(iy->first);
        if (c != 0) return c;
        c = Compare(ix->second, iy->second);
        if (c != 0) return c;
      }
      if (ix != x.end()) return 1;
      if (iy != y.end()) return -1;
      return 0;
    }
  }
  return 0;
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  // Integers print without a fractional part (matches how documents are
  // normally written and keeps round-trips stable).
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; emit null like most DBs.
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

}  // namespace

void Value::AppendJson(std::string* out) const {
  switch (type()) {
    case Type::kMissing:
      out->append("missing");
      return;
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(AsBool() ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(AsNumber(), out);
      return;
    case Type::kString:
      AppendEscaped(AsString(), out);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        v.AppendJson(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : AsObject()) {
        if (v.is_missing()) continue;  // missing fields are not serialized
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        v.AppendJson(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::ToJson() const {
  std::string out;
  AppendJson(&out);
  return out;
}

size_t Value::MemoryFootprint() const {
  size_t size = sizeof(Value);
  switch (type()) {
    case Type::kString:
      size += AsString().capacity();
      break;
    case Type::kArray:
      for (const Value& v : AsArray()) size += v.MemoryFootprint();
      break;
    case Type::kObject:
      for (const auto& [k, v] : AsObject()) {
        size += k.capacity() + 48;  // map node overhead
        size += v.MemoryFootprint();
      }
      break;
    default:
      break;
  }
  return size;
}

// ---------------------------------------------------------------------------
// Parser: straightforward recursive descent.
// ---------------------------------------------------------------------------
namespace {

#define COUCHKV_PARSE(expr)          \
  do {                               \
    Status _st = (expr);             \
    if (!_st.ok()) return _st;       \
  } while (0)

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> Run() {
    SkipWs();
    Value v;
    COUCHKV_PARSE(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters");
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::ParseError("JSON error at offset " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out) {
    if (depth_ > 256) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string s;
        COUCHKV_PARSE(ParseString(&s));
        *out = Value::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = Value::Bool(true);
          return Status::OK();
        }
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = Value::Bool(false);
          return Status::OK();
        }
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = Value::Null();
          return Status::OK();
        }
        return Err("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out) {
    ++depth_;
    ++pos_;  // '{'
    Value::Object obj;
    SkipWs();
    if (Consume('}')) {
      --depth_;
      *out = Value::MakeObject(std::move(obj));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      std::string key;
      COUCHKV_PARSE(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      Value v;
      COUCHKV_PARSE(ParseValue(&v));
      obj[std::move(key)] = std::move(v);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    --depth_;
    *out = Value::MakeObject(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Value* out) {
    ++depth_;
    ++pos_;  // '['
    Value::Array arr;
    SkipWs();
    if (Consume(']')) {
      --depth_;
      *out = Value::MakeArray(std::move(arr));
      return Status::OK();
    }
    for (;;) {
      Value v;
      COUCHKV_PARSE(ParseValue(&v));
      arr.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    --depth_;
    *out = Value::MakeArray(std::move(arr));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad hex digit");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(Value* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Err("bad number");
    *out = Value::Number(d);
    return Status::OK();
  }

#undef COUCHKV_PARSE

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace couchkv::json
