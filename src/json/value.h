// JSON value model for couchkv documents.
//
// N1QL distinguishes MISSING (no such field) from NULL (explicit null); both
// appear here as first-class types, and the collation order implemented by
// Value::Compare is the N1QL/view order:
//   missing < null < false < true < numbers < strings < arrays < objects.
#ifndef COUCHKV_JSON_VALUE_H_
#define COUCHKV_JSON_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace couchkv::json {

enum class Type {
  kMissing = 0,
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

const char* TypeName(Type t);

class Value {
 public:
  using Array = std::vector<Value>;
  // std::map keeps keys sorted, which makes serialization and comparison
  // deterministic.
  using Object = std::map<std::string, Value>;

  // Default-constructed Value is MISSING (what a failed field lookup yields).
  Value() : rep_(MissingRep{}) {}

  static Value Missing() { return Value(); }
  static Value Null() {
    Value v;
    v.rep_ = NullRep{};
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.rep_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.rep_ = d;
    return v;
  }
  static Value Int(int64_t i) { return Number(static_cast<double>(i)); }
  static Value Str(std::string s) {
    Value v;
    v.rep_ = std::move(s);
    return v;
  }
  static Value MakeArray(Array items = {}) {
    Value v;
    v.rep_ = std::move(items);
    return v;
  }
  static Value MakeObject(Object fields = {}) {
    Value v;
    v.rep_ = std::move(fields);
    return v;
  }

  Type type() const { return static_cast<Type>(rep_.index()); }
  bool is_missing() const { return type() == Type::kMissing; }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Accessors; calling the wrong one is a programming error (asserts).
  bool AsBool() const { return std::get<bool>(rep_); }
  double AsNumber() const { return std::get<double>(rep_); }
  int64_t AsInt() const { return static_cast<int64_t>(AsNumber()); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Array& AsArray() const { return std::get<Array>(rep_); }
  Array& AsArray() { return std::get<Array>(rep_); }
  const Object& AsObject() const { return std::get<Object>(rep_); }
  Object& AsObject() { return std::get<Object>(rep_); }

  // Object field lookup; returns MISSING when absent or when this is not an
  // object (N1QL semantics for paths over non-objects).
  const Value& Field(std::string_view name) const;
  // Array element; MISSING when out of range / not an array.
  const Value& At(size_t index) const;

  // Navigate a dotted path with optional array subscripts: "a.b[2].c".
  // Returns MISSING for any miss along the way.
  const Value& GetPath(std::string_view path) const;

  // Sets `path` to `v`, creating intermediate objects as needed. Array
  // subscripts must already exist. Returns false if the path traverses a
  // non-object/non-array value.
  bool SetPath(std::string_view path, Value v);
  // Removes the field at `path`; returns true if something was removed.
  bool RemovePath(std::string_view path);

  // In-place mutation helpers.
  Value& operator[](const std::string& key);
  void Append(Value v) { AsArray().push_back(std::move(v)); }

  // N1QL "truthiness": false for missing/null/false/0/""/[]/{}.
  bool Truthy() const;

  // Total collation order (see header comment). Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  // Compact JSON serialization. MISSING serializes as "missing" (only ever
  // visible in diagnostics; a missing object field is simply omitted).
  std::string ToJson() const;
  void AppendJson(std::string* out) const;

  // Approximate in-memory footprint, used for cache memory accounting.
  size_t MemoryFootprint() const;

 private:
  struct MissingRep {};
  struct NullRep {};
  // variant index order must match enum Type.
  std::variant<MissingRep, NullRep, bool, double, std::string, Array, Object>
      rep_;
};

// Parses a JSON text into a Value. Accepts standard JSON.
StatusOr<Value> Parse(std::string_view text);

}  // namespace couchkv::json

#endif  // COUCHKV_JSON_VALUE_H_
