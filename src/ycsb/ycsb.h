// Yahoo Cloud Serving Benchmark core workloads (Cooper et al., SoCC'10) —
// the tool the paper's evaluation uses (§10.1). Implements the standard
// workload mixes A–F, the YCSB key choosers (uniform / zipfian / latest),
// and a multi-threaded runner that records throughput and latency.
#ifndef COUCHKV_YCSB_YCSB_H_
#define COUCHKV_YCSB_YCSB_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "json/value.h"

namespace couchkv::ycsb {

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

const char* OpTypeName(OpType t);

enum class KeyDistribution { kUniform, kZipfian, kLatest };

struct WorkloadConfig {
  uint64_t record_count = 1000;
  double read_proportion = 0;
  double update_proportion = 0;
  double insert_proportion = 0;
  double scan_proportion = 0;
  double rmw_proportion = 0;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  size_t field_count = 10;
  size_t field_length = 100;
  size_t max_scan_length = 100;

  // The standard YCSB core workloads.
  static WorkloadConfig A(uint64_t records);  // 50/50 read/update, zipfian
  static WorkloadConfig B(uint64_t records);  // 95/5 read/update, zipfian
  static WorkloadConfig C(uint64_t records);  // 100% read, zipfian
  static WorkloadConfig D(uint64_t records);  // 95/5 read/insert, latest
  static WorkloadConfig E(uint64_t records);  // 95/5 scan/insert, zipfian
  static WorkloadConfig F(uint64_t records);  // 50/50 read/RMW, zipfian
};

// A generated operation the runner hands to the executor.
struct Op {
  OpType type;
  std::string key;          // target key (read/update/insert/rmw/scan start)
  std::string value;        // JSON body for update/insert
  size_t scan_length = 0;   // for kScan
};

// Deterministic, thread-safe-per-instance workload generator. Each worker
// thread owns one Workload (seeded differently) over a shared key space.
class Workload {
 public:
  Workload(const WorkloadConfig& config, uint64_t seed,
           std::atomic<uint64_t>* insert_counter);

  // Zero-padded key for record i ("user00000000001234"), so that key order
  // equals record order — what workload E's meta().id range scans need.
  static std::string KeyFor(uint64_t i);

  // Generates one operation.
  Op Next();

  // Generates the JSON document body for record `i` (field0..fieldN).
  std::string GenerateValue();

  const WorkloadConfig& config() const { return config_; }

 private:
  uint64_t NextKeyIndex();

  WorkloadConfig config_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::atomic<uint64_t>* insert_counter_;  // shared across threads
};

// Result of a timed run.
struct RunResult {
  double throughput_ops_sec = 0;
  uint64_t total_ops = 0;
  uint64_t failed_ops = 0;
  Histogram read_latency;
  Histogram update_latency;
  Histogram scan_latency;
};

// Executes `op`; returns the operation status. Supplied by the caller
// (wired to the KV smart client for workloads A–D/F, to the query service
// for workload E).
using OpExecutor = std::function<Status(const Op& op)>;

// Drives `threads` workers for `ops_per_thread` operations each, filling
// `result` (an out-param because Histogram is not movable).
void Run(const WorkloadConfig& config, size_t threads,
         uint64_t ops_per_thread, const OpExecutor& executor,
         RunResult* result, uint64_t seed = 42);

}  // namespace couchkv::ycsb

#endif  // COUCHKV_YCSB_YCSB_H_
