#include "ycsb/ycsb.h"

#include <cstdio>
#include <thread>

#include "common/affinity.h"
#include "common/clock.h"

namespace couchkv::ycsb {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kRead: return "READ";
    case OpType::kUpdate: return "UPDATE";
    case OpType::kInsert: return "INSERT";
    case OpType::kScan: return "SCAN";
    case OpType::kReadModifyWrite: return "READ-MODIFY-WRITE";
  }
  return "?";
}

WorkloadConfig WorkloadConfig::A(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.5;
  c.update_proportion = 0.5;
  c.distribution = KeyDistribution::kZipfian;
  return c;
}

WorkloadConfig WorkloadConfig::B(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.95;
  c.update_proportion = 0.05;
  c.distribution = KeyDistribution::kZipfian;
  return c;
}

WorkloadConfig WorkloadConfig::C(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 1.0;
  c.distribution = KeyDistribution::kZipfian;
  return c;
}

WorkloadConfig WorkloadConfig::D(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.95;
  c.insert_proportion = 0.05;
  c.distribution = KeyDistribution::kLatest;
  return c;
}

WorkloadConfig WorkloadConfig::E(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.scan_proportion = 0.95;
  c.insert_proportion = 0.05;
  c.distribution = KeyDistribution::kZipfian;
  return c;
}

WorkloadConfig WorkloadConfig::F(uint64_t records) {
  WorkloadConfig c;
  c.record_count = records;
  c.read_proportion = 0.5;
  c.rmw_proportion = 0.5;
  c.distribution = KeyDistribution::kZipfian;
  return c;
}

Workload::Workload(const WorkloadConfig& config, uint64_t seed,
                   std::atomic<uint64_t>* insert_counter)
    : config_(config),
      rng_(seed),
      zipf_(config.record_count),
      insert_counter_(insert_counter) {}

std::string Workload::KeyFor(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%014llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::string Workload::GenerateValue() {
  json::Value doc = json::Value::MakeObject();
  for (size_t f = 0; f < config_.field_count; ++f) {
    std::string data(config_.field_length, ' ');
    for (char& c : data) {
      c = static_cast<char>('a' + rng_.Uniform(26));
    }
    doc["field" + std::to_string(f)] = json::Value::Str(std::move(data));
  }
  return doc.ToJson();
}

uint64_t Workload::NextKeyIndex() {
  uint64_t live = insert_counter_ != nullptr
                      ? insert_counter_->load(std::memory_order_relaxed)
                      : config_.record_count;
  if (live == 0) live = 1;
  switch (config_.distribution) {
    case KeyDistribution::kUniform:
      return rng_.Uniform(live);
    case KeyDistribution::kZipfian: {
      // Hot items scattered over the space (YCSB's scrambled zipfian).
      uint64_t v = zipf_.Next(rng_);
      return ScrambledZipfianGenerator::Fnv64(v) % live;
    }
    case KeyDistribution::kLatest: {
      // Most recent records are the hottest.
      uint64_t off = zipf_.Next(rng_) % live;
      return live - 1 - off;
    }
  }
  return 0;
}

Op Workload::Next() {
  Op op;
  double p = rng_.NextDouble();
  if (p < config_.read_proportion) {
    op.type = OpType::kRead;
  } else if (p < config_.read_proportion + config_.update_proportion) {
    op.type = OpType::kUpdate;
  } else if (p < config_.read_proportion + config_.update_proportion +
                     config_.insert_proportion) {
    op.type = OpType::kInsert;
  } else if (p < config_.read_proportion + config_.update_proportion +
                     config_.insert_proportion + config_.scan_proportion) {
    op.type = OpType::kScan;
  } else {
    op.type = OpType::kReadModifyWrite;
  }

  switch (op.type) {
    case OpType::kInsert: {
      uint64_t next = insert_counter_ != nullptr
                          ? insert_counter_->fetch_add(1)
                          : config_.record_count;
      op.key = KeyFor(next);
      op.value = GenerateValue();
      break;
    }
    case OpType::kScan:
      op.key = KeyFor(NextKeyIndex());
      op.scan_length = 1 + rng_.Uniform(config_.max_scan_length);
      break;
    case OpType::kUpdate:
    case OpType::kReadModifyWrite:
      op.key = KeyFor(NextKeyIndex());
      op.value = GenerateValue();
      break;
    case OpType::kRead:
      op.key = KeyFor(NextKeyIndex());
      break;
  }
  return op;
}

void Run(const WorkloadConfig& config, size_t threads,
         uint64_t ops_per_thread, const OpExecutor& executor,
         RunResult* result_out, uint64_t seed) {
  RunResult& result = *result_out;
  std::atomic<uint64_t> insert_counter{config.record_count};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  uint64_t start = Clock::Real()->NowNanos();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      affinity::ScopedDomain domain("client");
      Workload workload(config, seed + t * 7919, &insert_counter);
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        Op op = workload.Next();
        uint64_t t0 = Clock::Real()->NowNanos();
        Status st = executor(op);
        uint64_t dt = Clock::Real()->NowNanos() - t0;
        if (!st.ok()) failed.fetch_add(1, std::memory_order_relaxed);
        switch (op.type) {
          case OpType::kRead:
            result.read_latency.Record(dt);
            break;
          case OpType::kScan:
            result.scan_latency.Record(dt);
            break;
          default:
            result.update_latency.Record(dt);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t elapsed = Clock::Real()->NowNanos() - start;
  result.total_ops = threads * ops_per_thread;
  result.failed_ops = failed.load();
  result.throughput_ops_sec =
      elapsed > 0
          ? static_cast<double>(result.total_ops) * 1e9 /
                static_cast<double>(elapsed)
          : 0;
}

}  // namespace couchkv::ycsb
