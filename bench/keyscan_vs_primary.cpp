// §5.1.1 ablation: "The fastest data access will be via key-value look-ups
// or N1QL's USE KEYS clause" and PrimaryScan "is quite expensive, and the
// average time to return results increases linearly with number of
// documents in the bucket" (§4.5.3). We sweep the bucket size and time one
// USE KEYS lookup vs one full PrimaryScan-backed query.
#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t kQueries = Scaled(50);

  PrintHeader("KeyScan (USE KEYS) vs PrimaryScan (paper §5.1.1 / §4.5.3)",
              "bucket size | keyscan mean (us) | primaryscan mean (us) | "
              "ratio");
  for (uint64_t records : {Scaled(2000), Scaled(10000), Scaled(50000)}) {
    TestBed bed(/*nodes=*/4);
    LoadRecords(bed.cluster.get(), "bucket", records, 4, 32);
    auto st =
        bed.queries->Execute("CREATE PRIMARY INDEX ON `bucket` USING GSI");
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
      return 1;
    }
    MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "#primary", 120000),
           "gsi catch-up");

    Histogram keyscan, primary;
    for (uint64_t i = 0; i < kQueries; ++i) {
      std::string key = ycsb::Workload::KeyFor(i % records);
      {
        ScopedTimer timer(&keyscan);
        auto r = bed.queries->Execute(
            "SELECT field0 FROM `bucket` USE KEYS '" + key + "'");
        if (!r.ok()) return 1;
      }
      {
        // A predicate the planner cannot push into any index: full scan.
        ScopedTimer timer(&primary);
        auto r = bed.queries->Execute(
            "SELECT field0 FROM `bucket` WHERE field1 >= 'zzz_nothing' ");
        if (!r.ok()) return 1;
      }
    }
    std::printf("%11llu | %17.1f | %21.1f | %5.0fx\n",
                static_cast<unsigned long long>(records),
                keyscan.Mean() / 1e3, primary.Mean() / 1e3,
                primary.Mean() / keyscan.Mean());
  }
  std::printf(
      "\nExpected shape: KeyScan latency is flat in bucket size;\n"
      "PrimaryScan grows linearly with document count (§4.5.3).\n");
  return 0;
}
