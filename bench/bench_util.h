// Shared helpers for the experiment benches: cluster construction, bulk
// loading, and aligned table printing so each binary regenerates its paper
// table/figure as text.
#ifndef COUCHKV_BENCH_BENCH_UTIL_H_
#define COUCHKV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "n1ql/query_service.h"
#include "ycsb/ycsb.h"

namespace couchkv::bench {

// Scale factor: benches default to laptop-sized datasets; set
// COUCHKV_SCALE to grow/shrink (1.0 = defaults).
inline double ScaleFactor() {
  const char* s = std::getenv("COUCHKV_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  double v = static_cast<double>(base) * ScaleFactor();
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

// A ready-to-use cluster with all services attached, mirroring the paper's
// §10.1 setup ("data, index and query services running on all nodes").
struct TestBed {
  std::unique_ptr<cluster::Cluster> cluster;
  std::shared_ptr<gsi::IndexService> gsi;
  std::shared_ptr<views::ViewEngine> views;
  std::unique_ptr<n1ql::QueryService> queries;

  explicit TestBed(int nodes = 4, const std::string& bucket = "bucket",
                   uint32_t replicas = 1, uint64_t simulated_fsync_us = 0) {
    cluster::ClusterOptions copts;
    copts.simulated_fsync_us = simulated_fsync_us;
    cluster = std::make_unique<cluster::Cluster>(copts);
    for (int i = 0; i < nodes; ++i) {
      cluster->AddNode(cluster::kAllServices);
    }
    cluster::BucketConfig config;
    config.name = bucket;
    config.num_replicas = replicas;
    config.memory_quota_bytes = 8ull << 30;  // avoid eviction noise
    Status st = cluster->CreateBucket(config);
    if (!st.ok()) {
      std::fprintf(stderr, "bucket creation failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    gsi = std::make_shared<gsi::IndexService>(cluster.get());
    gsi->Attach();
    views = std::make_shared<views::ViewEngine>(cluster.get());
    views->Attach();
    queries =
        std::make_unique<n1ql::QueryService>(cluster.get(), gsi, views);
  }
};

// Loads `count` YCSB-style records through the smart client, in parallel.
inline void LoadRecords(cluster::Cluster* cluster, const std::string& bucket,
                        uint64_t count, size_t field_count = 10,
                        size_t field_length = 100, size_t threads = 8) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> next{0};
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      client::SmartClient client(cluster, bucket);
      ycsb::WorkloadConfig cfg;
      cfg.field_count = field_count;
      cfg.field_length = field_length;
      std::atomic<uint64_t> dummy{0};
      ycsb::Workload workload(cfg, 1000 + t, &dummy);
      for (;;) {
        uint64_t i = next.fetch_add(1);
        if (i >= count) break;
        client.Upsert(ycsb::Workload::KeyFor(i), workload.GenerateValue());
      }
    });
  }
  for (auto& w : workers) w.join();
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace couchkv::bench

#endif  // COUCHKV_BENCH_BENCH_UTIL_H_
