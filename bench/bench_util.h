// Shared helpers for the experiment benches: cluster construction, bulk
// loading, and aligned table printing so each binary regenerates its paper
// table/figure as text.
#ifndef COUCHKV_BENCH_BENCH_UTIL_H_
#define COUCHKV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "json/value.h"
#include "n1ql/query_service.h"
#include "stats/registry.h"
#include "ycsb/ycsb.h"

namespace couchkv::bench {

// Scale factor: benches default to laptop-sized datasets; set
// COUCHKV_SCALE to grow/shrink (1.0 = defaults).
inline double ScaleFactor() {
  const char* s = std::getenv("COUCHKV_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  double v = static_cast<double>(base) * ScaleFactor();
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

// Bench setup failures invalidate the measurement, so they abort loudly
// rather than being dropped (Status is [[nodiscard]] everywhere).
inline void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T MustOk(StatusOr<T> v, const char* what) {
  if (!v.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 v.status().ToString().c_str());
    std::abort();
  }
  return *std::move(v);
}

// A ready-to-use cluster with all services attached, mirroring the paper's
// §10.1 setup ("data, index and query services running on all nodes").
struct TestBed {
  std::unique_ptr<cluster::Cluster> cluster;
  std::shared_ptr<gsi::IndexService> gsi;
  std::shared_ptr<views::ViewEngine> views;
  std::unique_ptr<n1ql::QueryService> queries;

  explicit TestBed(int nodes = 4, const std::string& bucket = "bucket",
                   uint32_t replicas = 1, uint64_t simulated_fsync_us = 0) {
    cluster::ClusterOptions copts;
    copts.simulated_fsync_us = simulated_fsync_us;
    cluster = std::make_unique<cluster::Cluster>(copts);
    for (int i = 0; i < nodes; ++i) {
      cluster->AddNode(cluster::kAllServices);
    }
    cluster::BucketConfig config;
    config.name = bucket;
    config.num_replicas = replicas;
    config.memory_quota_bytes = 8ull << 30;  // avoid eviction noise
    Status st = cluster->CreateBucket(config);
    if (!st.ok()) {
      std::fprintf(stderr, "bucket creation failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    gsi = std::make_shared<gsi::IndexService>(cluster.get());
    gsi->Attach();
    views = std::make_shared<views::ViewEngine>(cluster.get());
    views->Attach();
    queries =
        std::make_unique<n1ql::QueryService>(cluster.get(), gsi, views);
  }
};

// Loads `count` YCSB-style records through the smart client, in parallel.
inline void LoadRecords(cluster::Cluster* cluster, const std::string& bucket,
                        uint64_t count, size_t field_count = 10,
                        size_t field_length = 100, size_t threads = 8) {
  std::vector<std::thread> workers;
  std::atomic<uint64_t> next{0};
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      client::SmartClient client(cluster, bucket);
      ycsb::WorkloadConfig cfg;
      cfg.field_count = field_count;
      cfg.field_length = field_length;
      std::atomic<uint64_t> dummy{0};
      ycsb::Workload workload(cfg, 1000 + t, &dummy);
      for (;;) {
        uint64_t i = next.fetch_add(1);
        if (i >= count) break;
        MustOk(client.Upsert(ycsb::Workload::KeyFor(i),
                             workload.GenerateValue()),
               "bulk-load upsert");
      }
    });
  }
  for (auto& w : workers) w.join();
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

// Machine-readable bench output: collects one JSON row per measurement plus
// the stats-registry delta over the bench's lifetime, and writes
// BENCH_<name>.json into $COUCHKV_BENCH_JSON_DIR (or the cwd). Latency
// percentiles in rows should come from registry histograms (HistDelta /
// LatencySummary) so the emitted numbers are the same ones an operator would
// scrape in production.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name)
      : name_(std::move(name)), start_(stats::Registry::Global().Collect()) {}

  void AddRow(json::Value row) { rows_.push_back(std::move(row)); }

  // Fresh scrape, for callers tracking per-row intervals themselves.
  static stats::Snapshot Now() { return stats::Registry::Global().Collect(); }

  // Interval view of one registry histogram since construction.
  HistogramSnapshot HistDelta(const std::string& full_name) const {
    return HistBetween(start_, Now(), full_name);
  }

  // Interval view of one registry histogram between two scrapes.
  static HistogramSnapshot HistBetween(const stats::Snapshot& before,
                                       const stats::Snapshot& after,
                                       const std::string& full_name) {
    auto it = after.find(full_name);
    if (it == after.end()) return {};
    HistogramSnapshot h = it->second.hist;
    auto b = before.find(full_name);
    if (b != before.end()) h.Subtract(b->second.hist);
    return h;
  }

  // {"count":..,"mean_us":..,"p50_us":..,"p95_us":..,"p99_us":..}
  static json::Value LatencySummary(const HistogramSnapshot& h) {
    json::Value::Object o;
    o["count"] = json::Value::Int(static_cast<int64_t>(h.count));
    o["mean_us"] = json::Value::Number(h.Mean() / 1e3);
    o["p50_us"] =
        json::Value::Number(static_cast<double>(h.Percentile(0.50)) / 1e3);
    o["p95_us"] =
        json::Value::Number(static_cast<double>(h.Percentile(0.95)) / 1e3);
    o["p99_us"] =
        json::Value::Number(static_cast<double>(h.Percentile(0.99)) / 1e3);
    return json::Value::MakeObject(std::move(o));
  }

  // Writes BENCH_<name>.json. Returns false (and warns) on I/O failure.
  bool Write() const {
    std::string dir = ".";
    if (const char* d = std::getenv("COUCHKV_BENCH_JSON_DIR")) dir = d;
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::string body = "{\"bench\":\"" + name_ + "\",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) body += ",";
      body += rows_[i].ToJson();
    }
    stats::Snapshot end = Now();
    body += "],\"registry_delta\":" + stats::ToJson(stats::Delta(start_, end)) +
            "}";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReporter: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  stats::Snapshot start_;
  std::vector<json::Value> rows_;
};

}  // namespace couchkv::bench

#endif  // COUCHKV_BENCH_BENCH_UTIL_H_
