// Validates that bench-emitted BENCH_*.json files parse as JSON and carry
// the expected top-level shape. Exit code 0 only when every argument parses
// and at least one file was checked — the couchkv_bench_smoke target's
// pass/fail gate.
#include <cstdio>
#include <string>

#include "json/value.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "json_check: no BENCH_*.json files to validate\n");
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "json_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::string body;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
    std::fclose(f);

    auto parsed = couchkv::json::Parse(body);
    if (!parsed.ok()) {
      std::fprintf(stderr, "json_check: %s does not parse: %s\n", argv[i],
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (!parsed->is_object() || parsed->Field("bench").is_missing() ||
        !parsed->Field("rows").is_array()) {
      std::fprintf(stderr,
                   "json_check: %s lacks {\"bench\":..,\"rows\":[..]} shape\n",
                   argv[i]);
      ++failures;
      continue;
    }
    std::printf("json_check: %s ok (%zu rows)\n", argv[i],
                parsed->Field("rows").AsArray().size());
  }
  return failures == 0 ? 0 : 1;
}
