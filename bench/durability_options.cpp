// §2.3.2 ablation: per-mutation durability options. The paper's claim —
// memory-ack is fastest, memory-to-memory replication costs "significantly
// less than waiting for persistence" — should reproduce as
// async < replicate_to=1 < persist_to=1 mean latency.
#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t writes = Scaled(2000);
  // Simulate a realistic SSD fsync (~400us) so the persistence wait has the
  // disk cost the paper assumes ("especially when using spinning disks",
  // where this would be milliseconds).
  TestBed bed(/*nodes=*/4, "bucket", /*replicas=*/1,
              /*simulated_fsync_us=*/400);
  client::SmartClient client(bed.cluster.get(), "bucket");

  struct Variant {
    const char* name;
    cluster::Durability durability;
  };
  const Variant variants[] = {
      {"async (memory ack)", cluster::Durability::None()},
      {"replicate_to=1", cluster::Durability::Replicate(1)},
      {"persist_to=1", cluster::Durability::Persist(1)},
      {"replicate_to=1 + persist_to=1",
       {1, 1, 10000}},
  };

  PrintHeader("Durability options (paper §2.3.2)",
              "option | mean (us) | p50 (us) | p99 (us)");
  for (const Variant& v : variants) {
    Histogram latency;
    for (uint64_t i = 0; i < writes; ++i) {
      client::WriteOptions opts;
      opts.durability = v.durability;
      ScopedTimer timer(&latency);
      auto r = client.Upsert("durable::" + std::to_string(i),
                             R"({"payload":"xxxxxxxxxxxxxxxx"})", opts);
      if (!r.ok()) {
        std::fprintf(stderr, "write failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("%-30s | %9.1f | %8.1f | %8.1f\n", v.name,
                latency.Mean() / 1e3,
                static_cast<double>(latency.Percentile(0.5)) / 1e3,
                static_cast<double>(latency.Percentile(0.99)) / 1e3);
  }
  std::printf(
      "\nExpected shape: async << replicate_to=1 << persist_to=1 — \"the\n"
      "latency hit with the replication option is significantly less than\n"
      "waiting for persistence\" (§2.3.2).\n");
  return 0;
}
