// §2.2 / §6.2 ablation: performance isolation for the front-end. The paper's
// reason for a separate analytics service is that heavy analytical queries
// must not degrade the "sacred" front-end OLTP workload. We measure KV read
// latency three ways: with no background load, while heavy aggregations run
// on the analytics service (shadow data; no data-service reads), and while
// the same aggregation runs through the N1QL query service (which fetches
// every document from the data service).
#include <atomic>
#include <thread>

#include "analytics/analytics.h"
#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

namespace {

// Measures KV read latency for `ops` zipfian reads.
void MeasureFrontEnd(cluster::Cluster* cluster, uint64_t records,
                     uint64_t ops, Histogram* latency) {
  client::SmartClient client(cluster, "bucket");
  Rng rng(17);
  ZipfianGenerator zipf(records);
  for (uint64_t i = 0; i < ops; ++i) {
    std::string key = ycsb::Workload::KeyFor(
        ScrambledZipfianGenerator::Fnv64(zipf.Next(rng)) % records);
    ScopedTimer timer(latency);
    (void)client.Get(key);
  }
}

}  // namespace

int main() {
  const uint64_t records = Scaled(30000);
  const uint64_t kv_ops = Scaled(30000);

  TestBed bed(/*nodes=*/4);
  LoadRecords(bed.cluster.get(), "bucket", records, 6, 64);
  auto analytics =
      std::make_shared<analytics::AnalyticsService>(bed.cluster.get());
  analytics->Attach();
  if (!analytics->ConnectBucket("bucket").ok()) return 1;
  MustOk(analytics->WaitCaughtUp("bucket", 300000), "analytics catch-up");
  auto st = bed.queries->Execute("CREATE PRIMARY INDEX ON `bucket` USING GSI");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "#primary", 300000),
         "gsi catch-up");

  const std::string heavy =
      "SELECT field0, COUNT(*) AS n, MIN(field1) AS lo "
      "FROM `bucket` GROUP BY field0";

  PrintHeader("Analytics performance isolation (paper §2.2 / §6.2)",
              "front-end condition | KV read mean (us) | p95 (us) | p99 (us)");

  // Baseline: no background analytical load.
  {
    Histogram kv;
    MeasureFrontEnd(bed.cluster.get(), records, kv_ops, &kv);
    std::printf("%-34s | %11.1f | %8.1f | %8.1f\n", "idle (baseline)",
                kv.Mean() / 1e3,
                static_cast<double>(kv.Percentile(0.95)) / 1e3,
                static_cast<double>(kv.Percentile(0.99)) / 1e3);
  }

  // Heavy aggregation on the analytics service (shadow dataset). Several
  // concurrent analysts, as a BI dashboard fan-out would produce.
  constexpr int kAnalysts = 8;
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> analysts;
    for (int t = 0; t < kAnalysts; ++t) {
      analysts.emplace_back([&] {
        while (!stop.load()) {
          (void)analytics->Query(heavy);
        }
      });
    }
    Histogram kv;
    MeasureFrontEnd(bed.cluster.get(), records, kv_ops, &kv);
    stop.store(true);
    for (auto& a : analysts) a.join();
    std::printf("%-34s | %11.1f | %8.1f | %8.1f\n",
                "analytics service aggregating",
                kv.Mean() / 1e3,
                static_cast<double>(kv.Percentile(0.95)) / 1e3,
                static_cast<double>(kv.Percentile(0.99)) / 1e3);
  }

  // The same aggregation through the N1QL query service: every document is
  // fetched from the data service, competing with front-end reads.
  {
    std::atomic<bool> stop{false};
    std::vector<std::thread> analysts;
    for (int t = 0; t < kAnalysts; ++t) {
      analysts.emplace_back([&] {
        while (!stop.load()) {
          (void)bed.queries->Execute(heavy);
        }
      });
    }
    Histogram kv;
    MeasureFrontEnd(bed.cluster.get(), records, kv_ops, &kv);
    stop.store(true);
    for (auto& a : analysts) a.join();
    std::printf("%-34s | %11.1f | %8.1f | %8.1f\n",
                "query service aggregating",
                kv.Mean() / 1e3,
                static_cast<double>(kv.Percentile(0.95)) / 1e3,
                static_cast<double>(kv.Percentile(0.99)) / 1e3);
  }

  // The structural isolation evidence: how many data-service document
  // reads one aggregation performs on each engine. The analytics service
  // answers exclusively from its shadow dataset.
  auto n1ql_run = bed.queries->Execute(heavy);
  auto analytics_run = analytics->Query(heavy);
  if (n1ql_run.ok() && analytics_run.ok()) {
    std::printf(
        "\ndata-service document reads per aggregation:\n"
        "  query service:     %zu fetches\n"
        "  analytics service: 0 fetches (%zu shadow-copy docs scanned)\n",
        n1ql_run->metrics.docs_fetched, analytics_run->scanned_docs);
  }

  std::printf(
      "\nExpected shape: the analytics service performs ZERO data-service\n"
      "reads — its load is confined to the shadow dataset, so with MDS\n"
      "(dedicated analytics nodes) the front-end is fully isolated (§6.2).\n"
      "The query-service route drives one data-service fetch per document\n"
      "per aggregation. (In this single-process bench both variants share\n"
      "the CPU, so the latency rows mainly show CPU contention; the fetch\n"
      "counts show the interference MDS removes.)\n");
  return 0;
}
