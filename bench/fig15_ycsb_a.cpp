// Figure 15 reproduction: YCSB workload A (50% reads / 50% updates,
// zipfian) throughput vs client thread count on a 4-node cluster with all
// services on every node (paper §10.1.1).
//
// Paper setup: 4 YCSB clients × {12..32} threads, 10M documents, ~178K
// ops/s at 128 total threads. Here the "clients" are thread groups in one
// process and the dataset defaults to 100k docs (COUCHKV_SCALE to change);
// the expected *shape* is rising throughput that flattens as the cluster
// saturates.
#include "bench/bench_util.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(100000);
  const uint64_t ops_per_thread = Scaled(2000);
  constexpr int kClients = 4;

  TestBed bed(/*nodes=*/4);
  std::printf("loading %llu documents...\n",
              static_cast<unsigned long long>(records));
  LoadRecords(bed.cluster.get(), "bucket", records);
  bed.cluster->Quiesce();

  PrintHeader("Figure 15: YCSB workload A throughput vs threads",
              "clients x threads | total threads | ops/sec | read p95 (us) | "
              "update p95 (us)");

  BenchReporter reporter("fig15_ycsb_a");
  for (int threads_per_client : {12, 16, 20, 24, 28, 32}) {
    size_t total_threads = static_cast<size_t>(kClients * threads_per_client);
    stats::Snapshot row_start = BenchReporter::Now();
    ycsb::RunResult result;
    ycsb::Run(
        ycsb::WorkloadConfig::A(records), total_threads, ops_per_thread,
        [&](const ycsb::Op& op) -> Status {
          // Each worker thread owns a smart client (thread_local per run).
          thread_local std::unique_ptr<client::SmartClient> client;
          if (!client || client->cluster() != bed.cluster.get()) {
            client = std::make_unique<client::SmartClient>(bed.cluster.get(),
                                                           "bucket");
          }
          switch (op.type) {
            case ycsb::OpType::kRead: {
              auto r = client->Get(op.key);
              return r.ok() ? Status::OK() : r.status();
            }
            default: {
              auto r = client->Upsert(op.key, op.value);
              return r.ok() ? Status::OK() : r.status();
            }
          }
        },
        &result);
    std::printf("%7d x %-8d | %13zu | %7.0f | %13.1f | %15.1f\n", kClients,
                threads_per_client, total_threads, result.throughput_ops_sec,
                static_cast<double>(result.read_latency.Percentile(0.95)) /
                    1e3,
                static_cast<double>(result.update_latency.Percentile(0.95)) /
                    1e3);
    // Row latencies come from the registry's client-side histograms — the
    // same metrics an operator would scrape — not bench-private timers.
    stats::Snapshot row_end = BenchReporter::Now();
    json::Value::Object row;
    row["total_threads"] = json::Value::Int(static_cast<int64_t>(total_threads));
    row["ops_per_sec"] = json::Value::Number(result.throughput_ops_sec);
    row["read"] = BenchReporter::LatencySummary(
        BenchReporter::HistBetween(row_start, row_end, "client.get_ns"));
    row["update"] = BenchReporter::LatencySummary(
        BenchReporter::HistBetween(row_start, row_end, "client.mutate_ns"));
    reporter.AddRow(json::Value::MakeObject(std::move(row)));
  }
  reporter.Write();
  std::printf(
      "\nExpected shape (paper Fig. 15): throughput rises with threads and\n"
      "flattens near saturation (~178K ops/s on the authors' hardware).\n");
  return 0;
}
