// §6.1.3 ablation: term search through the FTS inverted index vs. the only
// alternative available without it — a full primary scan with a LIKE
// filter. The reverse index is the reason the paper adds a dedicated
// search service instead of leaning on N1QL.
#include "bench/bench_util.h"
#include "common/histogram.h"
#include "fts/fts.h"

using namespace couchkv;
using namespace couchkv::bench;

namespace {
// A realistic vocabulary: each term matches ~1% of documents, so the
// inverted-index advantage reflects selective term lookups rather than
// degenerate everything-matches queries.
constexpr int kVocabulary = 1000;
std::string Word(uint64_t i) { return "word" + std::to_string(i); }
}  // namespace

int main() {
  const uint64_t records = Scaled(20000);
  const uint64_t searches = Scaled(100);

  TestBed bed(/*nodes=*/4);
  // Synthetic text documents.
  {
    client::SmartClient client(bed.cluster.get(), "bucket");
    Rng rng(3);
    for (uint64_t i = 0; i < records; ++i) {
      std::string text;
      for (int w = 0; w < 12; ++w) {
        text += Word(rng.Uniform(kVocabulary));
        text += ' ';
      }
      json::Value doc = json::Value::MakeObject();
      doc["text"] = json::Value::Str(text);
      MustOk(client.UpsertJson(ycsb::Workload::KeyFor(i), doc),
             "corpus upsert");
    }
  }
  auto fts = std::make_shared<fts::SearchService>(bed.cluster.get());
  fts->Attach();
  fts::FtsIndexDefinition def;
  def.name = "text_idx";
  def.bucket = "bucket";
  if (!fts->CreateIndex(def).ok()) return 1;
  auto st = bed.queries->Execute("CREATE PRIMARY INDEX ON `bucket` USING GSI");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "#primary", 300000),
         "gsi catch-up");
  // Warm the FTS index fully before timing.
  (void)fts->Search("bucket", "text_idx", Word(0), fts::QueryMode::kAllTerms,
                    1, /*consistent=*/true);

  PrintHeader("FTS term search vs LIKE full scan (paper §6.1.3)",
              "method | mean (us) | p95 (us)");
  Histogram fts_lat, scan_lat;
  Rng rng(9);
  for (uint64_t i = 0; i < searches; ++i) {
    std::string term = Word(rng.Uniform(kVocabulary));
    {
      ScopedTimer timer(&fts_lat);
      auto hits = fts->Search("bucket", "text_idx", term,
                              fts::QueryMode::kAllTerms, 20);
      if (!hits.ok()) return 1;
    }
    {
      ScopedTimer timer(&scan_lat);
      auto r = bed.queries->Execute(
          "SELECT META(b).id FROM `bucket` b WHERE text LIKE '%" + term +
          "%' LIMIT 20");
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("%-22s | %9.1f | %8.1f\n", "fts inverted index",
              fts_lat.Mean() / 1e3,
              static_cast<double>(fts_lat.Percentile(0.95)) / 1e3);
  std::printf("%-22s | %9.1f | %8.1f\n", "N1QL LIKE full scan",
              scan_lat.Mean() / 1e3,
              static_cast<double>(scan_lat.Percentile(0.95)) / 1e3);
  std::printf(
      "\nExpected shape: the reverse index answers term queries orders of\n"
      "magnitude faster than scanning every document (why §6.1.3 adds a\n"
      "dedicated search service).\n");
  return 0;
}
