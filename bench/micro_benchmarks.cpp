// Hot-path micro-benchmarks (google-benchmark): key hashing, JSON
// parse/serialize, cache operations, storage appends, DCP pumping, and
// N1QL parsing. These are the primitives whose costs the system-level
// figures are built from.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "cluster/vbucket_map.h"
#include "common/random.h"
#include "dcp/dcp.h"
#include "json/value.h"
#include "kv/hash_table.h"
#include "n1ql/parser.h"
#include "storage/couch_file.h"

namespace couchkv {
namespace {

void BM_Crc32KeyToVBucket(benchmark::State& state) {
  std::string key = "user00000000012345";
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::KeyToVBucket(key));
  }
}
BENCHMARK(BM_Crc32KeyToVBucket);

void BM_JsonParse(benchmark::State& state) {
  std::string doc =
      R"({"name":"Dipti","age":30,"tags":["a","b","c"],)"
      R"("address":{"city":"SF","zip":"94105"},"balance":1234.56})";
  for (auto _ : state) {
    auto v = json::Parse(doc);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParse);

void BM_JsonSerialize(benchmark::State& state) {
  auto v = json::Parse(
               R"({"name":"Dipti","age":30,"tags":["a","b","c"],)"
               R"("address":{"city":"SF","zip":"94105"}})")
               .value();
  for (auto _ : state) {
    std::string out = v.ToJson();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JsonSerialize);

void BM_HashTableSet(benchmark::State& state) {
  kv::HashTable ht;
  std::string value(128, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = ht.Set("key" + std::to_string(i++ % 10000), value, 0, 0, 0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashTableSet);

void BM_HashTableGet(benchmark::State& state) {
  kv::HashTable ht;
  std::string value(128, 'v');
  for (int i = 0; i < 10000; ++i) {
    if (!ht.Set("key" + std::to_string(i), value, 0, 0, 0).ok()) std::abort();
  }
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = ht.Get("key" + std::to_string(i++ % 10000));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashTableGet);

void BM_CouchFileAppend(benchmark::State& state) {
  auto env = storage::Env::NewMemEnv();
  auto file = storage::CouchFile::Open(env.get(), "bench.couch").value();
  kv::Document doc;
  doc.value.assign(static_cast<size_t>(state.range(0)), 'x');
  uint64_t seqno = 0;
  for (auto _ : state) {
    doc.key = "key" + std::to_string(seqno % 1000);
    doc.meta.seqno = ++seqno;
    auto st = file->SaveDocs({doc});
    benchmark::DoNotOptimize(st);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CouchFileAppend)->Arg(128)->Arg(1024)->Arg(8192);

void BM_DcpPumpThroughput(benchmark::State& state) {
  dcp::Producer producer(1, nullptr);
  uint64_t delivered = 0;
  if (!producer
           .AddStream("bench", 0, 0,
                      [&](const kv::Mutation&) {
                        ++delivered;
                        return Status::OK();
                      })
           .ok()) {
    std::abort();
  }
  uint64_t seqno = 0;
  kv::Document doc;
  doc.value.assign(128, 'x');
  for (auto _ : state) {
    doc.key = "k";
    doc.meta.seqno = ++seqno;
    producer.OnMutation(0, doc);
    producer.PumpOnce();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DcpPumpThroughput);

void BM_N1qlParse(benchmark::State& state) {
  std::string query =
      "SELECT name, SUM(total) AS spend FROM orders o "
      "JOIN customers c ON KEYS o.cust_id "
      "WHERE o.status = 'shipped' AND o.total > 100 "
      "GROUP BY name ORDER BY spend DESC LIMIT 10";
  for (auto _ : state) {
    auto stmt = n1ql::ParseStatement(query);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_N1qlParse);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  ZipfianGenerator zipf(10000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace couchkv

BENCHMARK_MAIN();
