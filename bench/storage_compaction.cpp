// §4.3.3 ablation: the append-only storage engine. Sweeps the compaction
// fragmentation threshold and reports file size, write amplification, and
// compaction count for an update-heavy workload on a single vBucket file.
#include "bench/bench_util.h"
#include "storage/couch_file.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t updates = Scaled(20000);
  const uint64_t distinct_keys = Scaled(500);
  const size_t value_size = 256;

  PrintHeader("Append-only storage & compaction (paper §4.3.3)",
              "threshold | final size (KB) | live (KB) | compactions | "
              "write amp");
  BenchReporter reporter("storage_compaction");
  for (double threshold : {0.25, 0.5, 0.75, 1.01 /* never */}) {
    auto env = storage::Env::NewMemEnv();
    auto file_or = storage::CouchFile::Open(env.get(), "vb0.couch");
    if (!file_or.ok()) return 1;
    auto file = std::move(file_or).value();

    Rng rng(7);
    std::string value(value_size, 'v');
    uint64_t logical_bytes = 0;
    uint64_t seqno = 0;
    for (uint64_t i = 0; i < updates; ++i) {
      kv::Document doc;
      doc.key = "key" + std::to_string(rng.Uniform(distinct_keys));
      doc.value = value;
      doc.meta.seqno = ++seqno;
      if (!file->SaveDocs({doc}).ok()) std::abort();
      logical_bytes += value_size;
      if (i % 64 == 0) {
        if (!file->Commit().ok()) std::abort();
        if (file->Fragmentation() > threshold) {
          if (!file->Compact().ok()) std::abort();
        }
      }
    }
    if (!file->Commit().ok()) std::abort();
    auto stats = file->stats();
    // Write amplification ~ bytes the engine wrote / logical bytes; the
    // compactor re-writes live data each run.
    double write_amp =
        (static_cast<double>(stats.file_size) +
         static_cast<double>(stats.num_compactions) *
             static_cast<double>(stats.live_bytes)) /
        static_cast<double>(logical_bytes);
    std::printf("%9.2f | %15.0f | %9.0f | %11llu | %9.2f\n", threshold,
                static_cast<double>(stats.file_size) / 1024.0,
                static_cast<double>(stats.live_bytes) / 1024.0,
                static_cast<unsigned long long>(stats.num_compactions),
                write_amp);
    json::Value::Object row;
    row["threshold"] = json::Value::Number(threshold);
    row["file_size_bytes"] =
        json::Value::Int(static_cast<int64_t>(stats.file_size));
    row["live_bytes"] = json::Value::Int(static_cast<int64_t>(stats.live_bytes));
    row["compactions"] =
        json::Value::Int(static_cast<int64_t>(stats.num_compactions));
    row["write_amplification"] = json::Value::Number(write_amp);
    reporter.AddRow(json::Value::MakeObject(std::move(row)));
  }
  reporter.Write();
  std::printf(
      "\nExpected shape: lower thresholds keep the file near its live size\n"
      "at the cost of more compaction work (higher write amplification);\n"
      "threshold > 1 lets the append-only file grow with every update\n"
      "(§4.3.3: compaction runs 'based on a fragmentation threshold').\n");
  return 0;
}
