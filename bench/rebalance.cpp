// §4.3.1 ablation: rebalance and failover. Measures vBucket move throughput
// when growing a 4-node cluster to 5, and data availability before/after a
// node failover.
#include "bench/bench_util.h"
#include "common/clock.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(50000);

  TestBed bed(/*nodes=*/4);
  LoadRecords(bed.cluster.get(), "bucket", records, 4, 64);
  bed.cluster->Quiesce();

  PrintHeader("Rebalance & failover (paper §4.3.1)", "phase | result");

  // --- Rebalance: add a 5th node ---
  bed.cluster->AddNode(cluster::kAllServices);
  uint64_t start = Clock::Real()->NowNanos();
  Status st = bed.cluster->Rebalance();
  uint64_t elapsed = Clock::Real()->NowNanos() - start;
  if (!st.ok()) {
    std::fprintf(stderr, "rebalance failed: %s\n", st.ToString().c_str());
    return 1;
  }
  uint64_t moves = bed.cluster->total_vbucket_moves();
  std::printf("rebalance 4->5 nodes | %llu vbucket moves in %.1f ms "
              "(%.0f moves/sec)\n",
              static_cast<unsigned long long>(moves),
              static_cast<double>(elapsed) / 1e6,
              static_cast<double>(moves) * 1e9 /
                  static_cast<double>(elapsed));

  // Post-rebalance balance check.
  auto map = bed.cluster->map("bucket");
  size_t min_active = SIZE_MAX, max_active = 0;
  for (cluster::NodeId id : bed.cluster->healthy_data_nodes()) {
    size_t n = map->CountActive(id);
    min_active = std::min(min_active, n);
    max_active = std::max(max_active, n);
  }
  std::printf("post-rebalance balance | active vbuckets per node: "
              "min=%zu max=%zu (of %u)\n",
              min_active, max_active, cluster::kNumVBuckets);

  // Data intact after the moves.
  client::SmartClient client(bed.cluster.get(), "bucket");
  uint64_t missing = 0;
  for (uint64_t i = 0; i < records; i += 97) {
    if (!client.Get(ycsb::Workload::KeyFor(i)).ok()) ++missing;
  }
  std::printf("post-rebalance reads | %llu missing of sampled keys\n",
              static_cast<unsigned long long>(missing));

  // --- Failover: crash one node, promote replicas ---
  bed.cluster->Quiesce();
  start = Clock::Real()->NowNanos();
  st = bed.cluster->Failover(2);
  elapsed = Clock::Real()->NowNanos() - start;
  if (!st.ok()) return 1;
  std::printf("failover node 2 | replicas promoted in %.1f ms\n",
              static_cast<double>(elapsed) / 1e6);
  missing = 0;
  for (uint64_t i = 0; i < records; i += 97) {
    if (!client.Get(ycsb::Workload::KeyFor(i)).ok()) ++missing;
  }
  std::printf("post-failover reads | %llu missing of sampled keys\n",
              static_cast<unsigned long long>(missing));
  std::printf(
      "\nExpected shape: ~1/5 of 1024 vBuckets move on 4->5 rebalance, all\n"
      "data stays readable, and failover promotes replicas with zero lost\n"
      "keys (replication had quiesced) — §4.1.1, §4.3.1.\n");
  return 0;
}
