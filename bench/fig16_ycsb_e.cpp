// Figure 16 reproduction: YCSB workload E — short N1QL range queries over
// meta().id — queries/sec vs client thread count (paper §10.1.2).
//
// Paper query: SELECT meta().id AS id FROM `bucket`
//              WHERE meta().id >= '$1' LIMIT $2
// Expected shape: throughput grows with threads, and is roughly an order of
// magnitude (paper: ~30x) below the raw KV throughput of Figure 15.
#include "bench/bench_util.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(100000);
  const uint64_t ops_per_thread = Scaled(120);
  constexpr int kClients = 4;

  TestBed bed(/*nodes=*/4);
  std::printf("loading %llu documents...\n",
              static_cast<unsigned long long>(records));
  LoadRecords(bed.cluster.get(), "bucket", records);
  // Workload E scans via the primary index (paper: primary GSI).
  auto st = bed.queries->Execute("CREATE PRIMARY INDEX ON `bucket` USING GSI");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "#primary", 120000),
         "gsi catch-up");

  PrintHeader("Figure 16: YCSB workload E range-query throughput vs threads",
              "clients x threads | total threads | queries/sec | scan p95 (us)");

  const std::string query =
      "SELECT meta().id AS id FROM `bucket` WHERE meta().id >= $1 LIMIT $2";
  for (int threads_per_client : {12, 16, 20, 24, 28, 32}) {
    size_t total_threads = static_cast<size_t>(kClients * threads_per_client);
    ycsb::RunResult result;
    ycsb::Run(
        ycsb::WorkloadConfig::E(records), total_threads, ops_per_thread,
        [&](const ycsb::Op& op) -> Status {
          if (op.type == ycsb::OpType::kInsert) {
            thread_local std::unique_ptr<client::SmartClient> client;
            if (!client) {
              client = std::make_unique<client::SmartClient>(
                  bed.cluster.get(), "bucket");
            }
            auto r = client->Upsert(op.key, op.value);
            return r.ok() ? Status::OK() : r.status();
          }
          n1ql::QueryOptions opts;
          opts.params = {json::Value::Str(op.key),
                         json::Value::Int(static_cast<int64_t>(
                             op.scan_length))};
          auto r = bed.queries->Execute(query, opts);
          return r.ok() ? Status::OK() : r.status();
        },
        &result);
    std::printf("%7d x %-8d | %13zu | %11.0f | %13.1f\n", kClients,
                threads_per_client, total_threads, result.throughput_ops_sec,
                static_cast<double>(result.scan_latency.Percentile(0.95)) /
                    1e3);
  }
  std::printf(
      "\nExpected shape (paper Fig. 16): throughput grows with threads;\n"
      "absolute rate is far below Figure 15's KV ops (paper: ~5.4K qps vs\n"
      "~178K ops/s at 128 threads — roughly 30x).\n");
  return 0;
}
