// §6.1.1 ablation: standard (disk-backed) vs memory-optimized GSI. The
// 4.5 feature exists so "indexes can keep up with higher mutation rates";
// we measure how long each indexer type takes to absorb the same mutation
// stream, plus scan latency afterwards.
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t mutations = Scaled(40000);
  const uint64_t scans = Scaled(300);

  PrintHeader("Memory-optimized vs standard GSI (paper §6.1.1)",
              "mode | ingest (mutations/sec) | scan mean (us) | "
              "index disk bytes");
  struct Variant {
    const char* name;
    const char* with_clause;
  };
  const Variant variants[] = {
      {"standard (disk)", ""},
      {"memory-optimized", " WITH {\"memory_optimized\": true}"},
  };
  for (const Variant& v : variants) {
    TestBed bed(/*nodes=*/4);
    std::string ddl = std::string("CREATE INDEX by_f0 ON `bucket`(field0) "
                                  "USING GSI") + v.with_clause;
    auto st = bed.queries->Execute(ddl);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
      return 1;
    }
    // Time how long it takes the index to absorb `mutations` writes.
    uint64_t start = Clock::Real()->NowNanos();
    LoadRecords(bed.cluster.get(), "bucket", mutations, 4, 32);
    Status wait = bed.gsi->WaitUntilCaughtUp("bucket", "by_f0", 300000);
    uint64_t elapsed = Clock::Real()->NowNanos() - start;
    if (!wait.ok()) {
      std::fprintf(stderr, "%s\n", wait.ToString().c_str());
      return 1;
    }
    double ingest_rate = static_cast<double>(mutations) * 1e9 /
                         static_cast<double>(elapsed);

    Histogram scan_latency;
    for (uint64_t i = 0; i < scans; ++i) {
      ScopedTimer timer(&scan_latency);
      auto r = bed.queries->Execute(
          "SELECT field0 FROM `bucket` WHERE field0 >= 'm' LIMIT 50");
      if (!r.ok()) return 1;
    }
    auto stats = bed.gsi->Stats("bucket", "by_f0");
    std::printf("%-17s | %22.0f | %14.1f | %16llu\n", v.name, ingest_rate,
                scan_latency.Mean() / 1e3,
                static_cast<unsigned long long>(stats.disk_bytes_written));
  }
  std::printf(
      "\nExpected shape: the memory-optimized index ingests the mutation\n"
      "stream faster and writes zero index bytes to disk (§6.1.1).\n");
  return 0;
}
