// §3.1.2 ablation: view query staleness options under mutation load.
// stale=ok serves straight from the index; update_after additionally kicks
// the indexer; stale=false waits for the indexer to catch up first and so
// pays the highest latency while guaranteeing freshness.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(20000);
  const uint64_t queries = Scaled(300);

  TestBed bed(/*nodes=*/4);
  LoadRecords(bed.cluster.get(), "bucket", records, 4, 32);
  views::ViewDefinition def;
  def.name = "by_field0";
  def.map.key_paths = {"field0"};
  if (!bed.views->CreateView("bucket", def).ok()) return 1;
  {
    views::ViewQueryOptions warm;
    warm.limit = 1;
    MustOk(bed.views->Query("bucket", "by_field0", warm,
                            views::Staleness::kFalse),
           "view warm-up query");
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    client::SmartClient client(bed.cluster.get(), "bucket");
    std::atomic<uint64_t> dummy{0};
    ycsb::WorkloadConfig cfg;
    cfg.field_count = 4;
    cfg.field_length = 32;
    ycsb::Workload workload(cfg, 11, &dummy);
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // justified: background pressure writer; a transient refusal (e.g.
      // TempFail backpressure) only slows the churn this bench wants.
      (void)client.Upsert(ycsb::Workload::KeyFor(i++ % records),
                          workload.GenerateValue());
    }
  });

  PrintHeader("View staleness options (paper §3.1.2)",
              "stale= | mean (us) | p95 (us)");
  struct Variant {
    const char* name;
    views::Staleness staleness;
  };
  const Variant variants[] = {
      {"ok", views::Staleness::kOk},
      {"update_after", views::Staleness::kUpdateAfter},
      {"false", views::Staleness::kFalse},
  };
  for (const Variant& v : variants) {
    Histogram latency;
    for (uint64_t i = 0; i < queries; ++i) {
      views::ViewQueryOptions opts;
      opts.start_key = json::Value::Str("m");
      opts.limit = 20;
      ScopedTimer timer(&latency);
      auto r = bed.views->Query("bucket", "by_field0", opts, v.staleness);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        stop.store(true);
        writer.join();
        return 1;
      }
    }
    std::printf("%-12s | %9.1f | %8.1f\n", v.name, latency.Mean() / 1e3,
                static_cast<double>(latency.Percentile(0.95)) / 1e3);
  }
  stop.store(true);
  writer.join();
  std::printf(
      "\nExpected shape: stale=ok is cheapest, stale=false most expensive\n"
      "under mutation load — freshness is paid for in query latency\n"
      "(§3.1.2).\n");
  return 0;
}
