// §5.1.2 ablation: covering vs non-covering index scans. "Covered queries
// ... deliver better performance" because the fetch step — a key-value
// round trip per qualifying document — disappears entirely.
#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(50000);
  const uint64_t queries = Scaled(400);

  TestBed bed(/*nodes=*/4);
  LoadRecords(bed.cluster.get(), "bucket", records, 10, 100);
  auto st =
      bed.queries->Execute("CREATE INDEX by_f0 ON `bucket`(field0) USING GSI");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "by_f0", 120000),
         "gsi catch-up");

  struct Variant {
    const char* name;
    const char* query;  // covered selects only the indexed field
  };
  const Variant variants[] = {
      {"covered (index only)",
       "SELECT field0 FROM `bucket` WHERE field0 >= 'aa' AND field0 < 'ac' "
       "LIMIT 100"},
      {"non-covered (fetch)",
       "SELECT field0, field1 FROM `bucket` WHERE field0 >= 'aa' AND "
       "field0 < 'ac' LIMIT 100"},
  };

  PrintHeader("Covering index (paper §5.1.2)",
              "variant | mean (us) | p95 (us) | docs fetched/query");
  for (const Variant& v : variants) {
    Histogram latency;
    uint64_t fetched = 0;
    for (uint64_t i = 0; i < queries; ++i) {
      ScopedTimer timer(&latency);
      auto r = bed.queries->Execute(v.query);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      fetched += r->metrics.docs_fetched;
    }
    std::printf("%-22s | %9.1f | %8.1f | %10.1f\n", v.name,
                latency.Mean() / 1e3,
                static_cast<double>(latency.Percentile(0.95)) / 1e3,
                static_cast<double>(fetched) / static_cast<double>(queries));
  }
  std::printf(
      "\nExpected shape: the covered variant fetches 0 documents and runs\n"
      "faster; the non-covered variant pays one KV fetch per row (§5.1.2).\n");
  return 0;
}
