#!/bin/sh
# Smoke-runs every experiment bench at a tiny scale and validates that the
# BENCH_*.json files they emit parse. Driven by the couchkv_bench_smoke
# CMake target:
#   bench_smoke.sh <bench-bin-dir> <output-dir> <json_check-binary>
set -eu

BENCH_DIR="$1"
OUT_DIR="$2"
JSON_CHECK="$3"
LOADGEN="${4:-}"

mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/BENCH_*.json

# Tiny datasets so every bench finishes in ~a second.
COUCHKV_SCALE="${COUCHKV_SCALE:-0.002}"
export COUCHKV_SCALE
COUCHKV_BENCH_JSON_DIR="$OUT_DIR"
export COUCHKV_BENCH_JSON_DIR

status=0
for b in "$BENCH_DIR"/*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  case "$name" in
    micro_benchmarks|json_check) continue ;;  # not experiment benches
  esac
  echo "== bench_smoke: $name"
  if ! "$b" > "$OUT_DIR/$name.out" 2>&1; then
    echo "bench_smoke: $name FAILED; tail of output:"
    tail -20 "$OUT_DIR/$name.out"
    status=1
  fi
done

# Short wire run: the external load generator drives real TCP traffic for a
# couple of seconds and must emit parseable JSON like any other bench.
if [ -n "$LOADGEN" ]; then
  echo "== bench_smoke: loadgen (wire)"
  if ! "$LOADGEN" --threads 2 --duration-s 2 --keys 2000 \
      --name wire_smoke > "$OUT_DIR/loadgen.out" 2>&1; then
    echo "bench_smoke: loadgen FAILED; tail of output:"
    tail -20 "$OUT_DIR/loadgen.out"
    status=1
  fi
fi

# At least one bench must have emitted machine-readable results, and every
# emitted file must parse. The glob stays unexpanded when no file matched;
# json_check then fails on the unopenable literal name.
"$JSON_CHECK" "$OUT_DIR"/BENCH_*.json || status=1

exit $status
