// §3.2.3 ablation: scan_consistency=not_bounded vs request_plus under a
// concurrent write load. request_plus must wait for the indexer to cover
// the mutations present at request time, so it pays higher latency.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace couchkv;
using namespace couchkv::bench;

int main() {
  const uint64_t records = Scaled(20000);
  const uint64_t queries = Scaled(300);

  TestBed bed(/*nodes=*/4);
  LoadRecords(bed.cluster.get(), "bucket", records, 4, 32);
  auto st =
      bed.queries->Execute("CREATE INDEX by_f0 ON `bucket`(field0) USING GSI");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.status().ToString().c_str());
    return 1;
  }
  MustOk(bed.gsi->WaitUntilCaughtUp("bucket", "by_f0", 120000),
         "gsi catch-up");

  // Background writer keeps the index permanently behind.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    client::SmartClient client(bed.cluster.get(), "bucket");
    std::atomic<uint64_t> dummy{0};
    ycsb::WorkloadConfig cfg;
    cfg.field_count = 4;
    cfg.field_length = 32;
    ycsb::Workload workload(cfg, 7, &dummy);
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // justified: background pressure writer; a transient refusal (e.g.
      // TempFail backpressure) only slows the churn this bench wants.
      (void)client.Upsert(ycsb::Workload::KeyFor(i++ % records),
                          workload.GenerateValue());
    }
  });

  PrintHeader("Query scan consistency (paper §3.2.3)",
              "consistency | mean (us) | p95 (us) | rows/query");
  const char* names[] = {"not_bounded", "request_plus"};
  const gsi::ScanConsistency levels[] = {gsi::ScanConsistency::kNotBounded,
                                         gsi::ScanConsistency::kRequestPlus};
  for (int v = 0; v < 2; ++v) {
    Histogram latency;
    uint64_t rows = 0;
    for (uint64_t i = 0; i < queries; ++i) {
      n1ql::QueryOptions opts;
      opts.consistency = levels[v];
      ScopedTimer timer(&latency);
      auto r = bed.queries->Execute(
          "SELECT field0 FROM `bucket` WHERE field0 >= 'm' LIMIT 20", opts);
      if (r.ok()) rows += r->rows.size();
    }
    std::printf("%-12s | %9.1f | %8.1f | %10.1f\n", names[v],
                latency.Mean() / 1e3,
                static_cast<double>(latency.Percentile(0.95)) / 1e3,
                static_cast<double>(rows) / static_cast<double>(queries));
  }
  stop.store(true);
  writer.join();
  std::printf(
      "\nExpected shape: request_plus pays a visible latency premium over\n"
      "not_bounded under write load (it waits for the indexer), in exchange\n"
      "for read-your-own-write semantics (§3.2.3).\n");
  return 0;
}
