file(REMOVE_RECURSE
  "../bench/rebalance"
  "../bench/rebalance.pdb"
  "CMakeFiles/rebalance.dir/rebalance.cpp.o"
  "CMakeFiles/rebalance.dir/rebalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
