# Empty dependencies file for rebalance.
# This may be replaced when dependencies are built.
