# Empty dependencies file for view_stale.
# This may be replaced when dependencies are built.
