file(REMOVE_RECURSE
  "../bench/view_stale"
  "../bench/view_stale.pdb"
  "CMakeFiles/view_stale.dir/view_stale.cpp.o"
  "CMakeFiles/view_stale.dir/view_stale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_stale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
