file(REMOVE_RECURSE
  "../bench/fts_vs_scan"
  "../bench/fts_vs_scan.pdb"
  "CMakeFiles/fts_vs_scan.dir/fts_vs_scan.cpp.o"
  "CMakeFiles/fts_vs_scan.dir/fts_vs_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_vs_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
