# Empty dependencies file for fts_vs_scan.
# This may be replaced when dependencies are built.
