file(REMOVE_RECURSE
  "../bench/storage_compaction"
  "../bench/storage_compaction.pdb"
  "CMakeFiles/storage_compaction.dir/storage_compaction.cpp.o"
  "CMakeFiles/storage_compaction.dir/storage_compaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
