# Empty dependencies file for storage_compaction.
# This may be replaced when dependencies are built.
