file(REMOVE_RECURSE
  "../bench/fig15_ycsb_a"
  "../bench/fig15_ycsb_a.pdb"
  "CMakeFiles/fig15_ycsb_a.dir/fig15_ycsb_a.cpp.o"
  "CMakeFiles/fig15_ycsb_a.dir/fig15_ycsb_a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ycsb_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
