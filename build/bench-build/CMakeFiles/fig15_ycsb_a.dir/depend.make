# Empty dependencies file for fig15_ycsb_a.
# This may be replaced when dependencies are built.
