file(REMOVE_RECURSE
  "../bench/analytics_isolation"
  "../bench/analytics_isolation.pdb"
  "CMakeFiles/analytics_isolation.dir/analytics_isolation.cpp.o"
  "CMakeFiles/analytics_isolation.dir/analytics_isolation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
