# Empty dependencies file for analytics_isolation.
# This may be replaced when dependencies are built.
