# Empty compiler generated dependencies file for memopt_index.
# This may be replaced when dependencies are built.
