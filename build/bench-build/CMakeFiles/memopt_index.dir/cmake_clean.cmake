file(REMOVE_RECURSE
  "../bench/memopt_index"
  "../bench/memopt_index.pdb"
  "CMakeFiles/memopt_index.dir/memopt_index.cpp.o"
  "CMakeFiles/memopt_index.dir/memopt_index.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memopt_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
