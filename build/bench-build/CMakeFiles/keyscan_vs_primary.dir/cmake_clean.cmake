file(REMOVE_RECURSE
  "../bench/keyscan_vs_primary"
  "../bench/keyscan_vs_primary.pdb"
  "CMakeFiles/keyscan_vs_primary.dir/keyscan_vs_primary.cpp.o"
  "CMakeFiles/keyscan_vs_primary.dir/keyscan_vs_primary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyscan_vs_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
