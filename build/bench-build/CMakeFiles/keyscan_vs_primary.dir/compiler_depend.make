# Empty compiler generated dependencies file for keyscan_vs_primary.
# This may be replaced when dependencies are built.
