file(REMOVE_RECURSE
  "../bench/covering_index"
  "../bench/covering_index.pdb"
  "CMakeFiles/covering_index.dir/covering_index.cpp.o"
  "CMakeFiles/covering_index.dir/covering_index.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
