# Empty compiler generated dependencies file for covering_index.
# This may be replaced when dependencies are built.
