# Empty compiler generated dependencies file for durability_options.
# This may be replaced when dependencies are built.
