file(REMOVE_RECURSE
  "../bench/durability_options"
  "../bench/durability_options.pdb"
  "CMakeFiles/durability_options.dir/durability_options.cpp.o"
  "CMakeFiles/durability_options.dir/durability_options.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
