# Empty dependencies file for scan_consistency.
# This may be replaced when dependencies are built.
