file(REMOVE_RECURSE
  "../bench/scan_consistency"
  "../bench/scan_consistency.pdb"
  "CMakeFiles/scan_consistency.dir/scan_consistency.cpp.o"
  "CMakeFiles/scan_consistency.dir/scan_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
