# Empty compiler generated dependencies file for fig16_ycsb_e.
# This may be replaced when dependencies are built.
