file(REMOVE_RECURSE
  "../bench/fig16_ycsb_e"
  "../bench/fig16_ycsb_e.pdb"
  "CMakeFiles/fig16_ycsb_e.dir/fig16_ycsb_e.cpp.o"
  "CMakeFiles/fig16_ycsb_e.dir/fig16_ycsb_e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ycsb_e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
