# Empty compiler generated dependencies file for couchkv_analytics.
# This may be replaced when dependencies are built.
