file(REMOVE_RECURSE
  "CMakeFiles/couchkv_analytics.dir/analytics.cc.o"
  "CMakeFiles/couchkv_analytics.dir/analytics.cc.o.d"
  "libcouchkv_analytics.a"
  "libcouchkv_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
