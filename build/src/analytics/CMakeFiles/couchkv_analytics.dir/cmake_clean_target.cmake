file(REMOVE_RECURSE
  "libcouchkv_analytics.a"
)
