# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("kv")
subdirs("storage")
subdirs("dcp")
subdirs("cluster")
subdirs("client")
subdirs("views")
subdirs("gsi")
subdirs("n1ql")
subdirs("xdcr")
subdirs("ycsb")
subdirs("fts")
subdirs("analytics")
