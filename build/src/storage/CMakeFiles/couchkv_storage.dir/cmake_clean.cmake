file(REMOVE_RECURSE
  "CMakeFiles/couchkv_storage.dir/couch_file.cc.o"
  "CMakeFiles/couchkv_storage.dir/couch_file.cc.o.d"
  "CMakeFiles/couchkv_storage.dir/env.cc.o"
  "CMakeFiles/couchkv_storage.dir/env.cc.o.d"
  "libcouchkv_storage.a"
  "libcouchkv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
