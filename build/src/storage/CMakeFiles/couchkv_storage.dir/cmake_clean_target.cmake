file(REMOVE_RECURSE
  "libcouchkv_storage.a"
)
