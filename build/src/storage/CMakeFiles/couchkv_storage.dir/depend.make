# Empty dependencies file for couchkv_storage.
# This may be replaced when dependencies are built.
