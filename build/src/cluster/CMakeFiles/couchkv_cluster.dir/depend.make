# Empty dependencies file for couchkv_cluster.
# This may be replaced when dependencies are built.
