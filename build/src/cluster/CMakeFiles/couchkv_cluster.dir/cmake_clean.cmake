file(REMOVE_RECURSE
  "CMakeFiles/couchkv_cluster.dir/bucket.cc.o"
  "CMakeFiles/couchkv_cluster.dir/bucket.cc.o.d"
  "CMakeFiles/couchkv_cluster.dir/cluster.cc.o"
  "CMakeFiles/couchkv_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/couchkv_cluster.dir/node.cc.o"
  "CMakeFiles/couchkv_cluster.dir/node.cc.o.d"
  "CMakeFiles/couchkv_cluster.dir/vbucket.cc.o"
  "CMakeFiles/couchkv_cluster.dir/vbucket.cc.o.d"
  "CMakeFiles/couchkv_cluster.dir/vbucket_map.cc.o"
  "CMakeFiles/couchkv_cluster.dir/vbucket_map.cc.o.d"
  "libcouchkv_cluster.a"
  "libcouchkv_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
