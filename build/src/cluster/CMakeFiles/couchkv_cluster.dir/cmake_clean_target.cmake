file(REMOVE_RECURSE
  "libcouchkv_cluster.a"
)
