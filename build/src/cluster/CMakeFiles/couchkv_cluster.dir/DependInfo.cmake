
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/bucket.cc" "src/cluster/CMakeFiles/couchkv_cluster.dir/bucket.cc.o" "gcc" "src/cluster/CMakeFiles/couchkv_cluster.dir/bucket.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/couchkv_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/couchkv_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/couchkv_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/couchkv_cluster.dir/node.cc.o.d"
  "/root/repo/src/cluster/vbucket.cc" "src/cluster/CMakeFiles/couchkv_cluster.dir/vbucket.cc.o" "gcc" "src/cluster/CMakeFiles/couchkv_cluster.dir/vbucket.cc.o.d"
  "/root/repo/src/cluster/vbucket_map.cc" "src/cluster/CMakeFiles/couchkv_cluster.dir/vbucket_map.cc.o" "gcc" "src/cluster/CMakeFiles/couchkv_cluster.dir/vbucket_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/couchkv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/couchkv_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/couchkv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dcp/CMakeFiles/couchkv_dcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
