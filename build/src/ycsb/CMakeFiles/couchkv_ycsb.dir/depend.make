# Empty dependencies file for couchkv_ycsb.
# This may be replaced when dependencies are built.
