file(REMOVE_RECURSE
  "CMakeFiles/couchkv_ycsb.dir/ycsb.cc.o"
  "CMakeFiles/couchkv_ycsb.dir/ycsb.cc.o.d"
  "libcouchkv_ycsb.a"
  "libcouchkv_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
