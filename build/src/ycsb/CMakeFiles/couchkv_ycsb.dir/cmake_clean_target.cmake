file(REMOVE_RECURSE
  "libcouchkv_ycsb.a"
)
