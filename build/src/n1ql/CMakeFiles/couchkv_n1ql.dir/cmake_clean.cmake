file(REMOVE_RECURSE
  "CMakeFiles/couchkv_n1ql.dir/ast.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/ast.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/exec_util.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/exec_util.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/expr_eval.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/expr_eval.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/lexer.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/lexer.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/parser.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/parser.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/planner.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/planner.cc.o.d"
  "CMakeFiles/couchkv_n1ql.dir/query_service.cc.o"
  "CMakeFiles/couchkv_n1ql.dir/query_service.cc.o.d"
  "libcouchkv_n1ql.a"
  "libcouchkv_n1ql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_n1ql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
