# Empty dependencies file for couchkv_n1ql.
# This may be replaced when dependencies are built.
