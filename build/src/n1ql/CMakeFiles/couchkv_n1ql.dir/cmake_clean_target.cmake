file(REMOVE_RECURSE
  "libcouchkv_n1ql.a"
)
