# CMake generated Testfile for 
# Source directory: /root/repo/src/n1ql
# Build directory: /root/repo/build/src/n1ql
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
