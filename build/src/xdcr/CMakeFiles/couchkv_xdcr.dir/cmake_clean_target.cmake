file(REMOVE_RECURSE
  "libcouchkv_xdcr.a"
)
