file(REMOVE_RECURSE
  "CMakeFiles/couchkv_xdcr.dir/xdcr.cc.o"
  "CMakeFiles/couchkv_xdcr.dir/xdcr.cc.o.d"
  "libcouchkv_xdcr.a"
  "libcouchkv_xdcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_xdcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
