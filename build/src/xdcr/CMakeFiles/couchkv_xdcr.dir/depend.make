# Empty dependencies file for couchkv_xdcr.
# This may be replaced when dependencies are built.
