file(REMOVE_RECURSE
  "libcouchkv_fts.a"
)
