file(REMOVE_RECURSE
  "CMakeFiles/couchkv_fts.dir/fts.cc.o"
  "CMakeFiles/couchkv_fts.dir/fts.cc.o.d"
  "libcouchkv_fts.a"
  "libcouchkv_fts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_fts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
