# Empty compiler generated dependencies file for couchkv_fts.
# This may be replaced when dependencies are built.
