# Empty dependencies file for couchkv_common.
# This may be replaced when dependencies are built.
