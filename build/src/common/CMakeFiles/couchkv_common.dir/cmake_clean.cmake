file(REMOVE_RECURSE
  "CMakeFiles/couchkv_common.dir/clock.cc.o"
  "CMakeFiles/couchkv_common.dir/clock.cc.o.d"
  "CMakeFiles/couchkv_common.dir/crc32.cc.o"
  "CMakeFiles/couchkv_common.dir/crc32.cc.o.d"
  "CMakeFiles/couchkv_common.dir/histogram.cc.o"
  "CMakeFiles/couchkv_common.dir/histogram.cc.o.d"
  "CMakeFiles/couchkv_common.dir/logging.cc.o"
  "CMakeFiles/couchkv_common.dir/logging.cc.o.d"
  "CMakeFiles/couchkv_common.dir/random.cc.o"
  "CMakeFiles/couchkv_common.dir/random.cc.o.d"
  "CMakeFiles/couchkv_common.dir/status.cc.o"
  "CMakeFiles/couchkv_common.dir/status.cc.o.d"
  "CMakeFiles/couchkv_common.dir/thread_pool.cc.o"
  "CMakeFiles/couchkv_common.dir/thread_pool.cc.o.d"
  "libcouchkv_common.a"
  "libcouchkv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
