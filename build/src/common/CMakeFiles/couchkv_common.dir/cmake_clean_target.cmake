file(REMOVE_RECURSE
  "libcouchkv_common.a"
)
