# Empty dependencies file for couchkv_json.
# This may be replaced when dependencies are built.
