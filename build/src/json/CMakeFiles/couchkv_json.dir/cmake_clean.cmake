file(REMOVE_RECURSE
  "CMakeFiles/couchkv_json.dir/value.cc.o"
  "CMakeFiles/couchkv_json.dir/value.cc.o.d"
  "libcouchkv_json.a"
  "libcouchkv_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
