file(REMOVE_RECURSE
  "libcouchkv_json.a"
)
