file(REMOVE_RECURSE
  "CMakeFiles/couchkv_gsi.dir/index_service.cc.o"
  "CMakeFiles/couchkv_gsi.dir/index_service.cc.o.d"
  "CMakeFiles/couchkv_gsi.dir/indexer.cc.o"
  "CMakeFiles/couchkv_gsi.dir/indexer.cc.o.d"
  "libcouchkv_gsi.a"
  "libcouchkv_gsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_gsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
