# Empty compiler generated dependencies file for couchkv_gsi.
# This may be replaced when dependencies are built.
