file(REMOVE_RECURSE
  "libcouchkv_gsi.a"
)
