file(REMOVE_RECURSE
  "CMakeFiles/couchkv_views.dir/view.cc.o"
  "CMakeFiles/couchkv_views.dir/view.cc.o.d"
  "CMakeFiles/couchkv_views.dir/view_engine.cc.o"
  "CMakeFiles/couchkv_views.dir/view_engine.cc.o.d"
  "CMakeFiles/couchkv_views.dir/view_index.cc.o"
  "CMakeFiles/couchkv_views.dir/view_index.cc.o.d"
  "libcouchkv_views.a"
  "libcouchkv_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
