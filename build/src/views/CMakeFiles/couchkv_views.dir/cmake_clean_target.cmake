file(REMOVE_RECURSE
  "libcouchkv_views.a"
)
