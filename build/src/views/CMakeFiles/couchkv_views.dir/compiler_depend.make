# Empty compiler generated dependencies file for couchkv_views.
# This may be replaced when dependencies are built.
