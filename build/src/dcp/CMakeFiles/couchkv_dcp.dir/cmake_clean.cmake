file(REMOVE_RECURSE
  "CMakeFiles/couchkv_dcp.dir/dcp.cc.o"
  "CMakeFiles/couchkv_dcp.dir/dcp.cc.o.d"
  "libcouchkv_dcp.a"
  "libcouchkv_dcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_dcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
