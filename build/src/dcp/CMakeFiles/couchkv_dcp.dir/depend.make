# Empty dependencies file for couchkv_dcp.
# This may be replaced when dependencies are built.
