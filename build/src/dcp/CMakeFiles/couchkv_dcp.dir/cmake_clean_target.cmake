file(REMOVE_RECURSE
  "libcouchkv_dcp.a"
)
