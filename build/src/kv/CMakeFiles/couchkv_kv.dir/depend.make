# Empty dependencies file for couchkv_kv.
# This may be replaced when dependencies are built.
