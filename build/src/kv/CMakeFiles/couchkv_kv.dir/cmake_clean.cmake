file(REMOVE_RECURSE
  "CMakeFiles/couchkv_kv.dir/hash_table.cc.o"
  "CMakeFiles/couchkv_kv.dir/hash_table.cc.o.d"
  "libcouchkv_kv.a"
  "libcouchkv_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
