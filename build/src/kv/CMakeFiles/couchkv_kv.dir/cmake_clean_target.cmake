file(REMOVE_RECURSE
  "libcouchkv_kv.a"
)
