file(REMOVE_RECURSE
  "libcouchkv_client.a"
)
