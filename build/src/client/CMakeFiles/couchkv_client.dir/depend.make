# Empty dependencies file for couchkv_client.
# This may be replaced when dependencies are built.
