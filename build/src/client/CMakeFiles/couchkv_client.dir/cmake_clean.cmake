file(REMOVE_RECURSE
  "CMakeFiles/couchkv_client.dir/smart_client.cc.o"
  "CMakeFiles/couchkv_client.dir/smart_client.cc.o.d"
  "libcouchkv_client.a"
  "libcouchkv_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/couchkv_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
