file(REMOVE_RECURSE
  "CMakeFiles/fts_test.dir/fts_test.cc.o"
  "CMakeFiles/fts_test.dir/fts_test.cc.o.d"
  "fts_test"
  "fts_test.pdb"
  "fts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
