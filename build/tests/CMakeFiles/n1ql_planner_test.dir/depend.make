# Empty dependencies file for n1ql_planner_test.
# This may be replaced when dependencies are built.
