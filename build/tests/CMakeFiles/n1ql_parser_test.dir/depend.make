# Empty dependencies file for n1ql_parser_test.
# This may be replaced when dependencies are built.
