# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for n1ql_parser_test.
