file(REMOVE_RECURSE
  "CMakeFiles/dcp_test.dir/dcp_test.cc.o"
  "CMakeFiles/dcp_test.dir/dcp_test.cc.o.d"
  "dcp_test"
  "dcp_test.pdb"
  "dcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
