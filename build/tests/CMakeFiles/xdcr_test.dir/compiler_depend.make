# Empty compiler generated dependencies file for xdcr_test.
# This may be replaced when dependencies are built.
