file(REMOVE_RECURSE
  "CMakeFiles/xdcr_test.dir/xdcr_test.cc.o"
  "CMakeFiles/xdcr_test.dir/xdcr_test.cc.o.d"
  "xdcr_test"
  "xdcr_test.pdb"
  "xdcr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdcr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
