
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics_test.cc" "tests/CMakeFiles/analytics_test.dir/analytics_test.cc.o" "gcc" "tests/CMakeFiles/analytics_test.dir/analytics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/couchkv_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/couchkv_client.dir/DependInfo.cmake"
  "/root/repo/build/src/n1ql/CMakeFiles/couchkv_n1ql.dir/DependInfo.cmake"
  "/root/repo/build/src/gsi/CMakeFiles/couchkv_gsi.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/couchkv_views.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/couchkv_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/couchkv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dcp/CMakeFiles/couchkv_dcp.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/couchkv_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/couchkv_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/couchkv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
