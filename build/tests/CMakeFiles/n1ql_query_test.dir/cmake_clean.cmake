file(REMOVE_RECURSE
  "CMakeFiles/n1ql_query_test.dir/n1ql_query_test.cc.o"
  "CMakeFiles/n1ql_query_test.dir/n1ql_query_test.cc.o.d"
  "n1ql_query_test"
  "n1ql_query_test.pdb"
  "n1ql_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/n1ql_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
