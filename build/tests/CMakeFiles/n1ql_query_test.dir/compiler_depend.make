# Empty compiler generated dependencies file for n1ql_query_test.
# This may be replaced when dependencies are built.
