# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/dcp_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/views_test[1]_include.cmake")
include("/root/repo/build/tests/gsi_test[1]_include.cmake")
include("/root/repo/build/tests/n1ql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/n1ql_query_test[1]_include.cmake")
include("/root/repo/build/tests/xdcr_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fts_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/n1ql_planner_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
