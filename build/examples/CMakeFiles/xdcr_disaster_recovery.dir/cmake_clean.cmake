file(REMOVE_RECURSE
  "CMakeFiles/xdcr_disaster_recovery.dir/xdcr_disaster_recovery.cpp.o"
  "CMakeFiles/xdcr_disaster_recovery.dir/xdcr_disaster_recovery.cpp.o.d"
  "xdcr_disaster_recovery"
  "xdcr_disaster_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdcr_disaster_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
