# Empty dependencies file for xdcr_disaster_recovery.
# This may be replaced when dependencies are built.
