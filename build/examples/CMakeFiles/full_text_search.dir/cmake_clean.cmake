file(REMOVE_RECURSE
  "CMakeFiles/full_text_search.dir/full_text_search.cpp.o"
  "CMakeFiles/full_text_search.dir/full_text_search.cpp.o.d"
  "full_text_search"
  "full_text_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_text_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
