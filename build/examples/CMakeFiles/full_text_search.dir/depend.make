# Empty dependencies file for full_text_search.
# This may be replaced when dependencies are built.
