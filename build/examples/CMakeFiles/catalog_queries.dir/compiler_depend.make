# Empty compiler generated dependencies file for catalog_queries.
# This may be replaced when dependencies are built.
