file(REMOVE_RECURSE
  "CMakeFiles/catalog_queries.dir/catalog_queries.cpp.o"
  "CMakeFiles/catalog_queries.dir/catalog_queries.cpp.o.d"
  "catalog_queries"
  "catalog_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
