// Cross-datacenter replication for disaster recovery (paper §4.6): two
// clusters, bidirectional XDCR with a key filter, a concurrent-update
// conflict resolved identically on both sides, and a full datacenter
// failover with no data loss for replicated keys.
#include <cstdio>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "examples/example_util.h"
#include "xdcr/xdcr.h"

using namespace couchkv;
using examples::MustOk;

namespace {
void Settle(cluster::Cluster* a, cluster::Cluster* b) {
  for (int i = 0; i < 4; ++i) {
    a->Quiesce();
    b->Quiesce();
  }
}
}  // namespace

int main() {
  // Two geographically separate clusters.
  cluster::Cluster east, west;
  for (int i = 0; i < 3; ++i) {
    east.AddNode();
    west.AddNode();
  }
  cluster::BucketConfig config;
  config.name = "accounts";
  config.num_replicas = 1;
  MustOk(east.CreateBucket(config), "create east bucket");
  MustOk(west.CreateBucket(config), "create west bucket");
  client::SmartClient east_client(&east, "accounts");
  client::SmartClient west_client(&west, "accounts");

  // Bidirectional XDCR; only "acct:" keys replicate (filtered replication,
  // §4.6: "based on a regular expression on the document ID").
  xdcr::XdcrSpec spec;
  spec.source_bucket = spec.target_bucket = "accounts";
  spec.key_filter_regex = "^acct:";
  auto east_to_west = std::make_shared<xdcr::XdcrLink>(&east, &west, spec);
  auto west_to_east = std::make_shared<xdcr::XdcrLink>(&west, &east, spec);
  MustOk(east_to_west->Start("xdcr-east-west"), "start east->west link");
  MustOk(west_to_east->Start("xdcr-west-east"), "start west->east link");

  // Normal operation: each datacenter serves its local users.
  for (int i = 0; i < 20; ++i) {
    MustOk(east_client.Upsert("acct:e" + std::to_string(i),
                              R"({"dc":"east"})"),
           "upsert east account");
    MustOk(west_client.Upsert("acct:w" + std::to_string(i),
                              R"({"dc":"west"})"),
           "upsert west account");
  }
  // Not replicated: filtered out by the key filter.
  MustOk(east_client.Upsert("cache:tmp", R"({"local_only":true})"),
         "upsert cache:tmp");
  Settle(&east, &west);

  std::printf("east sees west account: %s\n",
              east_client.Get("acct:w3").ok() ? "yes" : "no");
  std::printf("west sees east account: %s\n",
              west_client.Get("acct:e3").ok() ? "yes" : "no");
  std::printf("west sees east-local cache key: %s (filtered)\n",
              west_client.Get("cache:tmp").ok() ? "yes" : "no");

  // Concurrent update of the same account in both datacenters: conflict
  // resolution picks the same winner everywhere (§4.6.1).
  MustOk(east_client.Upsert("acct:shared",
                            R"({"balance":100,"updated_in":"east"})"),
         "seed acct:shared");
  Settle(&east, &west);
  MustOk(west_client.Upsert("acct:shared",
                            R"({"balance":150,"updated_in":"west"})"),
         "west update 1");
  MustOk(west_client.Upsert("acct:shared",
                            R"({"balance":175,"updated_in":"west"})"),
         "west update 2");
  MustOk(east_client.Upsert("acct:shared",
                            R"({"balance":120,"updated_in":"east"})"),
         "east update");
  Settle(&east, &west);
  Settle(&east, &west);
  auto east_doc = east_client.GetJson("acct:shared");
  auto west_doc = west_client.GetJson("acct:shared");
  std::printf("conflict winner east=%s west=%s (must match)\n",
              east_doc->Field("updated_in").AsString().c_str(),
              west_doc->Field("updated_in").AsString().c_str());

  auto stats = east_to_west->stats();
  std::printf("east->west: sent=%llu filtered=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.docs_sent),
              static_cast<unsigned long long>(stats.docs_filtered),
              static_cast<unsigned long long>(stats.docs_rejected));

  // Disaster: the east datacenter loses two of its three nodes. Standard
  // Couchbase operations: failover (promote replicas), rebalance (rebuild
  // replica copies on the survivors), then failover again when the second
  // node dies. Without the rebalance the second failover would find
  // vBuckets with no replica left to promote.
  MustOk(east.Failover(1), "failover node 1");
  MustOk(east.Rebalance(), "rebalance survivors");
  MustOk(east.Failover(2), "failover node 2");
  std::printf("east after double failover, orchestrator=%u, acct:e7 %s\n",
              east.orchestrator(),
              east_client.Get("acct:e7").ok() ? "readable" : "LOST");
  // The west datacenter has everything that mattered.
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    if (west_client.Get("acct:e" + std::to_string(i)).ok()) ++ok;
  }
  std::printf("west datacenter holds %d/20 east accounts after DR\n", ok);
  return 0;
}
