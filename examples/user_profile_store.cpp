// User-profile store: the paper's flagship OLTP use case (§1: "1-3
// milliseconds being a common latency expectation for applications like
// user profile stores"). Demonstrates optimistic CAS, pessimistic GETL
// locks, per-mutation durability options, TTL-based sessions, and surviving
// a node failover without losing profiles.
#include <cstdio>
#include <thread>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "examples/example_util.h"

using namespace couchkv;
using examples::MustOk;

int main() {
  cluster::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig config;
  config.name = "profiles";
  config.num_replicas = 1;
  if (!cluster.CreateBucket(config).ok()) return 1;
  client::SmartClient client(&cluster, "profiles");

  // --- Create profiles with durability options (paper §2.3.2) ---
  // Most writes take the fast path (ack from memory); the "registration"
  // write waits for a replica so a node crash cannot lose it.
  client::WriteOptions durable;
  durable.durability = cluster::Durability::Replicate(1);
  MustOk(client.Insert("user::alice",
                       R"({"name":"Alice","visits":0,"plan":"free"})",
                       durable),
         "insert user::alice");
  MustOk(client.Insert("user::bob",
                       R"({"name":"Bob","visits":0,"plan":"pro"})", durable),
         "insert user::bob");
  std::printf("created 2 profiles (replicated to 1 replica before ack)\n");

  // --- Optimistic concurrency: many sessions bump visit counters ---
  // Exactly the §3.1.1 CAS flow: read, modify locally, conditional write,
  // re-read and retry on conflict.
  auto bump_visits = [&cluster](const std::string& key, int times) {
    client::SmartClient local(&cluster, "profiles");
    for (int i = 0; i < times; ++i) {
      for (;;) {
        auto doc = local.Get(key);
        auto profile = json::Parse(doc->value).value();
        profile["visits"] =
            json::Value::Int(profile.Field("visits").AsInt() + 1);
        client::WriteOptions opts;
        opts.cas = doc->cas;  // fail if someone changed it meanwhile
        if (local.Replace(key, profile.ToJson(), opts).ok()) break;
      }
    }
  };
  std::vector<std::thread> sessions;
  for (int s = 0; s < 8; ++s) {
    sessions.emplace_back(bump_visits, "user::alice", 25);
  }
  for (auto& t : sessions) t.join();
  auto alice = client.GetJson("user::alice");
  std::printf("alice.visits = %lld after 8x25 concurrent CAS increments\n",
              static_cast<long long>(alice->Field("visits").AsInt()));

  // --- Pessimistic locking for an admin operation (§3.1.1 GETL) ---
  auto locked = client.GetAndLock("user::bob", /*lock_ms=*/15000);
  auto bob = json::Parse(locked->value).value();
  bob["plan"] = json::Value::Str("enterprise");
  // Other writers bounce off the hard lock while we hold it.
  if (client.Upsert("user::bob", "{}").status().IsLocked()) {
    std::printf("concurrent write correctly refused while bob is locked\n");
  }
  client::WriteOptions unlock_write;
  unlock_write.cas = locked->cas;
  MustOk(client.Replace("user::bob", bob.ToJson(), unlock_write),
         "unlock-replace user::bob");
  std::printf("bob.plan upgraded under a hard lock\n");

  // --- TTL sessions ---
  uint32_t now = static_cast<uint32_t>(cluster.clock()->NowSeconds());
  client::WriteOptions session;
  session.expiry = now + 1800;  // 30-minute session token
  MustOk(client.Upsert("session::alice::web", R"({"user":"user::alice"})",
                       session),
         "store session token");
  // Sliding expiry.
  MustOk(client.Touch("session::alice::web", now + 3600), "touch session");
  std::printf("session token stored with sliding TTL\n");

  // --- Failover: kill a node, profiles stay available (§4.1.1, §4.3.1) ---
  cluster.Quiesce();  // let replication catch up
  MustOk(cluster.Failover(2), "failover node 2");
  auto after = client.GetJson("user::alice");
  std::printf("after failover of node 2: alice still readable, visits=%lld\n",
              static_cast<long long>(after->Field("visits").AsInt()));
  std::printf("orchestrator is now node %u\n", cluster.orchestrator());
  return 0;
}
