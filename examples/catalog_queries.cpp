// Catalog / SKU management (paper §1: "applications such as catalog and SKU
// management systems need the ability to change and update information on
// the fly"). Shows the full N1QL surface: UNNEST over nested arrays, NEST
// to assemble orders into customers, covering and partial indexes, views
// with reduce, and DML.
#include <cstdio>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "examples/example_util.h"
#include "n1ql/query_service.h"

using namespace couchkv;
using examples::MustOk;

namespace {
void Show(const char* title, const StatusOr<n1ql::QueryResult>& r) {
  std::printf("-- %s\n", title);
  if (!r.ok()) {
    std::printf("   error: %s\n", r.status().ToString().c_str());
    return;
  }
  for (const auto& row : r->rows) {
    std::printf("   %s\n", row.ToJson().c_str());
  }
}
}  // namespace

int main() {
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig config;
  config.name = "catalog";
  config.num_replicas = 1;
  if (!cluster.CreateBucket(config).ok()) return 1;

  auto gsi = std::make_shared<gsi::IndexService>(&cluster);
  gsi->Attach();
  auto views = std::make_shared<views::ViewEngine>(&cluster);
  views->Attach();
  n1ql::QueryService q(&cluster, gsi, views);
  client::SmartClient client(&cluster, "catalog");

  // A bucket holds documents of different shapes (schema flexibility):
  // products, and customers with embedded order-id arrays.
  MustOk(client.Upsert("sku::couch", R"({"doc_type":"product","name":"Couch",
      "price":499, "categories":["furniture","living-room"],
      "stock":{"sf":3,"ny":9}})"),
         "upsert sku::couch");
  MustOk(client.Upsert("sku::lamp", R"({"doc_type":"product","name":"Lamp",
      "price":49, "categories":["lighting","living-room"],
      "stock":{"sf":12,"ny":0}})"),
         "upsert sku::lamp");
  MustOk(client.Upsert("sku::desk", R"({"doc_type":"product","name":"Desk",
      "price":199, "categories":["furniture","office"],
      "stock":{"sf":1,"ny":4}})"),
         "upsert sku::desk");
  MustOk(client.Upsert("order::1001",
                       R"({"doc_type":"order","sku":"sku::couch","qty":1})"),
         "upsert order::1001");
  MustOk(client.Upsert("order::1002",
                       R"({"doc_type":"order","sku":"sku::lamp","qty":3})"),
         "upsert order::1002");
  MustOk(client.Upsert("cust::carol", R"({"doc_type":"customer","name":"Carol",
      "order_ids":["order::1001","order::1002"]})"),
         "upsert cust::carol");

  n1ql::QueryOptions opts;
  opts.consistency = gsi::ScanConsistency::kRequestPlus;

  // Indexes: a primary index, a price index (range queries), and a partial
  // index over in-stock SF products only (§3.3.4).
  MustOk(q.Execute("CREATE PRIMARY INDEX ON catalog USING GSI"),
         "create primary index");
  MustOk(q.Execute("CREATE INDEX by_price ON catalog(price) USING GSI"),
         "create by_price index");
  MustOk(q.Execute(
             "CREATE INDEX sf_stocked ON catalog(price) WHERE stock.sf > 0 "
             "USING GSI"),
         "create sf_stocked index");

  Show("products under $200 (IndexScan on by_price)",
       q.Execute("SELECT name, price FROM catalog "
                 "WHERE price < 200 AND doc_type = 'product' ORDER BY price",
                 opts));

  Show("covered price histogram (no document fetch, §5.1.2)",
       q.Execute("SELECT price FROM catalog WHERE price >= 40 ORDER BY price",
                 opts));

  Show("UNNEST: distinct categories in use (paper §3.2.3 example)",
       q.Execute("SELECT DISTINCT categories FROM catalog "
                 "UNNEST catalog.categories AS categories "
                 "ORDER BY categories",
                 opts));

  Show("NEST: carol's orders embedded as an array",
       q.Execute("SELECT c.name, orders FROM catalog c USE KEYS 'cust::carol' "
                 "NEST catalog AS orders ON KEYS c.order_ids",
                 opts));

  Show("JOIN: order lines with product names (ON KEYS join, §4.5.3)",
       q.Execute("SELECT o.qty, p.name, o.qty * p.price AS total "
                 "FROM catalog o USE KEYS ['order::1001','order::1002'] "
                 "JOIN catalog p ON KEYS o.sku ORDER BY total DESC",
                 opts));

  Show("aggregates: stock value per category",
       q.Execute("SELECT cat, SUM(price) AS value, COUNT(*) AS items "
                 "FROM catalog UNNEST catalog.categories AS cat "
                 "WHERE doc_type = 'product' GROUP BY cat ORDER BY cat",
                 opts));

  // A view with a _stats reduce: pre-computed aggregates in the index tree
  // (paper §4.3.3 "View Engine").
  views::ViewDefinition price_stats;
  price_stats.name = "price_stats";
  price_stats.map.filter_eq_path = "doc_type";
  price_stats.map.filter_eq_value = json::Value::Str("product");
  price_stats.map.key_paths = {"doc_type"};
  price_stats.map.value_path = "price";
  price_stats.reduce = views::ReduceFn::kStats;
  MustOk(views->CreateView("catalog", price_stats), "create price_stats view");
  views::ViewQueryOptions vopts;
  auto stats = views->Query("catalog", "price_stats", vopts,
                            views::Staleness::kFalse);
  std::printf("-- view reduce (stale=false): %s\n",
              stats->rows[0].value.ToJson().c_str());

  // On-the-fly update: a price change is immediately queryable with
  // request_plus consistency.
  MustOk(q.Execute("UPDATE catalog USE KEYS 'sku::lamp' SET price = 39"),
         "update lamp price");
  Show("after UPDATE, lamp price",
       q.Execute("SELECT name, price FROM catalog USE KEYS 'sku::lamp'",
                 opts));
  return 0;
}
