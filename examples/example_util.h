// Shared helper for the example programs: every couchkv call returns a
// [[nodiscard]] Status/StatusOr, and the examples model the intended idiom —
// nothing is silently dropped. MustOk keeps the happy path linear while
// still aborting loudly (with the failing step named) on any error.
#ifndef COUCHKV_EXAMPLES_EXAMPLE_UTIL_H_
#define COUCHKV_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/status.h"

namespace couchkv::examples {

inline void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T MustOk(StatusOr<T> v, const char* what) {
  if (!v.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 v.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(v);
}

}  // namespace couchkv::examples

#endif  // COUCHKV_EXAMPLES_EXAMPLE_UTIL_H_
