// Quickstart: bring up a 3-node couchkv cluster, store JSON documents via
// the key-value API, create indexes, and query with N1QL — the three access
// paths of the paper's §3.1 in one small program.
#include <cstdio>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "examples/example_util.h"
#include "n1ql/query_service.h"

using namespace couchkv;
using examples::MustOk;

int main() {
  // 1. A cluster of three nodes, all running data + index + query services.
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode(cluster::kAllServices);

  cluster::BucketConfig config;
  config.name = "travel";
  config.num_replicas = 1;
  if (!cluster.CreateBucket(config).ok()) return 1;

  // 2. Attach the index / view / query services.
  auto gsi = std::make_shared<gsi::IndexService>(&cluster);
  gsi->Attach();
  auto views = std::make_shared<views::ViewEngine>(&cluster);
  views->Attach();
  n1ql::QueryService queries(&cluster, gsi, views);

  // 3. Key-value access path: the smart client hashes each key to its
  //    vBucket and talks straight to the owning node (Figure 5).
  client::SmartClient client(&cluster, "travel");
  MustOk(client.Upsert("airline::1",
                       R"({"name":"Couch Air","country":"US","fleet":12})"),
         "upsert airline::1");
  MustOk(client.Upsert("airline::2",
                       R"({"name":"Nickel Jet","country":"FR","fleet":5})"),
         "upsert airline::2");
  MustOk(client.Upsert("airline::3",
                       R"({"name":"JSON Wings","country":"US","fleet":31})"),
         "upsert airline::3");

  auto doc = client.Get("airline::1");
  std::printf("GET airline::1 -> %s (cas=%llu)\n", doc->value.c_str(),
              static_cast<unsigned long long>(doc->cas));

  // 4. Query access path: create a GSI index, then run N1QL.
  MustOk(queries.Execute(
             "CREATE INDEX by_country ON travel(country) USING GSI"),
         "create by_country index");

  n1ql::QueryOptions opts;
  opts.consistency = gsi::ScanConsistency::kRequestPlus;  // read-your-writes
  auto result = queries.Execute(
      "SELECT name, fleet FROM travel WHERE country = 'US' ORDER BY fleet",
      opts);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("US airlines by fleet size:\n");
  for (const auto& row : result->rows) {
    std::printf("  %s\n", row.ToJson().c_str());
  }

  // 5. EXPLAIN shows the chosen access path (paper §4.5.3).
  auto plan = queries.Execute(
      "EXPLAIN SELECT name FROM travel WHERE country = 'US'");
  std::printf("plan: %s\n", plan->rows[0].ToJson().c_str());
  return 0;
}
