// Full-text search (paper §6.1.3): a product-review search application on
// top of the FTS service — term, prefix, and phrase queries with tf-idf
// ranking, fed live by DCP, next to the same bucket's KV and N1QL traffic.
#include <cstdio>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "examples/example_util.h"
#include "fts/fts.h"

using namespace couchkv;
using examples::MustOk;

namespace {
void Show(const char* title, const StatusOr<std::vector<fts::SearchHit>>& r) {
  std::printf("-- %s\n", title);
  if (!r.ok()) {
    std::printf("   error: %s\n", r.status().ToString().c_str());
    return;
  }
  for (const auto& hit : *r) {
    std::printf("   %-12s score=%.2f\n", hit.doc_id.c_str(), hit.score);
  }
}
}  // namespace

int main() {
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig config;
  config.name = "reviews";
  config.num_replicas = 1;
  if (!cluster.CreateBucket(config).ok()) return 1;
  client::SmartClient client(&cluster, "reviews");

  MustOk(client.Upsert("rev::1", R"({"product":"couch","stars":5,
      "text":"Incredibly comfortable couch, perfect for long evenings"})"),
         "upsert rev::1");
  MustOk(client.Upsert("rev::2", R"({"product":"couch","stars":2,
      "text":"The couch springs squeak and the fabric pills quickly"})"),
         "upsert rev::2");
  MustOk(client.Upsert("rev::3", R"({"product":"desk","stars":4,
      "text":"Solid desk, comfortable height, easy assembly"})"),
         "upsert rev::3");
  MustOk(client.Upsert("rev::4", R"({"product":"lamp","stars":5,
      "text":"Warm light, perfect for long reading evenings"})"),
         "upsert rev::4");

  auto fts = std::make_shared<fts::SearchService>(&cluster);
  fts->Attach();
  fts::FtsIndexDefinition def;
  def.name = "review_text";
  def.bucket = "reviews";
  def.fields = {"text"};  // index only the review body
  if (!fts->CreateIndex(def).ok()) return 1;

  Show("term: comfortable",
       fts->Search("reviews", "review_text", "comfortable",
                   fts::QueryMode::kAllTerms, 10, /*consistent=*/true));

  Show("all terms: perfect evenings",
       fts->Search("reviews", "review_text", "perfect evenings",
                   fts::QueryMode::kAllTerms, 10, true));

  Show("any term: squeak OR assembly",
       fts->Search("reviews", "review_text", "squeak assembly",
                   fts::QueryMode::kAnyTerm, 10, true));

  Show("prefix: comfort*",
       fts->Search("reviews", "review_text", "comfort*",
                   fts::QueryMode::kAllTerms, 10, true));

  Show("phrase: \"long evenings\"",
       fts->Search("reviews", "review_text", "long evenings",
                   fts::QueryMode::kPhrase, 10, true));

  // The index follows mutations (DCP): update a review and search again.
  MustOk(client.Upsert("rev::2", R"({"product":"couch","stars":4,
      "text":"After the fix, the couch is actually comfortable"})"),
         "upsert rev::2");
  Show("term after live update: comfortable",
       fts->Search("reviews", "review_text", "comfortable",
                   fts::QueryMode::kAllTerms, 10, true));
  return 0;
}
