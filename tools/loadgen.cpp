// External load generator for the wire front-end: drives GET/SET traffic
// through WireClient, so every measured operation is serialized into a
// binary-protocol frame and crosses a real TCP socket into a node's
// listener — there is no in-process shortcut anywhere on the measured path.
//
// Two places the cluster can live:
//   --connect P1[,P2...]   attach to an external couchkv_server process
//                          (bootstrap from its printed ports)
//   (default)              spawn an in-process cluster with --nodes nodes;
//                          traffic still crosses the kernel via loopback
//
// Two load modes:
//   closed loop (default)  each thread issues its next op as soon as the
//                          previous one completes; measures service latency
//   --target-ops R         open loop at R ops/s total: arrivals are
//                          scheduled on a fixed grid and latency is measured
//                          from the SCHEDULED start, so queueing delay from
//                          a slow server is charged to the server
//                          (coordinated-omission resistant), not hidden by
//                          the client slowing down
//
// Emits BENCH_<name>.json through the shared BenchReporter.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "client/wire_client.h"
#include "cluster/cluster.h"
#include "common/affinity.h"
#include "common/clock.h"
#include "common/random.h"

namespace {

using couchkv::Clock;
using couchkv::Rng;
using couchkv::Status;
using couchkv::ZipfianGenerator;

struct Config {
  std::vector<uint16_t> connect_ports;  // empty = spawn in-process
  int nodes = 3;
  std::string bucket = "default";
  int threads = 4;
  double duration_s = 5.0;
  uint64_t target_ops = 0;  // 0 = closed loop
  uint64_t keys = 10000;
  size_t value_size = 128;
  int read_pct = 80;
  bool zipfian = true;
  bool preload = true;
  uint64_t seed = 42;
  // Durability attached to every write: "R,P" = replicate_to R, persist_to
  // P (0,0 = memory-ack only). Writes then stall in the server's
  // replicate/persist phases, which the server-side percentiles expose.
  uint32_t replicate_to = 0;
  uint32_t persist_to = 0;
  std::string name = "wire_loadgen";
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--connect P1,P2,...] [--nodes N] [--bucket NAME]\n"
      "  [--threads T] [--duration-s S] [--target-ops R] [--keys K]\n"
      "  [--value-size B] [--read-pct P] [--dist zipfian|uniform]\n"
      "  [--no-preload] [--seed S] [--durability R,P] [--name NAME]\n",
      argv0);
  std::exit(2);
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--connect") == 0) {
      std::string list = next("--connect");
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        cfg.connect_ports.push_back(
            static_cast<uint16_t>(std::atoi(list.substr(pos).c_str())));
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      cfg.nodes = std::atoi(next("--nodes"));
    } else if (std::strcmp(argv[i], "--bucket") == 0) {
      cfg.bucket = next("--bucket");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      cfg.threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--duration-s") == 0) {
      cfg.duration_s = std::atof(next("--duration-s"));
    } else if (std::strcmp(argv[i], "--target-ops") == 0) {
      cfg.target_ops = std::strtoull(next("--target-ops"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      cfg.keys = std::strtoull(next("--keys"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--value-size") == 0) {
      cfg.value_size = static_cast<size_t>(std::atoi(next("--value-size")));
    } else if (std::strcmp(argv[i], "--read-pct") == 0) {
      cfg.read_pct = std::atoi(next("--read-pct"));
    } else if (std::strcmp(argv[i], "--dist") == 0) {
      const char* d = next("--dist");
      if (std::strcmp(d, "zipfian") == 0) {
        cfg.zipfian = true;
      } else if (std::strcmp(d, "uniform") == 0) {
        cfg.zipfian = false;
      } else {
        Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--no-preload") == 0) {
      cfg.preload = false;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      cfg.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--durability") == 0) {
      std::string spec = next("--durability");
      size_t comma = spec.find(',');
      if (comma == std::string::npos) Usage(argv[0]);
      cfg.replicate_to =
          static_cast<uint32_t>(std::atoi(spec.substr(0, comma).c_str()));
      cfg.persist_to =
          static_cast<uint32_t>(std::atoi(spec.substr(comma + 1).c_str()));
    } else if (std::strcmp(argv[i], "--name") == 0) {
      cfg.name = next("--name");
    } else {
      Usage(argv[0]);
    }
  }
  if (cfg.threads < 1 || cfg.nodes < 1 || cfg.keys == 0) Usage(argv[0]);
  return cfg;
}

std::string KeyFor(uint64_t i) { return "user" + std::to_string(i); }

}  // namespace

int main(int argc, char** argv) {
  couchkv::affinity::ScopedDomain main_domain("main");
  Config cfg = ParseArgs(argc, argv);

  // Spawn mode: the cluster lives in this process, but its KV service is
  // reached exclusively through the TCP listeners below.
  std::unique_ptr<couchkv::cluster::Cluster> local;
  std::vector<uint16_t> ports = cfg.connect_ports;
  if (ports.empty()) {
    local = std::make_unique<couchkv::cluster::Cluster>();
    for (int i = 0; i < cfg.nodes; ++i) {
      local->AddNode(couchkv::cluster::kAllServices);
    }
    couchkv::cluster::BucketConfig config;
    config.name = cfg.bucket;
    config.num_replicas = 1;
    config.memory_quota_bytes = 4ull << 30;
    couchkv::bench::MustOk(local->CreateBucket(config), "bucket creation");
    couchkv::bench::MustOk(local->StartWireServers(cfg.bucket),
                           "wire servers");
    for (couchkv::cluster::NodeId id : local->node_ids()) {
      ports.push_back(local->wire_port(id));
    }
  }

  // Preload the keyspace so reads hit existing documents.
  const std::string value(cfg.value_size, 'v');
  if (cfg.preload) {
    std::atomic<uint64_t> next{0};
    std::vector<std::thread> loaders;
    int nloaders = cfg.threads < 8 ? cfg.threads : 8;
    for (int t = 0; t < nloaders; ++t) {
      loaders.emplace_back([&] {
        couchkv::affinity::ScopedDomain domain("client");
        couchkv::client::WireClient client(ports, cfg.bucket);
        for (;;) {
          uint64_t i = next.fetch_add(1);
          if (i >= cfg.keys) break;
          couchkv::bench::MustOk(client.Upsert(KeyFor(i), value),
                                 "preload upsert");
        }
      });
    }
    for (auto& t : loaders) t.join();
  }

  // Per-op latency goes through registry histograms so the emitted
  // percentiles are the same ones an operator would scrape.
  auto scope = couchkv::stats::Registry::Global().GetScope("loadgen");
  couchkv::Histogram* read_ns = scope->GetHistogram("read_ns");
  couchkv::Histogram* write_ns = scope->GetHistogram("write_ns");
  // Server-reported duration (from the response's framed extra) and the
  // derived client-minus-server remainder: what the network + client-side
  // queueing cost on top of the server's own work.
  couchkv::Histogram* read_server_ns = scope->GetHistogram("read_server_ns");
  couchkv::Histogram* write_server_ns = scope->GetHistogram("write_server_ns");
  couchkv::Histogram* read_net_ns = scope->GetHistogram("read_net_ns");
  couchkv::Histogram* write_net_ns = scope->GetHistogram("write_net_ns");
  couchkv::stats::Counter* errors = scope->GetCounter("errors");

  couchkv::bench::BenchReporter reporter(cfg.name);
  Clock* clock = Clock::Real();
  const uint64_t start_ns = clock->NowNanos();
  const uint64_t end_ns =
      start_ns + static_cast<uint64_t>(cfg.duration_s * 1e9);
  // Open loop: each thread owns every threads-th slot of the global arrival
  // grid, so the aggregate rate is cfg.target_ops regardless of stragglers.
  const uint64_t interval_ns =
      cfg.target_ops > 0
          ? static_cast<uint64_t>(1e9 * cfg.threads /
                                  static_cast<double>(cfg.target_ops))
          : 0;

  std::atomic<uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      couchkv::affinity::ScopedDomain domain("client");
      couchkv::client::WireClient client(ports, cfg.bucket);
      Rng rng(cfg.seed * 1000003 + static_cast<uint64_t>(t));
      ZipfianGenerator zipf(cfg.keys);
      uint64_t issued = 0;
      for (;;) {
        uint64_t now = clock->NowNanos();
        if (now >= end_ns) break;
        uint64_t op_start = now;
        if (interval_ns > 0) {
          // The op's scheduled arrival; sleep if early, never skip if late.
          uint64_t scheduled = start_ns + t * (interval_ns / cfg.threads) +
                               issued * interval_ns;
          if (scheduled >= end_ns) break;
          if (scheduled > now) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(scheduled - now));
          }
          op_start = scheduled;
        }
        uint64_t k = cfg.zipfian ? zipf.Next(rng) : rng.Uniform(cfg.keys);
        std::string key = KeyFor(k);
        bool is_read = rng.Uniform(100) < static_cast<uint64_t>(cfg.read_pct);
        Status st = Status::OK();
        uint64_t server_ns = 0;
        if (is_read) {
          auto r = client.Get(key);
          // A read of a never-written key under --no-preload is load, not
          // an error.
          st = r.ok() || r.status().IsNotFound() ? Status::OK() : r.status();
          if (r.ok()) server_ns = uint64_t{r->server.total_us} * 1000;
        } else {
          couchkv::client::WriteOptions wopts;
          wopts.durability.replicate_to = cfg.replicate_to;
          wopts.durability.persist_to = cfg.persist_to;
          auto r = client.Upsert(key, value, wopts);
          st = r.ok() ? Status::OK() : r.status();
          if (r.ok()) server_ns = uint64_t{r->server.total_us} * 1000;
        }
        uint64_t latency = clock->NowNanos() - op_start;
        if (!st.ok()) {
          errors->Add();
        } else {
          (is_read ? read_ns : write_ns)->Record(latency);
          (is_read ? read_server_ns : write_server_ns)->Record(server_ns);
          (is_read ? read_net_ns : write_net_ns)
              ->Record(latency > server_ns ? latency - server_ns : 0);
          total_ops.fetch_add(1, std::memory_order_relaxed);
        }
        ++issued;
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_s =
      static_cast<double>(clock->NowNanos() - start_ns) / 1e9;
  const double achieved = static_cast<double>(total_ops.load()) / elapsed_s;

  couchkv::json::Value::Object row;
  row["mode"] = couchkv::json::Value::Str(
      cfg.target_ops > 0 ? "open_loop" : "closed_loop");
  row["transport"] = couchkv::json::Value::Str("tcp");
  row["threads"] = couchkv::json::Value::Int(cfg.threads);
  row["distribution"] =
      couchkv::json::Value::Str(cfg.zipfian ? "zipfian" : "uniform");
  row["read_pct"] = couchkv::json::Value::Int(cfg.read_pct);
  row["keys"] = couchkv::json::Value::Int(static_cast<int64_t>(cfg.keys));
  row["value_size"] =
      couchkv::json::Value::Int(static_cast<int64_t>(cfg.value_size));
  row["target_ops_s"] =
      couchkv::json::Value::Int(static_cast<int64_t>(cfg.target_ops));
  row["achieved_ops_s"] = couchkv::json::Value::Number(achieved);
  row["duration_s"] = couchkv::json::Value::Number(elapsed_s);
  row["errors"] =
      couchkv::json::Value::Int(static_cast<int64_t>(errors->Value()));
  row["durability"] = couchkv::json::Value::Str(
      std::to_string(cfg.replicate_to) + "," + std::to_string(cfg.persist_to));
  row["read"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.read_ns"));
  row["write"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.write_ns"));
  // Three views of the same ops: end-to-end from the client, the server's
  // own accounting, and the difference (network + queue).
  row["read_server"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.read_server_ns"));
  row["write_server"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.write_server_ns"));
  row["read_net"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.read_net_ns"));
  row["write_net"] =
      couchkv::bench::BenchReporter::LatencySummary(
          reporter.HistDelta("loadgen.write_net_ns"));
  reporter.AddRow(couchkv::json::Value::MakeObject(std::move(row)));
  if (!reporter.Write()) return 1;
  std::printf("loadgen: %.0f ops/s over %.2fs (%llu ops, %llu errors)\n",
              achieved, elapsed_s,
              static_cast<unsigned long long>(total_ops.load()),
              static_cast<unsigned long long>(errors->Value()));
  return 0;
}
