// Standalone couchkv server process: boots an in-process cluster, opens one
// binary-protocol TCP listener per node, prints the ports, and serves until
// killed. This is the external-process target for the load generator and
// for kill-9 torture in scripts/run_wire_workloads.sh — clients reach it
// only through real sockets.
//
// Output contract (consumed by scripts):
//   WIRE node=<id> port=<port>     one line per node
//   READY                          after all listeners are up
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/cluster.h"
#include "common/affinity.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--bucket NAME] [--replicas R]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  couchkv::affinity::ScopedDomain main_domain("main");
  int nodes = 3;
  std::string bucket = "default";
  uint32_t replicas = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--bucket") == 0 && i + 1 < argc) {
      bucket = argv[++i];
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      Usage(argv[0]);
    }
  }
  if (nodes < 1) Usage(argv[0]);

  // Block the shutdown signals BEFORE any thread spawns, so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  couchkv::cluster::Cluster cluster;
  for (int i = 0; i < nodes; ++i) {
    cluster.AddNode(couchkv::cluster::kAllServices);
  }
  couchkv::cluster::BucketConfig config;
  config.name = bucket;
  config.num_replicas = replicas;
  config.memory_quota_bytes = 4ull << 30;
  couchkv::Status st = cluster.CreateBucket(config);
  if (!st.ok()) {
    std::fprintf(stderr, "bucket creation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  st = cluster.StartWireServers(bucket);
  if (!st.ok()) {
    std::fprintf(stderr, "wire servers failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (couchkv::cluster::NodeId id : cluster.node_ids()) {
    std::printf("WIRE node=%u port=%u\n", id, cluster.wire_port(id));
  }
  std::printf("READY\n");
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("shutting down on signal %d\n", sig);
  return 0;
}
