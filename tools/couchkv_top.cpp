// couchkv_top: a live terminal poller for a running cluster's wire
// front-ends. Each tick it asks every listed node for STAT "wire" (per-node
// ops counter + per-phase latency histograms) and OBSERVE_TRACE (the flight
// recorder), then prints one line per node:
//
//   ops/s     interval rate from the node's wire.ops counter delta
//   p50/p99   per phase (server total, dispatch, engine, replicate,
//             persist), microseconds. These are lifetime percentiles from
//             the registry histograms — the JSON exposition carries summary
//             quantiles, not buckets, so they cannot be windowed per tick.
//   slowest   the oldest currently in-flight op: its trace id, opcode, and
//             age — the thing to grab when a node looks wedged.
//
// usage: couchkv_top --connect P1[,P2...] [--interval-ms N] [--count N]
//                    [--raw]
//   --connect      wire ports to poll (one per node; couchkv_server prints
//                  them at startup)
//   --interval-ms  poll period (default 1000)
//   --count        number of ticks, 0 = until interrupted (default 0)
//   --raw          also dump each node's OBSERVE_TRACE JSON every tick
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "client/wire_client.h"
#include "common/clock.h"
#include "json/value.h"
#include "net/wire/wire.h"

namespace {

namespace wire = couchkv::net::wire;

struct Config {
  std::vector<uint16_t> ports;
  uint64_t interval_ms = 1000;
  uint64_t count = 0;  // 0 = forever
  bool raw = false;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect P1[,P2...] [--interval-ms N] [--count N] "
               "[--raw]\n",
               argv0);
  std::exit(2);
}

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--connect") == 0) {
      std::string list = next("--connect");
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        cfg.ports.push_back(
            static_cast<uint16_t>(std::atoi(list.substr(pos).c_str())));
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--interval-ms") == 0) {
      cfg.interval_ms = std::strtoull(next("--interval-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--count") == 0) {
      cfg.count = std::strtoull(next("--count"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--raw") == 0) {
      cfg.raw = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (cfg.ports.empty() || cfg.interval_ms == 0) Usage(argv[0]);
  return cfg;
}

// Finds the single "node.<id>.<suffix>" key in a STAT "wire" snapshot (each
// listener serves exactly one node, so exactly one node id appears).
const couchkv::json::Value* FindNodeMetric(const couchkv::json::Value& doc,
                                           const std::string& suffix,
                                           std::string* node_label) {
  if (!doc.is_object()) return nullptr;
  for (const auto& [name, v] : doc.AsObject()) {
    if (name.rfind("node.", 0) != 0) continue;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    if (node_label != nullptr) {
      // "node.3.wire.ops" -> "3"
      size_t dot = name.find('.', 5);
      *node_label = dot == std::string::npos ? "?" : name.substr(5, dot - 5);
    }
    return &v;
  }
  return nullptr;
}

struct PhaseQuantiles {
  double p50 = 0;
  double p99 = 0;
  bool present = false;
};

PhaseQuantiles Quantiles(const couchkv::json::Value& doc,
                         const std::string& phase) {
  PhaseQuantiles q;
  const couchkv::json::Value* h =
      FindNodeMetric(doc, ".wire." + phase + "_ns", nullptr);
  if (h == nullptr || !h->is_object()) return q;
  if (h->Field("p50_us").is_number()) q.p50 = h->Field("p50_us").AsNumber();
  if (h->Field("p99_us").is_number()) q.p99 = h->Field("p99_us").AsNumber();
  q.present = true;
  return q;
}

struct SlowestInflight {
  uint64_t age_us = 0;
  uint64_t trace_id = 0;
  int opcode = -1;
};

SlowestInflight ParseSlowest(const couchkv::json::Value& trace_doc) {
  SlowestInflight s;
  const couchkv::json::Value& inflight = trace_doc.Field("inflight");
  if (!inflight.is_array()) return s;
  for (const couchkv::json::Value& op : inflight.AsArray()) {
    uint64_t age = op.Field("age_us").is_number()
                       ? static_cast<uint64_t>(op.Field("age_us").AsInt())
                       : 0;
    if (age < s.age_us && s.opcode >= 0) continue;
    s.age_us = age;
    s.opcode = op.Field("opcode").is_number()
                   ? static_cast<int>(op.Field("opcode").AsInt())
                   : -1;
    s.trace_id = op.Field("trace_id").is_string()
                     ? std::strtoull(op.Field("trace_id").AsString().c_str(),
                                     nullptr, 10)
                     : 0;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = ParseArgs(argc, argv);
  couchkv::Clock* clock = couchkv::Clock::Real();

  // port -> (last wire.ops value, last sample nanos) for interval rates.
  std::map<uint16_t, std::pair<uint64_t, uint64_t>> last_ops;

  std::printf("%-6s %-6s %9s  %17s %17s %17s %17s %17s  %s\n", "node",
              "port", "ops/s", "total p50/p99us", "dispatch", "engine",
              "replicate", "persist", "slowest in-flight");
  for (uint64_t tick = 0; cfg.count == 0 || tick < cfg.count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cfg.interval_ms));
    }
    for (uint16_t port : cfg.ports) {
      wire::Message stat_req = wire::Message::Req(wire::Opcode::kStat);
      stat_req.key = "wire";
      auto stat_resp = couchkv::client::RawRoundTrip(port, stat_req);
      if (!stat_resp.ok() || stat_resp->status != wire::kSuccess) {
        std::printf("%-6s %-6u %9s  (unreachable: %s)\n", "?", port, "-",
                    stat_resp.ok()
                        ? stat_resp->value.c_str()
                        : stat_resp.status().ToString().c_str());
        continue;
      }
      auto stat_doc = couchkv::json::Parse(stat_resp->value);
      if (!stat_doc.ok()) {
        std::printf("%-6s %-6u %9s  (bad stats json)\n", "?", port, "-");
        continue;
      }
      const uint64_t now = clock->NowNanos();
      std::string node_label = "?";
      const couchkv::json::Value* ops =
          FindNodeMetric(*stat_doc, ".wire.ops", &node_label);
      double rate = 0;
      if (ops != nullptr && ops->is_number()) {
        uint64_t v = static_cast<uint64_t>(ops->AsInt());
        auto it = last_ops.find(port);
        if (it != last_ops.end() && now > it->second.second &&
            v >= it->second.first) {
          rate = static_cast<double>(v - it->second.first) * 1e9 /
                 static_cast<double>(now - it->second.second);
        }
        last_ops[port] = {v, now};
      }

      char cols[5][32];
      const char* phases[5] = {"server", "dispatch", "engine", "replicate",
                               "persist"};
      for (int p = 0; p < 5; ++p) {
        PhaseQuantiles q = Quantiles(*stat_doc, phases[p]);
        if (q.present) {
          std::snprintf(cols[p], sizeof(cols[p]), "%.0f/%.0f", q.p50, q.p99);
        } else {
          std::snprintf(cols[p], sizeof(cols[p]), "-");
        }
      }

      wire::Message trace_req = wire::Message::Req(wire::Opcode::kObserveTrace);
      auto trace_resp = couchkv::client::RawRoundTrip(port, trace_req);
      char slowest[96];
      std::snprintf(slowest, sizeof(slowest), "-");
      std::string raw_dump;
      if (trace_resp.ok() && trace_resp->status == wire::kSuccess) {
        raw_dump = trace_resp->value;
        auto trace_doc = couchkv::json::Parse(trace_resp->value);
        if (trace_doc.ok()) {
          SlowestInflight s = ParseSlowest(*trace_doc);
          if (s.opcode >= 0) {
            std::snprintf(slowest, sizeof(slowest),
                          "%s age=%" PRIu64 "us trace=%" PRIu64,
                          wire::OpcodeName(static_cast<uint8_t>(s.opcode)),
                          s.age_us, s.trace_id);
          }
        }
      }

      std::printf("%-6s %-6u %9.0f  %17s %17s %17s %17s %17s  %s\n",
                  node_label.c_str(), port, rate, cols[0], cols[1], cols[2],
                  cols[3], cols[4], slowest);
      if (cfg.raw && !raw_dump.empty()) {
        std::printf("  raw[%u]: %s\n", port, raw_dump.c_str());
      }
    }
    std::fflush(stdout);
  }
  return 0;
}
