// Unit tests for the Database Change Protocol: change logs, streams,
// backfill from storage, multiple consumers, dispatcher quiesce.
#include <gtest/gtest.h>

#include "dcp/dcp.h"
#include "storage/couch_file.h"

namespace couchkv::dcp {
namespace {

kv::Document Doc(const std::string& key, const std::string& value,
                 uint64_t seqno) {
  kv::Document doc;
  doc.key = key;
  doc.value = value;
  doc.meta.seqno = seqno;
  return doc;
}

TEST(ChangeLogTest, AppendAndRead) {
  ChangeLog log;
  log.Append(Doc("a", "1", 1));
  log.Append(Doc("b", "2", 2));
  log.Append(Doc("c", "3", 3));
  std::vector<kv::Document> out;
  log.ReadSince(1, 100, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, "b");
  EXPECT_EQ(out[1].key, "c");
  EXPECT_EQ(log.high_seqno(), 3u);
}

TEST(ChangeLogTest, ReadRespectsMax) {
  ChangeLog log;
  for (uint64_t i = 1; i <= 10; ++i) log.Append(Doc("k", "v", i));
  std::vector<kv::Document> out;
  log.ReadSince(0, 4, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].meta.seqno, 1u);
}

TEST(ChangeLogTest, WindowTrimsOldest) {
  ChangeLog log(/*max_items=*/5);
  for (uint64_t i = 1; i <= 10; ++i) log.Append(Doc("k", "v", i));
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.start_seqno(), 6u);
  std::vector<kv::Document> out;
  uint64_t start = log.ReadSince(0, 100, &out);
  EXPECT_EQ(start, 6u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(ProducerTest, StreamReceivesMutationsInOrder) {
  Producer p(4, nullptr);
  std::vector<uint64_t> seen;
  ASSERT_TRUE(p.AddStream("test", 2, 0, [&](const kv::Mutation& m) {
                 EXPECT_EQ(m.vbucket, 2);
                 seen.push_back(m.doc.meta.seqno);
                 return Status::OK();
               }).ok());
  p.OnMutation(2, Doc("a", "1", 1));
  p.OnMutation(2, Doc("b", "2", 2));
  p.OnMutation(3, Doc("x", "9", 1));  // different vbucket: not delivered
  p.Drain();
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
}

TEST(ProducerTest, StreamFromMidpoint) {
  Producer p(1, nullptr);
  for (uint64_t i = 1; i <= 10; ++i) p.OnMutation(0, Doc("k", "v", i));
  std::vector<uint64_t> seen;
  ASSERT_TRUE(p.AddStream("mid", 0, 7, [&](const kv::Mutation& m) {
                 seen.push_back(m.doc.meta.seqno);
                 return Status::OK();
               }).ok());
  p.Drain();
  EXPECT_EQ(seen, (std::vector<uint64_t>{8, 9, 10}));
}

TEST(ProducerTest, MultipleConsumersIndependent) {
  Producer p(1, nullptr);
  int a = 0, b = 0;
  ASSERT_TRUE(p.AddStream("a", 0, 0, [&](const kv::Mutation&) {
                 ++a;
                 return Status::OK();
               }).ok());
  p.OnMutation(0, Doc("k", "1", 1));
  p.Drain();
  ASSERT_TRUE(p.AddStream("b", 0, 0, [&](const kv::Mutation&) {
                 ++b;
                 return Status::OK();
               }).ok());
  p.OnMutation(0, Doc("k", "2", 2));
  p.Drain();
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);  // b started from 0 and caught up
}

TEST(ProducerTest, RemoveStreamStopsDelivery) {
  Producer p(1, nullptr);
  int count = 0;
  uint64_t id =
      p.AddStream("x", 0, 0, [&](const kv::Mutation&) {
         ++count;
         return Status::OK();
       }).value();
  p.OnMutation(0, Doc("k", "1", 1));
  p.Drain();
  p.RemoveStream(id);
  p.OnMutation(0, Doc("k", "2", 2));
  p.Drain();
  EXPECT_EQ(count, 1);
}

TEST(ProducerTest, RemoveStreamsNamed) {
  Producer p(2, nullptr);
  int count = 0;
  auto counter = [&](const kv::Mutation&) {
    ++count;
    return Status::OK();
  };
  ASSERT_TRUE(p.AddStream("repl", 0, 0, counter).ok());
  ASSERT_TRUE(p.AddStream("repl", 1, 0, counter).ok());
  ASSERT_TRUE(p.AddStream("other", 0, 0, [](const kv::Mutation&) {
                 return Status::OK();
               }).ok());
  p.RemoveStreamsNamed("repl");
  p.OnMutation(0, Doc("k", "1", 1));
  p.Drain();
  EXPECT_EQ(count, 0);
}

TEST(ProducerTest, StreamSeqnoTracksAcks) {
  Producer p(1, nullptr);
  ASSERT_TRUE(p.AddStream("idx", 0, 0, [](const kv::Mutation&) {
                 return Status::OK();
               }).ok());
  EXPECT_EQ(p.StreamSeqno("idx", 0), 0u);
  p.OnMutation(0, Doc("k", "1", 1));
  p.OnMutation(0, Doc("k", "2", 2));
  p.Drain();
  EXPECT_EQ(p.StreamSeqno("idx", 0), 2u);
  EXPECT_EQ(p.StreamSeqno("missing", 0), UINT64_MAX);
}

TEST(ProducerTest, BackfillFromStorageCoversTrimmedWindow) {
  // Build a storage file holding the full history.
  auto env = storage::Env::NewMemEnv();
  auto cf = storage::CouchFile::Open(env.get(), "vb0").value();
  std::vector<kv::Document> docs;
  for (uint64_t i = 1; i <= 100; ++i) {
    docs.push_back(Doc("key" + std::to_string(i), "v", i));
  }
  ASSERT_TRUE(cf->SaveDocs(docs).ok());
  ASSERT_TRUE(cf->Commit().ok());

  Producer p(1, [&](uint16_t vb, uint64_t since, const MutationFn& fn) {
    return cf->ChangesSince(since, [&](const kv::Document& d) {
      kv::Mutation m;
      m.vbucket = vb;
      m.doc = d;
      return fn(m);
    });
  });
  // Tiny in-memory window: only the last few mutations are in the log.
  // (Producer's internal logs have a large default; emulate the trimmed
  // state by feeding only the tail through OnMutation.)
  for (uint64_t i = 95; i <= 100; ++i) {
    p.OnMutation(0, Doc("key" + std::to_string(i), "v", i));
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(p.AddStream("warm", 0, 0, [&](const kv::Mutation& m) {
                 seen.push_back(m.doc.meta.seqno);
                 return Status::OK();
               }).ok());
  p.Drain();
  // Backfill supplies 1..94 from storage, the window supplies 95..100.
  ASSERT_EQ(seen.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(DispatcherTest, DeliversAsynchronously) {
  auto p = std::make_shared<Producer>(1, nullptr);
  std::atomic<int> count{0};
  ASSERT_TRUE(p->AddStream("async", 0, 0, [&](const kv::Mutation&) {
                 count.fetch_add(1);
                 return Status::OK();
               }).ok());
  Dispatcher d;
  d.AddProducer(p);
  for (uint64_t i = 1; i <= 50; ++i) {
    p->OnMutation(0, Doc("k", "v", i));
    d.Notify();
  }
  // Wait for async delivery.
  for (int spin = 0; spin < 10000 && count.load() < 50; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 50);
  d.Stop();
}

TEST(DispatcherTest, QuiesceDrainsSynchronously) {
  auto p = std::make_shared<Producer>(1, nullptr);
  int count = 0;
  ASSERT_TRUE(p->AddStream("q", 0, 0, [&](const kv::Mutation&) {
                 ++count;
                 return Status::OK();
               }).ok());
  Dispatcher d;
  d.AddProducer(p);
  d.Stop();  // kill the async thread; quiesce still works
  for (uint64_t i = 1; i <= 5; ++i) p->OnMutation(0, Doc("k", "v", i));
  d.Quiesce();
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace couchkv::dcp
