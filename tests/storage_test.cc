// Unit tests for the append-only storage engine: persistence, crash
// recovery (torn tails), compaction, fragmentation, and both Env backends.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "storage/couch_file.h"
#include "storage/env.h"
#include "storage/faulty_env.h"

namespace couchkv::storage {
namespace {

kv::Document MakeDoc(const std::string& key, const std::string& value,
                     uint64_t seqno, bool deleted = false) {
  kv::Document doc;
  doc.key = key;
  doc.value = value;
  doc.meta.seqno = seqno;
  doc.meta.cas = seqno * 10;
  doc.meta.revno = 1;
  doc.meta.deleted = deleted;
  return doc;
}

class CouchFileTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      dir_ = ::testing::TempDir() + "/couchkv_storage_test";
      std::filesystem::create_directories(dir_);
      env_owned_.reset();
      env_ = Env::Posix();
      // Unique path per test case: parallel ctest runs must not collide.
      // Parameterized test names contain '/', which is not path-safe.
      const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
      std::string name = info->name();
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      path_ = dir_ + "/" + name + ".couch";
      // justified: best-effort cleanup of a prior run's files; NotFound is fine.
      (void)env_->Remove(path_);
      (void)env_->Remove(path_ + ".compact");  // justified: see above.
    } else {
      env_owned_ = Env::NewMemEnv();
      env_ = env_owned_.get();
      path_ = "vb0.couch";
    }
  }

  std::unique_ptr<Env> env_owned_;
  Env* env_ = nullptr;
  std::string dir_;
  std::string path_;
};

INSTANTIATE_TEST_SUITE_P(Backends, CouchFileTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST_P(CouchFileTest, SaveCommitGet) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1), MakeDoc("b", "v2", 2)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  auto doc = cf->Get("a");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->value, "v1");
  EXPECT_EQ(doc->meta.seqno, 1u);
  EXPECT_TRUE(cf->Get("zzz").status().IsNotFound());
  EXPECT_EQ(cf->high_seqno(), 2u);
}

TEST_P(CouchFileTest, UpdatesSupersede) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v2", 2)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  EXPECT_EQ(cf->Get("a")->value, "v2");
  EXPECT_EQ(cf->stats().num_live_docs, 1u);
}

TEST_P(CouchFileTest, DeleteLeavesTombstone) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "", 2, /*deleted=*/true)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  EXPECT_TRUE(cf->Get("a").status().IsNotFound());
  EXPECT_EQ(cf->stats().num_tombstones, 1u);
}

TEST_P(CouchFileTest, ReopenRecoversCommittedState) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1), MakeDoc("b", "v2", 2)}).ok());
    ASSERT_TRUE(cf->Commit().ok());
    ASSERT_TRUE(cf->SaveDocs({MakeDoc("c", "v3", 3)}).ok());
    // No commit for c: it must vanish on reopen (crash semantics).
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->Get("a")->value, "v1");
  EXPECT_EQ(cf->Get("b")->value, "v2");
  EXPECT_TRUE(cf->Get("c").status().IsNotFound());
  EXPECT_EQ(cf->high_seqno(), 2u);
}

TEST_P(CouchFileTest, RecoveryTruncatesTornTail) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());
    ASSERT_TRUE(cf->Commit().ok());
  }
  // Simulate a torn write: append garbage bytes.
  {
    auto f = env_->Open(path_).value();
    ASSERT_TRUE(f->Append("GARBAGE-PARTIAL-RECORD").ok());
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->Get("a")->value, "v1");
  // Further writes after recovery work.
  EXPECT_TRUE(cf->SaveDocs({MakeDoc("b", "v2", 2)}).ok());
  EXPECT_TRUE(cf->Commit().ok());
  EXPECT_EQ(cf->Get("b")->value, "v2");
}

TEST_P(CouchFileTest, ChangesSinceStreamsInSeqnoOrder) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "1", 1), MakeDoc("b", "2", 2),
                MakeDoc("c", "3", 3), MakeDoc("a", "4", 4)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  std::vector<uint64_t> seqnos;
  ASSERT_TRUE(cf->ChangesSince(1, [&](const kv::Document& d) {
                  seqnos.push_back(d.meta.seqno);
                  return Status::OK();
                }).ok());
  // seqno 1 was superseded by 4 (same key); only latest versions stream.
  EXPECT_EQ(seqnos, (std::vector<uint64_t>{2, 3, 4}));
}

TEST_P(CouchFileTest, CompactionShrinksFile) {
  auto cf = CouchFile::Open(env_, path_).value();
  std::string big(512, 'x');
  for (uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(cf->SaveDocs({MakeDoc("hot", big + std::to_string(i), i)}).ok());
  }
  ASSERT_TRUE(cf->Commit().ok());
  double frag_before = cf->Fragmentation();
  uint64_t size_before = cf->stats().file_size;
  EXPECT_GT(frag_before, 0.9);
  ASSERT_TRUE(cf->Compact().ok());
  EXPECT_LT(cf->stats().file_size, size_before / 10);
  EXPECT_LT(cf->Fragmentation(), 0.1);
  // Data survives compaction.
  EXPECT_EQ(cf->Get("hot")->value, big + "100");
  EXPECT_EQ(cf->high_seqno(), 100u);
}

TEST_P(CouchFileTest, CompactionPurgesOldTombstones) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v", 1)}).ok());
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "", 2, true)}).ok());
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("b", "v", 3)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  ASSERT_TRUE(cf->Compact(/*purge_before_seqno=*/3).ok());
  EXPECT_EQ(cf->stats().num_tombstones, 0u);
  EXPECT_EQ(cf->stats().num_live_docs, 1u);
}

TEST_P(CouchFileTest, ReopenAfterCompaction) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(cf->SaveDocs({MakeDoc("k" + std::to_string(i), "v", i)}).ok());
    }
    ASSERT_TRUE(cf->Commit().ok());
    ASSERT_TRUE(cf->Compact().ok());
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->stats().num_live_docs, 10u);
  EXPECT_EQ(cf->Get("k7")->value, "v");
}

TEST_P(CouchFileTest, ForEachLiveVisitsAllLiveDocs) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "1", 1), MakeDoc("b", "2", 2),
                MakeDoc("b", "", 3, true)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  int count = 0;
  ASSERT_TRUE(cf->ForEachLive([&](const kv::Document& d) {
                  EXPECT_EQ(d.key, "a");
                  ++count;
                  return Status::OK();
                }).ok());
  EXPECT_EQ(count, 1);
}

TEST_P(CouchFileTest, EmptyFileHasNoFragmentation) {
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_DOUBLE_EQ(cf->Fragmentation(), 0.0);
  EXPECT_EQ(cf->high_seqno(), 0u);
}

TEST_P(CouchFileTest, LargeValuesRoundTrip) {
  auto cf = CouchFile::Open(env_, path_).value();
  std::string huge(1 << 20, 'q');
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("big", huge, 1)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  EXPECT_EQ(cf->Get("big")->value, huge);
}

TEST(EnvTest, MemEnvRename) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("a").value();
  ASSERT_TRUE(f->Append("data").ok());
  ASSERT_TRUE(env->Rename("a", "b").ok());
  EXPECT_FALSE(env->Exists("a"));
  EXPECT_TRUE(env->Exists("b"));
  std::string out;
  ASSERT_TRUE(env->Open("b").value()->Read(0, 4, &out).ok());
  EXPECT_EQ(out, "data");
}

TEST(EnvTest, MemEnvIsolation) {
  auto env1 = Env::NewMemEnv();
  auto env2 = Env::NewMemEnv();
  ASSERT_TRUE(env1->Open("f").value()->Append("x").ok());
  EXPECT_TRUE(env1->Exists("f"));
  EXPECT_FALSE(env2->Exists("f"));
}

TEST(EnvTest, ReadPastEofFails) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("f").value();
  ASSERT_TRUE(f->Append("abc").ok());
  std::string out;
  EXPECT_FALSE(f->Read(1, 5, &out).ok());
  EXPECT_TRUE(f->Read(1, 2, &out).ok());
  EXPECT_EQ(out, "bc");
}

TEST(EnvTest, TruncateShrinks) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("f").value();
  ASSERT_TRUE(f->Append("abcdef").ok());
  ASSERT_TRUE(f->Truncate(3).ok());
  EXPECT_EQ(f->Size(), 3u);
}

// --- Fault injection: the error paths [[nodiscard]] surfaces must WORK ---
//
// Every case drives CouchFile through a storage::FaultyEnv failure and
// asserts the two storage invariants: committed state never regresses, and
// a failed operation leaves the file usable (retry or recovery converges).

class FaultyCouchFileTest : public ::testing::Test {
 protected:
  FaultyCouchFileTest() : base_(Env::NewMemEnv()) {}

  // Opens a FaultyEnv over the shared MemEnv with the given options. The
  // MemEnv persists across FaultyEnv instances, so tests can "reboot the
  // disk controller" (fresh faults) over the same surviving bytes.
  std::unique_ptr<FaultyEnv> MakeFaulty(FaultyEnvOptions opts = {}) {
    return std::make_unique<FaultyEnv>(base_.get(), opts);
  }

  std::unique_ptr<Env> base_;
  std::string path_ = "vb0.couch";
};

TEST_F(FaultyCouchFileTest, EnospcMidSaveDocsKeepsCommittedStateReadable) {
  FaultyEnvOptions opts;
  opts.enospc_after_bytes = 4096;  // enough for the first batch, not a flood
  auto fenv = MakeFaulty(opts);
  auto cf = CouchFile::Open(fenv.get(), path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1), MakeDoc("b", "v2", 2)}).ok());
  ASSERT_TRUE(cf->Commit().ok());

  // Fill the disk: large docs until SaveDocs reports the ENOSPC IOError.
  // The injected failure is a SHORT WRITE (a prefix reaches the file), the
  // worst case recovery must cope with.
  std::string big(1024, 'x');
  Status st = Status::OK();
  uint64_t seq = 3;
  while (st.ok()) {
    st = cf->SaveDocs({MakeDoc("big" + std::to_string(seq), big, seq)});
    ++seq;
  }
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(fenv->stats().appends_failed, 1u);

  // The pre-ENOSPC commit is untouched: still readable in place...
  EXPECT_EQ(cf->Get("a")->value, "v1");

  // ...and recoverable from the bytes on disk. Reopening runs recovery,
  // which truncates the short-written tail back to the last commit.
  cf.reset();
  auto reopened = CouchFile::Open(fenv.get(), path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Get("a")->value, "v1");
  EXPECT_EQ((*reopened)->Get("b")->value, "v2");
  EXPECT_GE((*reopened)->high_seqno(), 2u);
}

TEST_F(FaultyCouchFileTest, SyncFailureAtCommitIsRetryable) {
  auto fenv = MakeFaulty();
  auto cf = CouchFile::Open(fenv.get(), path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());

  fenv->FailNextSyncs(1);
  Status st = cf->Commit();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(fenv->stats().syncs_failed, 1u);

  // No durability barrier happened, so nothing may claim to be committed —
  // but the file must still be usable: the retried Commit succeeds and the
  // data is then recoverable.
  ASSERT_TRUE(cf->Commit().ok());
  cf.reset();
  auto reopened = CouchFile::Open(fenv.get(), path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("a")->value, "v1");
}

TEST_F(FaultyCouchFileTest, TornCommitFooterRecoversToLastGoodCommit) {
  auto fenv = MakeFaulty();
  auto cf = CouchFile::Open(fenv.get(), path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());
  ASSERT_TRUE(cf->Commit().ok());  // last good commit

  // Second batch lands, but its commit FOOTER is torn mid-append: only a
  // few bytes of the commit record reach the disk, then the "crash".
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v2", 2), MakeDoc("c", "v3", 3)}).ok());
  fenv->TearNextAppend(5);
  Status st = cf->Commit();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(fenv->stats().appends_torn, 1u);

  // Recovery must land exactly on the last good commit: the second batch
  // was never durable, so "a" rolls back to v1 and "c" never existed.
  cf.reset();
  auto reopened = CouchFile::Open(fenv.get(), path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Get("a")->value, "v1");
  EXPECT_TRUE((*reopened)->Get("c").status().IsNotFound());
  EXPECT_EQ((*reopened)->high_seqno(), 1u);
}

TEST_F(FaultyCouchFileTest, CompactFailureLeavesOriginalReadableAndRearmed) {
  auto fenv = MakeFaulty();
  auto cf = CouchFile::Open(fenv.get(), path_).value();
  // Build fragmentation: many superseded versions of the same keys.
  std::string filler(256, 'f');
  uint64_t seq = 1;
  for (int round = 0; round < 8; ++round) {
    std::vector<kv::Document> batch;
    for (int k = 0; k < 4; ++k) {
      batch.push_back(MakeDoc("k" + std::to_string(k), filler, seq++));
    }
    ASSERT_TRUE(cf->SaveDocs(batch).ok());
  }
  ASSERT_TRUE(cf->Commit().ok());
  double frag_before = cf->Fragmentation();
  ASSERT_GT(frag_before, 0.5);

  // The compaction's very first write into the temp file fails.
  fenv->FailNextAppends(1);
  Status st = cf->Compact();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();

  // Failure is safe: original file, index, and fragmentation untouched, so
  // the compactor's trigger re-fires on the next sweep...
  EXPECT_EQ(cf->Get("k0")->value, filler);
  EXPECT_DOUBLE_EQ(cf->Fragmentation(), frag_before);

  // ...and the retried compaction succeeds and actually shrinks the file.
  uint64_t size_before = cf->stats().file_size;
  ASSERT_TRUE(cf->Compact().ok());
  EXPECT_LT(cf->stats().file_size, size_before);
  EXPECT_EQ(cf->Get("k0")->value, filler);
  EXPECT_EQ(cf->high_seqno(), seq - 1);
}

TEST_F(FaultyCouchFileTest, ReadFailureDuringRecoveryPropagatesNotTruncates) {
  // Commit real data through a healthy disk first.
  auto fenv = MakeFaulty();
  {
    auto cf = CouchFile::Open(fenv.get(), path_).value();
    ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1)}).ok());
    ASSERT_TRUE(cf->Commit().ok());
  }

  // A bad sector during recovery is NOT a torn tail: warmup must fail loudly
  // (Open propagates the IOError) instead of truncating at the unreadable
  // region and silently discarding the committed data behind it.
  fenv->FailNextReads(1);
  auto failed = CouchFile::Open(fenv.get(), path_);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
  EXPECT_EQ(fenv->stats().reads_failed, 1u);

  // Once the transient error clears, recovery sees the full commit.
  auto reopened = CouchFile::Open(fenv.get(), path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("a")->value, "v1");
}

TEST_F(FaultyCouchFileTest, ProbabilisticFaultsAreDeterministicPerSeed) {
  // Same seed + same operation sequence = same injection schedule: torture
  // failures replay from their seed alone.
  auto run = [&](uint64_t seed) {
    auto base = Env::NewMemEnv();
    FaultyEnvOptions opts;
    opts.seed = seed;
    opts.append_fail_prob = 0.2;
    opts.sync_fail_prob = 0.2;
    FaultyEnv fenv(base.get(), opts);
    auto cf = CouchFile::Open(&fenv, "vb.couch").value();
    std::vector<uint64_t> outcome;
    for (uint64_t s = 1; s <= 40; ++s) {
      // A failed save/commit here is an expected injected fault; the test
      // compares the ok/fail schedule across runs, not individual results.
      bool saved = cf->SaveDocs({MakeDoc("k" + std::to_string(s % 5),
                                         "v" + std::to_string(s), s)})
                       .ok();
      bool committed = s % 4 == 0 ? cf->Commit().ok() : true;
      outcome.push_back((saved ? 1u : 0u) | (committed ? 2u : 0u));
    }
    FaultyEnvStats st = fenv.stats();
    outcome.push_back(st.appends_failed);
    outcome.push_back(st.syncs_failed);
    return outcome;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and the seed actually matters
}

}  // namespace
}  // namespace couchkv::storage
