// Unit tests for the append-only storage engine: persistence, crash
// recovery (torn tails), compaction, fragmentation, and both Env backends.
#include <gtest/gtest.h>

#include <filesystem>

#include "storage/couch_file.h"
#include "storage/env.h"

namespace couchkv::storage {
namespace {

kv::Document MakeDoc(const std::string& key, const std::string& value,
                     uint64_t seqno, bool deleted = false) {
  kv::Document doc;
  doc.key = key;
  doc.value = value;
  doc.meta.seqno = seqno;
  doc.meta.cas = seqno * 10;
  doc.meta.revno = 1;
  doc.meta.deleted = deleted;
  return doc;
}

class CouchFileTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      dir_ = ::testing::TempDir() + "/couchkv_storage_test";
      std::filesystem::create_directories(dir_);
      env_owned_.reset();
      env_ = Env::Posix();
      // Unique path per test case: parallel ctest runs must not collide.
      // Parameterized test names contain '/', which is not path-safe.
      const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
      std::string name = info->name();
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      path_ = dir_ + "/" + name + ".couch";
      env_->Remove(path_);
      env_->Remove(path_ + ".compact");
    } else {
      env_owned_ = Env::NewMemEnv();
      env_ = env_owned_.get();
      path_ = "vb0.couch";
    }
  }

  std::unique_ptr<Env> env_owned_;
  Env* env_ = nullptr;
  std::string dir_;
  std::string path_;
};

INSTANTIATE_TEST_SUITE_P(Backends, CouchFileTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST_P(CouchFileTest, SaveCommitGet) {
  auto cf = CouchFile::Open(env_, path_).value();
  ASSERT_TRUE(cf->SaveDocs({MakeDoc("a", "v1", 1), MakeDoc("b", "v2", 2)}).ok());
  ASSERT_TRUE(cf->Commit().ok());
  auto doc = cf->Get("a");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->value, "v1");
  EXPECT_EQ(doc->meta.seqno, 1u);
  EXPECT_TRUE(cf->Get("zzz").status().IsNotFound());
  EXPECT_EQ(cf->high_seqno(), 2u);
}

TEST_P(CouchFileTest, UpdatesSupersede) {
  auto cf = CouchFile::Open(env_, path_).value();
  cf->SaveDocs({MakeDoc("a", "v1", 1)});
  cf->SaveDocs({MakeDoc("a", "v2", 2)});
  cf->Commit();
  EXPECT_EQ(cf->Get("a")->value, "v2");
  EXPECT_EQ(cf->stats().num_live_docs, 1u);
}

TEST_P(CouchFileTest, DeleteLeavesTombstone) {
  auto cf = CouchFile::Open(env_, path_).value();
  cf->SaveDocs({MakeDoc("a", "v1", 1)});
  cf->SaveDocs({MakeDoc("a", "", 2, /*deleted=*/true)});
  cf->Commit();
  EXPECT_TRUE(cf->Get("a").status().IsNotFound());
  EXPECT_EQ(cf->stats().num_tombstones, 1u);
}

TEST_P(CouchFileTest, ReopenRecoversCommittedState) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    cf->SaveDocs({MakeDoc("a", "v1", 1), MakeDoc("b", "v2", 2)});
    cf->Commit();
    cf->SaveDocs({MakeDoc("c", "v3", 3)});
    // No commit for c: it must vanish on reopen (crash semantics).
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->Get("a")->value, "v1");
  EXPECT_EQ(cf->Get("b")->value, "v2");
  EXPECT_TRUE(cf->Get("c").status().IsNotFound());
  EXPECT_EQ(cf->high_seqno(), 2u);
}

TEST_P(CouchFileTest, RecoveryTruncatesTornTail) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    cf->SaveDocs({MakeDoc("a", "v1", 1)});
    cf->Commit();
  }
  // Simulate a torn write: append garbage bytes.
  {
    auto f = env_->Open(path_).value();
    f->Append("GARBAGE-PARTIAL-RECORD");
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->Get("a")->value, "v1");
  // Further writes after recovery work.
  EXPECT_TRUE(cf->SaveDocs({MakeDoc("b", "v2", 2)}).ok());
  EXPECT_TRUE(cf->Commit().ok());
  EXPECT_EQ(cf->Get("b")->value, "v2");
}

TEST_P(CouchFileTest, ChangesSinceStreamsInSeqnoOrder) {
  auto cf = CouchFile::Open(env_, path_).value();
  cf->SaveDocs({MakeDoc("a", "1", 1), MakeDoc("b", "2", 2),
                MakeDoc("c", "3", 3), MakeDoc("a", "4", 4)});
  cf->Commit();
  std::vector<uint64_t> seqnos;
  ASSERT_TRUE(cf->ChangesSince(1, [&](const kv::Document& d) {
                  seqnos.push_back(d.meta.seqno);
                }).ok());
  // seqno 1 was superseded by 4 (same key); only latest versions stream.
  EXPECT_EQ(seqnos, (std::vector<uint64_t>{2, 3, 4}));
}

TEST_P(CouchFileTest, CompactionShrinksFile) {
  auto cf = CouchFile::Open(env_, path_).value();
  std::string big(512, 'x');
  for (uint64_t i = 1; i <= 100; ++i) {
    cf->SaveDocs({MakeDoc("hot", big + std::to_string(i), i)});
  }
  cf->Commit();
  double frag_before = cf->Fragmentation();
  uint64_t size_before = cf->stats().file_size;
  EXPECT_GT(frag_before, 0.9);
  ASSERT_TRUE(cf->Compact().ok());
  EXPECT_LT(cf->stats().file_size, size_before / 10);
  EXPECT_LT(cf->Fragmentation(), 0.1);
  // Data survives compaction.
  EXPECT_EQ(cf->Get("hot")->value, big + "100");
  EXPECT_EQ(cf->high_seqno(), 100u);
}

TEST_P(CouchFileTest, CompactionPurgesOldTombstones) {
  auto cf = CouchFile::Open(env_, path_).value();
  cf->SaveDocs({MakeDoc("a", "v", 1)});
  cf->SaveDocs({MakeDoc("a", "", 2, true)});
  cf->SaveDocs({MakeDoc("b", "v", 3)});
  cf->Commit();
  ASSERT_TRUE(cf->Compact(/*purge_before_seqno=*/3).ok());
  EXPECT_EQ(cf->stats().num_tombstones, 0u);
  EXPECT_EQ(cf->stats().num_live_docs, 1u);
}

TEST_P(CouchFileTest, ReopenAfterCompaction) {
  {
    auto cf = CouchFile::Open(env_, path_).value();
    for (uint64_t i = 1; i <= 10; ++i) {
      cf->SaveDocs({MakeDoc("k" + std::to_string(i), "v", i)});
    }
    cf->Commit();
    cf->Compact();
  }
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_EQ(cf->stats().num_live_docs, 10u);
  EXPECT_EQ(cf->Get("k7")->value, "v");
}

TEST_P(CouchFileTest, ForEachLiveVisitsAllLiveDocs) {
  auto cf = CouchFile::Open(env_, path_).value();
  cf->SaveDocs({MakeDoc("a", "1", 1), MakeDoc("b", "2", 2),
                MakeDoc("b", "", 3, true)});
  cf->Commit();
  int count = 0;
  cf->ForEachLive([&](const kv::Document& d) {
    EXPECT_EQ(d.key, "a");
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST_P(CouchFileTest, EmptyFileHasNoFragmentation) {
  auto cf = CouchFile::Open(env_, path_).value();
  EXPECT_DOUBLE_EQ(cf->Fragmentation(), 0.0);
  EXPECT_EQ(cf->high_seqno(), 0u);
}

TEST_P(CouchFileTest, LargeValuesRoundTrip) {
  auto cf = CouchFile::Open(env_, path_).value();
  std::string huge(1 << 20, 'q');
  cf->SaveDocs({MakeDoc("big", huge, 1)});
  cf->Commit();
  EXPECT_EQ(cf->Get("big")->value, huge);
}

TEST(EnvTest, MemEnvRename) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("a").value();
  f->Append("data");
  ASSERT_TRUE(env->Rename("a", "b").ok());
  EXPECT_FALSE(env->Exists("a"));
  EXPECT_TRUE(env->Exists("b"));
  std::string out;
  ASSERT_TRUE(env->Open("b").value()->Read(0, 4, &out).ok());
  EXPECT_EQ(out, "data");
}

TEST(EnvTest, MemEnvIsolation) {
  auto env1 = Env::NewMemEnv();
  auto env2 = Env::NewMemEnv();
  env1->Open("f").value()->Append("x");
  EXPECT_TRUE(env1->Exists("f"));
  EXPECT_FALSE(env2->Exists("f"));
}

TEST(EnvTest, ReadPastEofFails) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("f").value();
  f->Append("abc");
  std::string out;
  EXPECT_FALSE(f->Read(1, 5, &out).ok());
  EXPECT_TRUE(f->Read(1, 2, &out).ok());
  EXPECT_EQ(out, "bc");
}

TEST(EnvTest, TruncateShrinks) {
  auto env = Env::NewMemEnv();
  auto f = env->Open("f").value();
  f->Append("abcdef");
  ASSERT_TRUE(f->Truncate(3).ok());
  EXPECT_EQ(f->Size(), 3u);
}

}  // namespace
}  // namespace couchkv::storage
