// Torture-test harness: drives a randomized KV workload against a cluster
// through smart clients while the test injects faults (via
// net::FaultyTransport and Cluster::CrashNode/RestartNode), records the fate
// of every write, and checks cluster-wide invariants afterwards:
//
//   * CheckAckedWritesDurable  — no acknowledged write is lost beyond what
//     the durability level permits (after a crash, persist-acked writes are
//     the floor; without one, every acked write must survive).
//   * CheckReplicaConvergence  — after partitions heal and the cluster
//     settles, every replica holds exactly its active's documents.
//   * CheckAllKeysReachable    — every key that must exist is readable
//     through a client (NotMyVBucket retries converge; no orphaned keys).
//
// Each worker client owns a disjoint key range and writes versioned values,
// so a key's history is a single client's sequential writes — which is what
// makes the invariants checkable without a global ordering oracle.
#ifndef COUCHKV_TESTS_HARNESS_TORTURE_H_
#define COUCHKV_TESTS_HARNESS_TORTURE_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "stats/registry.h"

namespace couchkv::harness {

struct TortureOptions {
  uint64_t seed = 1;
  int num_clients = 4;        // worker threads, one SmartClient each
  int ops_per_client = 200;
  int keys_per_client = 32;   // clients use disjoint key ranges
  double write_fraction = 0.8;
  // Every Nth write per client requests persist_to=1 durability; those
  // writes must survive even a node crash.
  int persist_every = 8;
  // Every Nth write per client requests replicate_to=1 AND persist_to=1
  // (with durability_timeout_ms); those writes must survive even a
  // failover, since an acked copy provably reached a replica. 0 disables.
  int durable_every = 0;
  uint64_t durability_timeout_ms = 2500;
  // Transport endpoint ids for the workers are base_client_id, +1, ... so
  // fault schedules are reproducible across runs with the same seed.
  uint32_t base_client_id = 1000;
  client::RetryPolicy retry;
};

// The fate of one write, in the owning client's program order.
struct WriteRecord {
  std::string value;
  bool acked = false;          // client saw OK
  bool persist_acked = false;  // acked with persist_to >= 1
  bool replicate_acked = false;  // acked with replicate_to >= 1
  bool in_doubt = false;       // failed ambiguously: may or may not be there
};

class TortureDriver {
 public:
  TortureDriver(cluster::Cluster* cluster, std::string bucket,
                TortureOptions opts);

  // Runs the full workload (num_clients threads) to completion. May be
  // called while the test crashes nodes / injects faults concurrently.
  void Run();

  // Tells the harness a node crash happened during the workload, weakening
  // the durability floor to persist-acked writes.
  void NoteCrash() { crash_occurred_ = true; }

  // Tells the harness a failover happened (or may happen) during the
  // workload: a plain memory-acked write to the failed node is then
  // legitimately lost, so the floor weakens to writes that were acked with
  // replicate_to or persist_to durability (those provably exist on a
  // surviving copy; seqno-aware promotion keeps them).
  void NoteFailover() { failover_occurred_ = true; }

  // Drains all async machinery (DCP + flushers) so the invariant checks
  // observe a settled cluster. Heal partitions first.
  void Settle();

  // --- Invariants (run after Settle) ---
  testing::AssertionResult CheckAckedWritesDurable();
  testing::AssertionResult CheckReplicaConvergence();
  testing::AssertionResult CheckAllKeysReachable();

  // FNV-1a hash over the sorted final (key, present, value) state as read
  // through a client: equal across two runs iff the final KV state is equal.
  uint64_t StateFingerprint();

  const std::map<std::string, std::vector<WriteRecord>>& history() const {
    return history_;
  }

 private:
  void RunClient(int client_index);
  // Index of the newest write that is guaranteed to have survived, or -1.
  int AnchorIndex(const std::vector<WriteRecord>& h) const;
  std::unique_ptr<client::SmartClient> MakeCheckClient();
  // Registry delta since construction, appended to invariant failures so a
  // torture report shows what the cluster was doing (retries, drops,
  // evictions, DCP backlog, ...) when the invariant broke.
  std::string StatsDump() const;

  cluster::Cluster* cluster_;
  std::string bucket_;
  TortureOptions opts_;
  bool crash_occurred_ = false;
  bool failover_occurred_ = false;
  // Registry snapshot taken at construction; failures print the delta.
  stats::Snapshot start_stats_;
  // key -> its write history. Written by exactly one worker thread during
  // Run(), read only after the workers join.
  std::map<std::string, std::vector<WriteRecord>> history_;
};

}  // namespace couchkv::harness

#endif  // COUCHKV_TESTS_HARNESS_TORTURE_H_
