#include "harness/torture.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/random.h"
#include "cluster/bucket.h"
#include "cluster/node.h"
#include "cluster/vbucket.h"

namespace couchkv::harness {

namespace {

std::string KeyName(int client, int k) {
  return "c" + std::to_string(client) + "-k" + std::to_string(k);
}

uint64_t FnvMix(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

TortureDriver::TortureDriver(cluster::Cluster* cluster, std::string bucket,
                             TortureOptions opts)
    : cluster_(cluster), bucket_(std::move(bucket)), opts_(opts) {
  start_stats_ = stats::Registry::Global().Collect();
  // Pre-create every key's (empty) history so worker threads never mutate
  // the map structure concurrently — each thread only appends to vectors it
  // owns.
  for (int c = 0; c < opts_.num_clients; ++c) {
    for (int k = 0; k < opts_.keys_per_client; ++k) {
      history_[KeyName(c, k)];
    }
  }
}

void TortureDriver::Run() {
  std::vector<std::thread> workers;
  workers.reserve(opts_.num_clients);
  for (int c = 0; c < opts_.num_clients; ++c) {
    workers.emplace_back([this, c] { RunClient(c); });
  }
  for (auto& w : workers) w.join();
}

void TortureDriver::RunClient(int client_index) {
  client::SmartClient client(cluster_, bucket_, opts_.retry,
                             opts_.base_client_id +
                                 static_cast<uint32_t>(client_index));
  Rng rng(opts_.seed * 0x9e3779b97f4a7c15ULL + client_index + 1);
  int writes = 0;
  for (int op = 0; op < opts_.ops_per_client; ++op) {
    int k = static_cast<int>(rng.Uniform(opts_.keys_per_client));
    std::string key = KeyName(client_index, k);
    if (rng.NextDouble() < opts_.write_fraction) {
      ++writes;
      bool durable =
          opts_.persist_every > 0 && writes % opts_.persist_every == 0;
      bool replicated =
          opts_.durable_every > 0 && writes % opts_.durable_every == 0;
      WriteRecord rec;
      rec.value = "v-" + std::to_string(client_index) + "-" +
                  std::to_string(op) + "-" + std::to_string(writes);
      client::WriteOptions wo;
      if (durable) wo.durability = cluster::Durability::Persist(1);
      if (replicated) {
        // Survives failover: the ack proves a replica AND the active's disk
        // had the write, and seqno-aware promotion keeps the freshest
        // replica.
        wo.durability.replicate_to = 1;
        wo.durability.persist_to = 1;
        wo.durability.timeout_ms = opts_.durability_timeout_ms;
      }
      auto r = client.Upsert(key, rec.value, wo);
      if (r.ok()) {
        rec.acked = true;
        rec.persist_acked = durable || replicated;
        rec.replicate_acked = replicated;
      } else {
        // TempFail after retry exhaustion, a durability Timeout (the write
        // may have landed but its ack leg was lost or replication lagged),
        // or a lost reply: outcome unknown.
        rec.in_doubt = true;
      }
      history_[key].push_back(std::move(rec));
    } else {
      // Reads exercise routing/retries; values are validated at the end.
      (void)client.Get(key);
    }
  }
}

void TortureDriver::Settle() {
  // Several rounds: a DCP pump can enqueue flusher work and vice versa, and
  // a first Quiesce may race with replication streams that were stalled by
  // faults at the moment it sampled them.
  for (int i = 0; i < 3; ++i) cluster_->Quiesce();
}

std::unique_ptr<client::SmartClient> TortureDriver::MakeCheckClient() {
  // Fixed id: checker traffic is distinguishable in fault schedules, and a
  // FaultyTransport without client faults for this id sees a clean network.
  return std::make_unique<client::SmartClient>(
      cluster_, bucket_, opts_.retry, opts_.base_client_id - 1);
}

std::string TortureDriver::StatsDump() const {
  stats::Snapshot now = stats::Registry::Global().Collect();
  std::string out = "\n--- registry delta since driver construction ---\n" +
                    stats::DebugString(stats::Delta(start_stats_, now));
  // Each live node's flight-recorder tail: the last wire ops it actually
  // served, with phase timings and trace ids — usually the fastest way to
  // see what the cluster was doing when an invariant broke.
  for (cluster::NodeId id : cluster_->node_ids()) {
    cluster::Node* n = cluster_->node(id);
    if (n == nullptr) continue;
    out += "\n--- node " + std::to_string(id) + " flight recorder ---\n";
    out += n->flight_recorder()->ToJson(n->clock()->NowNanos(),
                                        /*max_records=*/8);
  }
  return out;
}

int TortureDriver::AnchorIndex(const std::vector<WriteRecord>& h) const {
  for (int i = static_cast<int>(h.size()) - 1; i >= 0; --i) {
    // Each fault the test injected weakens the guarantee the anchor may
    // rely on: a crash voids memory-only acks (a persisted write survives
    // the restart); a failover voids everything that lived only on the
    // failed node — including its disk — so only a replicate-acked write
    // (provably present on a surviving replica, which seqno-aware
    // promotion preserves) is guaranteed.
    bool anchored = h[i].acked;
    if (crash_occurred_) anchored = anchored && h[i].persist_acked;
    if (failover_occurred_) anchored = anchored && h[i].replicate_acked;
    if (anchored) return i;
  }
  return -1;
}

testing::AssertionResult TortureDriver::CheckAckedWritesDurable() {
  auto client = MakeCheckClient();
  for (const auto& [key, h] : history_) {
    int anchor = AnchorIndex(h);
    auto r = client->Get(key);
    if (!r.ok() && !r.status().IsNotFound()) {
      return testing::AssertionFailure()
             << "Get(" << key << ") failed: " << r.status().ToString()
             << StatsDump();
    }
    if (anchor < 0) {
      // No write is guaranteed to have survived; absent or any in-doubt
      // value is acceptable.
      if (!r.ok()) continue;
      bool known = false;
      for (const auto& rec : h) known |= (rec.value == r.value().value);
      if (!known && !h.empty()) {
        return testing::AssertionFailure()
               << key << " holds a value the client never wrote: "
               << r.value().value << StatsDump();
      }
      continue;
    }
    if (!r.ok()) {
      return testing::AssertionFailure()
             << (crash_occurred_ ? "persist-acked" : "acked") << " write to "
             << key << " was lost: key not found (anchor value "
             << h[anchor].value << ")" << StatsDump();
    }
    // The observed value must come from the anchor or a later write — an
    // earlier value means the anchored write was rolled back.
    bool valid = false;
    for (size_t i = static_cast<size_t>(anchor); i < h.size(); ++i) {
      if (h[i].value == r.value().value) valid = true;
    }
    if (!valid) {
      return testing::AssertionFailure()
             << key << " regressed past an acked write: observed \""
             << r.value().value << "\", anchor \"" << h[anchor].value
             << "\" (index " << anchor << " of " << h.size() << ")"
             << StatsDump();
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult TortureDriver::CheckReplicaConvergence() {
  auto map = cluster_->map(bucket_);
  if (map == nullptr) {
    return testing::AssertionFailure() << "no map for bucket " << bucket_;
  }
  // key -> (seqno, cas) of every live document in a vBucket's hash table.
  // Values are skipped (the active may have evicted a doc's body while the
  // replica keeps it resident; seqno+cas pin the version) and so are
  // tombstones (warmup restores live docs only, so a restarted active
  // legitimately holds fewer tombstones than its replicas).
  using DocSig = std::map<std::string, std::pair<uint64_t, uint64_t>>;
  auto signature = [](const cluster::VBucket* vb) {
    DocSig sig;
    vb->hash_table().ForEach([&](const kv::Document& d, bool) {
      if (d.meta.deleted) return;
      sig[d.key] = {d.meta.seqno, d.meta.cas};
    });
    return sig;
  };
  for (uint16_t vb = 0; vb < map->entries.size(); ++vb) {
    const auto& e = map->entries[vb];
    if (e.active == cluster::kNoNode) continue;
    cluster::Node* an = cluster_->node(e.active);
    if (an == nullptr || !an->healthy()) continue;
    std::shared_ptr<cluster::Bucket> ab = an->bucket(bucket_);
    if (ab == nullptr) continue;
    DocSig active_sig = signature(ab->vbucket(vb));
    for (cluster::NodeId rid : e.replicas) {
      cluster::Node* rn = cluster_->node(rid);
      if (rn == nullptr || !rn->healthy()) continue;
      std::shared_ptr<cluster::Bucket> rb = rn->bucket(bucket_);
      if (rb == nullptr) continue;
      DocSig replica_sig = signature(rb->vbucket(vb));
      if (active_sig != replica_sig) {
        std::ostringstream os;
        os << "vb " << vb << ": replica on node " << rid << " ("
           << replica_sig.size() << " docs) diverges from active on node "
           << e.active << " (" << active_sig.size() << " docs)";
        for (const auto& [k, v] : active_sig) {
          auto it = replica_sig.find(k);
          if (it == replica_sig.end()) {
            os << "; missing " << k << "@" << std::get<0>(v);
          } else if (it->second != v) {
            os << "; " << k << " active@" << std::get<0>(v) << " replica@"
               << std::get<0>(it->second);
          }
        }
        for (const auto& [k, v] : replica_sig) {
          if (!active_sig.count(k)) os << "; extra " << k << "@"
                                       << std::get<0>(v);
        }
        return testing::AssertionFailure() << os.str() << StatsDump();
      }
    }
  }
  return testing::AssertionSuccess();
}

testing::AssertionResult TortureDriver::CheckAllKeysReachable() {
  auto client = MakeCheckClient();
  for (const auto& [key, h] : history_) {
    if (AnchorIndex(h) < 0) continue;  // nothing guaranteed present
    auto r = client->Get(key);
    if (!r.ok()) {
      return testing::AssertionFailure()
             << key << " (vb " << client->VBucketFor(key)
             << ") unreachable: " << r.status().ToString() << StatsDump();
    }
  }
  return testing::AssertionSuccess();
}

uint64_t TortureDriver::StateFingerprint() {
  auto client = MakeCheckClient();
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  // history_ is a std::map, so keys come out sorted — the fingerprint does
  // not depend on thread interleavings, only on final (key, value) state.
  // CAS/seqno are excluded: CAS values may be clock-derived.
  for (const auto& [key, hist] : history_) {
    (void)hist;
    auto r = client->Get(key);
    h = FnvMix(h, key);
    if (r.ok()) {
      h = FnvMix(h, "=");
      h = FnvMix(h, r.value().value);
    } else {
      h = FnvMix(h, "!absent");
    }
  }
  return h;
}

}  // namespace couchkv::harness
